"""Tests for configuration dataclasses and the error hierarchy."""

import dataclasses

import pytest

from repro import errors
from repro.config import (
    DEFAULT_CONFIG,
    ClusterConfig,
    CostModel,
    EvictionConfig,
    StashConfig,
)


class TestCostModel:
    def test_disk_read_time_scales(self):
        cost = CostModel()
        small = cost.disk_read_time(1_000)
        large = cost.disk_read_time(1_000_000)
        assert large > small > cost.disk_seek

    def test_data_scale_effect(self):
        slow = CostModel(data_scale=128.0)
        fast = CostModel(data_scale=1.0)
        nbytes = 100_000
        assert slow.disk_read_time(nbytes) > fast.disk_read_time(nbytes)
        # Seek is unaffected by scale.
        assert slow.disk_read_time(0) == fast.disk_read_time(0)

    def test_network_time(self):
        cost = CostModel()
        assert cost.network_time(0) == cost.network_latency
        assert cost.network_time(10**9) == pytest.approx(
            cost.network_latency + 1.0
        )


class TestStashConfig:
    def test_default_config_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_CONFIG.enable_replication = False  # type: ignore[misc]

    def test_with_replaces_top_level(self):
        config = StashConfig().with_(enable_replication=False)
        assert config.enable_replication is False
        assert StashConfig().enable_replication is True

    def test_with_nested_replacement(self):
        config = StashConfig().with_(
            eviction=EvictionConfig(max_cells=7), cluster=ClusterConfig(num_nodes=3)
        )
        assert config.eviction.max_cells == 7
        assert config.cluster.num_nodes == 3
        # Untouched sections keep defaults.
        assert config.cost == CostModel()

    def test_block_precision_default_geq_partition(self):
        cluster = ClusterConfig()
        assert cluster.block_precision >= cluster.partition_precision


class TestErrorHierarchy:
    def test_all_errors_are_repro_errors(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not errors.ReproError:
                    assert issubclass(obj, errors.ReproError), name

    def test_network_error_is_simulation_error(self):
        assert issubclass(errors.NetworkError, errors.SimulationError)

    def test_catch_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.CacheError("x")
        with pytest.raises(errors.ReproError):
            raise errors.WorkloadError("y")

    def test_audit_error_in_hierarchy(self):
        from repro.audit import AuditError

        assert issubclass(AuditError, errors.ReproError)

"""Tests for the simulated ElasticSearch baseline."""

import pytest

from repro.baselines.elastic import ElasticSystem, PageCache, _request_key
from repro.config import ClusterConfig, ElasticConfig, StashConfig
from repro.data.generator import small_test_dataset
from repro.geo.bbox import BoundingBox
from repro.geo.resolution import Resolution
from repro.geo.temporal import TemporalResolution, TimeKey
from repro.query.model import AggregationQuery
from repro.storage.backend import ground_truth_cells


@pytest.fixture(scope="module")
def dataset():
    return small_test_dataset(num_records=6_000)


def make_config(**kwargs):
    defaults = dict(
        cluster=ClusterConfig(num_nodes=6),
        elastic=ElasticConfig(num_shards=24, page_cache_blocks=16),
    )
    defaults.update(kwargs)
    return StashConfig(**defaults)


@pytest.fixture()
def system(dataset):
    return ElasticSystem(dataset, make_config())


def make_query(box=None, precision=3):
    return AggregationQuery(
        bbox=box or BoundingBox(30, 45, -115, -95),
        time_range=TimeKey.of(2013, 2, 2).epoch_range(),
        resolution=Resolution(precision, TemporalResolution.DAY),
    )


class TestCorrectness:
    def test_matches_ground_truth(self, system, dataset):
        query = make_query()
        result = system.run_query(query)
        truth = ground_truth_cells(dataset, query)
        assert set(result.cells) == set(truth)
        for key, vec in result.cells.items():
            assert vec.approx_equal(truth[key])

    def test_repeat_query_still_correct(self, system, dataset):
        query = make_query()
        system.run_query(query)
        repeat = system.run_query(make_query())
        truth = ground_truth_cells(dataset, repeat.query)
        assert set(repeat.cells) == set(truth)

    def test_matches_stash_answers(self, dataset):
        from repro.core.cluster import StashCluster

        query_box = BoundingBox(32, 42, -112, -98)
        es = ElasticSystem(dataset, make_config()).run_query(
            make_query(box=query_box)
        )
        stash = StashCluster(dataset, make_config()).run_query(
            make_query(box=query_box)
        )
        assert es.matches(stash)


class TestCacheSemantics:
    def test_identical_repeat_hits_request_cache(self, system):
        query = make_query()
        first = system.run_query(query)
        repeat = system.run_query(make_query())  # same bounds, new id
        counts = sum(
            node.counters.get("request_cache_hits")
            for node in system.nodes.values()
        )
        assert counts > 0
        assert repeat.latency < first.latency / 2

    def test_panned_query_misses_request_cache(self, system):
        system.run_query(make_query())
        hits_before = sum(
            node.counters.get("request_cache_hits")
            for node in system.nodes.values()
        )
        system.run_query(make_query().panned(0.5, 0.5))
        hits_after = sum(
            node.counters.get("request_cache_hits")
            for node in system.nodes.values()
        )
        assert hits_after == hits_before  # no request-cache reuse

    def test_panning_improvement_is_small(self, system):
        """The paper's Fig 8a shape: ES improves only slightly on pans.

        This holds in the paper's regime — the working set far exceeds
        the page cache (1.1 TB vs 16 GB nodes) — so the cache must be
        small relative to the chunks the query spans.
        """
        config = make_config(
            elastic=ElasticConfig(num_shards=24, page_cache_blocks=1)
        )
        system = ElasticSystem(small_test_dataset(num_records=6_000), config)
        base = make_query(box=BoundingBox(25, 48, -125, -85))
        first = system.run_query(base)
        panned_latencies = []
        for i in range(1, 5):
            moved = base.panned(0.2 * i, 0.2 * i)
            panned_latencies.append(system.run_query(moved).latency)
        for latency in panned_latencies:
            reduction = (first.latency - latency) / first.latency
            assert reduction < 0.35  # nowhere near STASH's 49-70%

    def test_request_key_distinguishes_bounds(self):
        a = make_query()
        b = make_query().panned(1e-6, 0)
        assert _request_key(a) != _request_key(b)
        c = make_query()
        assert _request_key(a) == _request_key(c)

    def test_page_cache_lru(self):
        cache = PageCache(capacity=2)
        assert not cache.access((0, "a", "x"))
        assert not cache.access((0, "b", "x"))
        assert cache.access((0, "a", "x"))
        assert not cache.access((0, "c", "x"))  # evicts b
        assert not cache.access((0, "b", "x"))
        assert cache.hits == 1 and cache.misses == 4

    def test_page_cache_zero_capacity(self):
        cache = PageCache(capacity=0)
        assert not cache.access((0, "a", "x"))
        assert not cache.access((0, "a", "x"))


class TestShardPlacement:
    def test_all_records_in_shards(self, system, dataset):
        system.start()
        total = sum(
            len(chunk)
            for node in system.nodes.values()
            for shard in node.shards
            for chunk in shard.chunks.values()
        )
        assert total == len(dataset)

    def test_shards_spread_over_nodes(self, system):
        system.start()
        shard_counts = [len(node.shards) for node in system.nodes.values()]
        assert all(count == 4 for count in shard_counts)  # 24 shards / 6 nodes

    def test_hash_sharding_splits_regions(self, system):
        """Geospatially adjacent data lands in many shards (no locality)."""
        system.start()
        query = AggregationQuery(
            bbox=BoundingBox(28, 48, -120, -90),
            time_range=TimeKey.of(2013, 2).epoch_range(),
            resolution=Resolution(3, TemporalResolution.DAY),
        )
        shards_with_matches = 0
        for node in system.nodes.values():
            for shard in node.shards:
                if shard.matching_chunks(query):
                    shards_with_matches += 1
        assert shards_with_matches > 12  # most of the 24 shards

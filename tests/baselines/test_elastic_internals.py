"""Unit tests for the ES baseline's internals (shards, chunking, caches)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.elastic import CHUNK_TILE_PRECISION, EsShard
from repro.data.generator import small_test_dataset
from repro.geo.bbox import BoundingBox
from repro.geo.resolution import Resolution
from repro.geo.temporal import TemporalResolution, TimeKey
from repro.query.model import AggregationQuery


@pytest.fixture(scope="module")
def batch():
    return small_test_dataset(num_records=2_000)


class TestShardChunking:
    def test_chunks_partition_records(self, batch):
        shard = EsShard(0)
        shard.add_chunked(batch)
        total = sum(len(chunk) for chunk in shard.chunks.values())
        assert total == len(batch)

    def test_chunk_members_match_labels(self, batch):
        from repro.geo.geohash import encode
        from repro.geo.temporal import TemporalResolution as TR

        shard = EsShard(0)
        shard.add_chunked(batch)
        for (day, tile), chunk in list(shard.chunks.items())[:10]:
            for i in range(min(3, len(chunk))):
                assert encode(chunk.lats[i], chunk.lons[i], CHUNK_TILE_PRECISION) == tile
                key = TimeKey.from_epoch(chunk.epochs[i], TR.DAY)
                assert str(key) == day

    def test_incremental_add_merges(self, batch):
        half = len(batch) // 2
        idx = np.arange(len(batch))
        shard = EsShard(0)
        shard.add_chunked(batch.select(idx[:half]))
        shard.add_chunked(batch.select(idx[half:]))
        total = sum(len(chunk) for chunk in shard.chunks.values())
        assert total == len(batch)

    def test_add_empty_noop(self):
        from repro.data.observation import ObservationBatch

        shard = EsShard(0)
        shard.add_chunked(ObservationBatch.empty())
        assert shard.chunks == {}

    def test_matching_chunks_filters_by_day_and_tile(self, batch):
        shard = EsShard(0)
        shard.add_chunked(batch)
        query = AggregationQuery(
            bbox=BoundingBox(30, 45, -115, -95),
            time_range=TimeKey.of(2013, 2, 2).epoch_range(),
            resolution=Resolution(3, TemporalResolution.DAY),
        )
        matches = shard.matching_chunks(query)
        assert matches
        for (day, tile), _chunk in matches:
            assert day == "2013-02-02"

    def test_matching_chunks_complete(self, batch):
        """Every record in the snapped extent appears in a matching chunk."""
        shard = EsShard(0)
        shard.add_chunked(batch)
        query = AggregationQuery(
            bbox=BoundingBox(30, 45, -115, -95),
            time_range=TimeKey.of(2013, 2, 2).epoch_range(),
            resolution=Resolution(3, TemporalResolution.DAY),
        )
        in_extent = batch.filter_bbox(query.snapped_bbox()).filter_time(
            query.snapped_time_range()
        )
        matched = sum(
            len(chunk.filter_bbox(query.snapped_bbox()).filter_time(
                query.snapped_time_range()
            ))
            for _id, chunk in shard.matching_chunks(query)
        )
        assert matched == len(in_extent)


class TestRequestCacheLRU:
    def test_capacity_enforced(self):
        from repro.baselines.elastic import ElasticSystem
        from repro.config import ClusterConfig, ElasticConfig, StashConfig

        dataset = small_test_dataset(num_records=2_000)
        config = StashConfig(
            cluster=ClusterConfig(num_nodes=2),
            elastic=ElasticConfig(num_shards=4, request_cache_entries=2),
        )
        system = ElasticSystem(dataset, config)
        boxes = [
            BoundingBox(30 + i, 33 + i, -110, -105) for i in range(4)
        ]
        for box in boxes:
            system.run_query(
                AggregationQuery(
                    bbox=box,
                    time_range=TimeKey.of(2013, 2, 2).epoch_range(),
                    resolution=Resolution(3, TemporalResolution.DAY),
                )
            )
        for node in system.nodes.values():
            assert len(node._request_cache) <= 2

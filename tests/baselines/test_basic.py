"""Integration tests for the basic (no-STASH) distributed system."""

import pytest

from repro.config import ClusterConfig, StashConfig
from repro.data.generator import small_test_dataset
from repro.geo.bbox import BoundingBox
from repro.geo.resolution import Resolution
from repro.geo.temporal import TemporalResolution, TimeKey
from repro.query.model import AggregationQuery
from repro.storage.backend import ground_truth_cells


@pytest.fixture(scope="module")
def dataset():
    return small_test_dataset(num_records=6_000)


@pytest.fixture()
def system(dataset):
    from repro.baselines.basic import BasicSystem

    config = StashConfig(cluster=ClusterConfig(num_nodes=6))
    return BasicSystem(dataset, config)


def make_query(box=None, precision=3):
    return AggregationQuery(
        bbox=box or BoundingBox(30, 45, -115, -95),
        time_range=TimeKey.of(2013, 2, 2).epoch_range(),
        resolution=Resolution(precision, TemporalResolution.DAY),
    )


class TestBasicSystem:
    def test_answers_match_ground_truth(self, system, dataset):
        query = make_query()
        result = system.run_query(query)
        truth = ground_truth_cells(dataset, query)
        assert set(result.cells) == set(truth)
        for key, vec in result.cells.items():
            assert vec.approx_equal(truth[key])

    def test_latency_positive_and_recorded(self, system):
        result = system.run_query(make_query())
        assert result.latency > 0
        assert len(system.latencies) == 1
        assert len(system.timeline) == 1

    def test_no_reuse_between_queries(self, system):
        query = make_query()
        first = system.run_query(query)
        second = system.run_query(make_query())
        # Identical query costs the same with no cache.
        assert second.latency == pytest.approx(first.latency, rel=0.05)

    def test_larger_queries_slower(self, system):
        small = system.run_query(make_query(box=BoundingBox(35, 36, -105, -104)))
        large = system.run_query(make_query(box=BoundingBox(25, 50, -130, -80)))
        assert large.latency > small.latency

    def test_concurrent_matches_serial_results(self, dataset):
        from repro.baselines.basic import BasicSystem

        config = StashConfig(cluster=ClusterConfig(num_nodes=6))
        queries = [
            make_query(box=BoundingBox(30 + i, 40 + i, -110, -100)) for i in range(4)
        ]
        serial = BasicSystem(dataset, config).run_serial(
            [q.panned(0, 0) for q in queries]
        )
        concurrent = BasicSystem(dataset, config).run_concurrent(queries)
        for a, b in zip(serial, concurrent):
            assert set(a.cells) == set(b.cells)

    def test_provenance_counts_disk(self, system):
        result = system.run_query(make_query())
        assert result.provenance["disk_blocks_read"] > 0
        assert result.provenance["cells_from_disk"] == len(result.cells)

    def test_empty_region_returns_no_cells(self, system):
        # Middle of the Pacific — outside the NAM-like domain.
        query = make_query(box=BoundingBox(-10, -5, -170, -165))
        result = system.run_query(query)
        assert result.cells == {}

"""Tests for the workload generators."""

import numpy as np
import pytest

from repro.data.generator import NAM_DOMAIN
from repro.errors import WorkloadError
from repro.geo.bbox import BoundingBox
from repro.geo.resolution import Resolution
from repro.geo.temporal import TemporalResolution, TimeKey
from repro.query.model import AggregationQuery
from repro.workload.hotspot import hotspot_workload, zipf_region_workload
from repro.workload.navigation import (
    dicing_sequence,
    pan_cloud,
    pan_sequence,
    zoom_sequence,
)
from repro.workload.queries import (
    QUERY_SIZE_EXTENTS,
    QuerySize,
    random_box,
    random_query,
)


@pytest.fixture()
def rng():
    return np.random.default_rng(11)


def base_query(height=4.0, width=8.0):
    return AggregationQuery(
        bbox=BoundingBox.from_center(38.0, -100.0, height, width),
        time_range=TimeKey.of(2013, 2, 2).epoch_range(),
        resolution=Resolution(4, TemporalResolution.DAY),
    )


class TestQuerySizes:
    @pytest.mark.parametrize("size", list(QuerySize))
    def test_random_box_extents(self, rng, size):
        height, width = QUERY_SIZE_EXTENTS[size]
        for _ in range(10):
            box = random_box(rng, size, NAM_DOMAIN)
            assert box.height == pytest.approx(height)
            assert box.width == pytest.approx(width)
            assert NAM_DOMAIN.contains_box(box)

    def test_extent_exceeding_domain(self, rng):
        tiny = BoundingBox(0, 1, 0, 1)
        with pytest.raises(WorkloadError):
            random_box(rng, QuerySize.COUNTRY, tiny)

    def test_random_query_defaults(self, rng):
        query = random_query(rng, QuerySize.STATE, NAM_DOMAIN)
        assert query.resolution == Resolution(4, TemporalResolution.DAY)
        assert query.time_range == TimeKey.of(2013, 2, 2).epoch_range()

    def test_reproducible(self):
        a = random_query(np.random.default_rng(3), QuerySize.CITY, NAM_DOMAIN)
        b = random_query(np.random.default_rng(3), QuerySize.CITY, NAM_DOMAIN)
        assert a.bbox == b.bbox


class TestPanSequence:
    def test_eight_directions_plus_base(self):
        queries = pan_sequence(base_query(), 0.25)
        assert len(queries) == 9
        assert queries[0].bbox == base_query().bbox

    def test_pan_preserves_extent(self):
        base = base_query()
        for query in pan_sequence(base, 0.2):
            assert query.bbox.height == pytest.approx(base.bbox.height)
            assert query.bbox.width == pytest.approx(base.bbox.width)

    def test_overlap_decreases_with_fraction(self):
        base = base_query()
        small_overlap = min(
            base.bbox.overlap_fraction(q.bbox) for q in pan_sequence(base, 0.25)[1:]
        )
        large_overlap = min(
            base.bbox.overlap_fraction(q.bbox) for q in pan_sequence(base, 0.10)[1:]
        )
        assert large_overlap > small_overlap

    def test_bad_fraction(self):
        with pytest.raises(WorkloadError):
            pan_sequence(base_query(), 0.0)
        with pytest.raises(WorkloadError):
            pan_sequence(base_query(), 0.5, directions=9)


class TestDicingSequence:
    def test_descending_shrinks(self):
        queries = dicing_sequence(base_query(16, 32), steps=5)
        areas = [q.bbox.area for q in queries]
        assert all(a > b for a, b in zip(areas, areas[1:]))
        assert areas[-1] == pytest.approx(areas[0] * 0.8 ** 4)

    def test_paper_final_size(self):
        """Country start, 5 steps of 20% reduction -> ~(5.2, 10.4) area."""
        queries = dicing_sequence(base_query(16, 32), steps=5)
        final = queries[-1].bbox
        # sqrt(0.8^4) shrink per axis: 16 * 0.8^2 = 10.24 -> ~(10.2, 20.5)
        # The paper's (5.2, 10.4) implies per-axis 0.8 reduction; verify
        # monotone 20% area reduction instead of matching their arithmetic.
        assert final.area == pytest.approx(16 * 32 * 0.8 ** 4, rel=1e-6)

    def test_ascending_is_reverse(self):
        desc = dicing_sequence(base_query(), steps=4)
        asc = dicing_sequence(base_query(), steps=4, ascending=True)
        assert [q.bbox for q in asc] == [q.bbox for q in desc[::-1]]

    def test_nested(self):
        queries = dicing_sequence(base_query(), steps=4)
        for bigger, smaller in zip(queries, queries[1:]):
            assert bigger.bbox.contains_box(smaller.bbox)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            dicing_sequence(base_query(), steps=0)
        with pytest.raises(WorkloadError):
            dicing_sequence(base_query(), shrink_factor=1.0)


class TestZoomSequence:
    def test_drill_down(self):
        queries = zoom_sequence(base_query(), 2, 5)
        assert [q.resolution.spatial for q in queries] == [2, 3, 4, 5]
        assert all(q.bbox == base_query().bbox for q in queries)

    def test_roll_up(self):
        queries = zoom_sequence(base_query(), 5, 2)
        assert [q.resolution.spatial for q in queries] == [5, 4, 3, 2]

    def test_same_resolution_rejected(self):
        with pytest.raises(WorkloadError):
            zoom_sequence(base_query(), 3, 3)


class TestPanCloud:
    def test_counts(self, rng):
        queries = pan_cloud(rng, QuerySize.COUNTY, NAM_DOMAIN, 5, 10)
        assert len(queries) == 50

    def test_locality(self, rng):
        """Consecutive queries within one center overlap heavily."""
        queries = pan_cloud(rng, QuerySize.STATE, NAM_DOMAIN, 1, 10, 0.1)
        overlaps = [
            a.bbox.overlap_fraction(b.bbox) for a, b in zip(queries, queries[1:])
        ]
        assert min(overlaps) > 0.7


class TestHotspotWorkloads:
    def test_hotspot_centered(self, rng):
        queries = hotspot_workload(rng, NAM_DOMAIN, 50)
        assert len(queries) == 50
        base = queries[0].bbox
        for query in queries:
            # Random walk stays near the start for county-sized boxes.
            assert abs(query.bbox.center[0] - base.center[0]) < 5.0

    def test_hotspot_validation(self, rng):
        with pytest.raises(WorkloadError):
            hotspot_workload(rng, NAM_DOMAIN, 0)

    def test_zipf_skew(self, rng):
        queries = zipf_region_workload(rng, NAM_DOMAIN, 400, num_regions=8)
        assert len(queries) == 400
        # Bucket queries by nearest region center: top region dominates.
        centers = {}
        for query in queries:
            key = (round(query.bbox.center[0]), round(query.bbox.center[1]))
            centers[key] = centers.get(key, 0) + 1
        counts = sorted(centers.values(), reverse=True)
        assert counts[0] > 400 / 8

    def test_zipf_validation(self, rng):
        with pytest.raises(WorkloadError):
            zipf_region_workload(rng, NAM_DOMAIN, 10, num_regions=0)
        with pytest.raises(WorkloadError):
            zipf_region_workload(rng, NAM_DOMAIN, 10, zipf_s=0)

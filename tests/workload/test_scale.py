"""Property tests for the session-scale workload generator.

The generator's contract (repro/workload/scale.py): deterministic per
seed — bit-identical across fresh processes — with a Markov gesture
walk that can only emit legal gestures and only along transitions the
matrix allows, and Zipf hotspot popularity matching the configured
skew exponent.
"""

import os
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.errors import WorkloadError
from repro.workload.queries import QuerySize
from repro.workload.scale import (
    DEFAULT_TRANSITIONS,
    GESTURE_INDEX,
    GESTURE_KIND,
    ArrivalStream,
    ScaleWorkloadSpec,
    SessionTable,
    observed_hotspot_frequencies,
    open_loop_arrivals,
    run_closed_loop,
    run_open_loop,
)
from repro.workload.sessions import GESTURES

SPEC = ScaleWorkloadSpec(num_users=400, session_length=6, seed=13)


@pytest.fixture(scope="module")
def table() -> SessionTable:
    return SessionTable.synthesize(SPEC)


# ---------------------------------------------------------------------------
# determinism


class TestDeterminism:
    def test_same_seed_same_digest(self, table):
        again = SessionTable.synthesize(SPEC)
        assert again.digest() == table.digest()

    def test_different_seed_different_digest(self, table):
        other = SessionTable.synthesize(SPEC.with_(seed=14))
        assert other.digest() != table.digest()

    def test_population_size_invariance(self, table):
        """User u's session depends only on (seed, u), not num_users."""
        bigger = SessionTable.synthesize(SPEC.with_(num_users=1000))
        assert np.array_equal(bigger.gestures[:400], table.gestures)
        assert np.array_equal(bigger.center_lat[:400], table.center_lat)
        assert np.array_equal(bigger.precision[:400], table.precision)
        assert np.array_equal(bigger.hotspot[:400], table.hotspot)

    def test_arrival_stream_deterministic(self, table):
        one = open_loop_arrivals(table, rate=50.0)
        two = open_loop_arrivals(table, rate=50.0)
        assert one.digest() == two.digest()
        assert open_loop_arrivals(table, rate=50.0, seed=99).digest() != one.digest()

    def test_cross_process_identical_streams(self, table):
        """Same seed => identical gesture AND arrival bytes in a fresh
        interpreter (the satellite's two-process determinism check)."""
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(repro.__file__)))
        program = (
            "from repro.workload.scale import ScaleWorkloadSpec, SessionTable, "
            "open_loop_arrivals\n"
            f"table = SessionTable.synthesize(ScaleWorkloadSpec("
            f"num_users={SPEC.num_users}, session_length={SPEC.session_length}, "
            f"seed={SPEC.seed}))\n"
            "print(table.digest())\n"
            "print(open_loop_arrivals(table, rate=50.0).digest())\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(src_root, "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        out = subprocess.run(
            [sys.executable, "-c", program],
            capture_output=True, text=True, timeout=120, env=env, check=True,
        )
        table_digest, arrival_digest = out.stdout.split()
        assert table_digest == table.digest()
        assert arrival_digest == open_loop_arrivals(table, rate=50.0).digest()


# ---------------------------------------------------------------------------
# spec validation


class TestSpecValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"num_users": 0},
            {"session_length": 0},
            {"num_hotspots": 0},
            {"hotspot_precision": 0},
            {"hotspot_precision": 7},
            {"zipf_s": 0.0},
            {"spatial_range": (0, 4)},
            {"spatial_range": (5, 4)},
            {"num_days": 0},
        ],
    )
    def test_bad_knob_raises(self, overrides):
        with pytest.raises(WorkloadError):
            SPEC.with_(**overrides).validated()

    def test_non_stochastic_matrix_raises(self):
        bad = tuple(
            tuple(0.5 for _ in GESTURES) for _ in GESTURES
        )
        with pytest.raises(WorkloadError, match="sum to 1"):
            SPEC.with_(transitions=bad).validated()

    def test_negative_probability_raises(self):
        matrix = [list(row) for row in DEFAULT_TRANSITIONS]
        matrix[0][0], matrix[0][1] = -0.1, matrix[0][1] + matrix[0][0] + 0.1
        with pytest.raises(WorkloadError, match="non-negative"):
            SPEC.with_(transitions=tuple(map(tuple, matrix))).validated()

    def test_oversized_viewport_raises(self):
        from repro.geo.bbox import BoundingBox

        small_domain = BoundingBox(30.0, 40.0, -110.0, -100.0)
        with pytest.raises(WorkloadError, match="exceeds domain"):
            SessionTable.synthesize(
                SPEC.with_(size=QuerySize.COUNTRY), domain=small_domain
            )


# ---------------------------------------------------------------------------
# the Markov navigation model


def _renormalized(matrix: np.ndarray) -> tuple:
    return tuple(tuple(row / row.sum()) for row in matrix)


class TestMarkovModel:
    def test_sessions_open_with_jump(self, table):
        assert (table.gestures[:, 0] == GESTURE_INDEX["jump"]).all()

    def test_gestures_stay_in_legal_set(self, table):
        assert table.gestures.max() < len(GESTURES)

    def test_every_query_kind_is_tagged(self, table):
        kinds = {table.query(u, s).kind for u in range(20) for s in range(6)}
        assert kinds <= set(GESTURE_KIND.values())

    def test_precision_stays_in_band(self, table):
        lo, hi = SPEC.spatial_range
        assert int(table.precision.min()) >= lo
        assert int(table.precision.max()) <= hi

    def test_viewports_stay_inside_domain(self, table):
        for user in range(0, 400, 37):
            for step in range(SPEC.session_length):
                box = table.query(user, step).bbox
                assert table.domain.south <= box.south < box.north <= table.domain.north
                assert table.domain.west <= box.west < box.east <= table.domain.east

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(0, 2**31 - 1),
        rows=st.lists(
            st.lists(
                st.floats(0.05, 1.0, allow_nan=False), min_size=len(GESTURES),
                max_size=len(GESTURES),
            ),
            min_size=len(GESTURES), max_size=len(GESTURES),
        ),
        forbidden=st.tuples(
            st.integers(0, len(GESTURES) - 1), st.integers(0, len(GESTURES) - 2)
        ),
    )
    def test_transitions_respect_the_matrix(self, seed, rows, forbidden):
        """Legal gestures only — and a zeroed transition never occurs."""
        matrix = np.asarray(rows, dtype=np.float64)
        row, col = forbidden
        matrix[row, col] = 0.0
        spec = SPEC.with_(
            num_users=150, seed=seed, transitions=_renormalized(matrix)
        )
        got = SessionTable.synthesize(spec)
        gestures = got.gestures
        assert gestures.max() < len(GESTURES)
        previous, current = gestures[:, :-1], gestures[:, 1:]
        assert not ((previous == row) & (current == col)).any()


# ---------------------------------------------------------------------------
# Zipf hotspot placement


class TestZipfHotspots:
    def test_hotspots_are_geohash_cells(self, table):
        assert len(table.hotspot_cells) == SPEC.num_hotspots
        assert all(
            len(cell) == SPEC.hotspot_precision for cell in table.hotspot_cells
        )

    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        zipf_s=st.floats(0.6, 2.0, allow_nan=False),
        num_hotspots=st.integers(4, 24),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_draws_respect_the_skew_exponent(self, zipf_s, num_hotspots, seed):
        """Empirical hotspot frequencies track 1/rank**s closely."""
        spec = ScaleWorkloadSpec(
            num_users=6000, session_length=1, seed=seed,
            zipf_s=zipf_s, num_hotspots=num_hotspots,
        )
        got = SessionTable.synthesize(spec)
        empirical = observed_hotspot_frequencies(got)
        theoretical = spec.zipf_weights()
        assert empirical.shape == theoretical.shape
        assert abs(float(empirical.sum()) - 1.0) < 1e-9
        # 6000 draws: binomial std of the head ranks is < 0.007, so a
        # 0.03 tolerance is ~4+ sigma while still catching a wrong
        # exponent (rank-1 weight moves by >0.1 across the s range).
        assert float(np.abs(empirical - theoretical).max()) < 0.03

    def test_skewier_exponent_concentrates_rank_one(self):
        flat = SessionTable.synthesize(
            SPEC.with_(num_users=4000, zipf_s=0.6)
        )
        steep = SessionTable.synthesize(
            SPEC.with_(num_users=4000, zipf_s=2.0)
        )
        assert (
            observed_hotspot_frequencies(steep)[0]
            > observed_hotspot_frequencies(flat)[0]
        )


# ---------------------------------------------------------------------------
# arrival streams and drivers


class TestOpenLoopArrivals:
    def test_sorted_and_complete(self, table):
        stream = open_loop_arrivals(table, rate=80.0)
        assert isinstance(stream, ArrivalStream)
        assert len(stream) == table.num_queries
        assert (np.diff(stream.times) >= 0).all()

    def test_per_user_gesture_order_preserved(self, table):
        stream = open_loop_arrivals(table, rate=80.0)
        for user in (0, 17, 399):
            steps = stream.steps[stream.users == user]
            assert list(steps) == sorted(steps)

    def test_aggregate_rate_roughly_honored(self, table):
        rate = 80.0
        stream = open_loop_arrivals(table, rate=rate)
        window = float(stream.times[-1])
        achieved = len(stream) / window
        assert 0.4 * rate < achieved < 2.5 * rate

    def test_nonpositive_rate_rejected(self, table):
        with pytest.raises(WorkloadError):
            open_loop_arrivals(table, rate=0.0)


class TestSimDrivers:
    @pytest.fixture(scope="class")
    def bench(self):
        from repro.bench.harness import (
            BenchScale, bench_config, bench_dataset, make_system,
        )

        scale = BenchScale.unit()
        return bench_dataset(scale), bench_config(scale), make_system

    def test_closed_loop_completes_every_gesture(self, bench):
        dataset, config, make_system = bench
        small = SessionTable.synthesize(
            ScaleWorkloadSpec(num_users=6, session_length=3, seed=5)
        )
        system = make_system("stash", dataset, config)
        results = run_closed_loop(system, small, think_time=0.25)
        assert len(results) == 18
        assert all(result.completeness == 1.0 for result in results)

    def test_closed_loop_user_subset(self, bench):
        dataset, config, make_system = bench
        small = SessionTable.synthesize(
            ScaleWorkloadSpec(num_users=6, session_length=3, seed=5)
        )
        system = make_system("stash", dataset, config)
        results = run_closed_loop(system, small, users=2, think_time=0.25)
        assert len(results) == 6

    def test_open_loop_completes_every_arrival(self, bench):
        dataset, config, make_system = bench
        small = SessionTable.synthesize(
            ScaleWorkloadSpec(num_users=5, session_length=3, seed=5)
        )
        system = make_system("stash", dataset, config)
        results = run_open_loop(system, small, rate=30.0)
        assert len(results) == 15

    def test_negative_think_time_rejected(self, bench):
        dataset, config, make_system = bench
        small = SessionTable.synthesize(
            ScaleWorkloadSpec(num_users=2, session_length=2, seed=5)
        )
        system = make_system("stash", dataset, config)
        with pytest.raises(WorkloadError):
            run_closed_loop(system, small, think_time=-1.0)

"""Tests for the multi-user session workload generator."""

import numpy as np
import pytest

from repro.data.generator import NAM_DOMAIN
from repro.errors import WorkloadError
from repro.geo.temporal import TimeKey
from repro.workload.sessions import (
    GestureWeights,
    interleaved_users,
    random_session,
)

DAYS = [TimeKey.of(2013, 2, d) for d in (1, 2, 3)]


@pytest.fixture()
def rng():
    return np.random.default_rng(23)


class TestGestureWeights:
    def test_normalized_sums_to_one(self):
        assert GestureWeights().normalized().sum() == pytest.approx(1.0)

    def test_rejects_negative(self):
        with pytest.raises(WorkloadError):
            GestureWeights(pan=-1.0).normalized()

    def test_rejects_all_zero(self):
        with pytest.raises(WorkloadError):
            GestureWeights(0, 0, 0, 0, 0, 0, 0).normalized()


class TestRandomSession:
    def test_length(self, rng):
        session = random_session(rng, NAM_DOMAIN, 20, DAYS)
        assert len(session) == 20

    def test_validation(self, rng):
        with pytest.raises(WorkloadError):
            random_session(rng, NAM_DOMAIN, 0, DAYS)
        with pytest.raises(WorkloadError):
            random_session(rng, NAM_DOMAIN, 5, [])
        with pytest.raises(WorkloadError):
            random_session(rng, NAM_DOMAIN, 5, DAYS, spatial_range=(4, 2))

    def test_resolutions_within_range(self, rng):
        session = random_session(rng, NAM_DOMAIN, 40, DAYS, spatial_range=(2, 4))
        for query in session:
            assert 2 <= query.resolution.spatial <= 4

    def test_days_from_pool(self, rng):
        session = random_session(rng, NAM_DOMAIN, 40, DAYS)
        allowed = {d.epoch_range().start for d in DAYS}
        for query in session:
            assert query.time_range.start in allowed

    def test_consecutive_queries_usually_related(self, rng):
        """Most gestures keep locality: high overlap or same box."""
        session = random_session(rng, NAM_DOMAIN, 60, DAYS)
        related = 0
        for a, b in zip(session, session[1:]):
            if a.bbox.intersects(b.bbox):
                related += 1
        assert related / (len(session) - 1) > 0.6

    def test_reproducible(self):
        a = random_session(np.random.default_rng(9), NAM_DOMAIN, 15, DAYS)
        b = random_session(np.random.default_rng(9), NAM_DOMAIN, 15, DAYS)
        assert [q.bbox for q in a] == [q.bbox for q in b]

    def test_pan_only_weights(self, rng):
        weights = GestureWeights(1, 0, 0, 0, 0, 0, 0)
        session = random_session(rng, NAM_DOMAIN, 10, DAYS, weights=weights)
        # Pans preserve the box extent.
        heights = {round(q.bbox.height, 6) for q in session}
        assert len(heights) == 1


class TestInterleaving:
    def test_total_count(self, rng):
        stream = interleaved_users(rng, NAM_DOMAIN, 4, 10, DAYS)
        assert len(stream) == 40

    def test_per_user_order_preserved(self, rng):
        # With one user, the stream is just that session.
        solo = interleaved_users(np.random.default_rng(3), NAM_DOMAIN, 1, 12, DAYS)
        session = random_session(np.random.default_rng(3), NAM_DOMAIN, 12, DAYS)
        assert [q.bbox for q in solo] == [q.bbox for q in session]

    def test_needs_users(self, rng):
        with pytest.raises(WorkloadError):
            interleaved_users(rng, NAM_DOMAIN, 0, 5, DAYS)


class TestEndToEnd:
    def test_session_stream_runs_on_stash(self, rng):
        from repro.config import ClusterConfig, StashConfig
        from repro.core.cluster import StashCluster
        from repro.data.generator import small_test_dataset

        dataset = small_test_dataset(num_records=5_000)
        cluster = StashCluster(
            dataset, StashConfig(cluster=ClusterConfig(num_nodes=4))
        )
        stream = interleaved_users(
            rng, NAM_DOMAIN, 3, 6, DAYS, spatial_range=(2, 3)
        )
        results = cluster.run_serial(stream)
        cluster.drain()
        assert len(results) == 18
        counts = cluster.counters_total()
        # Locality in the stream produces real cache traffic.
        assert counts.get("cells_served_from_cache", 0) > 0
        from repro.audit import audit_cluster

        audit_cluster(cluster, value_sample=8)

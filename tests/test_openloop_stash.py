"""Open-loop arrivals against STASH: warm caches absorb overload."""

import pytest

from repro.config import ClusterConfig, StashConfig
from repro.core.cluster import StashCluster
from repro.data.generator import small_test_dataset
from repro.geo.bbox import BoundingBox
from repro.geo.resolution import Resolution
from repro.geo.temporal import TemporalResolution, TimeKey
from repro.query.model import AggregationQuery


@pytest.fixture(scope="module")
def dataset():
    return small_test_dataset(num_records=6_000)


def queries(n):
    base = AggregationQuery(
        bbox=BoundingBox(33, 37, -108, -100),
        time_range=TimeKey.of(2013, 2, 2).epoch_range(),
        resolution=Resolution(3, TemporalResolution.DAY),
    )
    return [base.panned(0.02 * (i % 5), 0.02 * (i % 5)) for i in range(n)]


class TestOpenLoopStash:
    def test_warm_cache_absorbs_burst(self, dataset):
        config = StashConfig(cluster=ClusterConfig(num_nodes=4))
        stream = queries(40)

        cold = StashCluster(dataset, config)
        cold.run_open_loop([q.panned(0, 0) for q in stream], rate=2_000.0, seed=4)
        cold_mean = cold.latencies.mean()

        warm = StashCluster(dataset, config)
        warm.warm([q.panned(0, 0) for q in stream[:5]])
        warm.latencies._values.clear()
        warm.run_open_loop([q.panned(0, 0) for q in stream], rate=2_000.0, seed=4)
        warm_mean = warm.latencies.mean()

        # A warm cache keeps service times tiny, so the same burst builds
        # far less queueing delay.
        assert warm_mean < cold_mean * 0.5

    def test_results_correct_under_overload(self, dataset):
        from repro.storage.backend import ground_truth_cells

        config = StashConfig(cluster=ClusterConfig(num_nodes=4, workers_per_node=1))
        cluster = StashCluster(dataset, config)
        stream = queries(20)
        results = cluster.run_open_loop(stream, rate=10_000.0, seed=5)
        for result in results[:5]:
            truth = ground_truth_cells(dataset, result.query)
            assert set(result.cells) == set(truth)

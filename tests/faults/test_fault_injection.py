"""Fault injection end-to-end: crash, recovery, degradation, determinism."""

import pytest

from repro.config import ClusterConfig, FaultConfig, StashConfig
from repro.core.cluster import StashCluster
from repro.data.generator import small_test_dataset
from repro.errors import FaultError
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.geo.bbox import BoundingBox
from repro.geo.resolution import Resolution
from repro.geo.temporal import TemporalResolution, TimeKey
from repro.query.model import AggregationQuery

#: Fast-recovery knobs so detect/declare/reroute fits in test time.
FAST_FAULTS = dict(
    rpc_timeout=0.2,
    evaluate_timeout=1.0,
    max_retries=1,
    backoff_base=0.05,
)


@pytest.fixture(scope="module")
def dataset():
    return small_test_dataset(num_records=6_000)


def base_query(i: int = 0) -> AggregationQuery:
    return AggregationQuery(
        bbox=BoundingBox(33, 37, -108, -100),
        time_range=TimeKey.of(2013, 2, 2).epoch_range(),
        resolution=Resolution(3, TemporalResolution.DAY),
    ).panned(0.02 * (i % 5), 0.02 * (i % 5))


def cluster(dataset, faults: FaultConfig | None = None, nodes: int = 4):
    config = StashConfig(
        cluster=ClusterConfig(num_nodes=nodes),
        faults=faults if faults is not None else FaultConfig(),
    )
    return StashCluster(dataset, config)


def bare_network():
    from repro.config import CostModel
    from repro.sim.engine import Simulator
    from repro.sim.network import Network

    sim = Simulator()
    network = Network(sim, CostModel())
    network.register("node-0")
    network.register("node-1")
    return sim, network


class TestNetworkFaultHooks:
    def test_down_node_drops_both_directions(self):
        sim, network = bare_network()
        network.set_down("node-1")
        network.send("node-0", "node-1", "ping", {}, size=10)
        network.send("node-1", "node-0", "ping", {}, size=10)
        sim.run()
        assert network.messages_dropped == 2
        assert len(network.inbox("node-1")) == 0
        assert len(network.inbox("node-0")) == 0
        network.set_down("node-1", False)
        network.send("node-0", "node-1", "ping", {}, size=10)
        sim.run()
        assert network.messages_dropped == 2
        assert len(network.inbox("node-1")) == 1

    def test_drop_rule_window(self):
        sim, network = bare_network()
        network.add_drop_rule(5.0, 10.0, src="node-0", dst="node-1")
        # Outside the window: delivered.
        network.send("node-0", "node-1", "ping", {}, size=10)
        assert network.messages_dropped == 0
        sim.run(until=sim.timeout(6.0))
        # Inside: dropped, and only for the matching direction.
        network.send("node-0", "node-1", "ping", {}, size=10)
        network.send("node-1", "node-0", "ping", {}, size=10)
        sim.run()
        assert network.messages_dropped == 1
        assert len(network.inbox("node-0")) == 1
        assert len(network.inbox("node-1")) == 1

    def test_delay_rule_adds_latency(self, dataset):
        fast = cluster(dataset)
        result_fast = fast.run_query(base_query())
        slow = cluster(dataset)
        slow.start()
        slow.network.add_delay_rule(0.0, 1e9, extra=0.05)
        result_slow = slow.run_query(base_query())
        assert result_slow.latency > result_fast.latency + 0.05
        assert result_slow.matches(result_fast)


class TestInjectorValidation:
    def test_unknown_node_rejected(self, dataset):
        system = cluster(dataset)
        system.start()
        injector = FaultInjector(
            system, FaultSchedule((FaultEvent(kind="crash", at=1.0, node="node-9"),))
        )
        with pytest.raises(FaultError, match="unknown node"):
            injector.install()

    def test_past_fault_rejected(self, dataset):
        system = cluster(dataset)
        system.start()
        system.sim.run(until=system.sim.timeout(5.0))
        injector = FaultInjector(
            system, FaultSchedule((FaultEvent(kind="crash", at=1.0, node="node-0"),))
        )
        with pytest.raises(FaultError, match="before the current sim time"):
            injector.install()


class TestCrashRecovery:
    def test_queries_survive_crash_and_restart(self, dataset):
        queries = [base_query(i) for i in range(30)]
        probe = cluster(dataset)
        target = probe.coordinator_for(queries[0])

        faults = FaultConfig(
            enabled=True,
            schedule=tuple(FaultSchedule.crash_restart(target, 0.5, 3.0)),
            **FAST_FAULTS,
        )
        system = cluster(dataset, faults)
        results = system.run_open_loop(queries, rate=5.0, seed=7)
        system.drain()

        # Hard acceptance: nothing hangs, every query gets an answer.
        assert len(results) == len(queries)
        # The crash really happened and peers failed over.
        assert system.fault_counters.get("node_crashes") == 1
        assert system.fault_counters.get("node_restarts") == 1
        assert system.network.messages_dropped > 0
        assert system.membership.failovers >= 1
        # After the restart the membership healed.
        assert system.membership.live_nodes() == system.node_ids
        # Degraded answers are explicit, never fabricated.
        for result in results:
            assert 0.0 <= result.completeness <= 1.0
            if result.degraded:
                assert result.completeness < 1.0

    def test_crash_wipes_volatile_state(self, dataset):
        system = cluster(dataset)
        query = base_query()
        system.run_query(query)
        system.drain()
        target = system.coordinator_for(query)
        node = system.nodes[target]
        assert len(node.graph) > 0
        node.crash()
        assert len(node.graph) == 0
        assert len(node.guest) == 0
        assert node.counters.get("crashes") == 1

    def test_degraded_answer_when_owner_stays_dead(self, dataset):
        query = base_query()
        probe = cluster(dataset)
        target = probe.coordinator_for(query)
        # Crash the hot coordinator at t=0 and never restart it.
        faults = FaultConfig(
            enabled=True,
            schedule=(FaultEvent(kind="crash", at=0.0, node=target),),
            **FAST_FAULTS,
        )
        system = cluster(dataset, faults)
        result = system.run_query(query)
        system.drain()
        # The client failed over to a live coordinator; blocks homed on
        # the dead node are unreachable, so the answer is partial and
        # says so.
        assert not system.membership.is_live(target)
        assert result.degraded
        assert 0.0 <= result.completeness < 1.0
        assert result.provenance.get("cells_unresolved", 0) > 0

    def test_slow_disk_window(self, dataset):
        query = base_query()
        healthy = cluster(dataset)
        baseline = healthy.run_query(query)
        schedule = (
            FaultEvent(
                kind="slow_disk", at=0.0, until=1e6, node=n, factor=50.0
            )
            for n in [f"node-{i}" for i in range(4)]
        )
        system = cluster(dataset, FaultConfig(schedule=tuple(schedule)))
        slowed = system.run_query(query)
        assert slowed.latency > baseline.latency
        assert slowed.matches(baseline)


class TestDeterminism:
    def test_inactive_layer_changes_nothing(self, dataset):
        """enabled=False + empty schedule == the pre-fault-layer system."""
        queries = [base_query(i) for i in range(10)]
        runs = []
        for _ in range(2):
            system = cluster(dataset)
            results = system.run_open_loop(
                [q.panned(0, 0) for q in queries], rate=50.0, seed=3
            )
            system.drain()
            runs.append(results)
        for a, b in zip(*runs):
            assert a.latency == b.latency
            assert a.provenance == b.provenance
            assert set(a.cells) == set(b.cells)
            assert a.completeness == 1.0

    def test_idle_fault_machinery_preserves_results(self, dataset):
        """enabled=True with no faults: same answers, nothing degraded."""
        queries = [base_query(i) for i in range(10)]
        plain = cluster(dataset)
        plain_results = plain.run_serial([q.panned(0, 0) for q in queries])
        armed = cluster(dataset, FaultConfig(enabled=True, **FAST_FAULTS))
        armed_results = armed.run_serial([q.panned(0, 0) for q in queries])
        for a, b in zip(plain_results, armed_results):
            assert b.matches(a)
            assert b.completeness == 1.0
        assert armed.fault_counters.get("client_timeouts") == 0
        assert armed.membership.failovers == 0

"""FaultEvent / FaultSchedule validation and serialization."""

import pytest

from repro.errors import FaultError
from repro.faults.schedule import FaultEvent, FaultSchedule


class TestFaultEvent:
    def test_valid_crash(self):
        event = FaultEvent(kind="crash", at=1.0, node="node-0")
        assert event.kind == "crash"

    def test_unknown_kind(self):
        with pytest.raises(FaultError, match="unknown fault kind"):
            FaultEvent(kind="meteor", at=1.0, node="node-0")

    def test_negative_time(self):
        with pytest.raises(FaultError, match=">= 0"):
            FaultEvent(kind="crash", at=-0.5, node="node-0")

    def test_crash_needs_node(self):
        with pytest.raises(FaultError, match="needs a node"):
            FaultEvent(kind="crash", at=1.0)

    def test_window_needs_until(self):
        with pytest.raises(FaultError, match="until > at"):
            FaultEvent(kind="slow_disk", at=2.0, node="node-0")
        with pytest.raises(FaultError, match="until > at"):
            FaultEvent(kind="drop_link", at=2.0, until=2.0)

    def test_slow_disk_factor_positive(self):
        with pytest.raises(FaultError, match="factor"):
            FaultEvent(kind="slow_disk", at=1.0, until=2.0, node="n", factor=0.0)

    def test_delay_link_extra_positive(self):
        with pytest.raises(FaultError, match="extra"):
            FaultEvent(kind="delay_link", at=1.0, until=2.0, extra=0.0)

    def test_to_dict_omits_defaults(self):
        event = FaultEvent(kind="crash", at=1.0, node="node-0")
        assert event.to_dict() == {"kind": "crash", "at": 1.0, "node": "node-0"}


class TestFaultSchedule:
    def test_sorted_by_time(self):
        schedule = FaultSchedule(
            (
                FaultEvent(kind="restart", at=5.0, node="node-0"),
                FaultEvent(kind="crash", at=1.0, node="node-0"),
            )
        )
        assert [e.at for e in schedule] == [1.0, 5.0]

    def test_double_crash_rejected(self):
        with pytest.raises(FaultError, match="crashed twice"):
            FaultSchedule(
                (
                    FaultEvent(kind="crash", at=1.0, node="node-0"),
                    FaultEvent(kind="crash", at=2.0, node="node-0"),
                )
            )

    def test_restart_without_crash_rejected(self):
        with pytest.raises(FaultError, match="without a preceding crash"):
            FaultSchedule((FaultEvent(kind="restart", at=1.0, node="node-0"),))

    def test_crash_without_restart_allowed(self):
        schedule = FaultSchedule((FaultEvent(kind="crash", at=1.0, node="node-0"),))
        assert len(schedule) == 1

    def test_nodes(self):
        schedule = FaultSchedule(
            (
                FaultEvent(kind="crash", at=1.0, node="node-1"),
                FaultEvent(kind="drop_link", at=0.0, until=9.0, src="node-2"),
            )
        )
        assert set(schedule.nodes()) == {"node-1", "node-2"}

    def test_json_round_trip_exact(self):
        schedule = FaultSchedule(
            (
                FaultEvent(kind="crash", at=1.0, node="node-0"),
                FaultEvent(kind="restart", at=5.0, node="node-0"),
                FaultEvent(kind="slow_disk", at=2.0, until=4.0, node="node-1", factor=3.0),
                FaultEvent(kind="delay_link", at=0.0, until=9.0, extra=0.1),
            )
        )
        text = schedule.to_json()
        again = FaultSchedule.from_json(text)
        assert again.events == schedule.events
        assert again.to_json() == text

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(FaultError, match="unknown fields"):
            FaultSchedule.from_dict(
                {"events": [{"kind": "crash", "at": 1.0, "node": "n", "blast": 9}]}
            )

    def test_from_json_rejects_garbage(self):
        with pytest.raises(FaultError, match="invalid fault schedule JSON"):
            FaultSchedule.from_json("{nope")
        with pytest.raises(FaultError, match="events"):
            FaultSchedule.from_json("[1, 2]")

    def test_crash_restart_builder(self):
        schedule = FaultSchedule.crash_restart("node-3", 2.0, 7.0)
        assert [e.kind for e in schedule] == ["crash", "restart"]
        assert schedule.nodes() == ["node-3"]
        with pytest.raises(FaultError, match="after"):
            FaultSchedule.crash_restart("node-3", 7.0, 2.0)

    def test_load(self, tmp_path):
        path = tmp_path / "faults.json"
        path.write_text(FaultSchedule.crash_restart("n", 1.0, 2.0).to_json())
        assert len(FaultSchedule.load(str(path))) == 2

"""Retry backoff: exponential schedule with optional jitter."""

import numpy as np

from repro.config import FaultConfig


class TestBackoffDelay:
    def test_zero_jitter_is_exact_and_consumes_no_randomness(self):
        faults = FaultConfig(backoff_base=0.1, backoff_multiplier=2.0)
        rng = np.random.default_rng(7)
        state_before = rng.bit_generator.state
        for attempt in range(4):
            assert faults.backoff_delay(attempt, rng) == 0.1 * 2.0**attempt
        # jitter=0 must not draw from the stream: determinism of other
        # consumers of a shared rng is preserved.
        assert rng.bit_generator.state == state_before

    def test_no_rng_falls_back_to_nominal(self):
        faults = FaultConfig(backoff_base=0.2, backoff_jitter=0.5)
        assert faults.backoff_delay(1) == 0.2 * faults.backoff_multiplier

    def test_jitter_stays_within_band(self):
        faults = FaultConfig(
            backoff_base=0.1, backoff_multiplier=2.0, backoff_jitter=0.25
        )
        rng = np.random.default_rng(123)
        for attempt in range(3):
            nominal = 0.1 * 2.0**attempt
            for _ in range(200):
                delay = faults.backoff_delay(attempt, rng)
                assert nominal * 0.75 <= delay <= nominal * 1.25

    def test_jitter_is_deterministic_per_seed(self):
        faults = FaultConfig(backoff_base=0.1, backoff_jitter=0.3)
        a = [faults.backoff_delay(i, np.random.default_rng(42)) for i in range(5)]
        b = [faults.backoff_delay(i, np.random.default_rng(42)) for i in range(5)]
        assert a == b

    def test_jitter_actually_spreads_delays(self):
        faults = FaultConfig(backoff_base=0.1, backoff_jitter=0.3)
        rng = np.random.default_rng(9)
        delays = {faults.backoff_delay(0, rng) for _ in range(32)}
        assert len(delays) > 1

"""ClusterMembership: shared liveness view + DHT ring repair."""

import pytest

from repro.dht.partitioner import ConsistentHashPartitioner, PrefixPartitioner
from repro.errors import FaultError, StorageError
from repro.faults.membership import RPC_FAILED, RPC_SHED, ClusterMembership, rpc_ok

NODES = [f"node-{i}" for i in range(4)]
HASHES = ["9q8y", "dr5r", "c2b2", "u4pr", "9z6m", "gcpv"]


def make_membership(partitioner_cls=PrefixPartitioner):
    return ClusterMembership(partitioner_cls(NODES, 2))


class TestRpcSentinels:
    def test_truth_testing_raises(self):
        # A failed reply must never be confused with an empty-but-valid
        # one; truth-testing the sentinel is a bug and raises loudly.
        with pytest.raises(TypeError, match="no truth value"):
            bool(RPC_FAILED)
        with pytest.raises(TypeError, match="no truth value"):
            bool(RPC_SHED)
        with pytest.raises(TypeError, match="no truth value"):
            if RPC_FAILED:  # pragma: no cover - the test is the raise
                pass

    def test_repr_and_identity(self):
        assert repr(RPC_FAILED) == "RPC_FAILED"
        assert repr(RPC_SHED) == "RPC_SHED"
        assert RPC_FAILED is not RPC_SHED

    def test_rpc_ok(self):
        assert not rpc_ok(RPC_FAILED)
        assert not rpc_ok(RPC_SHED)
        assert rpc_ok({})
        assert rpc_ok(None)
        assert rpc_ok(0)


class TestMembership:
    def test_initially_all_live(self):
        membership = make_membership()
        assert membership.live_nodes() == NODES
        assert membership.dead_nodes() == []
        assert all(membership.is_live(n) for n in NODES)

    def test_view_matches_base_before_any_death(self):
        membership = make_membership()
        base = PrefixPartitioner(NODES, 2)
        for code in HASHES:
            assert membership.node_for(code) == base.node_for(code)

    def test_declare_dead_reroutes(self):
        membership = make_membership()
        assert membership.declare_dead("node-1")
        assert not membership.is_live("node-1")
        assert membership.dead_nodes() == ["node-1"]
        assert membership.failovers == 1
        for code in HASHES:
            assert membership.node_for(code) != "node-1"

    def test_declare_dead_idempotent(self):
        membership = make_membership()
        assert membership.declare_dead("node-1")
        assert not membership.declare_dead("node-1")
        assert membership.failovers == 1

    def test_unknown_node_rejected(self):
        membership = make_membership()
        with pytest.raises(FaultError, match="unknown node"):
            membership.declare_dead("node-99")

    def test_last_live_node_protected(self):
        membership = make_membership()
        for node in NODES[:-1]:
            membership.declare_dead(node)
        with pytest.raises(FaultError, match="last live node"):
            membership.declare_dead(NODES[-1])

    def test_revive_restores_base_mapping(self):
        membership = make_membership()
        base = PrefixPartitioner(NODES, 2)
        membership.declare_dead("node-2")
        assert membership.revive("node-2")
        assert membership.live_nodes() == NODES
        for code in HASHES:
            assert membership.node_for(code) == base.node_for(code)

    def test_revive_of_live_node_is_noop(self):
        membership = make_membership()
        assert not membership.revive("node-0")

    def test_revive_with_another_node_still_dead(self):
        # Regression: reviving one node while a second is still dead must
        # rebuild the view from the *full* remaining dead set, not undo
        # only the revived node's removal (order-dependent repair bug).
        membership = make_membership()
        membership.declare_dead("node-1")
        membership.declare_dead("node-2")
        assert membership.revive("node-1")
        assert membership.dead_nodes() == ["node-2"]
        expected = PrefixPartitioner(NODES, 2).without_node("node-2")
        for code in HASHES:
            assert membership.node_for(code) == expected.node_for(code)
            assert membership.node_for(code) != "node-2"

    def test_revive_order_independent(self):
        # Kill A then B, revive in both orders: views must agree at every
        # intermediate step with a membership that saw the same dead set.
        base = PrefixPartitioner(NODES, 2)
        first = make_membership()
        second = make_membership()
        for m in (first, second):
            m.declare_dead("node-0")
            m.declare_dead("node-3")
        first.revive("node-0")
        second.revive("node-3")
        second.revive("node-0")
        second.declare_dead("node-3")
        for code in HASHES:
            assert first.node_for(code) == second.node_for(code)
        first.revive("node-3")
        second.revive("node-3")
        for code in HASHES:
            assert first.node_for(code) == base.node_for(code)
            assert second.node_for(code) == base.node_for(code)

    def test_consistent_hash_ring_repair_is_minimal(self):
        membership = make_membership(ConsistentHashPartitioner)
        base = ConsistentHashPartitioner(NODES, 2)
        before = {code: base.node_for(code) for code in HASHES}
        membership.declare_dead("node-3")
        for code, owner in before.items():
            # Keys owned by survivors keep their owner; only node-3's
            # keys move (consistent hashing's minimal-disruption repair).
            if owner != "node-3":
                assert membership.node_for(code) == owner
            else:
                assert membership.node_for(code) != "node-3"


class TestWithoutNode:
    def test_prefix_partitioner_without_node(self):
        part = PrefixPartitioner(NODES, 2)
        smaller = part.without_node("node-2")
        assert smaller.node_ids == [n for n in NODES if n != "node-2"]
        assert type(smaller) is PrefixPartitioner
        for code in HASHES:
            assert smaller.node_for(code) != "node-2"

    def test_without_unknown_node(self):
        part = PrefixPartitioner(NODES, 2)
        with pytest.raises(StorageError, match="unknown node"):
            part.without_node("node-99")

"""Overload protection: admission shedding and the circuit breaker."""

import pytest

from repro.config import (
    ClusterConfig,
    FaultConfig,
    OverloadConfig,
    StashConfig,
)
from repro.core.cluster import StashCluster
from repro.data.generator import small_test_dataset
from repro.faults.overload import SHED_PRIORITY, OverloadGuard
from repro.geo.bbox import BoundingBox
from repro.geo.resolution import Resolution
from repro.geo.temporal import TemporalResolution, TimeKey
from repro.query.model import AggregationQuery


@pytest.fixture(scope="module")
def dataset():
    return small_test_dataset(num_records=6_000)


def base_query(i: int = 0) -> AggregationQuery:
    return AggregationQuery(
        bbox=BoundingBox(33, 37, -108, -100),
        time_range=TimeKey.of(2013, 2, 2).epoch_range(),
        resolution=Resolution(3, TemporalResolution.DAY),
    ).panned(0.02 * (i % 5), 0.02 * (i % 5))


class TestOverloadGuard:
    def test_shed_thresholds_by_priority(self):
        guard = OverloadGuard(OverloadConfig(queue_limit=10))
        # Priority 0 (background) sheds above queue_limit.
        assert not guard.shed_class("populate", 10)
        assert guard.shed_class("populate", 11)
        assert guard.shed_class("replicate", 11)
        assert guard.shed_class("distress", 11)
        # Priority 1 (cache reads) sheds above twice the limit.
        assert not guard.shed_class("fetch_cells", 20)
        assert guard.shed_class("fetch_cells", 21)
        assert guard.shed_class("scan", 21)

    def test_evaluate_never_shed(self):
        guard = OverloadGuard(OverloadConfig(queue_limit=1))
        assert not guard.shed_class("evaluate", 10_000)
        assert not guard.shed_class("gossip", 10_000)
        assert "evaluate" not in SHED_PRIORITY

    def test_breaker_trips_after_sustained_shedding(self):
        guard = OverloadGuard(
            OverloadConfig(
                breaker_sheds=3, breaker_window=1.0, breaker_cooldown=2.0
            )
        )
        assert not guard.breaker_open(0.0)
        guard.record_shed(0.0)
        guard.record_shed(0.1)
        assert not guard.breaker_open(0.1)
        guard.record_shed(0.2)
        assert guard.breaker_open(0.2)
        assert guard.breaker_opens == 1
        # Open until now + cooldown.
        assert guard.breaker_open(2.1)
        assert not guard.breaker_open(2.3)

    def test_sheds_outside_window_do_not_trip(self):
        guard = OverloadGuard(
            OverloadConfig(breaker_sheds=3, breaker_window=0.5)
        )
        guard.record_shed(0.0)
        guard.record_shed(1.0)
        guard.record_shed(2.0)
        assert not guard.breaker_open(2.0)
        assert guard.shed_total == 3
        assert guard.breaker_opens == 0


class TestOverloadIntegration:
    def overloaded_cluster(self, dataset, queue_limit=2):
        config = StashConfig(
            cluster=ClusterConfig(num_nodes=4),
            faults=FaultConfig(enabled=True, rpc_timeout=0.5, max_retries=1),
            overload=OverloadConfig(
                enabled=True,
                queue_limit=queue_limit,
                breaker_sheds=4,
                breaker_window=2.0,
                breaker_cooldown=1.0,
            ),
        )
        return StashCluster(dataset, config)

    def test_flood_sheds_but_answers_stay_honest(self, dataset):
        system = self.overloaded_cluster(dataset)
        queries = [base_query(i) for i in range(40)]
        results = system.run_open_loop(queries, rate=400.0, seed=5)
        system.drain()
        assert len(results) == len(queries)
        counters = system.counters_total()
        assert counters.get("requests_shed", 0) > 0
        for result in results:
            # Degradation is explicit; completeness is never fabricated.
            assert 0.0 <= result.completeness <= 1.0
        # Telemetry gauges see the shedding.
        assert sum(
            n.overload.shed_total for n in system.nodes.values()
        ) == counters.get("requests_shed", 0)

    def test_disabled_overload_changes_nothing(self, dataset):
        plain = StashCluster(
            dataset, StashConfig(cluster=ClusterConfig(num_nodes=4))
        )
        guarded = StashCluster(
            dataset,
            StashConfig(
                cluster=ClusterConfig(num_nodes=4),
                overload=OverloadConfig(enabled=False),
            ),
        )
        queries = [base_query(i) for i in range(10)]
        a = plain.run_open_loop(queries, rate=50.0, seed=3)
        b = guarded.run_open_loop(queries, rate=50.0, seed=3)
        plain.drain()
        guarded.drain()
        for x, y in zip(a, b):
            assert x.latency == y.latency
            assert x.matches(y)

"""Gossip membership end-to-end: identity, convergence, repair, handoff."""

import pytest

from repro.config import (
    ClusterConfig,
    FaultConfig,
    GossipConfig,
    StashConfig,
)
from repro.core.cluster import StashCluster
from repro.data.generator import small_test_dataset
from repro.faults.schedule import FaultSchedule
from repro.geo.bbox import BoundingBox
from repro.geo.resolution import Resolution
from repro.geo.temporal import TemporalResolution, TimeKey
from repro.query.model import AggregationQuery

#: Tight timings so detect -> suspect -> dead -> repair fits test time.
FAST_GOSSIP = GossipConfig(
    enabled=True,
    interval=0.05,
    fanout=2,
    suspect_after=0.2,
    dead_after=0.2,
)
FAST_FAULTS = FaultConfig(
    enabled=True,
    rpc_timeout=0.2,
    evaluate_timeout=1.0,
    max_retries=1,
    backoff_base=0.05,
)


@pytest.fixture(scope="module")
def dataset():
    return small_test_dataset(num_records=6_000)


def base_query(i: int = 0) -> AggregationQuery:
    return AggregationQuery(
        bbox=BoundingBox(33, 37, -108, -100),
        time_range=TimeKey.of(2013, 2, 2).epoch_range(),
        resolution=Resolution(3, TemporalResolution.DAY),
    ).panned(0.02 * (i % 5), 0.02 * (i % 5))


def cluster(dataset, gossip=None, faults=None, schedule=None, nodes=4):
    if schedule is not None:
        faults = FaultConfig(
            enabled=True,
            schedule=tuple(schedule),
            rpc_timeout=0.2,
            evaluate_timeout=1.0,
            max_retries=1,
            backoff_base=0.05,
        )
    config = StashConfig(
        cluster=ClusterConfig(num_nodes=nodes),
        gossip=gossip if gossip is not None else GossipConfig(),
        faults=faults if faults is not None else FaultConfig(),
    )
    return StashCluster(dataset, config)


class TestByteIdentity:
    def test_gossip_without_faults_is_invisible(self, dataset):
        """Gossip on + empty schedule == shared-membership baseline.

        Gossip traffic rides dedicated ``gossip:*`` endpoints and daemon
        timers, so query results, latencies, and provenance must be
        byte-identical to a run with the layer off.
        """
        queries = [base_query(i) for i in range(12)]
        plain = cluster(dataset)
        with_gossip = cluster(dataset, gossip=FAST_GOSSIP)
        a = plain.run_open_loop(queries, rate=20.0, seed=11)
        b = with_gossip.run_open_loop(queries, rate=20.0, seed=11)
        plain.drain()
        with_gossip.drain()
        assert len(a) == len(b) == len(queries)
        for x, y in zip(a, b):
            assert x.latency == y.latency
            assert x.provenance == y.provenance
            assert x.cells.keys() == y.cells.keys()
            for key in x.cells:
                assert x.cells[key] == y.cells[key]
            assert y.completeness == 1.0
        # Gossip actually ran — it just didn't perturb anything.
        assert sum(a.rounds for a in with_gossip.gossip_agents.values()) > 0

    def test_gossip_run_is_deterministic(self, dataset):
        queries = [base_query(i) for i in range(8)]
        runs = []
        for _ in range(2):
            system = cluster(dataset, gossip=FAST_GOSSIP)
            results = system.run_open_loop(queries, rate=20.0, seed=4)
            system.drain()
            runs.append(results)
        for x, y in zip(*runs):
            assert x.latency == y.latency
            assert x.provenance == y.provenance


class TestConvergence:
    def test_views_converge_on_crash_and_rejoin(self, dataset):
        from repro.faults.gossip import view_divergence

        target = "node-1"
        schedule = FaultSchedule.crash_restart(target, 0.5, 2.5)
        system = cluster(dataset, gossip=FAST_GOSSIP, schedule=schedule)
        system.start()
        # Let gossip converge on the death (crash at 0.5, detect by
        # aging ~0.4s later, spread in O(log n) rounds).
        system.sim.run(until=system.sim.timeout(2.0))
        views = [system.memberships[n] for n in system.node_ids]
        survivors = [v for v in views if v.owner_id != target]
        for view in survivors:
            assert not view.is_live(target), view.owner_id
        assert view_divergence(survivors) == 0
        # After the restart the rejoin spreads the same way.
        system.sim.run(until=system.sim.timeout(2.5))
        for view in views:
            assert view.is_live(target), view.owner_id
        assert view_divergence(views) == 0
        assert system.membership.is_live(target)  # client's view too

    def test_queries_survive_churn_under_gossip(self, dataset):
        queries = [base_query(i) for i in range(30)]
        probe = cluster(dataset)
        target = probe.coordinator_for(queries[0])
        schedule = FaultSchedule.crash_restart(target, 0.5, 3.0)
        system = cluster(dataset, gossip=FAST_GOSSIP, schedule=schedule)
        results = system.run_open_loop(queries, rate=5.0, seed=7)
        system.drain()
        assert len(results) == len(queries)
        assert system.fault_counters.get("node_crashes") == 1
        assert system.fault_counters.get("node_restarts") == 1
        for result in results:
            assert 0.0 <= result.completeness <= 1.0
            if result.degraded:
                assert result.completeness < 1.0
        # Every view healed.
        for view in system.memberships.values():
            assert view.is_live(target)


class TestRepairAndHandoff:
    def warmed_system(self, dataset, gossip):
        system = cluster(dataset, gossip=gossip, faults=FAST_FAULTS)
        system.start()
        # Heat caches (and replicas) with a serial pass.
        for i in range(10):
            system.run_query(base_query(i))
        system.drain()
        return system

    def test_handoff_streams_cells_back_after_rejoin(self, dataset):
        queries = [base_query(i) for i in range(24)]
        probe = cluster(dataset)
        target = probe.coordinator_for(queries[0])
        schedule = FaultSchedule.crash_restart(target, 0.5, 2.5)
        system = cluster(dataset, gossip=FAST_GOSSIP, schedule=schedule)
        system.run_open_loop(queries, rate=8.0, seed=7)
        system.drain()
        # Keep the sim alive past rejoin + handoff.
        system.sim.run(until=system.sim.timeout(2.0))
        counters = system.counters_total()
        assert counters.get("handoff_cells_received", 0) > 0
        # Every node's PLM stayed consistent through absorb/remove.
        for node in system.nodes.values():
            node.graph.plm.check_consistency()
            node.guest.plm.check_consistency()

    def test_guest_cells_promoted_when_survivor_owns_range(self, dataset):
        """With two nodes, the survivor owns everything the dead peer did,
        so every guest replica of the peer's range must be *promoted*."""
        system = cluster(dataset, gossip=FAST_GOSSIP, faults=FAST_FAULTS, nodes=2)
        system.start()
        for i in range(6):
            system.run_query(base_query(i))
        system.drain()
        dead = "node-1"
        survivor = system.nodes["node-0"]
        # Manufacture guest replicas on the survivor: copies of cells the
        # doomed peer owns (what dynamic replication would have seeded).
        donors = [c for c in system.nodes[dead].graph.cells()][:4]
        assert donors, "warm-up cached nothing on the doomed node"
        for cell in donors:
            blocks = system.nodes[dead].graph.plm.blocks_of(
                system.nodes[dead].graph.level_of(cell.key), cell.key
            )
            survivor.guest.upsert(cell, blocks)
        before = len(survivor.graph)
        # Actually take the peer down (injector-style) — merely rumoring
        # its death would be refuted and the promotion handed back.
        system.network.set_down(dead, True)
        system.nodes[dead].crash()
        system.gossip_agents[dead].crash()
        survivor.membership.declare_dead(dead)
        system.sim.run(until=system.sim.timeout(1.0))
        assert survivor.counters.get("repair_cells_promoted") == len(donors)
        assert len(survivor.graph) == before + len(donors)
        survivor.graph.plm.check_consistency()

    def test_repair_disabled_is_respected(self, dataset):
        gossip = GossipConfig(
            enabled=True,
            interval=0.05,
            suspect_after=0.2,
            dead_after=0.2,
            repair=False,
            handoff=False,
        )
        queries = [base_query(i) for i in range(24)]
        probe = cluster(dataset)
        target = probe.coordinator_for(queries[0])
        schedule = FaultSchedule.crash_restart(target, 0.5, 2.5)
        system = cluster(dataset, gossip=gossip, schedule=schedule)
        system.run_open_loop(queries, rate=8.0, seed=7)
        system.drain()
        system.sim.run(until=system.sim.timeout(2.0))
        counters = system.counters_total()
        assert counters.get("repair_cells_promoted", 0) == 0
        assert counters.get("repair_cells_shipped", 0) == 0
        assert counters.get("handoff_cells_received", 0) == 0


class TestNotOwnerProtocol:
    def test_redirect_on_divergent_views(self, dataset):
        """A coordinator with a stale view learns the truth via NOT_OWNER."""
        system = cluster(dataset, gossip=FAST_GOSSIP, faults=FAST_FAULTS)
        system.start()
        query = base_query()
        coordinator = system.coordinator_for(query)
        # Manufacture divergence: the coordinator believes some peer is
        # dead (so it routes that peer's cells elsewhere), while everyone
        # else — including the re-routed target — knows better.
        peer = next(n for n in system.node_ids if n != coordinator)
        view = system.memberships[coordinator]
        view.declare_dead(peer)
        result = system.run_query(query)
        system.drain()
        counters = system.counters_total()
        # Misrouted legs were answered with NOT_OWNER and re-routed;
        # the final answer is complete and correct either way.
        assert counters.get("fetch_not_owner", 0) > 0
        assert counters.get("fetch_redirects", 0) > 0
        assert result.completeness == 1.0
        reference = cluster(dataset).run_query(base_query())
        assert result.matches(reference)

"""GossipMembership: SWIM-style merge/refutation/aging state machine."""

import pytest

from repro.config import GossipConfig
from repro.dht.partitioner import PrefixPartitioner
from repro.errors import FaultError
from repro.faults.gossip import (
    GossipMembership,
    PeerState,
    suspect_count,
    view_divergence,
)
from repro.faults.membership import ClusterMembership

NODES = [f"node-{i}" for i in range(4)]
HASHES = ["9q8y", "dr5r", "c2b2", "u4pr", "9z6m", "gcpv"]
CFG = GossipConfig(enabled=True, suspect_after=1.0, dead_after=1.0)


def make_view(owner="node-0", participants=None):
    return GossipMembership(
        owner, PrefixPartitioner(NODES, 2), CFG, participants=participants
    )


class TestRoutingSurface:
    def test_matches_cluster_membership_before_any_death(self):
        view = make_view()
        shared = ClusterMembership(PrefixPartitioner(NODES, 2))
        for code in HASHES:
            assert view.node_for(code) == shared.node_for(code)

    def test_matches_cluster_membership_after_death(self):
        view = make_view()
        shared = ClusterMembership(PrefixPartitioner(NODES, 2))
        assert view.declare_dead("node-2")
        assert shared.declare_dead("node-2")
        assert view.dead_nodes() == shared.dead_nodes() == ["node-2"]
        for code in HASHES:
            assert view.node_for(code) == shared.node_for(code)

    def test_declare_dead_semantics(self):
        view = make_view()
        assert view.declare_dead("node-1")
        assert not view.declare_dead("node-1")
        assert view.failovers == 1
        with pytest.raises(FaultError, match="unknown node"):
            view.declare_dead("node-99")

    def test_last_live_node_protected(self):
        view = make_view()
        for node in NODES[:-1]:
            view.declare_dead(node)
        with pytest.raises(FaultError, match="last live node"):
            view.declare_dead(NODES[-1])

    def test_revive_bumps_incarnation(self):
        view = make_view()
        view.declare_dead("node-1")
        assert view.revive("node-1")
        assert not view.revive("node-1")
        assert view.is_live("node-1")
        assert view._records["node-1"].incarnation == 1

    def test_client_participant_does_not_route(self):
        view = make_view("client", participants=NODES + ["client"])
        assert view.live_nodes() == NODES
        assert "client" not in view._base.node_ids


class TestMerge:
    def test_higher_incarnation_wins_outright(self):
        view = make_view()
        view.declare_dead("node-1")
        view.merge({"node-1": (1, 5, PeerState.ALIVE)}, now=1.0)
        assert view.is_live("node-1")
        assert view._records["node-1"].heartbeat == 5

    def test_dead_is_sticky_within_incarnation(self):
        view = make_view()
        view.declare_dead("node-1")
        # A stale pre-death rumor (same incarnation, big heartbeat)
        # must not resurrect the peer.
        view.merge({"node-1": (0, 99, PeerState.ALIVE)}, now=1.0)
        assert not view.is_live("node-1")

    def test_heartbeat_progress_is_fresh_alive_evidence(self):
        view = make_view()
        record = view._records["node-1"]
        record.state = PeerState.SUSPECT
        view.merge({"node-1": (0, 3, PeerState.ALIVE)}, now=1.0)
        assert record.state == PeerState.ALIVE
        assert record.heartbeat == 3
        assert record.updated_at == 1.0

    def test_stale_heartbeat_ignored(self):
        view = make_view()
        view.merge({"node-1": (0, 5, PeerState.ALIVE)}, now=1.0)
        view.merge({"node-1": (0, 2, PeerState.ALIVE)}, now=2.0)
        record = view._records["node-1"]
        assert record.heartbeat == 5
        assert record.updated_at == 1.0

    def test_dead_rumor_adopted_within_incarnation(self):
        view = make_view()
        view.merge({"node-1": (0, 0, PeerState.DEAD)}, now=1.0)
        assert not view.is_live("node-1")
        assert view.failovers == 1

    def test_unknown_peer_ignored(self):
        view = make_view()
        view.merge({"node-99": (0, 3, PeerState.ALIVE)}, now=1.0)
        assert "node-99" not in view._records

    def test_refutes_rumor_of_own_death(self):
        view = make_view()
        own = view._records["node-0"]
        view.merge({"node-0": (0, 0, PeerState.DEAD)}, now=1.0)
        assert own.state == PeerState.ALIVE
        assert own.incarnation == 1  # rumor's incarnation + 1

    def test_refutation_outranks_higher_incarnation_rumor(self):
        view = make_view()
        view.merge({"node-0": (3, 0, PeerState.SUSPECT)}, now=1.0)
        own = view._records["node-0"]
        assert own.state == PeerState.ALIVE
        assert own.incarnation == 4

    def test_digest_is_a_snapshot(self):
        view = make_view()
        digest = view.digest()
        view.heartbeat(1.0)
        assert digest["node-0"][1] == 0  # snapshot unaffected by mutation


class TestAging:
    def test_alive_to_suspect_to_dead(self):
        view = make_view()
        view.age(0.5)
        assert view.suspect_nodes() == []
        view.age(1.5)  # silence > suspect_after
        assert view.suspect_nodes() == ["node-1", "node-2", "node-3"]
        assert view.dead_nodes() == []
        view.age(2.5)  # silence > suspect_after + dead_after
        assert view.suspect_nodes() == []
        # The owner itself never ages, so it remains the last live node.
        assert view.dead_nodes() == ["node-1", "node-2", "node-3"]
        assert view.live_nodes() == ["node-0"]

    def test_fresh_evidence_rescues_a_suspect(self):
        view = make_view()
        view.age(1.5)
        assert "node-1" in view.suspect_nodes()
        view.merge({"node-1": (0, 1, PeerState.ALIVE)}, now=1.6)
        assert "node-1" not in view.suspect_nodes()
        view.age(2.5)
        assert view.is_live("node-1")

    def test_own_record_never_ages(self):
        view = make_view()
        view.age(100.0)
        assert view._records["node-0"].state == PeerState.ALIVE


class TestCrashRejoin:
    def test_reset_forgets_everything(self):
        view = make_view()
        view.declare_dead("node-1")
        view.reset(5.0)
        assert view.dead_nodes() == []
        assert view._records["node-1"].updated_at == 5.0

    def test_rejoin_takes_strictly_newer_incarnation(self):
        view = make_view()
        view.rejoin(incarnation=3, now=1.0)
        own = view._records["node-0"]
        assert own.incarnation == 3
        assert own.state == PeerState.ALIVE
        view.rejoin(incarnation=2, now=2.0)
        assert own.incarnation == 4  # max(2, 3 + 1)


class TestGauges:
    def test_view_divergence(self):
        views = [make_view(n) for n in NODES]
        assert view_divergence(views) == 0
        views[0].declare_dead("node-1")
        # One of four views says dead: 1 * 3 disagreeing pairs.
        assert view_divergence(views) == 3
        for v in views:
            if v.owner_id != "node-1" and v.is_live("node-1"):
                v.declare_dead("node-1")
        # node-1's own view refutes its own death, so 3 dead x 1 alive.
        assert view_divergence(views) == 3
        views[1].reset(0.0)  # as if node-1 crashed: its view drops out
        views[1].merge({"node-1": (0, 0, PeerState.DEAD)}, now=0.0)
        assert view_divergence([v for v in views if v.owner_id != "node-1"]) == 0
        assert view_divergence([]) == 0

    def test_suspect_count(self):
        views = [make_view(n) for n in NODES]
        assert suspect_count(views) == 0
        views[0].age(1.5)
        assert suspect_count(views) == 3

"""Tests for the zero-hop DHT partitioners."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dht.partitioner import ConsistentHashPartitioner, PrefixPartitioner
from repro.errors import StorageError
from repro.geo.geohash import GEOHASH_ALPHABET

NODES = [f"node-{i}" for i in range(8)]
geohashes = st.text(GEOHASH_ALPHABET, min_size=2, max_size=6)


class TestValidation:
    def test_needs_nodes(self):
        with pytest.raises(StorageError):
            PrefixPartitioner([], 2)

    def test_rejects_duplicates(self):
        with pytest.raises(StorageError):
            PrefixPartitioner(["a", "a"], 2)

    def test_rejects_bad_precision(self):
        with pytest.raises(StorageError):
            PrefixPartitioner(NODES, 0)

    def test_rejects_empty_geohash(self):
        part = PrefixPartitioner(NODES, 2)
        with pytest.raises(StorageError):
            part.node_for("")


class TestPrefixPartitioner:
    @given(geohashes)
    def test_every_key_maps_to_one_known_node(self, code):
        part = PrefixPartitioner(NODES, 2)
        assert part.node_for(code) in NODES

    @given(geohashes)
    def test_deterministic(self, code):
        a = PrefixPartitioner(NODES, 2)
        b = PrefixPartitioner(NODES, 2)
        assert a.node_for(code) == b.node_for(code)

    @given(geohashes, geohashes)
    @settings(max_examples=50)
    def test_same_prefix_same_node(self, a, b):
        part = PrefixPartitioner(NODES, 2)
        if a[:2] == b[:2]:
            assert part.node_for(a) == part.node_for(b)

    def test_colocation_of_cells_and_blocks(self):
        """A fine cell lands on the node owning its backing block prefix."""
        part = PrefixPartitioner(NODES, 2)
        assert part.node_for("9q8y7") == part.node_for("9q")

    def test_short_key_uses_whole_key(self):
        part = PrefixPartitioner(NODES, 2)
        assert part.partition_key("9") == "9"
        assert part.node_for("9") in NODES

    def test_roughly_uniform_distribution(self):
        part = PrefixPartitioner(NODES, 2)
        counts = {n: 0 for n in NODES}
        prefixes = [a + b for a in GEOHASH_ALPHABET for b in GEOHASH_ALPHABET]
        for prefix in prefixes:
            counts[part.node_for_partition(prefix)] += 1
        expected = len(prefixes) / len(NODES)
        for count in counts.values():
            assert 0.5 * expected < count < 1.6 * expected


class TestConsistentHashPartitioner:
    @given(geohashes)
    def test_maps_to_known_node(self, code):
        part = ConsistentHashPartitioner(NODES, 2)
        assert part.node_for(code) in NODES

    def test_removal_only_remaps_removed_nodes_keys(self):
        part = ConsistentHashPartitioner(NODES, 2, virtual_nodes=128)
        removed = NODES[3]
        shrunk = part.without_node(removed)
        prefixes = [a + b for a in GEOHASH_ALPHABET for b in GEOHASH_ALPHABET]
        for prefix in prefixes:
            before = part.node_for_partition(prefix)
            after = shrunk.node_for_partition(prefix)
            if before != removed:
                assert after == before
            else:
                assert after != removed

    def test_without_unknown_node(self):
        part = ConsistentHashPartitioner(NODES, 2)
        with pytest.raises(StorageError):
            part.without_node("ghost")

    def test_bad_virtual_nodes(self):
        with pytest.raises(StorageError):
            ConsistentHashPartitioner(NODES, 2, virtual_nodes=0)

"""End-to-end observability: tracing, attribution, provenance, CLI."""

import json

import numpy as np
import pytest

from repro.baselines.basic import BasicSystem
from repro.baselines.elastic import ElasticSystem
from repro.cli import main
from repro.config import ClusterConfig, ObservabilityConfig, StashConfig
from repro.core.cluster import StashCluster
from repro.data.generator import NAM_DOMAIN, small_test_dataset
from repro.geo.resolution import Resolution
from repro.geo.temporal import TemporalResolution, TimeKey
from repro.monitor import snapshot
from repro.query.model import PROVENANCE_KEYS
from repro.workload.queries import QuerySize, random_query
from repro.workload.trace import replay_trace


@pytest.fixture(scope="module")
def dataset():
    return small_test_dataset(num_records=5_000)


def sample_queries(n=4):
    rng = np.random.default_rng(23)
    return [
        random_query(
            rng,
            QuerySize.STATE,
            NAM_DOMAIN,
            day=TimeKey.of(2013, 2, 2),
            resolution=Resolution(3, TemporalResolution.DAY),
        )
        for _ in range(n)
    ]


def traced_config():
    return StashConfig(
        cluster=ClusterConfig(num_nodes=4),
        observability=ObservabilityConfig(trace=True),
    )


class TestTracing:
    def test_trace_structure_is_deterministic(self, dataset):
        queries = sample_queries()  # same objects -> same query_ids

        def run():
            cluster = StashCluster(dataset, traced_config())
            replay_trace(cluster, queries)
            cluster.drain()
            return cluster.tracer.structure()

        first = run()
        second = run()
        assert first, "expected spans from a traced run"
        assert first == second

    def test_one_root_span_per_query(self, dataset):
        cluster = StashCluster(dataset, traced_config())
        results = replay_trace(cluster, sample_queries())
        cluster.drain()
        roots = cluster.tracer.query_roots()
        assert len(roots) == len(results)
        assert all(root.name == "query" for root in roots)
        assert all(root.end is not None for root in roots)

    def test_tracing_does_not_perturb_results(self, dataset):
        queries = sample_queries()

        def latencies(observability):
            cluster = StashCluster(
                dataset,
                StashConfig(
                    cluster=ClusterConfig(num_nodes=4),
                    observability=observability,
                ),
            )
            return [r.latency for r in replay_trace(cluster, queries)]

        assert latencies(ObservabilityConfig()) == latencies(
            ObservabilityConfig(trace=True)
        )

    def test_tracing_off_records_nothing(self, dataset):
        cluster = StashCluster(
            dataset, StashConfig(cluster=ClusterConfig(num_nodes=4))
        )
        replay_trace(cluster, sample_queries(2))
        cluster.drain()
        assert len(cluster.tracer) == 0


class TestAttribution:
    def test_attribution_sums_to_latency(self, dataset):
        cluster = StashCluster(dataset, traced_config())
        results = replay_trace(cluster, sample_queries())
        for result in results:
            assert result.attribution is not None
            assert sum(result.attribution.values()) == pytest.approx(
                result.latency, rel=1e-9
            )

    def test_attribution_absent_when_tracing_off(self, dataset):
        cluster = StashCluster(
            dataset, StashConfig(cluster=ClusterConfig(num_nodes=4))
        )
        results = replay_trace(cluster, sample_queries(2))
        assert all(r.attribution is None for r in results)

    def test_cold_queries_are_disk_dominated(self, dataset):
        cluster = StashCluster(dataset, traced_config())
        results = replay_trace(cluster, sample_queries())
        cold = results[0]
        assert cold.attribution["disk"] > cold.attribution["compute"]


class TestProvenanceVocabulary:
    def engines(self, dataset):
        config = StashConfig(cluster=ClusterConfig(num_nodes=4))
        yield StashCluster(dataset, config)
        yield BasicSystem(dataset, config)
        yield ElasticSystem(dataset, config)

    def test_all_engines_emit_canonical_keys(self, dataset):
        for system in self.engines(dataset):
            results = replay_trace(system, sample_queries(2))
            for result in results:
                assert set(PROVENANCE_KEYS) <= set(result.provenance), (
                    type(system).__name__
                )

    def test_result_json_carries_provenance(self, dataset):
        cluster = StashCluster(dataset, traced_config())
        (result,) = replay_trace(cluster, sample_queries(1))
        doc = result.to_json_dict()
        assert set(PROVENANCE_KEYS) <= set(doc["provenance"])
        assert sum(doc["attribution"].values()) == pytest.approx(result.latency)
        json.dumps(doc)


class TestMonitorIsPassive:
    def test_snapshot_does_not_boot_unstarted_cluster(self, dataset):
        cluster = StashCluster(
            dataset, StashConfig(cluster=ClusterConfig(num_nodes=4))
        )
        snap = snapshot(cluster)
        assert cluster._nodes_started is False
        assert len(snap.nodes) == 0


class TestMetricsSampling:
    def test_registry_samples_during_replay(self, dataset):
        cluster = StashCluster(
            dataset,
            StashConfig(
                cluster=ClusterConfig(num_nodes=4),
                observability=ObservabilityConfig(sample_interval=0.005),
            ),
        )
        replay_trace(cluster, sample_queries())
        cluster.drain()
        series = cluster.metrics.series
        assert "cluster.hit_rate" in series
        assert "network.bytes_sent" in series
        assert "node-0.queue_depth" in series
        assert len(series["network.bytes_sent"]) > 0
        assert series["network.bytes_sent"].last() > 0


class TestCli:
    def test_trace_export_writes_loadable_json(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main(
            [
                "trace", "export", str(out),
                "--requests", "3",
                "--records", "5000",
                "--nodes", "4",
            ]
        )
        assert code == 0
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert doc["traceEvents"]
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases <= {"X", "M"}
        assert "spans" in capsys.readouterr().out

    def test_metrics_command(self, tmp_path, capsys):
        out = tmp_path / "metrics.json"
        code = main(
            [
                "metrics",
                "--requests", "3",
                "--records", "5000",
                "--nodes", "4",
                "--interval", "0.005",
                "--json", str(out),
            ]
        )
        assert code == 0
        assert "cluster.hit_rate" in capsys.readouterr().out
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert "network.bytes_sent" in doc

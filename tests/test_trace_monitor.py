"""Tests for trace record/replay and cluster monitoring."""

import numpy as np
import pytest

from repro.config import ClusterConfig, StashConfig
from repro.core.cluster import StashCluster
from repro.data.generator import NAM_DOMAIN, small_test_dataset
from repro.errors import WorkloadError
from repro.geo.resolution import Resolution
from repro.geo.temporal import TemporalResolution, TimeKey
from repro.monitor import snapshot
from repro.workload.queries import QuerySize, random_query
from repro.workload.trace import (
    load_trace,
    query_from_dict,
    query_to_dict,
    replay_trace,
    save_trace,
)


@pytest.fixture(scope="module")
def dataset():
    return small_test_dataset(num_records=5_000)


def sample_queries(n=5):
    rng = np.random.default_rng(17)
    return [
        random_query(
            rng,
            QuerySize.STATE,
            NAM_DOMAIN,
            day=TimeKey.of(2013, 2, 2),
            resolution=Resolution(3, TemporalResolution.DAY),
        )
        for _ in range(n)
    ]


class TestTraceSerialization:
    def test_roundtrip_dict(self):
        for query in sample_queries(3):
            clone = query_from_dict(query_to_dict(query))
            assert clone.bbox == query.bbox
            assert clone.time_range == query.time_range
            assert clone.resolution == query.resolution

    def test_attributes_preserved(self):
        query = sample_queries(1)[0]
        from repro.query.model import AggregationQuery

        with_attrs = AggregationQuery(
            bbox=query.bbox,
            time_range=query.time_range,
            resolution=query.resolution,
            attributes=("temperature",),
        )
        clone = query_from_dict(query_to_dict(with_attrs))
        assert clone.attributes == ("temperature",)

    def test_malformed_record(self):
        with pytest.raises(WorkloadError):
            query_from_dict({"bbox": [1, 2, 3]})

    def test_save_load_file(self, tmp_path):
        queries = sample_queries(7)
        path = tmp_path / "trace.jsonl"
        assert save_trace(queries, path) == 7
        loaded = load_trace(path)
        assert len(loaded) == 7
        for a, b in zip(queries, loaded):
            assert a.bbox == b.bbox and a.resolution == b.resolution

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("this is not json\n")
        with pytest.raises(WorkloadError):
            load_trace(path)

    def test_load_skips_blank_lines(self, tmp_path):
        queries = sample_queries(2)
        path = tmp_path / "trace.jsonl"
        save_trace(queries, path)
        path.write_text(path.read_text() + "\n\n")
        assert len(load_trace(path)) == 2


class TestReplay:
    def test_serial_replay(self, dataset, tmp_path):
        queries = sample_queries(3)
        path = tmp_path / "trace.jsonl"
        save_trace(queries, path)
        cluster = StashCluster(
            dataset, StashConfig(cluster=ClusterConfig(num_nodes=4))
        )
        results = replay_trace(cluster, load_trace(path))
        assert len(results) == 3
        assert all(r.latency > 0 for r in results)

    def test_replay_reproducible(self, dataset, tmp_path):
        queries = sample_queries(3)
        path = tmp_path / "trace.jsonl"
        save_trace(queries, path)

        def run():
            cluster = StashCluster(
                dataset, StashConfig(cluster=ClusterConfig(num_nodes=4))
            )
            return [r.latency for r in replay_trace(cluster, load_trace(path))]

        assert run() == run()

    def test_concurrent_replay(self, dataset):
        cluster = StashCluster(
            dataset, StashConfig(cluster=ClusterConfig(num_nodes=4))
        )
        results = replay_trace(cluster, sample_queries(4), concurrent=True)
        assert len(results) == 4


class TestMonitor:
    def test_snapshot_fields(self, dataset):
        cluster = StashCluster(
            dataset, StashConfig(cluster=ClusterConfig(num_nodes=4))
        )
        replay_trace(cluster, sample_queries(3))
        cluster.drain()
        snap = snapshot(cluster)
        assert snap.sim_time > 0
        assert len(snap.nodes) == 4
        assert snap.queries_completed == 3
        assert snap.total_cached_cells == cluster.total_cached_cells()
        assert snap.messages_sent > 0

    def test_hit_rate_progression(self, dataset):
        cluster = StashCluster(
            dataset, StashConfig(cluster=ClusterConfig(num_nodes=4))
        )
        queries = sample_queries(2)
        replay_trace(cluster, queries)
        cluster.drain()
        cold_rate = snapshot(cluster).cache_hit_rate()
        replay_trace(cluster, [q.panned(0, 0) for q in queries])
        cluster.drain()
        warm_rate = snapshot(cluster).cache_hit_rate()
        assert warm_rate > cold_rate

    def test_format_table(self, dataset):
        cluster = StashCluster(
            dataset, StashConfig(cluster=ClusterConfig(num_nodes=4))
        )
        replay_trace(cluster, sample_queries(1))
        table = snapshot(cluster).format_table()
        assert "node-0" in table
        assert "hit rate" in table

    def test_snapshot_is_side_effect_free(self, dataset):
        cluster = StashCluster(
            dataset, StashConfig(cluster=ClusterConfig(num_nodes=4))
        )
        replay_trace(cluster, sample_queries(2))
        cluster.drain()
        before = cluster.sim.now
        snapshot(cluster)
        assert cluster.sim.now == before

    def test_imbalance_and_guest_zero_without_hotspot(self, dataset):
        cluster = StashCluster(
            dataset, StashConfig(cluster=ClusterConfig(num_nodes=4))
        )
        replay_trace(cluster, sample_queries(2))
        cluster.drain()
        snap = snapshot(cluster)
        assert snap.total_guest_cells == 0
        assert snap.imbalance() >= 1.0

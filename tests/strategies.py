"""Shared hypothesis strategies for the whole test suite.

One place for the domain vocabulary — coordinates, geohashes, bounding
boxes, cell keys, resolutions, time ranges, and full aggregation
queries — instead of near-identical ``@st.composite`` definitions
copy-pasted per test file.  Strategies default to the ranges the seeded
test datasets actually cover (February 2013, the NAM domain), so a drawn
query is usually non-empty.
"""

from hypothesis import strategies as st

from repro.core.keys import CellKey
from repro.geo import geohash as gh
from repro.geo.bbox import BoundingBox
from repro.geo.resolution import Resolution, ResolutionSpace
from repro.geo.temporal import TemporalResolution, TimeKey, TimeRange
from repro.query.model import AggregationQuery

#: Whole-globe scalar coordinate strategies.
lats = st.floats(-90, 90, allow_nan=False)
lons = st.floats(-180, 180, allow_nan=False)
precisions = st.integers(1, 8)


def geohashes(min_precision: int = 1, max_precision: int = 8):
    """Valid geohash strings within a precision range."""
    return st.text(
        gh.GEOHASH_ALPHABET, min_size=min_precision, max_size=max_precision
    )


def boxes(min_size: float = 1e-3) -> "st.SearchStrategy[BoundingBox]":
    """Non-degenerate bounding boxes anywhere on the globe."""

    @st.composite
    def _box(draw):
        south = draw(st.floats(-90, 90 - min_size))
        north = draw(st.floats(south + min_size, 90))
        west = draw(st.floats(-180, 180 - min_size))
        east = draw(st.floats(west + min_size, 180))
        return BoundingBox(south, north, west, east)

    return _box()


def small_boxes() -> "st.SearchStrategy[BoundingBox]":
    """Boxes a few degrees across, away from the poles/antimeridian —
    sized so geohash covers at precisions 2-4 stay small."""

    @st.composite
    def _box(draw):
        south = draw(st.floats(-60, 55))
        west = draw(st.floats(-170, 160))
        height = draw(st.floats(0.5, 5.0))
        width = draw(st.floats(0.5, 5.0))
        return BoundingBox(south, south + height, west, west + width)

    return _box()


def resolutions(
    min_spatial: int = 1, max_spatial: int = 8
) -> "st.SearchStrategy[Resolution]":
    """Any (spatial precision, temporal resolution) pair in range."""
    return st.builds(
        Resolution,
        st.integers(min_spatial, max_spatial),
        st.sampled_from(list(TemporalResolution)),
    )


def spaces() -> "st.SearchStrategy[ResolutionSpace]":
    """Valid resolution spaces (lo <= hi)."""

    @st.composite
    def _space(draw):
        lo = draw(st.integers(1, 6))
        hi = draw(st.integers(lo, 8))
        return ResolutionSpace(lo, hi)

    return _space()


def time_keys(
    year: int = 2013,
) -> "st.SearchStrategy[TimeKey]":
    """Time keys of every temporal resolution within one year."""

    @st.composite
    def _key(draw):
        res = draw(st.sampled_from(list(TemporalResolution)))
        month = draw(st.integers(1, 12))
        day = draw(st.integers(1, 28))
        hour = draw(st.integers(0, 23))
        parts = (year, month, day, hour)[: res + 1]
        return TimeKey(parts)

    return _key()


def cell_keys(
    min_precision: int = 2, max_precision: int = 6
) -> "st.SearchStrategy[CellKey]":
    """Cell keys across precisions and all temporal resolutions."""

    @st.composite
    def _key(draw):
        precision = draw(st.integers(min_precision, max_precision))
        code = draw(
            st.text(gh.GEOHASH_ALPHABET, min_size=precision, max_size=precision)
        )
        return CellKey(geohash=code, time_key=draw(time_keys()))

    return _key()


def day_ranges(
    first_day: int = 1, last_day: int = 4, max_span: int = 3
) -> "st.SearchStrategy[TimeRange]":
    """Time ranges spanning whole February-2013 days (the test datasets)."""

    @st.composite
    def _range(draw):
        start = draw(st.integers(first_day, last_day))
        span = draw(st.integers(1, min(max_span, last_day - start + 1)))
        return TimeRange(
            TimeKey.of(2013, 2, start).epoch_range().start,
            TimeKey.of(2013, 2, start + span - 1).epoch_range().end,
        )

    return _range()


def queries(
    min_precision: int = 2,
    max_precision: int = 4,
    first_day: int = 1,
    last_day: int = 4,
    multi_day: bool = False,
) -> "st.SearchStrategy[AggregationQuery]":
    """Aggregation queries over the seeded test datasets' extent.

    Rectangles land inside the NAM domain; days default to the single-day
    shape the original equivalence suite used (set ``multi_day`` for
    ranges spanning several days).
    """

    @st.composite
    def _query(draw):
        south = draw(st.floats(15.0, 55.0))
        west = draw(st.floats(-145.0, -65.0))
        height = draw(st.floats(1.0, 8.0))
        width = draw(st.floats(1.0, 10.0))
        precision = draw(st.integers(min_precision, max_precision))
        temporal = draw(
            st.sampled_from([TemporalResolution.DAY, TemporalResolution.HOUR])
        )
        if multi_day:
            time_range = draw(day_ranges(first_day, last_day))
        else:
            day = draw(st.integers(first_day, last_day))
            time_range = TimeKey.of(2013, 2, day).epoch_range()
        return AggregationQuery(
            bbox=BoundingBox(
                south, min(90.0, south + height), west, min(180.0, west + width)
            ),
            time_range=time_range,
            resolution=Resolution(precision, temporal),
        )

    return _query()

"""Tests for AggregationQuery and QueryResult."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QueryError
from repro.geo.bbox import BoundingBox
from repro.geo.resolution import Resolution
from repro.geo.temporal import TemporalResolution, TimeKey, TimeRange
from repro.query.model import AggregationQuery, QueryResult

DAY_RANGE = TimeKey.of(2013, 2, 2).epoch_range()
RES = Resolution(4, TemporalResolution.DAY)


def q(box=None, time_range=DAY_RANGE, resolution=RES):
    return AggregationQuery(
        bbox=box or BoundingBox(35, 39, -110, -102),
        time_range=time_range,
        resolution=resolution,
    )


class TestFootprint:
    def test_footprint_size_matches_enumeration(self):
        query = q()
        assert query.footprint_size() == len(query.footprint())

    def test_footprint_cells_unique(self):
        cells = q().footprint()
        assert len(cells) == len(set(cells))

    def test_footprint_resolution(self):
        for key in q().footprint():
            assert key.resolution == RES

    def test_footprint_spans_temporal_bins(self):
        week = TimeRange(
            TimeKey.of(2013, 2, 2).epoch_range().start,
            TimeKey.of(2013, 2, 4).epoch_range().end,
        )
        query = q(time_range=week)
        days = {str(k.time_key) for k in query.footprint()}
        assert days == {"2013-02-02", "2013-02-03", "2013-02-04"}

    def test_footprint_guard(self):
        huge = q(
            box=BoundingBox.global_box(),
            resolution=Resolution(6, TemporalResolution.DAY),
        )
        with pytest.raises(QueryError):
            huge.footprint()

    def test_snapped_bbox_contains_query(self):
        query = q()
        snapped = query.snapped_bbox()
        assert snapped.contains_box(query.bbox)

    def test_snapped_time_contains_query(self):
        query = q(time_range=TimeRange(DAY_RANGE.start + 100, DAY_RANGE.end - 100))
        snapped = query.snapped_time_range()
        assert snapped.start <= DAY_RANGE.start + 100
        assert snapped.end >= DAY_RANGE.end - 100


class TestNavigation:
    def test_panned_preserves_shape(self):
        query = q()
        moved = query.panned(1.0, -2.0)
        assert moved.bbox.height == pytest.approx(query.bbox.height)
        assert moved.bbox.width == pytest.approx(query.bbox.width)
        assert moved.resolution == query.resolution
        assert moved.query_id != query.query_id

    def test_diced_shrinks_area(self):
        query = q()
        smaller = query.diced(0.8)
        assert smaller.bbox.area == pytest.approx(query.bbox.area * 0.8)

    def test_at_resolution(self):
        query = q()
        finer = query.at_resolution(Resolution(5, TemporalResolution.DAY))
        assert finer.resolution.spatial == 5
        assert finer.bbox == query.bbox

    @given(st.floats(-3, 3), st.floats(-3, 3))
    @settings(max_examples=30)
    def test_pan_overlap_decreases_with_distance(self, dlat, dlon):
        query = q()
        moved = query.panned(dlat, dlon)
        overlap = query.bbox.overlap_fraction(moved.bbox)
        assert 0.0 <= overlap <= 1.0


class TestQueryResult:
    def _result(self):
        import numpy as np

        from repro.data.statistics import SummaryVector

        query = q()
        keys = query.footprint()[:3]
        cells = {
            key: SummaryVector.from_arrays({"t": np.array([float(i), float(i + 1)])})
            for i, key in enumerate(keys)
        }
        return QueryResult(query=query, cells=cells, latency=0.5)

    def test_total_count(self):
        assert self._result().total_count == 6

    def test_overall_summary(self):
        result = self._result()
        merged = result.overall_summary()
        assert merged.count == 6
        assert merged["t"].minimum == 0.0
        assert merged["t"].maximum == 3.0

    def test_overall_summary_empty_raises(self):
        result = QueryResult(query=q(), cells={})
        with pytest.raises(QueryError):
            result.overall_summary()

    def test_matches(self):
        a, b = self._result(), self._result()
        b.cells = dict(a.cells)
        assert a.matches(b)
        b.cells.popitem()
        assert not a.matches(b)

    def test_to_json_dict(self):
        body = self._result().to_json_dict()
        assert body["latency"] == 0.5
        assert len(body["cells"]) == 3
        first = next(iter(body["cells"].values()))
        assert "t" in first and first["t"]["count"] == 2

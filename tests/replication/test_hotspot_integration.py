"""End-to-end hotspot handling: detection, handoff, reroute, correctness."""

import numpy as np
import pytest

from repro.config import ClusterConfig, ReplicationConfig, StashConfig
from repro.core.cluster import StashCluster
from repro.data.generator import small_test_dataset
from repro.geo.bbox import BoundingBox
from repro.geo.resolution import Resolution
from repro.geo.temporal import TemporalResolution, TimeKey
from repro.query.model import AggregationQuery
from repro.storage.backend import ground_truth_cells


@pytest.fixture(scope="module")
def dataset():
    return small_test_dataset(num_records=10_000, num_days=3)


def hotspot_config(**repl_kwargs):
    repl = dict(
        hotspot_queue_threshold=8,
        cooldown=0.5,
        clique_depth=2,
        max_replicated_cells=5_000,
        top_k_cliques=4,
        reroute_probability=0.8,
        guest_ttl=1e6,
        routing_ttl=1e6,
    )
    repl.update(repl_kwargs)
    return StashConfig(
        cluster=ClusterConfig(num_nodes=8),
        replication=ReplicationConfig(**repl),
    )


def hotspot_queries(n: int, seed: int = 5):
    """County-sized queries panning around one fixed point (paper VIII-E)."""
    rng = np.random.default_rng(seed)
    base = AggregationQuery(
        bbox=BoundingBox.from_center(36.0, -100.0, 1.0, 1.0),
        time_range=TimeKey.of(2013, 2, 2).epoch_range(),
        resolution=Resolution(4, TemporalResolution.DAY),
    )
    out = []
    for _ in range(n):
        dlat = float(rng.uniform(-0.1, 0.1))
        dlon = float(rng.uniform(-0.1, 0.1))
        out.append(base.panned(dlat, dlon))
    return out


class TestHotspotHandling:
    def test_handoff_triggers_under_load(self, dataset):
        cluster = StashCluster(dataset, hotspot_config())
        queries = hotspot_queries(120)
        cluster.warm(queries[:2])  # ensure some cells exist to replicate
        cluster.run_concurrent(queries)
        counts = cluster.counters_total()
        assert counts.get("hotspots_detected", 0) > 0
        assert counts.get("handoffs_completed", 0) > 0
        assert cluster.total_guest_cells() > 0

    def test_rerouted_queries_served_and_correct(self, dataset):
        cluster = StashCluster(dataset, hotspot_config())
        queries = hotspot_queries(150)
        cluster.warm(queries[:2])
        results = cluster.run_concurrent(queries)
        counts = cluster.counters_total()
        assert counts.get("queries_rerouted", 0) > 0
        assert counts.get("guest_queries_served", 0) > 0
        rerouted_checked = 0
        for result in results:
            if result.provenance.get("rerouted"):
                truth = ground_truth_cells(dataset, result.query)
                assert set(result.cells) == set(truth)
                for key, vec in result.cells.items():
                    assert vec.approx_equal(truth[key])
                rerouted_checked += 1
        assert rerouted_checked > 0

    def test_replication_improves_completion_time(self, dataset):
        def run(enable: bool) -> float:
            config = hotspot_config()
            config = StashConfig(
                cluster=config.cluster,
                replication=config.replication,
                enable_replication=enable,
            )
            cluster = StashCluster(dataset, config)
            queries = hotspot_queries(150)
            cluster.warm(queries[:2])
            cluster.run_concurrent(queries)
            return cluster.timeline.total_duration()

        with_repl = run(True)
        without_repl = run(False)
        assert with_repl < without_repl

    def test_no_replication_when_disabled(self, dataset):
        config = hotspot_config()
        config = StashConfig(
            cluster=config.cluster,
            replication=config.replication,
            enable_replication=False,
        )
        cluster = StashCluster(dataset, config)
        queries = hotspot_queries(100)
        cluster.run_concurrent(queries)
        counts = cluster.counters_total()
        assert counts.get("handoffs_completed", 0) == 0
        assert cluster.total_guest_cells() == 0

    def test_guest_purge_after_ttl(self, dataset):
        cluster = StashCluster(dataset, hotspot_config(guest_ttl=5.0))
        queries = hotspot_queries(120)
        cluster.warm(queries[:2])
        cluster.run_concurrent(queries)
        assert cluster.total_guest_cells() > 0
        # Let simulated time pass beyond the TTL, then force a purge via
        # a distress probe path on each node.
        cluster.sim.run(until=cluster.sim.now + 10.0)
        for node in cluster.nodes.values():
            node._purge_guest()
        assert cluster.total_guest_cells() == 0

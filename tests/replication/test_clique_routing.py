"""Unit tests for clique identification, routing table, antipode selection."""

import numpy as np
import pytest

from repro.config import FreshnessConfig
from repro.core.cell import Cell
from repro.core.freshness import FreshnessTracker
from repro.core.graph import StashGraph
from repro.core.keys import CellKey
from repro.data.statistics import SummaryVector
from repro.dht.partitioner import PrefixPartitioner
from repro.errors import ReplicationError
from repro.geo import geohash as gh
from repro.geo.resolution import ResolutionSpace
from repro.geo.temporal import TimeKey
from repro.replication.antipode import antipode_candidates
from repro.replication.clique import _ancestor_roots, top_cliques
from repro.replication.routing import RoutingTable

SPACE = ResolutionSpace(1, 8)
DAY = TimeKey.of(2013, 2, 2)


def make_cell(geohash, time_key=DAY):
    return Cell(
        key=CellKey(geohash, time_key),
        summary=SummaryVector.from_arrays({"t": np.array([1.0])}),
    )


@pytest.fixture()
def tracker():
    return FreshnessTracker(FreshnessConfig(half_life=1e9))


class TestAncestorRoots:
    def test_depth_zero_is_self(self):
        key = CellKey("9q8y7", DAY)
        assert _ancestor_roots(key, 0) == [key]

    def test_depth_one_includes_three_parents_and_self(self):
        key = CellKey("9q8y7", DAY)
        roots = _ancestor_roots(key, 1)
        assert key in roots
        assert CellKey("9q8y", DAY) in roots
        assert CellKey("9q8y7", TimeKey.of(2013, 2)) in roots
        assert len(roots) == 3  # both-axis parent is 2 steps, excluded

    def test_depth_two_includes_diagonal(self):
        key = CellKey("9q8y7", DAY)
        roots = _ancestor_roots(key, 2)
        assert CellKey("9q8y", TimeKey.of(2013, 2)) in roots
        assert CellKey("9q8", DAY) in roots
        assert CellKey("9q8y7", TimeKey.of(2013)) in roots


class TestTopCliques:
    def test_empty_graph(self, tracker):
        graph = StashGraph(SPACE)
        assert top_cliques(graph, tracker, 0.0, 2, 100, 4) == []

    def test_zero_freshness_cells_ignored(self, tracker):
        graph = StashGraph(SPACE)
        graph.insert(make_cell("9q8y7"))
        assert top_cliques(graph, tracker, 0.0, 2, 100, 4) == []

    def test_hot_region_forms_clique(self, tracker):
        graph = StashGraph(SPACE)
        keys = []
        for child in gh.children("9q8y")[:8]:
            cell = make_cell(child)
            graph.insert(cell)
            keys.append(cell.key)
        tracker.touch_cells(graph, keys, now=0.0)
        cliques = top_cliques(graph, tracker, 1.0, depth=1, max_cells=100, top_k=2)
        assert cliques
        best = cliques[0]
        assert best.root == CellKey("9q8y", DAY)
        assert set(best.members) == set(keys)
        assert best.cumulative_freshness == pytest.approx(8.0, rel=1e-3)

    def test_budget_respected(self, tracker):
        graph = StashGraph(SPACE)
        keys = []
        for child in gh.children("9q8y"):
            cell = make_cell(child)
            graph.insert(cell)
            keys.append(cell.key)
        tracker.touch_cells(graph, keys, now=0.0)
        cliques = top_cliques(graph, tracker, 1.0, depth=1, max_cells=5, top_k=4)
        assert sum(c.size for c in cliques) <= 5

    def test_chosen_cliques_disjoint(self, tracker):
        graph = StashGraph(SPACE)
        keys = []
        for parent in ("9q8y", "9q8z"):
            for child in gh.children(parent)[:6]:
                cell = make_cell(child)
                graph.insert(cell)
                keys.append(cell.key)
        tracker.touch_cells(graph, keys, now=0.0)
        cliques = top_cliques(graph, tracker, 1.0, depth=2, max_cells=1000, top_k=8)
        seen = set()
        for clique in cliques:
            assert seen.isdisjoint(clique.members)
            seen.update(clique.members)

    def test_hotter_clique_ranked_first(self, tracker):
        graph = StashGraph(SPACE)
        cold_keys, hot_keys = [], []
        for child in gh.children("9q8y")[:4]:
            cell = make_cell(child)
            graph.insert(cell)
            cold_keys.append(cell.key)
        for child in gh.children("dr5r")[:4]:
            cell = make_cell(child)
            graph.insert(cell)
            hot_keys.append(cell.key)
        tracker.touch_cells(graph, cold_keys, now=0.0)
        for _ in range(5):
            tracker.touch_cells(graph, hot_keys, now=0.0)
        cliques = top_cliques(graph, tracker, 0.0, depth=1, max_cells=100, top_k=2)
        assert cliques[0].root.geohash.startswith("dr5r")

    def test_bad_params(self, tracker):
        graph = StashGraph(SPACE)
        with pytest.raises(ReplicationError):
            top_cliques(graph, tracker, 0.0, -1, 10, 1)
        with pytest.raises(ReplicationError):
            top_cliques(graph, tracker, 0.0, 1, 0, 1)


class TestRoutingTable:
    def _footprint(self):
        return [CellKey(c, DAY) for c in gh.children("9q8y")[:4]]

    def test_validation(self):
        with pytest.raises(ReplicationError):
            RoutingTable(ttl=0, reroute_probability=0.5)
        with pytest.raises(ReplicationError):
            RoutingTable(ttl=10, reroute_probability=1.5)

    def test_cover_requires_full_footprint(self):
        table = RoutingTable(ttl=100, reroute_probability=1.0)
        footprint = self._footprint()
        table.add(footprint[0], "helper-1", frozenset(footprint[:2]), now=0.0)
        assert table.helpers_covering(footprint, now=1.0) == []
        table.add(footprint[2], "helper-1", frozenset(footprint[2:]), now=0.0)
        assert table.helpers_covering(footprint, now=1.0) == ["helper-1"]

    def test_ttl_expiry(self):
        table = RoutingTable(ttl=10, reroute_probability=1.0)
        footprint = self._footprint()
        table.add(footprint[0], "helper-1", frozenset(footprint), now=0.0)
        assert table.helpers_covering(footprint, now=5.0) == ["helper-1"]
        assert table.helpers_covering(footprint, now=11.0) == []
        assert len(table) == 0

    def test_choose_reroute_probabilistic(self):
        table = RoutingTable(ttl=100, reroute_probability=0.5)
        footprint = self._footprint()
        table.add(footprint[0], "helper-1", frozenset(footprint), now=0.0)
        rng = np.random.default_rng(1)
        picks = [table.choose_reroute(footprint, 1.0, rng) for _ in range(200)]
        hits = sum(p == "helper-1" for p in picks)
        assert 60 < hits < 140  # ~50%
        assert all(p in (None, "helper-1") for p in picks)

    def test_choose_reroute_zero_probability(self):
        table = RoutingTable(ttl=100, reroute_probability=0.0)
        footprint = self._footprint()
        table.add(footprint[0], "h", frozenset(footprint), now=0.0)
        rng = np.random.default_rng(1)
        assert table.choose_reroute(footprint, 1.0, rng) is None

    def test_empty_footprint_no_reroute(self):
        table = RoutingTable(ttl=100, reroute_probability=1.0)
        assert table.helpers_covering([], now=0.0) == []


class TestAntipodeCandidates:
    def test_candidates_exclude_self(self):
        nodes = [f"n{i}" for i in range(8)]
        part = PrefixPartitioner(nodes, 2)
        rng = np.random.default_rng(3)
        for code in ("9q8y", "dr5r", "u4pr"):
            anti_node = part.node_for(gh.antipode(code))
            candidates = antipode_candidates(code, part, exclude=anti_node, rng=rng, max_probes=16)
            assert anti_node not in candidates

    def test_first_candidate_is_antipode_owner(self):
        nodes = [f"n{i}" for i in range(8)]
        part = PrefixPartitioner(nodes, 2)
        rng = np.random.default_rng(3)
        candidates = antipode_candidates("9q8y", part, exclude="none", rng=rng, max_probes=8)
        assert candidates[0] == part.node_for(gh.antipode("9q8y"))

    def test_candidates_unique(self):
        nodes = [f"n{i}" for i in range(4)]
        part = PrefixPartitioner(nodes, 2)
        rng = np.random.default_rng(3)
        candidates = antipode_candidates("9q8y", part, exclude="n0", rng=rng, max_probes=32)
        assert len(candidates) == len(set(candidates))

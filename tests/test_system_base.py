"""Tests for the shared DistributedSystem scaffolding."""

import pytest

from repro.baselines.basic import BasicSystem
from repro.config import ClusterConfig, StashConfig
from repro.data.generator import small_test_dataset
from repro.errors import QueryError
from repro.geo.bbox import BoundingBox
from repro.geo.resolution import Resolution
from repro.geo.temporal import TemporalResolution, TimeKey
from repro.query.model import AggregationQuery


@pytest.fixture(scope="module")
def dataset():
    return small_test_dataset(num_records=4_000)


@pytest.fixture()
def system(dataset):
    return BasicSystem(dataset, StashConfig(cluster=ClusterConfig(num_nodes=5)))


def make_query(center_lon=-105.0):
    return AggregationQuery(
        bbox=BoundingBox.from_center(38.0, center_lon, 4.0, 8.0),
        time_range=TimeKey.of(2013, 2, 2).epoch_range(),
        resolution=Resolution(3, TemporalResolution.DAY),
    )


class TestCoordinatorRouting:
    def test_coordinator_is_center_owner(self, system):
        from repro.geo.geohash import encode

        query = make_query()
        lat, lon = query.bbox.center
        code = encode(lat, lon, system.partitioner.partition_precision)
        assert system.coordinator_for(query) == system.partitioner.node_for(code)

    def test_same_region_same_coordinator(self, system):
        """Geospatial routing concentrates one region on one node —
        the hotspot precondition of paper section VII."""
        query = make_query()
        panned = query.panned(0.05, 0.05)
        assert system.coordinator_for(query) == system.coordinator_for(panned)

    def test_distant_regions_spread(self, system):
        coordinators = {
            system.coordinator_for(make_query(center_lon=lon))
            for lon in (-140.0, -120.0, -100.0, -80.0, -60.0)
        }
        assert len(coordinators) > 1


class TestClientAPI:
    def test_start_idempotent(self, system):
        system.start()
        nodes_before = system.nodes
        system.start()
        assert system.nodes is nodes_before

    def test_run_serial_records_all_latencies(self, system):
        queries = [make_query(center_lon=lon) for lon in (-110, -100, -90)]
        results = system.run_serial(queries)
        assert len(results) == 3
        assert len(system.latencies) == 3
        assert len(system.timeline) == 3

    def test_run_concurrent_returns_in_submission_order(self, system):
        queries = [make_query(center_lon=lon) for lon in (-110, -100, -90)]
        results = system.run_concurrent(queries)
        for query, result in zip(queries, results):
            assert result.query.query_id == query.query_id

    def test_concurrent_is_not_slower_than_sum_of_serial(self, dataset):
        config = StashConfig(cluster=ClusterConfig(num_nodes=5))
        queries = [make_query(center_lon=lon) for lon in (-110, -100, -90)]
        serial = BasicSystem(dataset, config)
        serial.run_serial([q.panned(0, 0) for q in queries])
        serial_total = serial.sim.now
        concurrent = BasicSystem(dataset, config)
        concurrent.run_concurrent([q.panned(0, 0) for q in queries])
        assert concurrent.sim.now <= serial_total

    def test_malformed_reply_raises(self, dataset):
        config = StashConfig(cluster=ClusterConfig(num_nodes=2))
        system = BasicSystem(dataset, config)
        system.start()
        # Sabotage one node's evaluate handler to return a bare value.
        node = next(iter(system.nodes.values()))

        def bad_handler(message):
            node.network.respond(message, "not-a-dict")
            return
            yield  # pragma: no cover - make it a generator

        for other in system.nodes.values():
            other.register_handler("evaluate", bad_handler)
        with pytest.raises(QueryError):
            system.run_query(make_query())


class TestDeterminism:
    def test_identical_runs_identical_latencies(self, dataset):
        config = StashConfig(cluster=ClusterConfig(num_nodes=5))
        queries = [make_query(center_lon=lon) for lon in (-110, -100, -90)]

        def run():
            system = BasicSystem(dataset, config)
            return [r.latency for r in system.run_serial([q.panned(0, 0) for q in queries])]

        assert run() == run()

    def test_stash_runs_deterministic(self, dataset):
        from repro.core.cluster import StashCluster

        config = StashConfig(cluster=ClusterConfig(num_nodes=5))

        def run():
            cluster = StashCluster(dataset, config)
            out = []
            for lon in (-110, -100, -110, -100):
                result = cluster.run_query(make_query(center_lon=lon))
                cluster.drain()
                out.append(round(result.latency, 12))
            return out

        assert run() == run()

"""Smoke tests: the example scripts run to completion.

Each example is a user-facing artifact; a refactor that breaks one
should fail the suite, not a reader.  Only the two fastest examples run
here (the rest are exercised indirectly by the same APIs); each runs in
a subprocess exactly as a user would invoke it.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str, timeout: float = 240.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "cold query" in out
        assert "hot query latency" in out
        assert "faster" in out

    def test_streaming_updates(self):
        out = run_example("streaming_updates.py")
        assert "baseline" in out
        assert "wave 3" in out
        assert "0 cells recomputed" in out  # far region kept its cache

    def test_all_examples_importable(self):
        """Every example at least parses and resolves its imports."""
        import ast

        for path in sorted(EXAMPLES.glob("*.py")):
            source = path.read_text()
            tree = ast.parse(source, filename=str(path))
            assert any(
                isinstance(node, ast.FunctionDef) and node.name == "main"
                for node in tree.body
            ), f"{path.name} has no main()"

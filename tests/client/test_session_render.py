"""Tests for the exploration session and renderers."""

import json

import pytest

from repro.client.render import render_ascii_heatmap, render_json
from repro.client.session import ExplorationSession
from repro.config import ClusterConfig, StashConfig
from repro.core.cluster import StashCluster
from repro.data.generator import small_test_dataset
from repro.errors import QueryError
from repro.geo.bbox import BoundingBox
from repro.geo.resolution import Resolution
from repro.geo.temporal import TemporalResolution, TimeKey
from repro.storage.backend import ground_truth_cells


@pytest.fixture(scope="module")
def dataset():
    return small_test_dataset(num_records=6_000)


@pytest.fixture()
def cluster(dataset):
    return StashCluster(dataset, StashConfig(cluster=ClusterConfig(num_nodes=4)))


def make_session(cluster, **kwargs):
    return ExplorationSession(
        cluster,
        viewport=BoundingBox(32, 40, -112, -102),
        day=TimeKey.of(2013, 2, 2),
        resolution=Resolution(3, TemporalResolution.DAY),
        **kwargs,
    )


class TestGestures:
    def test_refresh_matches_truth(self, cluster, dataset):
        session = make_session(cluster)
        result = session.refresh()
        truth = ground_truth_cells(dataset, session.current_query())
        assert set(result.cells) == set(truth)

    def test_pan_moves_viewport(self, cluster):
        session = make_session(cluster)
        before = session.viewport
        session.pan("e", 0.25)
        assert session.viewport.west > before.west
        assert session.viewport.height == pytest.approx(before.height)

    def test_pan_unknown_direction(self, cluster):
        with pytest.raises(QueryError):
            make_session(cluster).pan("up")

    def test_dice_shrinks(self, cluster):
        session = make_session(cluster)
        before_area = session.viewport.area
        session.dice(0.8)
        assert session.viewport.area == pytest.approx(before_area * 0.8)

    def test_drill_and_roll(self, cluster):
        session = make_session(cluster)
        session.drill_down()
        assert session.resolution.spatial == 4
        session.roll_up()
        assert session.resolution.spatial == 3

    def test_roll_up_at_floor(self, cluster):
        session = make_session(cluster)
        session.resolution = Resolution(1, TemporalResolution.DAY)
        with pytest.raises(QueryError):
            session.roll_up()

    def test_slice_day(self, cluster):
        session = make_session(cluster)
        result = session.slice_day(TimeKey.of(2013, 2, 3))
        for key in result.cells:
            assert str(key.time_key) == "2013-02-03"

    def test_drill_time_to_hours(self, cluster):
        session = make_session(cluster)
        result = session.drill_time()
        assert session.resolution.temporal == TemporalResolution.HOUR
        for key in result.cells:
            assert key.time_key.resolution == TemporalResolution.HOUR

    def test_drill_time_at_floor(self, cluster):
        session = make_session(cluster)
        session.resolution = Resolution(3, TemporalResolution.HOUR)
        with pytest.raises(QueryError):
            session.drill_time()

    def test_roll_time_to_month(self, cluster):
        session = make_session(cluster)
        result = session.roll_time()
        assert session.resolution.temporal == TemporalResolution.MONTH
        for key in result.cells:
            assert str(key.time_key) == "2013-02"

    def test_time_zoom_roundtrip_counts(self, cluster):
        """Hour bins re-aggregate to exactly the day bins' counts."""
        session = make_session(cluster)
        day_result = session.refresh()
        hour_result = session.drill_time()
        assert hour_result.total_count == day_result.total_count
        back = session.roll_time()
        assert back.total_count == day_result.total_count

    def test_temporal_rollup_reuses_hour_cells(self, cluster):
        """After browsing at hour bins, the day view rolls up in-memory."""
        session = make_session(cluster)
        session.resolution = Resolution(3, TemporalResolution.HOUR)
        session.refresh()
        cluster.drain()
        result = session.roll_time()
        assert result.provenance["cells_from_rollup"] > 0
        assert result.provenance["cells_from_disk"] == 0

    def test_lasso_polygon_selection(self, cluster, dataset):
        from repro.geo.polygon import Polygon
        from repro.storage.backend import ground_truth_cells

        session = make_session(cluster)
        triangle = Polygon.of((30.0, -115.0), (44.0, -115.0), (30.0, -96.0))
        result = session.lasso(triangle)
        assert result.cells
        for key in result.cells:
            lat, lon = key.bbox.center
            assert triangle.contains_point(lat, lon)
        truth = ground_truth_cells(dataset, session.stats.history[-1])
        assert set(result.cells) == set(truth)

    def test_history_recorded(self, cluster):
        session = make_session(cluster)
        session.refresh()
        session.pan("n")
        session.dice(0.8)
        assert len(session.stats.history) == 3
        assert session.stats.queries_sent == 3


class TestClientCache:
    def test_repeat_viewport_served_locally(self, cluster):
        session = make_session(cluster, client_cache_cells=10_000)
        first = session.refresh()
        second = session.refresh()
        assert session.stats.client_cache_hits == 1
        assert session.stats.queries_sent == 1
        assert second.latency == 0.0
        assert set(second.cells) == set(first.cells)

    def test_cache_disabled_by_default(self, cluster):
        session = make_session(cluster)
        session.refresh()
        session.refresh()
        assert session.stats.client_cache_hits == 0
        assert session.stats.queries_sent == 2

    def test_cache_eviction_by_capacity(self, cluster):
        session = make_session(cluster, client_cache_cells=4)
        session.refresh()  # footprint bigger than 4 cells
        session.refresh()
        assert session.stats.client_cache_hits == 0  # evicted before reuse

    def test_cached_result_distinguishes_empty_cells(self, cluster, dataset):
        session = make_session(cluster, client_cache_cells=10_000)
        truth = ground_truth_cells(dataset, session.current_query())
        session.refresh()
        cached = session.refresh()
        assert set(cached.cells) == set(truth)


class TestPrefetch:
    def test_momentum_prefetch_issued(self, cluster):
        session = make_session(cluster, prefetch=True)
        session.pan("e")
        assert session.stats.prefetches_issued == 0
        session.pan("e")
        assert session.stats.prefetches_issued == 1
        session.pan("n")
        assert session.stats.prefetches_issued == 1

    def test_prefetch_warms_server_cache(self, cluster):
        session = make_session(cluster, prefetch=True)
        session.pan("e")
        session.pan("e")
        cluster.drain()  # let the prefetch land
        third = session.pan("e")  # arrives where the prefetch predicted
        assert third.provenance["cells_from_disk"] == 0


class TestRendering:
    def test_render_json_parses(self, cluster):
        result = make_session(cluster).refresh()
        body = json.loads(render_json(result))
        assert body["cells"]
        first = next(iter(body["cells"].values()))
        assert "temperature" in first

    def test_ascii_heatmap_shape(self, cluster):
        result = make_session(cluster).refresh()
        art = render_ascii_heatmap(result, "temperature")
        lines = art.splitlines()
        assert "temperature" in lines[0]
        assert len(lines) > 2
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # rectangular grid

    def test_ascii_heatmap_statistics(self, cluster):
        result = make_session(cluster).refresh()
        for stat in ("mean", "min", "max", "count"):
            assert render_ascii_heatmap(result, "temperature", stat)
        with pytest.raises(QueryError):
            render_ascii_heatmap(result, "temperature", "median")

    def test_heatmap_warmer_south(self, cluster):
        """Bottom rows (south) should render warmer temperatures."""
        session = ExplorationSession(
            cluster,
            viewport=BoundingBox(15, 60, -130, -60),
            day=TimeKey.of(2013, 2, 2),
            resolution=Resolution(2, TemporalResolution.DAY),
        )
        result = session.refresh()
        art = render_ascii_heatmap(result, "temperature")
        from repro.client.render import SHADES

        lines = art.splitlines()[1:]
        def mean_shade(line):
            shades = [SHADES.index(c) for c in line if c in SHADES and c != " "]
            return sum(shades) / len(shades) if shades else None

        top = mean_shade(lines[0])
        bottom = mean_shade(lines[-1])
        assert top is not None and bottom is not None
        assert bottom > top

"""Tests for the front-end mini STASH graph (paper future work IX-A)."""

import pytest

from repro.client.session import ExplorationSession
from repro.config import ClusterConfig, StashConfig
from repro.core.cluster import StashCluster
from repro.data.generator import small_test_dataset
from repro.geo.bbox import BoundingBox
from repro.geo.resolution import Resolution
from repro.geo.temporal import TemporalResolution, TimeKey
from repro.storage.backend import ground_truth_cells


@pytest.fixture(scope="module")
def dataset():
    return small_test_dataset(num_records=6_000)


@pytest.fixture()
def cluster(dataset):
    return StashCluster(dataset, StashConfig(cluster=ClusterConfig(num_nodes=4)))


def make_session(cluster, capacity=100_000):
    return ExplorationSession(
        cluster,
        viewport=BoundingBox(32, 40, -112, -102),
        day=TimeKey.of(2013, 2, 2),
        resolution=Resolution(3, TemporalResolution.DAY),
        client_cache_cells=capacity,
    )


class TestPartialFetch:
    def test_pan_fetches_only_missing_cells(self, cluster):
        session = make_session(cluster)
        session.refresh()
        cluster.drain()
        footprint_size = len(session.current_query().footprint())
        fetched_before = session.stats.cells_fetched
        session.pan("e", 0.25)
        newly_fetched = session.stats.cells_fetched - fetched_before
        # Only the leading-edge strip is fetched, not the whole viewport.
        assert 0 < newly_fetched < footprint_size * 0.5

    def test_partial_results_match_truth(self, cluster, dataset):
        session = make_session(cluster)
        session.refresh()
        cluster.drain()
        result = session.pan("e", 0.25)
        truth = ground_truth_cells(dataset, session.current_query())
        assert set(result.cells) == set(truth)
        for key, vec in result.cells.items():
            assert vec.approx_equal(truth[key])

    def test_full_repeat_is_zero_latency(self, cluster):
        session = make_session(cluster)
        first = session.refresh()
        second = session.refresh()
        assert first.latency > 0
        assert second.latency == 0.0
        assert session.stats.client_cache_hits == 1
        assert set(second.cells) == set(first.cells)

    def test_client_rollup_serves_coarse_view(self, cluster, dataset):
        """Roll-up happens *in the client*: zooming out after exploring a
        finer level needs no server round trip at all."""
        session = make_session(cluster)
        session.resolution = Resolution(4, TemporalResolution.DAY)
        # Snap viewport to the coarse cells so fine cells tile it exactly.
        coarse_query = session.current_query().at_resolution(
            Resolution(3, TemporalResolution.DAY)
        )
        session.viewport = coarse_query.snapped_bbox()
        session.refresh()
        cluster.drain()
        sent_before = session.stats.queries_sent
        result = session.roll_up()
        assert session.stats.queries_sent == sent_before  # no server trip
        assert result.latency == 0.0
        truth = ground_truth_cells(dataset, session.current_query())
        assert set(result.cells) == set(truth)
        for key, vec in result.cells.items():
            assert vec.approx_equal(truth[key])

    def test_eviction_respects_capacity(self, cluster):
        session = make_session(cluster, capacity=50)
        session.refresh()
        session.pan("e")
        session.pan("e")
        assert len(session._graph) <= 50

    def test_server_sees_partial_evaluations(self, cluster):
        session = make_session(cluster)
        session.refresh()
        cluster.drain()
        session.pan("e", 0.25)
        counts = cluster.counters_total()
        assert counts.get("partial_evaluations", 0) >= 1

    def test_cells_fetched_accounting(self, cluster):
        session = make_session(cluster)
        session.refresh()
        footprint_size = len(session.current_query().footprint())
        assert session.stats.cells_fetched == footprint_size
        assert session.stats.cells_served_locally == 0


class TestFallbackWithoutPartialAPI:
    def test_basic_system_falls_back_to_full_queries(self, dataset):
        from repro.baselines.basic import BasicSystem

        system = BasicSystem(
            dataset, StashConfig(cluster=ClusterConfig(num_nodes=4))
        )
        session = ExplorationSession(
            system,
            viewport=BoundingBox(32, 40, -112, -102),
            day=TimeKey.of(2013, 2, 2),
            resolution=Resolution(3, TemporalResolution.DAY),
            client_cache_cells=100_000,
        )
        first = session.refresh()
        second = session.refresh()  # full client hit still works
        assert second.latency == 0.0
        assert set(second.cells) == set(first.cells)
        session.pan("e", 0.25)  # partial: falls back to run_query
        assert session.stats.queries_sent == 2

"""Client-graph cache-correctness regressions.

Two fixes pinned here:

* a degraded (completeness < 1) server reply omits the cells it could not
  resolve — the client mini graph must *not* cache those keys as
  known-empty, or every later client-local answer silently drops data;
* the client mini graph must adopt the cluster's configured resolution
  space, not a hardcoded default, so client-side drill/roll level
  arithmetic matches the server's.
"""

import numpy as np

from repro.client.session import ExplorationSession
from repro.config import ClusterConfig, StashConfig
from repro.core.cluster import StashCluster
from repro.data.generator import small_test_dataset
from repro.data.statistics import SummaryVector
from repro.geo.bbox import BoundingBox
from repro.geo.resolution import Resolution, ResolutionSpace
from repro.geo.temporal import TemporalResolution, TimeKey
from repro.query.model import QueryResult

DAY = TimeKey.of(2013, 2, 2)
VIEWPORT = BoundingBox(32, 40, -112, -102)


class _FakeSim:
    now = 0.0


class HalfAnsweringBackend:
    """Serves only the first half of any footprint.

    With ``complete=True`` the other half is genuinely empty (a full
    answer); with ``complete=False`` it is *unresolved* and the reply is
    flagged degraded.  No ``run_cells`` attribute, so the session takes
    the full-query fallback path.
    """

    def __init__(self, complete: bool):
        self.attribute_names = ["temperature"]
        self.complete = complete
        self.sim = _FakeSim()
        self.queries = 0

    def run_query(self, query) -> QueryResult:
        self.queries += 1
        footprint = query.footprint()
        answered = footprint[: len(footprint) // 2]
        vec = SummaryVector.from_arrays({"temperature": np.array([20.0])})
        return QueryResult(
            query=query,
            cells={key: vec for key in answered},
            latency=0.01,
            completeness=1.0 if self.complete else len(answered) / len(footprint),
        )


def make_session(system, cache=10_000):
    return ExplorationSession(
        system,
        viewport=VIEWPORT,
        day=DAY,
        resolution=Resolution(3, TemporalResolution.DAY),
        client_cache_cells=cache,
    )


class TestDegradedAnswerCaching:
    def test_degraded_reply_skips_unresolved_keys(self):
        backend = HalfAnsweringBackend(complete=False)
        session = make_session(backend)
        result = session.refresh()
        footprint = session.current_query().footprint()
        answered = set(footprint[: len(footprint) // 2])
        assert result.completeness < 1.0
        for key in footprint:
            if key in answered:
                assert session._graph.contains(key)
            else:
                # Unresolved, not known-empty: must stay uncached.
                assert not session._graph.contains(key)
        assert session.stats.degraded_cells_skipped == len(footprint) - len(answered)

    def test_degraded_keys_are_refetched_next_time(self):
        backend = HalfAnsweringBackend(complete=False)
        session = make_session(backend)
        session.refresh()
        session.refresh()
        # The unresolved half is still missing, so the second refresh
        # cannot be a client-only hit.
        assert backend.queries == 2
        assert session.stats.client_cache_hits == 0

    def test_complete_reply_caches_empties(self):
        backend = HalfAnsweringBackend(complete=True)
        session = make_session(backend)
        session.refresh()
        footprint = session.current_query().footprint()
        for key in footprint:
            assert session._graph.contains(key)
        assert session.stats.degraded_cells_skipped == 0
        second = session.refresh()
        assert backend.queries == 1  # pure client hit
        assert second.latency == 0.0

    def test_degraded_completeness_propagates_to_caller(self):
        backend = HalfAnsweringBackend(complete=False)
        session = make_session(backend)
        result = session.refresh()
        assert result.degraded
        assert 0.0 < result.completeness < 1.0


class TestClientResolutionSpace:
    def test_client_graph_adopts_cluster_space(self):
        dataset = small_test_dataset(num_records=2_000)
        narrow = ResolutionSpace(2, 6)
        cluster = StashCluster(
            dataset,
            StashConfig(cluster=ClusterConfig(num_nodes=4)),
            space=narrow,
        )
        session = make_session(cluster)
        assert session._graph.space is cluster.space
        assert session._graph.space.min_spatial == 2
        assert session._graph.space.max_spatial == 6

    def test_engines_without_space_fall_back_to_default(self):
        backend = HalfAnsweringBackend(complete=True)  # no .space attribute
        session = make_session(backend)
        assert session._graph.space == ResolutionSpace(1, 8)

    def test_client_levels_match_server_levels(self):
        dataset = small_test_dataset(num_records=2_000)
        cluster = StashCluster(
            dataset,
            StashConfig(cluster=ClusterConfig(num_nodes=4)),
            space=ResolutionSpace(2, 6),
        )
        cluster.start()
        session = make_session(cluster)
        key = session.current_query().footprint()[0]
        server_graph = cluster.owner_node(key).graph
        assert session._graph.level_of(key) == server_graph.level_of(key)

"""Tests for the benchmark harness plumbing."""

import pytest

from repro.bench.harness import (
    BenchScale,
    ExperimentResult,
    bench_config,
    bench_dataset,
    make_system,
)
from repro.bench.reporting import save_result
from repro.errors import WorkloadError


class TestBenchScale:
    def test_unit_smaller_than_default(self):
        unit, default = BenchScale.unit(), BenchScale.default()
        assert unit.num_records < default.num_records
        assert unit.num_nodes < default.num_nodes

    def test_with_override(self):
        scale = BenchScale.unit().with_(num_nodes=3)
        assert scale.num_nodes == 3
        assert scale.num_records == BenchScale.unit().num_records

    def test_rng_seeded(self):
        scale = BenchScale.unit()
        assert scale.rng(1).integers(0, 1000) == scale.rng(1).integers(0, 1000)
        assert scale.rng(1).integers(0, 1000) != scale.rng(2).integers(0, 1000)


class TestBenchDataset:
    def test_cached_per_process(self):
        scale = BenchScale.unit()
        assert bench_dataset(scale) is bench_dataset(scale)

    def test_different_scales_different_data(self):
        a = bench_dataset(BenchScale.unit())
        b = bench_dataset(BenchScale.unit().with_(num_records=5_000))
        assert len(a) != len(b)


class TestMakeSystem:
    @pytest.mark.parametrize("kind", ["basic", "stash", "stash-norepl", "elastic"])
    def test_known_kinds(self, kind):
        scale = BenchScale.unit()
        system = make_system(kind, bench_dataset(scale), bench_config(scale))
        assert system is not None
        if kind == "stash-norepl":
            assert system.config.enable_replication is False

    def test_unknown_kind(self):
        scale = BenchScale.unit()
        with pytest.raises(WorkloadError):
            make_system("oracle", bench_dataset(scale), bench_config(scale))


class TestExperimentResult:
    def _result(self):
        result = ExperimentResult(name="demo", description="demo experiment")
        result.add("basic", "q1", 1.0)
        result.add("basic", "q2", 2.0)
        result.add("stash", "q1", 0.5)
        result.meta["speedup"] = 2.0
        return result

    def test_row_labels_in_insertion_order(self):
        assert self._result().row_labels() == ["q1", "q2"]

    def test_format_table_contains_everything(self):
        table = self._result().format_table()
        assert "demo experiment" in table
        assert "basic" in table and "stash" in table
        assert "q1" in table and "q2" in table
        assert "speedup=2.0" in table

    def test_missing_values_rendered_as_dash(self):
        table = self._result().format_table()
        # stash has no q2 value.
        stash_line = [l for l in table.splitlines() if l.startswith("q2")][0]
        assert "-" in stash_line

    def test_ascii_chart_renders_all_series(self):
        from repro.bench.reporting import ascii_chart

        chart = ascii_chart(self._result())
        assert "legend" in chart
        assert "basic" in chart and "stash" in chart
        assert "q1" in chart and "q2" in chart
        # Largest value gets the longest bar.
        lines = [l for l in chart.splitlines() if "#" in l and "|" in l]
        longest = max(lines, key=lambda l: l.count("#"))
        assert "2" in longest  # the q2 basic value

    def test_ascii_chart_empty_values(self):
        from repro.bench.reporting import ascii_chart

        empty = ExperimentResult(name="x", description="y")
        assert "no positive values" in ascii_chart(empty)

    def test_save_result_writes_both_files(self, tmp_path):
        path = save_result(self._result(), directory=tmp_path)
        assert path.exists()
        assert (tmp_path / "demo.json").exists()
        import json

        body = json.loads((tmp_path / "demo.json").read_text())
        assert body["series"]["basic"]["q2"] == 2.0

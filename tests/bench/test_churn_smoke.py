"""Smoke test: the churn benchmark runs at unit scale, nothing hangs,
and anti-entropy recovery beats the cold restart."""

import pytest

from repro.bench.churn import churn_recovery
from repro.bench.harness import BenchScale


@pytest.fixture(scope="module")
def result():
    return churn_recovery(BenchScale.unit())


class TestChurnRecovery:
    def test_phases_present(self, result):
        labels = result.row_labels()
        for variant in ("repair", "cold"):
            for phase in ("before", "during", "after-early", "after-late"):
                assert f"{variant}:{phase}" in labels
        assert "overload:burst" in labels

    def test_no_hangs(self, result):
        assert result.meta["repair_hung"] == 0
        assert result.meta["cold_hung"] == 0

    def test_churn_really_happened(self, result):
        for variant in ("repair", "cold"):
            assert result.meta[f"{variant}_failovers"] > 0
            assert result.meta[f"{variant}_gossip_rounds"] > 0

    def test_recovery_machinery_fired(self, result):
        # The repair variant moved cells; the cold variant must not have.
        moved = (
            result.meta["repair_repair_promoted"]
            + result.meta["repair_repair_shipped"]
            + result.meta["repair_handoff_streamed"]
        )
        assert moved > 0
        assert result.meta["cold_repair_promoted"] == 0
        assert result.meta["cold_repair_shipped"] == 0
        assert result.meta["cold_handoff_streamed"] == 0

    def test_warm_recovery_beats_cold(self, result):
        assert result.meta["warm_recovery_faster"]
        assert result.meta["recovery_hit_rate_advantage"] > 0

    def test_overload_burst_exercised(self, result):
        assert result.meta["overload_requests_shed"] > 0
        # Degradation under overload is explicit, never silent.
        assert result.series["min_completeness"]["overload:burst"] >= 0.0

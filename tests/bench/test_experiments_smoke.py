"""Smoke tests: every figure experiment runs at unit scale and returns
well-formed results.  Shape assertions live in benchmarks/ (default
scale); here we only verify the experiment *code* end to end.
"""

import pytest

from repro.bench import ablations, experiments
from repro.bench.harness import BenchScale


@pytest.fixture(scope="module")
def scale():
    return BenchScale.unit()


class TestFigureExperimentsRun:
    def test_fig6a(self, scale):
        result = experiments.fig6a_latency_by_query_size(scale)
        assert set(result.series) == {"basic", "stash_cold", "stash_hot"}
        assert result.row_labels() == ["country", "state", "county", "city"]
        for rows in result.series.values():
            assert all(v > 0 for v in rows.values())
        # Even at unit scale: hot beats basic on the biggest queries.
        assert result.series["stash_hot"]["country"] < result.series["basic"]["country"]

    def test_fig6b(self, scale):
        result = experiments.fig6b_throughput(scale)
        assert set(result.series) == {"basic", "stash"}
        assert result.row_labels() == ["state", "county", "city"]

    def test_fig6c(self, scale):
        result = experiments.fig6c_maintenance(scale)
        cells = result.series["cells_populated"]
        assert cells["country"] >= cells["city"]

    def test_fig6d(self, scale):
        result = experiments.fig6d_hotspot(scale)
        assert set(result.series["throughput_qps"]) == {
            "replication",
            "no_replication",
        }
        assert "timeline_replication" in result.meta

    @pytest.mark.parametrize("ascending", [False, True])
    def test_fig7ab(self, scale, ascending):
        result = experiments.fig7ab_iterative_dicing(scale, ascending)
        assert result.row_labels() == ["q1", "q2", "q3", "q4", "q5"]
        assert result.name == ("fig7b" if ascending else "fig7a")

    def test_fig7c(self, scale):
        result = experiments.fig7c_panning(scale)
        assert result.row_labels() == ["pan10%", "pan20%", "pan25%"]

    @pytest.mark.parametrize("direction", ["drill", "roll"])
    def test_fig7de(self, scale, direction):
        result = experiments.fig7de_zoom(scale, direction)
        assert set(result.series) == {"basic", "stash50%", "stash75%", "stash100%"}
        labels = result.row_labels()
        if direction == "drill":
            assert labels == sorted(labels)
        else:
            assert labels == sorted(labels, reverse=True)

    def test_fig7de_bad_direction(self, scale):
        with pytest.raises(ValueError):
            experiments.fig7de_zoom(scale, "sideways")

    def test_fig8a(self, scale):
        result = experiments.fig8a_es_panning(scale)
        assert set(result.series) == {"stash", "elastic"}
        assert len(result.row_labels()) == 9  # base + 8 directions

    @pytest.mark.parametrize("ascending", [False, True])
    def test_fig8bc(self, scale, ascending):
        result = experiments.fig8bc_es_dicing(scale, ascending)
        assert set(result.series) == {"stash", "elastic"}
        assert result.name == ("fig8b" if ascending else "fig8c")


class TestAblationsRun:
    def test_rollup(self, scale):
        result = ablations.ablation_rollup(scale)
        assert set(result.series["latency_s"]) == {"rollup_on", "rollup_off"}
        assert result.series["disk_blocks"]["rollup_on"] == 0

    def test_dispersion(self, scale):
        result = ablations.ablation_dispersion(scale)
        assert set(result.series["pan_latency_s"]) == {
            "dispersion_0.35",
            "dispersion_0",
        }

    def test_reroute(self, scale):
        result = ablations.ablation_reroute_probability(scale)
        assert len(result.series["throughput_qps"]) == 4

    def test_prefetch(self, scale):
        result = ablations.ablation_prefetch(scale)
        on = result.series["avg_pan_latency_s"]["prefetch_on"]
        off = result.series["avg_pan_latency_s"]["prefetch_off"]
        assert on < off

"""The bench regression sentinel: compare_reports and ``bench check``.

The ISSUE acceptance bar: a synthetic 2x slowdown must fail the check,
a clean re-run must pass, and cross-environment baselines are refused.
"""

import copy
import json

import pytest

from repro.bench.regression import (
    DEFAULT_THRESHOLD,
    MIN_SECONDS,
    compare_reports,
    env_mismatches,
    flatten_metrics,
    format_check,
    meta_of,
)
from repro.cli import main


def fake_report(scale: float = 1.0, **meta_overrides) -> dict:
    """A small kernel report with controllable timings and environment."""
    meta = {
        "python": "3.11.0",
        "numpy": "1.26.0",
        "seed": 42,
        "git_rev": "abc1234",
        "date": "2026-08-07T00:00:00Z",
    }
    meta.update(meta_overrides)
    return {
        "schema": "stash-bench-kernels/v2",
        "quick": True,
        "sizes": [2_000],
        "repeats": 2,
        "seed": meta["seed"],
        "meta": meta,
        "kernels": {
            "freshness": {
                "2000": {
                    "vectorized_s": 0.002 * scale,
                    "scalar_s": 0.080 * scale,
                    "speedup": 40.0,
                }
            },
            "eviction": {"2000": {"seconds": 0.004 * scale}},
        },
    }


class TestCompareReports:
    def test_clean_rerun_passes(self):
        verdict = compare_reports(fake_report(), fake_report(1.05))
        assert verdict["status"] == "ok"
        assert verdict["regressions"] == 0
        assert verdict["compared"] == 3

    def test_synthetic_2x_slowdown_fails(self):
        verdict = compare_reports(fake_report(), fake_report(2.0))
        assert verdict["status"] == "regression"
        assert verdict["regressions"] == 3
        regressed = [r["metric"] for r in verdict["rows"] if r.get("regressed")]
        assert "freshness@2000/vectorized_s" in regressed
        assert "eviction@2000/seconds" in regressed

    def test_env_mismatch_refused(self):
        verdict = compare_reports(
            fake_report(), fake_report(1.0, python="3.12.1")
        )
        assert verdict["status"] == "env-mismatch"
        assert any("python" in line for line in verdict["mismatches"])
        # Refusal beats regression detection: even a 10x slowdown from a
        # different interpreter is not reported as one.
        verdict = compare_reports(
            fake_report(), fake_report(10.0, numpy="2.0.0")
        )
        assert verdict["status"] == "env-mismatch"

    def test_seed_mismatch_refused(self):
        mismatches = env_mismatches(fake_report(), fake_report(1.0, seed=7))
        assert mismatches and "seed" in mismatches[0]

    def test_noise_floor_widens_threshold(self):
        """A metric whose own re-runs differ by 1.6x cannot fail at 1.5x."""
        baseline = fake_report()
        fresh = fake_report(1.7)
        rerun = copy.deepcopy(fresh)
        for by_size in rerun["kernels"].values():
            for entry in by_size.values():
                for field in ("vectorized_s", "scalar_s", "seconds"):
                    if field in entry:
                        entry[field] *= 1.6
        verdict = compare_reports(baseline, fresh, rerun=rerun)
        assert verdict["status"] == "ok"
        for row in verdict["rows"]:
            assert row["threshold"] == pytest.approx(1.6 * 1.25)

    def test_sub_noise_timings_skipped(self):
        baseline = fake_report()
        baseline["kernels"]["eviction"]["2000"]["seconds"] = MIN_SECONDS / 2
        verdict = compare_reports(baseline, fake_report(2.0))
        skipped = [r for r in verdict["rows"] if "skipped" in r]
        assert [r["metric"] for r in skipped] == ["eviction@2000/seconds"]

    def test_v1_baseline_meta_fallback(self):
        v1 = fake_report()
        del v1["meta"]
        v1.update(python="3.11.0", numpy="1.26.0", seed=42)
        assert meta_of(v1) == {"python": "3.11.0", "numpy": "1.26.0", "seed": 42}
        assert env_mismatches(v1, fake_report()) == []

    def test_flatten_metrics_names(self):
        metrics = flatten_metrics(fake_report())
        assert set(metrics) == {
            "freshness@2000/vectorized_s",
            "freshness@2000/scalar_s",
            "eviction@2000/seconds",
        }

    def test_format_check_renders_both_verdicts(self):
        ok = format_check(compare_reports(fake_report(), fake_report()))
        assert "0 regressions" in ok
        refused = format_check(
            compare_reports(fake_report(), fake_report(1.0, seed=1))
        )
        assert "REFUSED" in refused


class TestBenchCheckCli:
    """Exit codes: 0 ok, 1 regression, 2 refusal/bad input."""

    @pytest.fixture(scope="class")
    def real_baseline(self, tmp_path_factory):
        """A baseline generated in *this* environment via the CLI itself."""
        path = tmp_path_factory.mktemp("bench") / "baseline.json"
        code = main(
            ["bench", "kernels", "--quick", "--repeats", "1",
             "--output", str(path)]
        )
        assert code == 0
        return path

    def test_clean_rerun_exits_zero(self, real_baseline, capsys):
        assert main(["bench", "check", "--baseline", str(real_baseline)]) == 0
        out = capsys.readouterr().out
        assert "0 regressions" in out

    def test_doctored_baseline_exits_one(self, real_baseline, tmp_path, capsys):
        """Halve every baseline timing == a synthetic 2x slowdown now."""
        baseline = json.loads(real_baseline.read_text())
        for by_size in baseline["kernels"].values():
            for entry in by_size.values():
                for field in ("vectorized_s", "scalar_s", "memoized_s",
                              "naive_s", "seconds"):
                    if isinstance(entry.get(field), float):
                        entry[field] /= 8.0
        doctored = tmp_path / "doctored.json"
        doctored.write_text(json.dumps(baseline))
        verdict_path = tmp_path / "verdict.json"
        code = main(
            ["bench", "check", "--baseline", str(doctored),
             "--json", str(verdict_path)]
        )
        assert code == 1
        assert "REGRESSED" in capsys.readouterr().out
        verdict = json.loads(verdict_path.read_text())
        assert verdict["status"] == "regression"

    def test_foreign_baseline_exits_two(self, real_baseline, tmp_path, capsys):
        baseline = json.loads(real_baseline.read_text())
        baseline["meta"]["python"] = "2.7.18"
        foreign = tmp_path / "foreign.json"
        foreign.write_text(json.dumps(baseline))
        assert main(["bench", "check", "--baseline", str(foreign)]) == 2
        assert "REFUSED" in capsys.readouterr().out

    def test_missing_baseline_exits_two(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["bench", "check", "--baseline", str(missing)]) == 2
        assert "cannot read baseline" in capsys.readouterr().err

    def test_default_threshold_is_published(self):
        assert DEFAULT_THRESHOLD == 1.5

    def test_grouped_aggregation_metrics_are_covered(self, real_baseline):
        """The columnar scan kernel is part of the regression surface:
        both its vectorized and scalar timings flatten into compared
        metrics (quick mode runs 20k records)."""
        baseline = json.loads(real_baseline.read_text())
        metrics = flatten_metrics(baseline)
        assert "grouped_aggregation@20000/vectorized_s" in metrics
        assert "grouped_aggregation@20000/scalar_s" in metrics

    def test_grouped_aggregation_regression_exits_one(
        self, real_baseline, tmp_path, capsys
    ):
        """A slowdown in the columnar kernel alone must fail the check."""
        baseline = json.loads(real_baseline.read_text())
        entry = baseline["kernels"]["grouped_aggregation"]["20000"]
        entry["vectorized_s"] /= 16.0
        doctored = tmp_path / "agg-doctored.json"
        doctored.write_text(json.dumps(baseline))
        code = main(["bench", "check", "--baseline", str(doctored)])
        assert code == 1
        out = capsys.readouterr().out
        assert "grouped_aggregation@20000/vectorized_s" in out

"""Smoke test for ``repro bench scale``: a tiny sweep end to end.

Pins the BENCH_scale.json shape (schema tag, v2 meta block, per-combo
run records) so the CI ``scale-smoke`` job and downstream tooling can
rely on it.
"""

import json

import pytest

from repro.bench.harness import BenchScale
from repro.bench.scale import (
    ENGINES,
    SCHEMA,
    ScaleSweep,
    format_scale_report,
    run_scale,
    write_scale_report,
)

TINY = ScaleSweep(
    node_counts=(2,),
    user_counts=(3,),
    session_length=3,
    think_time_s=0.25,
    generator_users=5_000,
    scale=BenchScale.unit(),
)


@pytest.fixture(scope="module")
def report():
    return run_scale(TINY, seed=3)


class TestReportShape:
    def test_top_level_fields(self, report):
        assert report["schema"] == SCHEMA
        assert set(report) == {
            "schema", "meta", "mode", "workload", "slo_targets",
            "generator", "runs",
        }

    def test_meta_block_is_v2(self, report):
        assert set(report["meta"]) >= {"python", "numpy", "seed", "date"}
        assert report["meta"]["seed"] == 3

    def test_one_run_per_engine_and_combo(self, report):
        runs = report["runs"]
        assert len(runs) == len(TINY.node_counts) * len(TINY.user_counts) * len(
            ENGINES
        )
        assert {run["engine"] for run in runs} == set(ENGINES)

    def test_run_record_fields(self, report):
        for run in report["runs"]:
            assert set(run) == {
                "engine", "nodes", "users", "queries", "degraded",
                "makespan_s", "throughput_qps", "wall_s", "classes",
                "outcomes", "slo", "slo_violations",
            }
            assert run["queries"] == 3 * TINY.session_length
            assert run["throughput_qps"] > 0
            for stats in run["classes"].values():
                assert set(stats) == {"count", "p50_s", "p95_s", "p99_s"}
                assert stats["p50_s"] <= stats["p95_s"] <= stats["p99_s"]
            assert sum(run["outcomes"].values()) == run["queries"]

    def test_workload_block_pins_the_table(self, report):
        workload = report["workload"]
        assert workload["session_length"] == TINY.session_length
        assert len(workload["table_digest"]) == 64

    def test_generator_measurement(self, report):
        generator = report["generator"]
        assert generator["users"] == TINY.generator_users
        assert generator["queries_per_s"] > 0
        assert len(generator["digest"]) == 64


class TestDeterminismAndOutput:
    def test_same_seed_same_table_digest(self, report):
        again = run_scale(TINY, seed=3)
        assert (
            again["workload"]["table_digest"]
            == report["workload"]["table_digest"]
        )
        assert again["generator"]["digest"] == report["generator"]["digest"]

    def test_write_and_format_round_trip(self, report, tmp_path):
        path = tmp_path / "BENCH_scale.json"
        write_scale_report(report, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == SCHEMA
        assert len(loaded["runs"]) == len(report["runs"])
        rendered = format_scale_report(report)
        assert "stash" in rendered and "elastic" in rendered

"""Tests for Store and Resource."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.resources import Resource, Store


@pytest.fixture()
def sim():
    return Simulator()


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        store.put("a")
        got = []

        def getter():
            item = yield store.get()
            got.append(item)

        sim.process(getter())
        sim.run()
        assert got == ["a"]
        assert len(store) == 0

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        got = []

        def getter():
            item = yield store.get()
            got.append((sim.now, item))

        def putter():
            yield sim.timeout(4.0)
            store.put("late")

        sim.process(getter())
        sim.process(putter())
        sim.run()
        assert got == [(4.0, "late")]

    def test_fifo_order_items(self, sim):
        store = Store(sim)
        for i in range(5):
            store.put(i)
        got = []

        def getter():
            while len(got) < 5:
                item = yield store.get()
                got.append(item)

        sim.process(getter())
        sim.run()
        assert got == [0, 1, 2, 3, 4]

    def test_fifo_order_waiters(self, sim):
        store = Store(sim)
        got = []

        def getter(i):
            item = yield store.get()
            got.append((i, item))

        for i in range(3):
            sim.process(getter(i))
        sim.run()
        assert store.waiting_getters == 3
        for item in "abc":
            store.put(item)
        sim.run()
        assert got == [(0, "a"), (1, "b"), (2, "c")]

    def test_len_is_pending_depth(self, sim):
        store = Store(sim)
        for i in range(7):
            store.put(i)
        assert len(store) == 7
        assert store.total_puts == 7


class TestResource:
    def test_capacity_enforced(self, sim):
        res = Resource(sim, capacity=2)
        active = []
        peak = []

        def worker(i):
            yield res.acquire()
            active.append(i)
            peak.append(len(active))
            yield sim.timeout(1.0)
            active.remove(i)
            res.release()

        for i in range(6):
            sim.process(worker(i))
        sim.run()
        assert max(peak) <= 2
        assert sim.now == pytest.approx(3.0)  # 6 jobs / 2 slots * 1s

    def test_bad_capacity(self, sim):
        with pytest.raises(SimulationError):
            Resource(sim, capacity=0)

    def test_release_idle_raises(self, sim):
        res = Resource(sim, capacity=1)
        with pytest.raises(SimulationError):
            res.release()

    def test_queued_count(self, sim):
        res = Resource(sim, capacity=1)

        def worker():
            yield res.acquire()
            yield sim.timeout(10.0)
            res.release()

        for _ in range(4):
            sim.process(worker())
        sim.run(until=1.0)
        assert res.in_use == 1
        assert res.queued == 3

    def test_utilization(self, sim):
        res = Resource(sim, capacity=1)

        def worker():
            yield res.acquire()
            yield sim.timeout(5.0)
            res.release()
            yield sim.timeout(5.0)

        sim.run(until=sim.process(worker()))
        assert res.utilization() == pytest.approx(0.5)

"""Model-based test: Store behaves as a FIFO queue under random ops."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from repro.sim.resources import Store

#: Operations: ("put", value) or ("get",)
operations = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.integers()),
        st.tuples(st.just("get")),
    ),
    max_size=60,
)


class TestStoreModel:
    @given(operations)
    @settings(max_examples=60)
    def test_matches_reference_fifo(self, ops):
        sim = Simulator()
        store = Store(sim)
        reference: list[int] = []
        received: list[int] = []
        expected: list[int] = []
        outstanding_gets = 0

        for op in ops:
            if op[0] == "put":
                store.put(op[1])
                reference.append(op[1])
            else:
                outstanding_gets += 1

                def getter():
                    value = yield store.get()
                    received.append(value)

                sim.process(getter())

        # Every get that can be satisfied pops the FIFO in order.
        satisfiable = min(outstanding_gets, len(reference))
        expected = reference[:satisfiable]
        sim.run()
        assert received == expected
        # Leftover items stay queued; leftover getters stay waiting.
        assert list(store.items) == reference[satisfiable:]
        assert store.waiting_getters == outstanding_gets - satisfiable

    @given(st.lists(st.integers(), max_size=40))
    @settings(max_examples=40)
    def test_put_then_drain_preserves_order(self, values):
        sim = Simulator()
        store = Store(sim)
        for value in values:
            store.put(value)
        drained: list[int] = []

        def drainer():
            for _ in range(len(values)):
                item = yield store.get()
                drained.append(item)

        sim.process(drainer())
        sim.run()
        assert drained == values

"""Tests for metric collectors."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.metrics import (
    AttributionCollector,
    CounterSet,
    LatencyCollector,
    ThroughputTimeline,
)


class TestLatencyCollector:
    def test_basic_stats(self):
        col = LatencyCollector()
        for v in [1.0, 2.0, 3.0, 4.0]:
            col.record(v)
        assert len(col) == 4
        assert col.mean() == 2.5
        assert col.percentile(100) == 4.0

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            LatencyCollector().record(-1.0)

    def test_empty_raises(self):
        with pytest.raises(SimulationError):
            LatencyCollector().mean()
        with pytest.raises(SimulationError):
            LatencyCollector().percentile(50)

    def test_summary_keys(self):
        col = LatencyCollector()
        col.record(1.0)
        s = col.summary()
        assert set(s) == {"count", "mean", "p50", "p95", "p99", "max"}


class TestThroughputTimeline:
    def test_overall_rate(self):
        tl = ThroughputTimeline()
        for t in [1.0, 2.0, 4.0]:
            tl.record_completion(t)
        assert tl.total_duration() == 4.0
        assert tl.overall_rate() == pytest.approx(3 / 4)

    def test_empty_raises(self):
        with pytest.raises(SimulationError):
            ThroughputTimeline().total_duration()

    def test_per_second_series(self):
        tl = ThroughputTimeline()
        for t in [0.1, 0.5, 1.2, 2.9, 2.95]:
            tl.record_completion(t)
        series = tl.per_second_series(1.0)
        np.testing.assert_array_equal(series, [2, 1, 2])

    def test_cumulative_series(self):
        tl = ThroughputTimeline()
        for t in [0.1, 1.5, 2.5]:
            tl.record_completion(t)
        np.testing.assert_array_equal(tl.cumulative_series(1.0), [1, 2, 3])

    def test_empty_series(self):
        assert ThroughputTimeline().per_second_series().size == 0

    def test_bad_bin_width(self):
        tl = ThroughputTimeline()
        tl.record_completion(1.0)
        with pytest.raises(SimulationError):
            tl.per_second_series(0.0)


class TestCounterSet:
    def test_increment_and_get(self):
        c = CounterSet()
        c.increment("hits")
        c.increment("hits", 4)
        assert c.get("hits") == 5
        assert c.get("misses") == 0

    def test_ratio(self):
        c = CounterSet()
        c.increment("hits", 3)
        c.increment("lookups", 4)
        assert c.ratio("hits", "lookups") == 0.75

    def test_ratio_zero_denominator(self):
        with pytest.raises(SimulationError):
            CounterSet().ratio("a", "b")

    def test_as_dict_copy(self):
        c = CounterSet()
        c.increment("x")
        d = c.as_dict()
        d["x"] = 99
        assert c.get("x") == 1

    def test_instances_do_not_share_counts(self):
        a = CounterSet()
        b = CounterSet()
        a.increment("x", 5)
        assert b.get("x") == 0
        assert a.counts is not b.counts


class TestAttributionCollector:
    def test_record_and_totals(self):
        col = AttributionCollector()
        col.record({"disk": 2.0, "compute": 1.0})
        col.record({"disk": 1.0, "network": 1.0})
        assert len(col) == 2
        assert col.totals() == {"disk": 3.0, "compute": 1.0, "network": 1.0}
        assert col.mean_seconds()["disk"] == pytest.approx(1.5)
        assert col.fractions()["disk"] == pytest.approx(0.6)

    def test_none_is_no_op(self):
        col = AttributionCollector()
        col.record(None)
        assert len(col) == 0
        assert col.totals() == {}

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            AttributionCollector().record({"disk": -0.1})

    def test_empty_raises(self):
        col = AttributionCollector()
        with pytest.raises(SimulationError):
            col.mean_seconds()
        with pytest.raises(SimulationError):
            col.fractions()

    def test_summary_shape(self):
        col = AttributionCollector()
        col.record({"disk": 3.0, "compute": 1.0})
        s = col.summary()
        assert s["count"] == 1.0
        assert s["mean_disk"] == pytest.approx(3.0)
        assert s["fraction_compute"] == pytest.approx(0.25)

    def test_empty_summary_only_count(self):
        assert AttributionCollector().summary() == {"count": 0.0}

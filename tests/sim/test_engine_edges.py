"""Edge-case tests for the simulation engine beyond the basics."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


@pytest.fixture()
def sim():
    return Simulator()


class TestPeekAndStep:
    def test_peek_empty(self, sim):
        assert sim.peek() == float("inf")

    def test_peek_returns_next_time(self, sim):
        sim.timeout(5.0)
        sim.timeout(2.0)
        assert sim.peek() == 2.0

    def test_step_empty_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.step()

    def test_step_advances_one_event(self, sim):
        fired = []
        sim.timeout(1.0).add_callback(lambda e: fired.append(1))
        sim.timeout(2.0).add_callback(lambda e: fired.append(2))
        sim.step()
        assert fired == [1]
        assert sim.now == 1.0


class TestZeroDelayOrdering:
    def test_zero_delay_timeouts_fifo(self, sim):
        order = []
        for i in range(5):
            sim.timeout(0.0).add_callback(lambda e, i=i: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_succeed_schedules_at_current_time(self, sim):
        times = []

        def proc():
            gate = sim.event()
            gate.succeed("x")
            value = yield gate
            times.append((sim.now, value))

        def outer():
            yield sim.timeout(3.0)
            yield sim.process(proc())

        sim.run(until=sim.process(outer()))
        assert times == [(3.0, "x")]


class TestCombinatorEdges:
    def test_any_of_with_failure_first(self, sim):
        def failer():
            yield sim.timeout(1.0)
            raise ValueError("first")

        combo = sim.any_of([sim.process(failer()), sim.timeout(2.0, "slow")])
        with pytest.raises(ValueError):
            sim.run(until=combo)

    def test_any_of_success_beats_later_failure(self, sim):
        def failer():
            yield sim.timeout(5.0)
            raise ValueError("late")

        def guard():
            # Swallow the late failure so it doesn't surface unhandled.
            try:
                yield failing
            except ValueError:
                pass

        failing = sim.process(failer())
        combo = sim.any_of([failing, sim.timeout(1.0, "fast")])
        sim.process(guard())
        index, value = sim.run(until=combo)
        assert (index, value) == (1, "fast")
        sim.run()

    def test_all_of_single(self, sim):
        assert sim.run(until=sim.all_of([sim.timeout(1.0, "a")])) == ["a"]

    def test_nested_all_of(self, sim):
        inner = sim.all_of([sim.timeout(1.0, 1), sim.timeout(2.0, 2)])
        outer = sim.all_of([inner, sim.timeout(3.0, 3)])
        assert sim.run(until=outer) == [[1, 2], 3]
        assert sim.now == 3.0


class TestProcessReturnValues:
    def test_generator_return_none(self, sim):
        def proc():
            yield sim.timeout(1.0)

        assert sim.run(until=sim.process(proc())) is None

    def test_immediate_return(self, sim):
        def proc():
            return 42
            yield  # pragma: no cover

        assert sim.run(until=sim.process(proc())) == 42

    def test_deeply_nested_processes(self, sim):
        def leaf(depth):
            yield sim.timeout(0.001)
            return depth

        def recurse(depth):
            if depth == 0:
                result = yield sim.process(leaf(0))
                return result
            result = yield sim.process(recurse(depth - 1))
            return result + 1

        assert sim.run(until=sim.process(recurse(50))) == 50

"""Tests for the discrete-event simulation core."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.engine import Simulator


@pytest.fixture()
def sim():
    return Simulator()


class TestTimeouts:
    def test_timeout_advances_clock(self, sim):
        done = sim.timeout(5.0)
        sim.run(until=done)
        assert sim.now == 5.0

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_timeout_value(self, sim):
        assert sim.run(until=sim.timeout(1.0, value="hello")) == "hello"

    def test_run_until_time(self, sim):
        fired = []
        sim.timeout(1.0).add_callback(lambda ev: fired.append(1))
        sim.timeout(10.0).add_callback(lambda ev: fired.append(2))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0

    def test_run_until_past_raises(self, sim):
        sim.run(until=5.0)
        with pytest.raises(SimulationError):
            sim.run(until=1.0)

    def test_deterministic_tie_order(self, sim):
        fired = []
        for i in range(10):
            sim.timeout(1.0).add_callback(lambda ev, i=i: fired.append(i))
        sim.run()
        assert fired == list(range(10))


class TestProcesses:
    def test_sequential_waits(self, sim):
        trace = []

        def proc():
            trace.append(("start", sim.now))
            yield sim.timeout(2.0)
            trace.append(("mid", sim.now))
            got = yield sim.timeout(3.0, value=42)
            trace.append(("end", sim.now, got))
            return "done"

        result = sim.run(until=sim.process(proc()))
        assert result == "done"
        assert trace == [("start", 0.0), ("mid", 2.0), ("end", 5.0, 42)]

    def test_process_waits_on_event(self, sim):
        gate = sim.event()
        results = []

        def waiter():
            value = yield gate
            results.append((sim.now, value))

        def opener():
            yield sim.timeout(7.0)
            gate.succeed("open")

        sim.process(waiter())
        sim.process(opener())
        sim.run()
        assert results == [(7.0, "open")]

    def test_many_waiters_one_event(self, sim):
        gate = sim.event()
        hits = []

        def waiter(i):
            yield gate
            hits.append(i)

        for i in range(5):
            sim.process(waiter(i))
        gate.succeed()
        sim.run()
        assert sorted(hits) == [0, 1, 2, 3, 4]

    def test_nested_processes(self, sim):
        def inner():
            yield sim.timeout(2.0)
            return 10

        def outer():
            a = yield sim.process(inner())
            b = yield sim.process(inner())
            return a + b

        assert sim.run(until=sim.process(outer())) == 20
        assert sim.now == 4.0

    def test_failed_event_raises_in_process(self, sim):
        gate = sim.event()
        caught = []

        def waiter():
            try:
                yield gate
            except ValueError as exc:
                caught.append(str(exc))

        sim.process(waiter())
        gate.fail(ValueError("boom"))
        sim.run()
        assert caught == ["boom"]

    def test_unhandled_process_exception_propagates(self, sim):
        def bad():
            yield sim.timeout(1.0)
            raise RuntimeError("unhandled")

        sim.process(bad())
        with pytest.raises(RuntimeError, match="unhandled"):
            sim.run()

    def test_process_failure_propagates_to_waiter(self, sim):
        def bad():
            yield sim.timeout(1.0)
            raise RuntimeError("inner failure")

        def outer():
            try:
                yield sim.process(bad())
            except RuntimeError:
                return "caught"
            return "missed"

        assert sim.run(until=sim.process(outer())) == "caught"

    def test_yield_non_event_rejected(self, sim):
        def bad():
            yield 42

        sim.process(bad())
        with pytest.raises(SimulationError):
            sim.run()

    def test_cross_simulator_event_rejected(self, sim):
        other = Simulator()

        def bad():
            yield other.timeout(1.0)

        sim.process(bad())
        with pytest.raises(SimulationError):
            sim.run()


class TestEvents:
    def test_double_trigger_rejected(self, sim):
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()
        with pytest.raises(SimulationError):
            ev.fail(ValueError())

    def test_value_before_trigger(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_fail_requires_exception(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            ev.fail("not an exception")  # type: ignore[arg-type]

    def test_callback_after_processed_runs_immediately(self, sim):
        ev = sim.event()
        ev.succeed(5)
        sim.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == [5]

    def test_run_until_never_fired_event(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            sim.run(until=ev)


class TestCombinators:
    def test_all_of_values_in_order(self, sim):
        events = [sim.timeout(3.0, "c"), sim.timeout(1.0, "a"), sim.timeout(2.0, "b")]
        result = sim.run(until=sim.all_of(events))
        assert result == ["c", "a", "b"]
        assert sim.now == 3.0

    def test_all_of_empty(self, sim):
        assert sim.run(until=sim.all_of([])) == []

    def test_all_of_fails_fast(self, sim):
        gate = sim.event()

        def failer():
            yield sim.timeout(1.0)
            raise RuntimeError("child failed")

        combo = sim.all_of([sim.process(failer()), gate])
        with pytest.raises(RuntimeError, match="child failed"):
            sim.run(until=combo)

    def test_any_of_first_wins(self, sim):
        events = [sim.timeout(3.0, "slow"), sim.timeout(1.0, "fast")]
        index, value = sim.run(until=sim.any_of(events))
        assert (index, value) == (1, "fast")
        assert sim.now == 1.0

    def test_any_of_empty_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.any_of([])


class TestDeterminism:
    @given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=30))
    @settings(max_examples=30)
    def test_clock_monotonic_and_total_time(self, delays):
        sim = Simulator()
        observed = []

        def proc():
            for d in delays:
                yield sim.timeout(d)
                observed.append(sim.now)

        sim.run(until=sim.process(proc()))
        assert observed == sorted(observed)
        assert sim.now == pytest.approx(sum(delays))

    @given(st.integers(1, 40))
    @settings(max_examples=20)
    def test_parallel_processes_end_at_max(self, n):
        sim = Simulator()

        def proc(i):
            yield sim.timeout(float(i))
            return i

        done = sim.all_of([sim.process(proc(i)) for i in range(n)])
        values = sim.run(until=done)
        assert values == list(range(n))
        assert sim.now == float(n - 1)

"""Tests for the network and disk models."""

import pytest

from repro.config import CostModel
from repro.errors import NetworkError
from repro.sim.disk import Disk
from repro.sim.engine import Simulator
from repro.sim.network import Network


@pytest.fixture()
def sim():
    return Simulator()


@pytest.fixture()
def cost():
    return CostModel()


@pytest.fixture()
def net(sim, cost):
    network = Network(sim, cost)
    network.register("a")
    network.register("b")
    return network


class TestNetwork:
    def test_send_pays_latency_and_bandwidth(self, sim, net, cost):
        net.send("a", "b", "ping", None, size=10_000)
        received = []

        def server():
            msg = yield net.inbox("b").get()
            received.append((sim.now, msg.kind))

        sim.process(server())
        sim.run()
        expected = cost.network_latency + 10_000 / cost.network_bandwidth
        assert received == [(pytest.approx(expected), "ping")]

    def test_local_send_free(self, sim, net):
        net.send("a", "a", "self", None, size=1_000_000)
        received = []

        def server():
            msg = yield net.inbox("a").get()
            received.append(sim.now)

        sim.process(server())
        sim.run()
        assert received == [0.0]

    def test_unknown_node(self, net):
        with pytest.raises(NetworkError):
            net.send("a", "nope", "x", None)
        with pytest.raises(NetworkError):
            net.inbox("ghost")

    def test_rpc_round_trip(self, sim, net, cost):
        def server():
            msg = yield net.inbox("b").get()
            net.respond(msg, msg.payload * 2, size=100)

        def client():
            reply = net.request("a", "b", "double", 21, size=100)
            value = yield reply
            return (sim.now, value)

        sim.process(server())
        at, value = sim.run(until=sim.process(client()))
        assert value == 42
        one_way = cost.network_time(100)
        assert at == pytest.approx(2 * one_way)

    def test_respond_without_reply_slot(self, sim, net):
        net.send("a", "b", "oneway", None)

        def server():
            msg = yield net.inbox("b").get()
            with pytest.raises(NetworkError):
                net.respond(msg, None)

        sim.process(server())
        sim.run()

    def test_respond_error_fails_caller(self, sim, net):
        def server():
            msg = yield net.inbox("b").get()
            net.respond_error(msg, ValueError("server-side"))

        def client():
            try:
                yield net.request("a", "b", "x", None)
            except ValueError as exc:
                return str(exc)

        sim.process(server())
        assert sim.run(until=sim.process(client())) == "server-side"

    def test_counters(self, sim, net):
        net.send("a", "b", "x", None, size=500)
        net.send("a", "b", "y", None, size=700)
        drain = []

        def server():
            for _ in range(2):
                msg = yield net.inbox("b").get()
                drain.append(msg.kind)

        sim.process(server())
        sim.run()
        assert net.messages_sent == 2
        assert net.bytes_sent == 1200

    def test_queue_depth(self, sim, net):
        for _ in range(5):
            net.send("a", "b", "x", None)
        sim.run()
        assert net.queue_depth("b") == 5
        assert net.queue_depth("a") == 0


class TestDisk:
    def test_read_time(self, sim, cost):
        disk = Disk(sim, cost, "n0", channels=1)
        done = disk.read(1_000_000)
        sim.run(until=done)
        assert sim.now == pytest.approx(cost.disk_read_time(1_000_000))
        assert disk.reads == 1
        assert disk.bytes_read == 1_000_000

    def test_channel_contention_serializes(self, sim, cost):
        disk = Disk(sim, cost, "n0", channels=1)
        done = sim.all_of([disk.read(0), disk.read(0), disk.read(0)])
        sim.run(until=done)
        # Three seeks back-to-back on one channel.
        assert sim.now == pytest.approx(3 * cost.disk_seek)

    def test_two_channels_parallel(self, sim, cost):
        disk = Disk(sim, cost, "n0", channels=2)
        done = sim.all_of([disk.read(0), disk.read(0)])
        sim.run(until=done)
        assert sim.now == pytest.approx(cost.disk_seek)

    def test_data_scale_multiplier(self, sim):
        fast = CostModel(data_scale=1.0)
        slow = CostModel(data_scale=100.0)
        assert slow.disk_read_time(10_000) > fast.disk_read_time(10_000)

"""Tests for the cluster invariant auditor — and, through it, a deep
consistency check of the whole system after realistic workloads."""

import numpy as np
import pytest

from repro.audit import AuditError, audit_cluster
from repro.config import ClusterConfig, EvictionConfig, ReplicationConfig, StashConfig
from repro.core.cell import Cell
from repro.core.cluster import StashCluster
from repro.core.keys import CellKey
from repro.data.generator import NAM_DOMAIN, small_test_dataset
from repro.data.statistics import SummaryVector
from repro.geo.resolution import Resolution
from repro.geo.temporal import TemporalResolution, TimeKey
from repro.workload.hotspot import hotspot_workload
from repro.workload.queries import QuerySize, random_query


def make_cluster(dataset=None, **config_kwargs):
    if dataset is None:
        dataset = small_test_dataset(num_records=5_000)
    defaults = dict(cluster=ClusterConfig(num_nodes=6))
    defaults.update(config_kwargs)
    return StashCluster(dataset, StashConfig(**defaults))


def workload(n=6, seed=3):
    rng = np.random.default_rng(seed)
    return [
        random_query(
            rng,
            QuerySize.STATE,
            NAM_DOMAIN,
            day=TimeKey.of(2013, 2, 2),
            resolution=Resolution(3, TemporalResolution.DAY),
        )
        for _ in range(n)
    ]


class TestCleanClustersPass:
    def test_fresh_cluster(self):
        cluster = make_cluster()
        assert audit_cluster(cluster) == 0

    def test_after_serial_workload(self):
        cluster = make_cluster()
        cluster.run_serial(workload())
        cluster.drain()
        assert audit_cluster(cluster, value_sample=-1) > 0

    def test_after_eviction_pressure(self):
        cluster = make_cluster(
            eviction=EvictionConfig(max_cells=40, safe_fraction=0.7)
        )
        cluster.run_serial(workload(8))
        cluster.drain()
        audit_cluster(cluster, value_sample=-1)

    def test_after_hotspot_and_replication(self):
        dataset = small_test_dataset(num_records=8_000, num_days=3)
        cluster = make_cluster(
            dataset=dataset,
            replication=ReplicationConfig(
                hotspot_queue_threshold=8, cooldown=0.5, reroute_probability=0.8
            ),
        )
        rng = np.random.default_rng(5)
        queries = hotspot_workload(rng, NAM_DOMAIN, 100)
        cluster.warm(queries[:2])
        cluster.run_concurrent(queries)
        cluster.drain()
        assert cluster.total_guest_cells() > 0  # replication happened
        audit_cluster(cluster, value_sample=24)

    def test_after_live_ingest(self):
        from tests.core.test_live_ingest import new_observations

        cluster = make_cluster()
        cluster.run_serial(workload(3))
        cluster.drain()
        cluster.ingest_live(new_observations())
        cluster.run_serial([q.panned(0, 0) for q in workload(3)])
        cluster.drain()
        audit_cluster(cluster, value_sample=-1)


class TestCorruptionDetected:
    def _warm_cluster(self):
        cluster = make_cluster()
        cluster.run_serial(workload(2))
        cluster.drain()
        return cluster

    def _any_node_with_cells(self, cluster):
        for node in cluster.nodes.values():
            if len(node.graph) > 0:
                return node
        raise AssertionError("no node has cells")

    def test_detects_value_drift(self):
        cluster = self._warm_cluster()
        node = self._any_node_with_cells(cluster)
        cell = next(c for c in node.graph.cells() if not c.summary.is_empty)
        cell.summary = SummaryVector.from_arrays(
            {name: np.array([1.0]) for name in cluster.attribute_names}
        )
        with pytest.raises(AuditError, match="drifted"):
            audit_cluster(cluster, value_sample=-1)

    def test_detects_misplaced_cell(self):
        cluster = self._warm_cluster()
        donor = self._any_node_with_cells(cluster)
        cell = next(iter(donor.graph.cells()))
        wrong = next(
            node
            for node in cluster.nodes.values()
            if node.partitioner.node_for(cell.key.geohash) != node.node_id
        )
        wrong.graph.insert(Cell(key=cell.key, summary=cell.summary))
        with pytest.raises(AuditError, match="owned by"):
            audit_cluster(cluster, value_sample=0)

    def test_detects_plm_ghost(self):
        cluster = self._warm_cluster()
        node = self._any_node_with_cells(cluster)
        cell = next(iter(node.graph.cells()))
        level = node.graph.level_of(cell.key)
        # Remove the cell behind the PLM's back.
        del node.graph._levels[level][cell.key]
        with pytest.raises(AuditError, match="absent"):
            audit_cluster(cluster, value_sample=0)

    def test_detects_plm_orphan(self):
        cluster = self._warm_cluster()
        node = self._any_node_with_cells(cluster)
        key = CellKey(
            node.partitioner.partition_key("9q8y7") + "8y7"[:0] or "9q8y7",
            TimeKey.of(2013, 2, 2),
        )
        # Insert a cell without telling the PLM.
        owner = cluster.owner_node(key)
        level = owner.graph.level_of(key)
        owner.graph._levels.setdefault(level, {})[key] = Cell(
            key=key, summary=SummaryVector.empty(cluster.attribute_names)
        )
        with pytest.raises(AuditError, match="missing from PLM"):
            audit_cluster(cluster, value_sample=0)

    def test_detects_overfull_node(self):
        cluster = make_cluster(eviction=EvictionConfig(max_cells=3))
        cluster.start()
        node = next(iter(cluster.nodes.values()))
        from repro.geo.geohash import children

        for code in children("9q8y")[:8]:
            key = CellKey(code, TimeKey.of(2013, 2, 2))
            owner = cluster.owner_node(key)
            owner.graph.upsert(
                Cell(key=key, summary=SummaryVector.empty(cluster.attribute_names))
            )
        with pytest.raises(AuditError, match="exceed the"):
            audit_cluster(cluster, value_sample=0)

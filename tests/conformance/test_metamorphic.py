"""Metamorphic relations hold on a live cluster — and catch corruption.

Relations need no oracle, so they also serve as the cheapest mutation
detectors: the sensitivity tests below corrupt a production merge and
assert the relation actually notices.
"""

import pytest
from hypothesis import HealthCheck, given, settings

import repro.core.aggregation
from repro.config import ClusterConfig, StashConfig
from repro.core.cluster import StashCluster
from repro.data.generator import small_test_dataset
from repro.geo.bbox import BoundingBox
from repro.geo.resolution import Resolution
from repro.geo.temporal import TemporalResolution, TimeKey
from repro.oracle.metamorphic import (
    check_eviction_independence,
    check_pan_consistency,
    check_parent_children,
    check_split_additivity,
)
from repro.query.model import AggregationQuery
from tests.strategies import queries

DATASET = small_test_dataset(num_records=4_000, num_days=4)
CONFIG = StashConfig(cluster=ClusterConfig(num_nodes=5))


def fresh_cluster():
    return StashCluster(DATASET, CONFIG)


def q(box, precision=3, temporal=TemporalResolution.DAY, day=2):
    return AggregationQuery(
        bbox=box,
        time_range=TimeKey.of(2013, 2, day).epoch_range(),
        resolution=Resolution(precision, temporal),
    )


BOXES = [
    BoundingBox(32.0, 38.0, -112.0, -100.0),
    BoundingBox(44.0, 50.0, -95.0, -85.0),
]


class TestRelationsHold:
    def test_parent_children_spatial(self):
        cluster = fresh_cluster()
        for box in BOXES:
            assert check_parent_children(cluster, q(box, precision=2), "spatial") == []

    def test_parent_children_temporal(self):
        cluster = fresh_cluster()
        assert check_parent_children(cluster, q(BOXES[0]), "temporal") == []

    def test_pan_consistency(self):
        cluster = fresh_cluster()
        query = q(BOXES[0], precision=4)
        assert check_pan_consistency(cluster, query, 1.5, -2.0) == []

    def test_split_additivity(self):
        cluster = fresh_cluster()
        for box in BOXES:
            assert check_split_additivity(cluster, q(box, precision=4)) == []

    def test_eviction_independence(self):
        cluster = fresh_cluster()
        query = q(BOXES[1], precision=4)
        assert check_eviction_independence(cluster, query) == []
        assert cluster.total_cached_cells() > 0  # flush happened mid-check, refilled

    @given(queries(min_precision=3, max_precision=4))
    @settings(
        max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_split_additivity_random(self, query):
        assert check_split_additivity(fresh_cluster(), query) == []


class TestQuerySplitsPartition:
    @given(queries())
    @settings(max_examples=40, deadline=None)
    def test_spatial_split_partitions_footprint(self, query):
        parts = query.split_spatial()
        if not parts:
            return
        whole = set(query.footprint())
        fps = [set(p.footprint()) for p in parts]
        assert set.union(*fps) == whole
        assert sum(len(fp) for fp in fps) == len(whole)

    @given(queries(multi_day=True))
    @settings(max_examples=40, deadline=None)
    def test_temporal_split_partitions_footprint(self, query):
        parts = query.split_temporal()
        if not parts:
            return
        whole = set(query.footprint())
        fps = [set(p.footprint()) for p in parts]
        assert set.union(*fps) == whole
        assert sum(len(fp) for fp in fps) == len(whole)

    def test_single_cell_query_does_not_split(self):
        tiny = q(BoundingBox(35.0, 35.01, -105.0, -104.99), precision=2)
        assert tiny.split_spatial() == []
        assert tiny.split_temporal() == []


class TestRelationSensitivity:
    """A corrupted merge must trip the relations (mutation check)."""

    def test_parent_children_catches_corrupt_rollup(self, monkeypatch):
        real = repro.core.aggregation.merge_summaries

        def corrupted(summaries, attributes):
            nonempty = [s for s in summaries if not s.is_empty]
            if len(nonempty) > 1:
                nonempty = nonempty[:-1]
            return real(nonempty, attributes)

        monkeypatch.setattr(
            repro.core.aggregation, "merge_summaries", corrupted
        )
        cluster = fresh_cluster()
        query = q(BOXES[0], precision=2)
        # Warm the child level so the parent query takes the roll-up path.
        child = AggregationQuery(
            bbox=query.snapped_bbox(),
            time_range=query.snapped_time_range(),
            resolution=Resolution(3, TemporalResolution.DAY),
        )
        cluster.warm([child])
        failures = check_parent_children(cluster, query, "spatial")
        assert failures, "corrupted roll-up merge not detected"
        assert all(f.relation == "parent-children:spatial" for f in failures)

    def test_pan_consistency_catches_unstable_cache(self, monkeypatch):
        """If cached cell values drifted between reads (e.g. a cell clipped
        to whichever query populated it instead of its full extent), two
        overlapping pans would disagree on shared cells."""
        from repro.core.cell import Cell
        from repro.core.graph import StashGraph
        from repro.data.statistics import AttributeSummary, SummaryVector

        real_get = StashGraph.get
        reads = [0]

        def drifting(self, key):
            cell = real_get(self, key)
            if cell is not None and not cell.summary.is_empty:
                reads[0] += 1
                bad = SummaryVector(
                    {
                        name: AttributeSummary(
                            s.count,
                            s.total + 0.01 * reads[0],
                            s.total_sq,
                            s.minimum,
                            s.maximum,
                        )
                        for name, s in (
                            (a, cell.summary[a]) for a in cell.summary.attributes
                        )
                    }
                )
                return Cell(key=cell.key, summary=bad)
            return cell

        monkeypatch.setattr(StashGraph, "get", drifting)
        cluster = fresh_cluster()
        query = q(BOXES[0], precision=3)
        cluster.warm([query])
        failures = check_pan_consistency(cluster, query, 0.5, 0.5)
        assert failures, "drifting cached values not detected"


@pytest.mark.parametrize("axis", ["spatial", "temporal"])
def test_degraded_results_skip_relations(axis):
    """Relations never fire on explicit partial answers (no false alarms)."""
    from repro.oracle.metamorphic import RelationFailure  # noqa: F401 (doc link)

    cluster = fresh_cluster()
    query = q(BOXES[0], precision=2)

    class FakeDegraded:
        completeness = 0.5
        degraded = True
        cells = {}

    cluster.run_query = lambda q: FakeDegraded()  # type: ignore[assignment]
    assert check_parent_children(cluster, query, axis) == []

"""The oracle itself: independent agreement with ground_truth_cells.

``ground_truth_cells`` shares the vectorized ``grouped_summaries`` kernel
with the production scan path, so agreement between the two oracles is a
real cross-check: scalar-vs-vectorized binning, fsum-vs-pairwise
accumulation, two independent group-by implementations.
"""

import math

from hypothesis import HealthCheck, given, settings

from repro.data.generator import small_test_dataset
from repro.data.statistics import AttributeSummary, SummaryVector
from repro.geo.bbox import BoundingBox
from repro.geo.resolution import Resolution
from repro.geo.temporal import TemporalResolution, TimeKey
from repro.oracle.engine import BruteForceOracle, reference_merge
from repro.query.model import AggregationQuery
from repro.storage.backend import ground_truth_cells
from tests.strategies import queries

DATASET = small_test_dataset(num_records=4_000, num_days=4)
ORACLE = BruteForceOracle(DATASET)


def q(box, day=2, precision=3, temporal=TemporalResolution.DAY):
    return AggregationQuery(
        bbox=box,
        time_range=TimeKey.of(2013, 2, day).epoch_range(),
        resolution=Resolution(precision, temporal),
    )


class TestOracleAgainstVectorizedTruth:
    @given(queries(multi_day=True))
    @settings(
        max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_matches_ground_truth_cells(self, query):
        truth = ground_truth_cells(DATASET, query)
        answer = ORACLE.answer(query)
        assert set(answer) == set(truth)
        for key, vec in answer.items():
            assert vec.approx_equal(truth[key])

    @given(queries())
    @settings(
        max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    def test_attribute_projection(self, query):
        projected = AggregationQuery(
            bbox=query.bbox,
            time_range=query.time_range,
            resolution=query.resolution,
            attributes=("temperature",),
        )
        full = ORACLE.answer(query)
        slim = ORACLE.answer(projected)
        assert set(slim) == set(full)
        for key, vec in slim.items():
            assert vec.attributes == ["temperature"]
            assert vec["temperature"].approx_equal(full[key]["temperature"])


class TestOracleSemantics:
    def test_empty_region(self):
        # Middle of the Pacific: no NAM observations.
        answer = ORACLE.answer(q(BoundingBox(-10.0, -5.0, -160.0, -150.0)))
        assert answer == {}

    def test_all_cells_nonempty(self):
        answer = ORACLE.answer(q(BoundingBox(30.0, 40.0, -110.0, -100.0)))
        assert answer
        assert all(vec.count > 0 for vec in answer.values())

    def test_snapped_extent_includes_boundary_records(self):
        """Records outside the raw bbox but inside its covering cells count."""
        tight = q(BoundingBox(35.0, 35.1, -105.0, -104.9))
        answer = ORACLE.answer(tight)
        total = sum(vec.count for vec in answer.values())
        assert total == ORACLE.total_in(tight)
        snapped = tight.snapped_bbox()
        in_snapped = sum(
            1
            for lat, lon, epoch in zip(
                DATASET.lats, DATASET.lons, DATASET.epochs
            )
            if snapped.south <= lat < snapped.north
            and snapped.west <= lon < snapped.east
            and tight.snapped_time_range().start
            <= epoch
            < tight.snapped_time_range().end
        )
        assert total == in_snapped

    def test_binning_column_memoized(self):
        oracle = BruteForceOracle(DATASET)
        first = oracle._geohash_column(3)
        assert oracle._geohash_column(3) is first


class TestReferenceMerge:
    def test_matches_summary_vector_merge(self):
        a = SummaryVector.from_arrays(
            {"x": [1.0, 2.0, 3.0], "y": [0.5, -0.5, 4.0]}
        )
        b = SummaryVector.from_arrays({"x": [10.0], "y": [-2.0]})
        expected = a.merge(b)
        assert reference_merge([a, b], ["x", "y"]).approx_equal(expected)

    def test_empty_input_is_identity(self):
        merged = reference_merge([], ["x"])
        assert merged.is_empty
        a = SummaryVector.from_arrays({"x": [7.0]})
        assert reference_merge([a, SummaryVector.empty(["x"])], ["x"]).approx_equal(a)

    def test_does_not_call_production_merge(self, monkeypatch):
        """The whole point: a corrupted production merge cannot leak in."""

        def poisoned(self, other):
            raise AssertionError("reference_merge used AttributeSummary.merge")

        monkeypatch.setattr(AttributeSummary, "merge", poisoned)
        monkeypatch.setattr(
            SummaryVector, "merge", lambda self, other: poisoned(self, other)
        )
        a = SummaryVector.from_arrays({"x": [1.0, 2.0]})
        b = SummaryVector.from_arrays({"x": [3.0]})
        merged = reference_merge([a, b], ["x"])
        assert merged.count == 3
        assert math.isclose(merged["x"].total, 6.0)

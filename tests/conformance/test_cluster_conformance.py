"""Cluster-vs-oracle conformance across configuration axes (small runs).

The CI ``repro conform`` job runs the full campaign; these tests keep a
per-axis slice inside the tier-1 suite so a conformance break fails fast
with a readable divergence report, and they pin the harness's own
behavior: the degraded-answer policy, the fault axis actually injecting
faults, and deterministic workloads per seed.
"""

import numpy as np
import pytest

from repro.data.generator import conformance_dataset
from repro.oracle.conformance import (
    AXES,
    _axis_faults,
    _check_axis,
    compare_result,
    exploration_workload,
    minimize_failing_query,
    run_campaign,
)
from repro.oracle.engine import BruteForceOracle
from repro.geo.temporal import TimeKey

DAYS = [TimeKey.of(2013, 2, day) for day in (1, 2, 3)]


@pytest.fixture(scope="module")
def dataset():
    return conformance_dataset(num_records=3_000, seed=3)


@pytest.fixture(scope="module")
def oracle(dataset):
    return BruteForceOracle(dataset)


@pytest.mark.parametrize(
    "axis",
    ["cold-cache", "warm-cache", "eviction-pressure", "rollup", "no-rollup"],
)
def test_axis_conforms(axis, dataset, oracle):
    description, runner = AXES[axis]
    rng = np.random.default_rng([11, list(AXES).index(axis)])
    run = runner(dataset, rng, 5)
    report = _check_axis(axis, description, run, oracle, 1e-9)
    assert report.ok, "\n".join(d.format() for d in report.divergences)
    assert report.queries == 5


def test_replication_axis_conforms(dataset, oracle):
    description, runner = AXES["replication-hotspot"]
    rng = np.random.default_rng([11, 6])
    run = runner(dataset, rng, 8)
    report = _check_axis("replication-hotspot", description, run, oracle, 1e-9)
    assert report.ok, "\n".join(d.format() for d in report.divergences)


def test_fault_axis_injects_and_conforms(dataset, oracle):
    """Faults genuinely fire mid-workload, and every answer produced under
    them either matches the oracle or is explicitly degraded."""
    rng = np.random.default_rng([11, 7])
    run = _axis_faults(dataset, rng, 24)
    cluster = run.cluster
    assert cluster.fault_injector is not None
    assert len(cluster.fault_injector.applied) >= 2
    # The point of the axis: at least one answer raced a fault window.
    touched = (
        cluster.fault_counters.get("client_timeouts")
        + cluster.network.messages_dropped
        + sum(1 for _, r in run.pairs if r.degraded)
    )
    assert touched > 0
    report = _check_axis("faults", "", run, oracle, 1e-9)
    assert report.ok, "\n".join(d.format() for d in report.divergences)
    for _, result in run.pairs:
        if result.degraded:
            assert result.completeness < 1.0
            truth = oracle.answer(result.query)
            assert set(result.cells) <= set(truth)


class TestComparePolicy:
    def test_complete_answer_must_be_exact(self, dataset, oracle):
        rng = np.random.default_rng(5)
        query = exploration_workload(rng, 1, DAYS, dataset.attribute_names)[0]
        truth = oracle.answer(query)
        assert truth, "workload query unexpectedly empty; pick another seed"

        class Fake:
            completeness = 1.0
            degraded = False
            cells = dict(truth)

        assert compare_result(Fake(), truth) == []
        missing = dict(truth)
        missing.pop(next(iter(missing)))
        Fake.cells = missing
        kinds = [kind for kind, _ in compare_result(Fake(), truth)]
        assert kinds == ["missing-cell"]

    def test_degraded_answer_may_omit_but_not_fabricate(self, dataset, oracle):
        rng = np.random.default_rng(5)
        query = exploration_workload(rng, 1, DAYS, dataset.attribute_names)[0]
        truth = oracle.answer(query)
        subset = dict(list(truth.items())[:1])

        class Fake:
            completeness = 0.4
            degraded = True
            cells = subset

        assert compare_result(Fake(), truth) == []
        # A cell that holds no observations is a fabrication even degraded.
        from repro.core.keys import CellKey
        from repro.geo.temporal import TimeKey as TK

        bogus = CellKey("zzz", TK.of(2013, 2, 1))
        Fake.cells = {**subset, bogus: next(iter(truth.values()))}
        kinds = [kind for kind, _ in compare_result(Fake(), truth)]
        assert "fabricated-cell" in kinds

    def test_bad_completeness_flagged(self, dataset, oracle):
        class Fake:
            completeness = 1.5
            degraded = False
            cells = {}

        kinds = [kind for kind, _ in compare_result(Fake(), {})]
        assert kinds == ["bad-completeness"]


class TestHarnessMechanics:
    def test_workload_deterministic(self, dataset):
        a = exploration_workload(
            np.random.default_rng([4, 2]), 12, DAYS, dataset.attribute_names
        )
        b = exploration_workload(
            np.random.default_rng([4, 2]), 12, DAYS, dataset.attribute_names
        )
        assert [(q.bbox, q.time_range, q.resolution, q.attributes) for q in a] == [
            (q.bbox, q.time_range, q.resolution, q.attributes) for q in b
        ]

    def test_workload_covers_branch_surfaces(self, dataset):
        qs = exploration_workload(
            np.random.default_rng([4, 3]), 80, DAYS, dataset.attribute_names
        )
        assert any(q.resolution.spatial == 2 for q in qs), "no coarse queries"
        assert any(q.resolution.temporal.name == "HOUR" for q in qs)
        assert any(q.attributes is not None for q in qs)
        assert any(
            len(q.time_range.covering_keys(q.resolution.temporal)) > 1
            or q.resolution.temporal.name == "HOUR"
            for q in qs
        )
        from repro.oracle.conformance import _MAX_WORKLOAD_CELLS

        assert all(q.footprint_size() <= _MAX_WORKLOAD_CELLS for q in qs)

    def test_minimizer_descends_to_small_query(self, dataset, oracle):
        rng = np.random.default_rng([11, 0])
        big = exploration_workload(rng, 6, DAYS, dataset.attribute_names)[0]
        target = sorted(oracle.answer(big), key=str)
        assert target, "need a non-empty query for the shrink test"
        victim = target[0]

        def diverges(query):
            return victim in oracle.answer(query)

        minimal = minimize_failing_query(diverges, big)
        assert diverges(minimal)
        assert minimal.footprint_size() <= big.footprint_size()
        assert minimal.footprint_size() <= 8

    def test_campaign_report_shape(self, dataset):
        report = run_campaign(seed=9, queries_per_axis=2, axes=["cold-cache"])
        assert report.ok
        assert report.total_queries >= 2
        data = report.to_json_dict()
        assert data["ok"] is True
        assert data["axes"][0]["axis"] == "cold-cache"
        assert "CONFORMS" in report.format()

"""The ``repro conform`` subcommand and the documented mutation check.

The mutation check is the acceptance test for the whole harness: corrupt
the roll-up merge (``repro.core.aggregation.merge_summaries``) and the
campaign must exit non-zero with a minimal failing query in the report.
docs/testing.md documents this exact procedure.
"""

import json


import repro.core.aggregation
from repro.cli import main
from repro.oracle import run_campaign


class TestConformCli:
    def test_exit_zero_on_healthy_build(self, capsys, tmp_path):
        out = tmp_path / "report.json"
        code = main(
            [
                "conform",
                "--seed", "0",
                "--queries-per-axis", "3",
                "--axis", "cold-cache",
                "--json", str(out),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "CONFORMS" in printed
        data = json.loads(out.read_text())
        assert data["ok"] is True
        assert data["total_divergences"] == 0

    def test_unknown_axis_rejected(self, capsys):
        assert main(["conform", "--axis", "nonsense"]) == 2
        assert "unknown axis" in capsys.readouterr().err


def _corrupt_rollup_merge(monkeypatch):
    real = repro.core.aggregation.merge_summaries

    def corrupted(summaries, attributes):
        nonempty = [s for s in summaries if not s.is_empty]
        if len(nonempty) > 1:
            nonempty = nonempty[:-1]  # silently drop one child
        return real(nonempty, attributes)

    monkeypatch.setattr(repro.core.aggregation, "merge_summaries", corrupted)


class TestMutationCheck:
    def test_corrupt_rollup_merge_diverges(self, monkeypatch):
        _corrupt_rollup_merge(monkeypatch)
        report = run_campaign(seed=0, queries_per_axis=5, axes=["rollup"])
        assert not report.ok
        divergence = report.axes[0].divergences[0]
        assert divergence.kind in ("value-mismatch", "missing-cell")
        # The report shrinks the first failures to a minimal reproducer.
        minimized = [d for d in report.axes[0].divergences if d.minimal is not None]
        assert minimized
        for d in minimized:
            assert d.minimal.footprint_size() <= d.query.footprint_size()
        assert "minimal:" in report.format()

    def test_corrupt_rollup_merge_fails_cli(self, monkeypatch, capsys):
        _corrupt_rollup_merge(monkeypatch)
        code = main(
            ["conform", "--seed", "0", "--queries-per-axis", "5", "--axis", "rollup"]
        )
        assert code == 1
        assert "DIVERGES" in capsys.readouterr().out

    def test_corrupt_scan_merge_diverges(self, monkeypatch):
        """The cross-block scan merge is a separate code path; corrupting
        it must be caught by the plain cold-cache axis.  Since the
        columnar pipeline, that path is ``SummaryFrame.merge_all``."""
        from repro.data.statistics import SummaryFrame

        real = SummaryFrame.merge_all

        def corrupted(frames):
            merged = real(frames)
            if len(frames) > 1:
                merged = SummaryFrame(
                    merged.ids,
                    merged.counts,
                    {
                        name: (cols[0] * 1.001, cols[1], cols[2], cols[3])
                        for name, cols in merged.columns.items()
                    },
                )
            return merged

        monkeypatch.setattr(SummaryFrame, "merge_all", staticmethod(corrupted))
        report = run_campaign(seed=0, queries_per_axis=6, axes=["cold-cache"])
        assert not report.ok

    def test_corrupt_completeness_flag_diverges(self, monkeypatch):
        """Dropping cells while claiming completeness 1.0 (the silent-wrong
        failure mode) is a divergence, not a tolerated partial."""
        from repro.query.model import QueryResult

        original = QueryResult.__init__

        def lossy(self, *args, **kwargs):
            original(self, *args, **kwargs)
            if len(self.cells) > 2:
                for key in list(self.cells)[:1]:
                    del self.cells[key]

        monkeypatch.setattr(QueryResult, "__init__", lossy)
        report = run_campaign(seed=0, queries_per_axis=4, axes=["cold-cache"])
        assert not report.ok
        kinds = {d.kind for axis in report.axes for d in axis.divergences}
        assert "missing-cell" in kinds

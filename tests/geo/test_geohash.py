"""Unit and property tests for repro.geo.geohash."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeohashError
from repro.geo import geohash as gh
from tests.strategies import geohashes, lats, lons, precisions


class TestEncodeDecode:
    def test_known_value(self):
        # Reference value from geohash.org: San Francisco area.
        assert gh.encode(37.7749, -122.4194, 5) == "9q8yy"

    def test_paper_cell(self):
        # The paper's running example is cell 9q8y7 (Fig. 1a).
        box = gh.bbox("9q8y7")
        lat, lon = box.center
        assert gh.encode(lat, lon, 5) == "9q8y7"

    def test_invalid_precision(self):
        with pytest.raises(GeohashError):
            gh.encode(0, 0, 0)
        with pytest.raises(GeohashError):
            gh.encode(0, 0, 13)

    def test_invalid_coordinates(self):
        with pytest.raises(GeohashError):
            gh.encode(91, 0, 5)
        with pytest.raises(GeohashError):
            gh.encode(0, 181, 5)

    def test_invalid_character(self):
        with pytest.raises(GeohashError):
            gh.bbox("9q8ya")  # 'a' is not in the alphabet

    @given(lats, lons, precisions)
    def test_roundtrip_bbox_contains_point(self, lat, lon, precision):
        code = gh.encode(lat, lon, precision)
        box = gh.bbox(code)
        # Top/right globe edges land in the last (closed) cell; points
        # within one float ULP of a bin boundary may round either way.
        eps = 1e-9
        assert box.south - eps <= lat <= box.north + eps
        assert box.west - eps <= lon <= box.east + eps

    @given(lats, lons, precisions)
    def test_decode_center_reencodes(self, lat, lon, precision):
        code = gh.encode(lat, lon, precision)
        clat, clon = gh.decode(code)
        assert gh.encode(clat, clon, precision) == code

    @given(geohashes())
    def test_cell_dimensions_match_bbox(self, code):
        height, width = gh.cell_dimensions(len(code))
        box = gh.bbox(code)
        assert box.height == pytest.approx(height, rel=1e-9)
        assert box.width == pytest.approx(width, rel=1e-6)


class TestHierarchy:
    def test_parent_is_prefix(self):
        assert gh.parent("9q8y7") == "9q8y"

    def test_parent_of_root_fails(self):
        with pytest.raises(GeohashError):
            gh.parent("9")

    def test_children_count_and_prefix(self):
        kids = gh.children("9q8y")
        assert len(kids) == 32
        assert all(k.startswith("9q8y") and len(k) == 5 for k in kids)
        assert "9q8y7" in kids

    @given(geohashes(max_precision=6))
    def test_children_tile_parent_exactly(self, code):
        parent_box = gh.bbox(code)
        kid_boxes = [gh.bbox(k) for k in gh.children(code)]
        total = sum(b.area for b in kid_boxes)
        assert total == pytest.approx(parent_box.area, rel=1e-9)
        for b in kid_boxes:
            assert parent_box.south <= b.south and b.north <= parent_box.north + 1e-12
            assert parent_box.west <= b.west and b.east <= parent_box.east + 1e-9

    def test_common_prefix(self):
        assert gh.common_prefix("9q8y7", "9q8yd") == "9q8y"
        assert gh.common_prefix("9q8y7", "dq8y7") == ""
        assert gh.common_prefix("9q8y7", "9q8y7") == "9q8y7"


class TestNeighbors:
    def test_paper_example_neighbors(self):
        # Paper Fig. 1a: 9q8y7's 8 spatial neighbors.
        expected = {"9q8yd", "9q8ye", "9q8ys", "9q8yk", "9q8yh", "9q8y5", "9q8y4", "9q8y6"}
        assert set(gh.neighbors("9q8y7")) == expected

    @given(geohashes(min_precision=2, max_precision=6))
    def test_neighbor_symmetry(self, code):
        for nb in gh.neighbors(code):
            assert code in gh.neighbors(nb)

    @given(geohashes(min_precision=2, max_precision=6))
    def test_neighbors_are_adjacent(self, code):
        box = gh.bbox(code)
        for nb in gh.neighbors(code):
            nbox = gh.bbox(nb)
            # Adjacent cells share a boundary or corner: expanded boxes
            # must intersect (handle antimeridian wrap via either side).
            lat_touch = not (nbox.north < box.south - 1e-9 or nbox.south > box.north + 1e-9)
            lon_gap = min(
                abs(nbox.west - box.east),
                abs(box.west - nbox.east),
                abs(nbox.west - box.west),
            )
            assert lat_touch
            assert lon_gap < 360.0  # sanity; wrap handled below
        assert len(gh.neighbors(code)) in (5, 8)

    def test_polar_cell_has_fewer_neighbors(self):
        north_pole_cell = gh.encode(89.9, 0.0, 4)
        assert len(gh.neighbors(north_pole_cell)) == 5

    def test_antimeridian_wrap(self):
        west_edge = gh.encode(0.0, -179.99, 4)
        nbs = gh.neighbors(west_edge)
        # One neighbor must lie on the far east side of the globe.
        assert any(gh.bbox(nb).east == 180.0 for nb in nbs)

    def test_shift(self):
        code = "9q8y7"
        east = gh.shift(code, 0, 1)
        assert east in gh.neighbors(code)
        assert gh.shift(east, 0, -1) == code

    def test_shift_off_pole_returns_none(self):
        top = gh.encode(89.99, 0.0, 3)
        lat_steps = 0
        probe = top
        while probe is not None:
            probe = gh.shift(probe, 1, 0)
            lat_steps += 1
            assert lat_steps < 10_000
        assert lat_steps >= 1


class TestAntipode:
    def test_antipode_is_far(self):
        code = "9q8y7"
        anti = gh.antipode(code)
        lat1, lon1 = gh.decode(code)
        lat2, lon2 = gh.decode(anti)
        assert abs(lat1 + lat2) < 1.0
        assert 179.0 < abs(lon1 - lon2) <= 181.0

    @given(geohashes(min_precision=2, max_precision=7))
    @settings(max_examples=50)
    def test_antipode_involution_within_one_cell(self, code):
        back = gh.antipode(gh.antipode(code))
        assert back == code or back in gh.neighbors(code)

    def test_antipode_preserves_precision(self):
        assert len(gh.antipode("9q8y7x")) == 6


class TestVectorized:
    @given(st.lists(st.tuples(lats, lons), min_size=1, max_size=64), precisions)
    @settings(max_examples=50)
    def test_encode_many_matches_scalar(self, points, precision):
        la = np.array([p[0] for p in points])
        lo = np.array([p[1] for p in points])
        vec = gh.encode_many(la, lo, precision)
        scalar = [gh.encode(p[0], p[1], precision) for p in points]
        assert vec.tolist() == scalar

    def test_encode_many_shape_mismatch(self):
        with pytest.raises(GeohashError):
            gh.encode_many(np.zeros(3), np.zeros(4), 5)

    def test_encode_many_out_of_range(self):
        with pytest.raises(GeohashError):
            gh.encode_many(np.array([95.0]), np.array([0.0]), 5)

    def test_encode_many_empty(self):
        out = gh.encode_many(np.array([]), np.array([]), 5)
        assert out.size == 0

    def test_encode_many_2d(self):
        la = np.array([[0.0, 10.0], [20.0, 30.0]])
        lo = np.array([[0.0, 10.0], [20.0, 30.0]])
        out = gh.encode_many(la, lo, 4)
        assert out.shape == (2, 2)
        assert out[0, 0] == gh.encode(0.0, 0.0, 4)


class TestNonFiniteRejection:
    """NaN comparisons are all-False, so a min/max range check alone lets
    NaN through and ``astype(np.uint64)`` turns it into a garbage code;
    every encoder must reject non-finite coordinates explicitly."""

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_encode_rejects_non_finite_lat(self, bad):
        with pytest.raises(GeohashError):
            gh.encode(bad, 0.0, 5)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_encode_rejects_non_finite_lon(self, bad):
        with pytest.raises(GeohashError):
            gh.encode(0.0, bad, 5)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_encode_many_rejects_non_finite(self, bad):
        good = np.array([10.0, 20.0])
        poisoned = np.array([10.0, bad])
        with pytest.raises(GeohashError):
            gh.encode_many(poisoned, good, 5)
        with pytest.raises(GeohashError):
            gh.encode_many(good, poisoned, 5)

    def test_spatial_codes_rejects_non_finite(self):
        with pytest.raises(GeohashError):
            gh.spatial_codes(np.array([float("nan")]), np.array([0.0]), 5)


class TestSpatialCodes:
    @given(st.lists(st.tuples(lats, lons), min_size=1, max_size=64), precisions)
    @settings(max_examples=50)
    def test_codes_roundtrip_to_strings(self, points, precision):
        la = np.array([p[0] for p in points])
        lo = np.array([p[1] for p in points])
        codes = gh.spatial_codes(la, lo, precision)
        assert codes.dtype == np.uint64
        strings = gh.codes_to_geohashes(codes, precision)
        assert strings.tolist() == gh.encode_many(la, lo, precision).tolist()
        for code, text in zip(codes.tolist(), strings.tolist()):
            assert gh.geohash_to_code(text) == code

    @given(st.lists(st.tuples(lats, lons), min_size=2, max_size=64), precisions)
    @settings(max_examples=50)
    def test_code_order_matches_string_order(self, points, precision):
        """The alphabet is ASCII-ascending, so uint64 codes sort exactly
        like same-precision geohash strings — the property that keeps the
        columnar pipeline's group order identical to the string path's."""
        la = np.array([p[0] for p in points])
        lo = np.array([p[1] for p in points])
        codes = gh.spatial_codes(la, lo, precision)
        strings = gh.encode_many(la, lo, precision)
        assert np.argsort(codes, kind="stable").tolist() == np.argsort(
            strings, kind="stable"
        ).tolist()

    def test_geohash_to_code_rejects_bad_character(self):
        with pytest.raises(GeohashError):
            gh.geohash_to_code("9q8ya")

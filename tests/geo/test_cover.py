"""Tests for repro.geo.cover (query footprints)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeohashError
from repro.geo import geohash as gh
from repro.geo.bbox import BoundingBox
from repro.geo.cover import covering_cells, covering_count, expand_ring
from tests.strategies import small_boxes


class TestCoveringCells:
    def test_single_cell_box(self):
        box = gh.bbox("9q8y7")
        inner = BoundingBox(
            box.south + box.height * 0.25,
            box.north - box.height * 0.25,
            box.west + box.width * 0.25,
            box.east - box.width * 0.25,
        )
        assert covering_cells(inner, 5) == ["9q8y7"]

    def test_exact_cell_box(self):
        box = gh.bbox("9q8y")
        cells = covering_cells(box, 4)
        assert cells == ["9q8y"]

    def test_cell_cover_at_finer_precision_is_children(self):
        box = gh.bbox("9q8y")
        cells = covering_cells(box, 5)
        assert sorted(cells) == sorted(gh.children("9q8y"))

    def test_count_matches_cells(self):
        box = BoundingBox(30, 34, -110, -102)
        assert covering_count(box, 3) == len(covering_cells(box, 3))

    def test_max_cells_guard(self):
        box = BoundingBox.global_box()
        with pytest.raises(GeohashError):
            covering_cells(box, 6, max_cells=100)

    def test_global_cover_at_precision_1(self):
        cells = covering_cells(BoundingBox.global_box(), 1)
        assert sorted(cells) == sorted(gh.GEOHASH_ALPHABET)

    @given(small_boxes(), st.integers(2, 4))
    @settings(max_examples=60)
    def test_every_cover_cell_intersects_box(self, box, precision):
        for cell in covering_cells(box, precision):
            assert gh.bbox(cell).intersects(box)

    @given(small_boxes(), st.integers(2, 4))
    @settings(max_examples=60)
    def test_cover_is_complete(self, box, precision):
        """Corners and center of the box are inside some cover cell."""
        cells = set(covering_cells(box, precision))
        eps = 1e-9
        probes = [
            (box.south + eps, box.west + eps),
            (box.south + eps, box.east - eps),
            (box.north - eps, box.west + eps),
            (box.north - eps, box.east - eps),
            box.center,
        ]
        for lat, lon in probes:
            assert gh.encode(lat, lon, precision) in cells

    @given(small_boxes(), st.integers(2, 4))
    @settings(max_examples=40)
    def test_cover_unique(self, box, precision):
        cells = covering_cells(box, precision)
        assert len(cells) == len(set(cells))


class TestExpandRing:
    def test_ring_disjoint_from_cover(self):
        box = BoundingBox(30, 34, -110, -102)
        cover = set(covering_cells(box, 3))
        ring = set(expand_ring(box, 3))
        assert cover.isdisjoint(ring)

    def test_ring_cells_adjacent_to_cover(self):
        box = BoundingBox(30, 34, -110, -102)
        cover = set(covering_cells(box, 3))
        for cell in expand_ring(box, 3):
            assert any(nb in cover for nb in gh.neighbors(cell))

    def test_ring_size_for_rectangular_cover(self):
        box = BoundingBox(30, 34, -110, -102)
        lat_lo_cells = covering_cells(box, 3)
        n = len(lat_lo_cells)
        ring = expand_ring(box, 3)
        # Perimeter of an a x b grid is 2a + 2b + 4.
        assert len(ring) >= 8
        assert len(ring) < n + 4 * (n ** 0.5 + 2) * 2

    def test_ring_clamps_at_antimeridian_east(self):
        """Regression: the ring used to wrap columns across ±180, seeding
        freshness on far-side cells no query footprint can produce."""
        box = BoundingBox(30, 34, 172, 180)
        cover = set(covering_cells(box, 3))
        for cell in expand_ring(box, 3):
            cell_box = gh.bbox(cell)
            # Nothing from the far (western) side of the seam.
            assert cell_box.east > 0
            assert any(nb in cover for nb in gh.neighbors(cell))

    def test_ring_clamps_at_antimeridian_west(self):
        box = BoundingBox(30, 34, -180, -172)
        cover = set(covering_cells(box, 3))
        for cell in expand_ring(box, 3):
            cell_box = gh.bbox(cell)
            assert cell_box.west < 0
            assert any(nb in cover for nb in gh.neighbors(cell))

    def test_ring_cells_reachable_by_some_cover(self):
        """Every ring cell at the seam is producible as a query cover cell
        (consistency between dispersal targets and query footprints)."""
        box = BoundingBox(60, 80, 160, 180)
        wider = BoundingBox(55, 85, 150, 180)
        reachable = set(covering_cells(wider, 2))
        assert set(expand_ring(box, 2)) <= reachable

"""Tests for repro.geo.resolution (STASH level arithmetic)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ResolutionError
from repro.geo.resolution import Resolution, ResolutionSpace
from repro.geo.temporal import TemporalResolution
from tests.strategies import spaces


class TestResolution:
    def test_str(self):
        assert str(Resolution(5, TemporalResolution.MONTH)) == "s5/month"

    def test_invalid_spatial(self):
        with pytest.raises(ResolutionError):
            Resolution(0, TemporalResolution.DAY)
        with pytest.raises(ResolutionError):
            Resolution(13, TemporalResolution.DAY)

    def test_three_parent_kinds(self):
        r = Resolution(5, TemporalResolution.DAY)
        parents = r.parents()
        assert Resolution(4, TemporalResolution.DAY) in parents
        assert Resolution(5, TemporalResolution.MONTH) in parents
        assert Resolution(4, TemporalResolution.MONTH) in parents
        assert len(parents) == 3

    def test_parents_at_coarsest(self):
        assert Resolution(1, TemporalResolution.YEAR).parents() == []

    def test_children_at_finest(self):
        assert Resolution(12, TemporalResolution.HOUR).children_resolutions() == []

    def test_parent_child_duality(self):
        r = Resolution(5, TemporalResolution.DAY)
        for p in r.parents():
            assert r in p.children_resolutions()


class TestResolutionSpace:
    def test_counts(self):
        space = ResolutionSpace(2, 6)
        assert space.num_spatial == 5
        assert space.num_temporal == 4
        assert space.num_levels == 20

    def test_invalid_range(self):
        with pytest.raises(ResolutionError):
            ResolutionSpace(5, 3)
        with pytest.raises(ResolutionError):
            ResolutionSpace(0, 3)

    def test_level_formula(self):
        # level = spatial_idx * n_t + temporal_idx (paper section IV-C)
        space = ResolutionSpace(2, 6)
        assert space.level_of(Resolution(2, TemporalResolution.YEAR)) == 0
        assert space.level_of(Resolution(2, TemporalResolution.HOUR)) == 3
        assert space.level_of(Resolution(3, TemporalResolution.YEAR)) == 4
        assert space.level_of(Resolution(6, TemporalResolution.HOUR)) == 19

    def test_level_outside_space(self):
        space = ResolutionSpace(2, 6)
        with pytest.raises(ResolutionError):
            space.level_of(Resolution(1, TemporalResolution.DAY))
        with pytest.raises(ResolutionError):
            space.resolution_at(20)
        with pytest.raises(ResolutionError):
            space.resolution_at(-1)

    @given(spaces())
    def test_level_bijection(self, space):
        seen = set()
        for level in range(space.num_levels):
            res = space.resolution_at(level)
            assert space.level_of(res) == level
            seen.add(res)
        assert len(seen) == space.num_levels

    @given(spaces())
    def test_all_resolutions_ordered(self, space):
        rs = space.all_resolutions()
        assert len(rs) == space.num_levels
        levels = [space.level_of(r) for r in rs]
        assert levels == sorted(levels)

    def test_parents_within_clips_boundary(self):
        space = ResolutionSpace(2, 6)
        edge = Resolution(2, TemporalResolution.DAY)
        parents = space.parents_within(edge)
        # Spatial parent (precision 1) is outside the space.
        assert all(p.spatial >= 2 for p in parents)
        assert Resolution(2, TemporalResolution.MONTH) in parents

    def test_children_within_clips_boundary(self):
        space = ResolutionSpace(2, 6)
        edge = Resolution(6, TemporalResolution.DAY)
        kids = space.children_within(edge)
        assert all(k.spatial <= 6 for k in kids)
        assert Resolution(6, TemporalResolution.HOUR) in kids

    @given(spaces())
    def test_parents_one_level_or_more_coarser(self, space):
        for res in space.all_resolutions():
            level = space.level_of(res)
            for p in space.parents_within(res):
                assert space.level_of(p) < level

"""Unit and property tests for repro.geo.temporal."""

import datetime as dt

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TemporalError
from repro.geo.temporal import (
    NUM_TEMPORAL_RESOLUTIONS,
    TemporalResolution,
    TimeKey,
    TimeRange,
    bin_epochs,
)

resolutions = st.sampled_from(list(TemporalResolution))
epochs_2013 = st.floats(
    dt.datetime(2013, 1, 1, tzinfo=dt.timezone.utc).timestamp(),
    dt.datetime(2013, 12, 31, 23, tzinfo=dt.timezone.utc).timestamp(),
)


class TestResolutionEnum:
    def test_ordering(self):
        assert TemporalResolution.YEAR < TemporalResolution.MONTH
        assert TemporalResolution.DAY < TemporalResolution.HOUR

    def test_finer_coarser_chain(self):
        assert TemporalResolution.YEAR.finer == TemporalResolution.MONTH
        assert TemporalResolution.HOUR.finer is None
        assert TemporalResolution.YEAR.coarser is None
        assert TemporalResolution.HOUR.coarser == TemporalResolution.DAY

    def test_count(self):
        assert NUM_TEMPORAL_RESOLUTIONS == 4


class TestTimeKey:
    def test_of_and_str(self):
        key = TimeKey.of(2015, 3)
        assert str(key) == "2015-03"
        assert key.resolution == TemporalResolution.MONTH

    def test_parse_roundtrip(self):
        for text in ("2013", "2013-07", "2013-07-04", "2013-07-04-13"):
            assert str(TimeKey.parse(text)) == text

    def test_parse_invalid(self):
        with pytest.raises(TemporalError):
            TimeKey.parse("not-a-date")

    def test_invalid_components(self):
        with pytest.raises(TemporalError):
            TimeKey((2013, 13))
        with pytest.raises(TemporalError):
            TimeKey((2013, 2, 30))
        with pytest.raises(TemporalError):
            TimeKey(())

    def test_from_epoch(self):
        ts = dt.datetime(2015, 3, 14, 9, 26, tzinfo=dt.timezone.utc).timestamp()
        assert str(TimeKey.from_epoch(ts, TemporalResolution.DAY)) == "2015-03-14"
        assert str(TimeKey.from_epoch(ts, TemporalResolution.HOUR)) == "2015-03-14-09"

    def test_paper_example_neighbors(self):
        # Paper Fig. 1b: 2015-03's temporal neighbors are 2015-02, 2015-04.
        key = TimeKey.of(2015, 3)
        assert [str(k) for k in key.neighbors()] == ["2015-02", "2015-04"]

    def test_step_across_year(self):
        assert str(TimeKey.of(2015, 12).step(1)) == "2016-01"
        assert str(TimeKey.of(2015, 1).step(-1)) == "2014-12"

    def test_step_across_month_days(self):
        assert str(TimeKey.of(2013, 2, 28).step(1)) == "2013-03-01"

    def test_parent(self):
        assert TimeKey.of(2015, 3, 14).parent() == TimeKey.of(2015, 3)
        with pytest.raises(TemporalError):
            TimeKey.of(2015).parent()

    def test_children_month_counts(self):
        assert len(TimeKey.of(2013, 2).children()) == 28
        assert len(TimeKey.of(2012, 2).children()) == 29  # leap year
        assert len(TimeKey.of(2013).children()) == 12
        assert len(TimeKey.of(2013, 7, 4).children()) == 24

    def test_children_of_hour_fails(self):
        with pytest.raises(TemporalError):
            TimeKey.of(2013, 7, 4, 12).children()

    def test_is_ancestor(self):
        assert TimeKey.of(2013).is_ancestor_of(TimeKey.of(2013, 5))
        assert not TimeKey.of(2013, 5).is_ancestor_of(TimeKey.of(2013))
        assert not TimeKey.of(2013).is_ancestor_of(TimeKey.of(2014, 5))
        assert not TimeKey.of(2013).is_ancestor_of(TimeKey.of(2013))

    @given(epochs_2013, resolutions)
    def test_bin_contains_instant(self, epoch, res):
        key = TimeKey.from_epoch(epoch, res)
        assert key.epoch_range().contains(epoch)

    @given(epochs_2013, st.sampled_from(list(TemporalResolution)[1:]))
    def test_parent_encloses_child(self, epoch, res):
        key = TimeKey.from_epoch(epoch, res)
        parent_range = key.parent().epoch_range()
        child_range = key.epoch_range()
        assert parent_range.start <= child_range.start
        assert child_range.end <= parent_range.end

    @given(epochs_2013, st.sampled_from(list(TemporalResolution)[:-1]))
    def test_children_tile_parent(self, epoch, res):
        key = TimeKey.from_epoch(epoch, res)
        kids = key.children()
        total = sum(k.epoch_range().duration for k in kids)
        assert total == pytest.approx(key.epoch_range().duration)
        # Consecutive children abut exactly.
        for a, b in zip(kids, kids[1:]):
            assert a.epoch_range().end == b.epoch_range().start

    @given(epochs_2013, resolutions, st.integers(-40, 40))
    @settings(max_examples=60)
    def test_step_inverse(self, epoch, res, n):
        key = TimeKey.from_epoch(epoch, res)
        assert key.step(n).step(-n) == key


class TestTimeRange:
    def test_empty_rejected(self):
        with pytest.raises(TemporalError):
            TimeRange(10, 10)

    def test_intersection(self):
        a, b = TimeRange(0, 10), TimeRange(5, 20)
        assert a.intersection(b) == TimeRange(5, 10)
        assert a.intersection(TimeRange(10, 20)) is None

    def test_covering_keys_single_day(self):
        day = TimeKey.of(2013, 7, 4).epoch_range()
        keys = day.covering_keys(TemporalResolution.DAY)
        assert [str(k) for k in keys] == ["2013-07-04"]

    def test_covering_keys_span(self):
        rng = TimeRange(
            TimeKey.of(2013, 1, 30).epoch_range().start,
            TimeKey.of(2013, 2, 2).epoch_range().end,
        )
        keys = rng.covering_keys(TemporalResolution.DAY)
        assert [str(k) for k in keys] == [
            "2013-01-30",
            "2013-01-31",
            "2013-02-01",
            "2013-02-02",
        ]

    def test_from_keys(self):
        keys = [TimeKey.of(2013, 3), TimeKey.of(2013, 5)]
        rng = TimeRange.from_keys(keys)
        assert rng.start == TimeKey.of(2013, 3).epoch_range().start
        assert rng.end == TimeKey.of(2013, 5).epoch_range().end

    def test_from_keys_empty(self):
        with pytest.raises(TemporalError):
            TimeRange.from_keys([])


class TestVectorizedBinning:
    @given(st.lists(epochs_2013, min_size=1, max_size=50), resolutions)
    @settings(max_examples=40)
    def test_bin_epochs_matches_scalar(self, values, res):
        # Whole seconds only: sub-second values a float-ULP from a bin
        # boundary may legitimately round either way (datetime rounds to
        # microseconds, datetime64 truncates).
        values = [float(int(v)) for v in values]
        arr = np.array(values)
        binned = bin_epochs(arr, res)
        expected = [str(TimeKey.from_epoch(v, res)) for v in values]
        assert binned.tolist() == expected

    def test_bin_epochs_empty(self):
        assert bin_epochs(np.array([]), TemporalResolution.DAY).size == 0

    @given(st.lists(epochs_2013, min_size=1, max_size=50), resolutions)
    @settings(max_examples=40)
    def test_epoch_codes_name_same_bins_as_labels(self, values, res):
        """The integer codes are the label-free form of ``bin_epochs``:
        each code round-trips to the TimeKey whose string is the label."""
        from repro.geo.temporal import bin_epoch_codes, time_key_of_code

        arr = np.array([float(int(v)) for v in values])
        codes = bin_epoch_codes(arr, res)
        labels = bin_epochs(arr, res)
        assert codes.dtype == np.int64
        for code, label in zip(codes.tolist(), labels.tolist()):
            assert str(time_key_of_code(code, res)) == str(label)

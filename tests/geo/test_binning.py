"""Packed integer bin ids vs the composite string labels (repro.geo.binning)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.keys import CellKey
from repro.errors import TemporalError
from repro.geo.binning import (
    TEMPORAL_CODE_BITS,
    bin_ids,
    decode_bin_ids,
    supports_bin_ids,
)
from repro.geo.temporal import TemporalResolution, TimeKey
from tests.strategies import lats, lons

#: Epochs inside the packed temporal range (1970 .. far future), away
#: from the float edge cases the encoders already reject.
epochs = st.floats(0.0, 3.0e9, allow_nan=False)
resolutions = st.sampled_from(list(TemporalResolution))


def _points(draw_count=st.integers(1, 48)):
    return st.lists(st.tuples(lats, lons, epochs), min_size=1, max_size=48)


class TestPacking:
    @given(_points(), st.integers(1, 8), resolutions)
    @settings(max_examples=60)
    def test_ids_map_one_to_one_to_cell_key_labels(self, points, precision, res):
        """Every packed id decodes to exactly the (geohash, TimeKey) pair
        the old composite '<geohash>@<timekey>' label parses to — the ids
        are a lossless re-encoding of ``CellKey``."""
        la = np.array([p[0] for p in points])
        lo = np.array([p[1] for p in points])
        ep = np.array([p[2] for p in points])
        ids = bin_ids(la, lo, ep, precision, res)
        assert ids.dtype == np.uint64
        from repro.data.observation import ObservationBatch

        batch = ObservationBatch(la, lo, ep, {"x": np.zeros(len(points))})
        labels = batch.bin_keys(precision, res)
        for (geohash, time_key), label in zip(
            decode_bin_ids(ids, precision, res), labels.tolist()
        ):
            expected = CellKey.parse(str(label))
            assert geohash == expected.geohash
            assert time_key == expected.time_key

    @given(_points(), st.integers(1, 8), resolutions)
    @settings(max_examples=60)
    def test_id_order_matches_label_order(self, points, precision, res):
        """Sorting ids gives the same permutation as sorting the string
        labels — the invariant that keeps columnar group order (and hence
        float summation order) identical to the scalar path."""
        la = np.array([p[0] for p in points])
        lo = np.array([p[1] for p in points])
        ep = np.array([p[2] for p in points])
        ids = bin_ids(la, lo, ep, precision, res)
        from repro.data.observation import ObservationBatch

        batch = ObservationBatch(la, lo, ep, {"x": np.zeros(len(points))})
        labels = batch.bin_keys(precision, res)
        assert np.argsort(ids, kind="stable").tolist() == np.argsort(
            labels, kind="stable"
        ).tolist()

    def test_empty_input(self):
        z = np.array([], dtype=np.float64)
        out = bin_ids(z, z, z, 4, TemporalResolution.DAY)
        assert out.size == 0 and out.dtype == np.uint64
        assert decode_bin_ids(out, 4, TemporalResolution.DAY) == []


class TestLimits:
    def test_supported_range(self):
        # The system's resolution space tops out at precision 8; the
        # packed scheme must cover it at every temporal resolution.
        for res in TemporalResolution:
            assert supports_bin_ids(8, res)
            assert 5 * 8 + TEMPORAL_CODE_BITS[res] <= 64

    def test_unsupported_precision_raises(self):
        assert not supports_bin_ids(12, TemporalResolution.HOUR)
        with pytest.raises(TemporalError):
            bin_ids(
                np.array([0.0]),
                np.array([0.0]),
                np.array([0.0]),
                12,
                TemporalResolution.HOUR,
            )

    def test_pre_epoch_instant_raises(self):
        with pytest.raises(TemporalError):
            bin_ids(
                np.array([0.0]),
                np.array([0.0]),
                np.array([-86_400.0]),  # 1969-12-31: negative temporal code
                4,
                TemporalResolution.DAY,
            )

    def test_known_value(self):
        # 2013-02-02 is day 15738 since the epoch; geohash of (0, 0) at
        # precision 1 is 's' (alphabet index 24).
        from repro.geo.geohash import GEOHASH_ALPHABET, encode

        assert encode(0.0, 0.0, 1) == "s"
        epoch = TimeKey.of(2013, 2, 2).epoch_range().start
        ids = bin_ids(
            np.array([0.0]),
            np.array([0.0]),
            np.array([epoch]),
            1,
            TemporalResolution.DAY,
        )
        bits = TEMPORAL_CODE_BITS[TemporalResolution.DAY]
        assert int(ids[0]) == (GEOHASH_ALPHABET.index("s") << bits) | 15_738
        [(geohash, key)] = decode_bin_ids(ids, 1, TemporalResolution.DAY)
        assert geohash == "s"
        assert key == TimeKey.of(2013, 2, 2)

"""Tests for polygonal regions and cell covers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GeohashError
from repro.geo.bbox import BoundingBox
from repro.geo.geohash import bbox as geohash_bbox
from repro.geo.polygon import Polygon, covering_cells_polygon

TRIANGLE = Polygon.of((30.0, -110.0), (40.0, -110.0), (30.0, -100.0))
CONCAVE = Polygon.of(
    (30.0, -110.0), (40.0, -110.0), (40.0, -100.0),
    (35.0, -105.0),  # notch pointing inward
    (30.0, -100.0),
)


class TestConstruction:
    def test_needs_three_vertices(self):
        with pytest.raises(GeohashError):
            Polygon.of((0.0, 0.0), (1.0, 1.0))

    def test_out_of_range(self):
        with pytest.raises(GeohashError):
            Polygon.of((95.0, 0.0), (0.0, 0.0), (0.0, 1.0))
        with pytest.raises(GeohashError):
            Polygon.of((0.0, 200.0), (0.0, 0.0), (1.0, 1.0))

    def test_degenerate_rejected(self):
        with pytest.raises(GeohashError):
            Polygon.of((0.0, 0.0), (0.0, 0.0), (0.0, 0.0))

    def test_bbox(self):
        assert TRIANGLE.bbox == BoundingBox(30.0, 40.0, -110.0, -100.0)

    def test_from_bbox_roundtrip(self):
        box = BoundingBox(10, 20, 30, 50)
        assert Polygon.from_bbox(box).bbox == box


class TestContainment:
    def test_triangle_interior(self):
        assert TRIANGLE.contains_point(32.0, -108.0)

    def test_triangle_exterior_inside_bbox(self):
        # Inside the bounding box but outside the hypotenuse.
        assert not TRIANGLE.contains_point(39.0, -101.0)

    def test_far_outside(self):
        assert not TRIANGLE.contains_point(0.0, 0.0)

    def test_concave_notch_excluded(self):
        # The notch at (35, -105) carves out the middle of the east edge.
        assert not CONCAVE.contains_point(36.5, -101.0)
        assert CONCAVE.contains_point(36.5, -108.0)

    def test_vectorized_matches_scalar(self):
        rng = np.random.default_rng(4)
        lats = rng.uniform(28.0, 42.0, 200)
        lons = rng.uniform(-112.0, -98.0, 200)
        vec = CONCAVE.contains_points(lats, lons)
        for i in range(200):
            assert vec[i] == CONCAVE.contains_point(lats[i], lons[i])

    @given(st.floats(-80, 80), st.floats(-170, 170))
    @settings(max_examples=60)
    def test_rectangle_polygon_matches_bbox(self, lat, lon):
        box = BoundingBox(10.0, 30.0, -50.0, -20.0)
        poly = Polygon.from_bbox(box)
        # Interior agreement (edges may differ: bbox is closed-open).
        interior = (
            10.0 + 1e-6 < lat < 30.0 - 1e-6 and -50.0 + 1e-6 < lon < -20.0 - 1e-6
        )
        if interior:
            assert poly.contains_point(lat, lon)
        elif not box.contains_point(lat, lon):
            assert not poly.contains_point(lat, lon)


class TestTransforms:
    def test_translated(self):
        moved = TRIANGLE.translated(5.0, 5.0)
        assert moved.bbox.south == 35.0
        assert moved.bbox.west == -105.0

    def test_scaled_area(self):
        smaller = TRIANGLE.scaled(0.25)  # half per axis
        assert smaller.bbox.height == pytest.approx(TRIANGLE.bbox.height / 2)
        assert smaller.bbox.width == pytest.approx(TRIANGLE.bbox.width / 2)

    def test_scaled_invalid(self):
        with pytest.raises(GeohashError):
            TRIANGLE.scaled(0.0)

    def test_translated_edge_pan_preserves_shape(self):
        """Regression: panning into ±90/±180 used to clamp each vertex
        independently, collapsing the shape into a degenerate polygon."""
        moved = TRIANGLE.translated(60.0, 0.0)  # would overshoot the pole
        assert moved.bbox.north == 90.0
        assert moved.bbox.height == pytest.approx(TRIANGLE.bbox.height)
        assert moved.bbox.width == pytest.approx(TRIANGLE.bbox.width)

    def test_translated_edge_pan_matches_bbox_semantics(self):
        box = BoundingBox(30.0, 40.0, -110.0, -100.0)
        poly = Polygon.from_bbox(box)
        for dlat, dlon in [(70.0, 0.0), (-130.0, 0.0), (0.0, -90.0), (0.0, 300.0)]:
            moved = poly.translated(dlat, dlon)
            expected = box.translated(dlat, dlon)
            assert moved.bbox.south == pytest.approx(expected.south)
            assert moved.bbox.north == pytest.approx(expected.north)
            assert moved.bbox.west == pytest.approx(expected.west)
            assert moved.bbox.east == pytest.approx(expected.east)

    @given(
        st.floats(-200, 200), st.floats(-400, 400),
    )
    @settings(max_examples=60)
    def test_translated_never_degenerate(self, dlat, dlon):
        moved = CONCAVE.translated(dlat, dlon)
        assert moved.bbox.height > 0
        assert moved.bbox.width > 0


class TestPolygonCover:
    def test_cover_subset_of_bbox_cover(self):
        from repro.geo.cover import covering_cells

        poly_cover = set(covering_cells_polygon(TRIANGLE, 3))
        box_cover = set(covering_cells(TRIANGLE.bbox, 3))
        assert poly_cover < box_cover  # strictly smaller: triangle != box

    def test_cover_cells_centers_inside(self):
        for cell in covering_cells_polygon(TRIANGLE, 3):
            lat, lon = geohash_bbox(cell).center
            assert TRIANGLE.contains_point(lat, lon)

    def test_excluded_cells_centers_outside(self):
        from repro.geo.cover import covering_cells

        included = set(covering_cells_polygon(TRIANGLE, 3))
        for cell in covering_cells(TRIANGLE.bbox, 3):
            if cell not in included:
                lat, lon = geohash_bbox(cell).center
                assert not TRIANGLE.contains_point(lat, lon)

    def test_thin_lasso_cap_applies_after_filtering(self):
        """Regression: max_cells used to cap the bbox *candidates*, so a
        thin diagonal lasso with a huge bounding box but a small true
        footprint was rejected with a misleading "shrink the box" error."""
        from repro.geo.cover import covering_cells

        lasso = Polygon.of((0.0, 0.0), (5.0, 0.0), (45.0, 40.0), (40.0, 40.0))
        bbox_cover = covering_cells(lasso.bbox, 3)
        cap = len(bbox_cover) // 2  # tighter than the bbox cover...
        cells = covering_cells_polygon(lasso, 3, max_cells=cap)
        assert 0 < len(cells) <= cap  # ...but the true footprint fits

    def test_cap_still_enforced_on_filtered_footprint(self):
        with pytest.raises(GeohashError, match="polygon"):
            covering_cells_polygon(TRIANGLE, 4, max_cells=3)

    def test_candidate_budget_still_guards_runaway_covers(self):
        from repro.geo.polygon import CANDIDATE_BUDGET_FACTOR

        lasso = Polygon.of((0.0, 0.0), (5.0, 0.0), (45.0, 40.0), (40.0, 40.0))
        with pytest.raises(GeohashError, match="budget"):
            # Budget = 64 * 2 = 128 candidates, far below the bbox cover.
            covering_cells_polygon(lasso, 3, max_cells=2)
        assert CANDIDATE_BUDGET_FACTOR >= 32  # thin lassos must keep passing

    def test_footprint_cap_worded_for_polygons(self):
        """A polygon query over multiple time bins is capped on its true
        (filtered) footprint, with a polygon-worded QueryError."""
        from repro.errors import QueryError
        from repro.geo.resolution import Resolution
        from repro.geo.temporal import TemporalResolution, TimeKey, TimeRange
        from repro.query.model import AggregationQuery

        spatial = len(covering_cells_polygon(TRIANGLE, 3))
        assert spatial >= 2
        query = AggregationQuery.for_polygon(
            TRIANGLE,
            TimeRange.from_keys([TimeKey.of(2013, 2, 1), TimeKey.of(2013, 2, 2)]),
            Resolution(3, TemporalResolution.DAY),
        )
        try:
            old = AggregationQuery.MAX_FOOTPRINT_CELLS
            # Spatial cover fits, but spatial x temporal does not.
            AggregationQuery.MAX_FOOTPRINT_CELLS = 2 * spatial - 1
            with pytest.raises(QueryError, match="polygon"):
                query.footprint()
        finally:
            AggregationQuery.MAX_FOOTPRINT_CELLS = old

    def test_rectangle_polygon_cover_is_interior_of_bbox_cover(self):
        """Center-based polygon cover keeps exactly the bbox-cover cells
        whose centers lie inside the rectangle (edge cells may drop)."""
        from repro.geo.cover import covering_cells

        box = BoundingBox(30.0, 40.0, -110.0, -100.0)
        poly_cover = set(covering_cells_polygon(Polygon.from_bbox(box), 3))
        for cell in covering_cells(box, 3):
            lat, lon = geohash_bbox(cell).center
            strictly_inside = (
                box.south < lat < box.north and box.west < lon < box.east
            )
            assert (cell in poly_cover) == strictly_inside

"""Unit and property tests for repro.geo.bbox."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GeohashError
from repro.geo.bbox import BoundingBox
from tests.strategies import boxes


class TestConstruction:
    def test_valid(self):
        box = BoundingBox(-10, 10, -20, 20)
        assert box.height == 20
        assert box.width == 40
        assert box.area == 800
        assert box.center == (0, 0)

    @pytest.mark.parametrize(
        "args",
        [
            (10, -10, 0, 1),  # south > north
            (0, 0, 0, 1),  # empty lat
            (0, 1, 20, -20),  # west > east
            (-91, 0, 0, 1),  # below globe
            (0, 91, 0, 1),
            (0, 1, -181, 0),
            (0, 1, 0, 181),
        ],
    )
    def test_invalid(self, args):
        with pytest.raises(GeohashError):
            BoundingBox(*args)

    def test_global_box(self):
        g = BoundingBox.global_box()
        assert g.area == 180 * 360

    def test_from_center(self):
        box = BoundingBox.from_center(40.0, -105.0, 4.0, 8.0)
        assert box.center == pytest.approx((40.0, -105.0))
        assert box.height == pytest.approx(4.0)
        assert box.width == pytest.approx(8.0)


class TestRelations:
    def test_contains_point_closed_open(self):
        box = BoundingBox(0, 1, 0, 1)
        assert box.contains_point(0, 0)
        assert not box.contains_point(1, 0)
        assert not box.contains_point(0, 1)
        assert box.contains_point(0.5, 0.999)

    def test_contains_box(self):
        outer = BoundingBox(0, 10, 0, 10)
        inner = BoundingBox(2, 8, 2, 8)
        assert outer.contains_box(inner)
        assert not inner.contains_box(outer)
        assert outer.contains_box(outer)

    def test_intersection_disjoint(self):
        a = BoundingBox(0, 1, 0, 1)
        b = BoundingBox(5, 6, 5, 6)
        assert not a.intersects(b)
        assert a.intersection(b) is None

    def test_intersection_touching_edges_is_empty(self):
        a = BoundingBox(0, 1, 0, 1)
        b = BoundingBox(1, 2, 0, 1)
        assert not a.intersects(b)

    def test_intersection_value(self):
        a = BoundingBox(0, 10, 0, 10)
        b = BoundingBox(5, 15, -5, 5)
        inter = a.intersection(b)
        assert inter == BoundingBox(5, 10, 0, 5)

    def test_overlap_fraction(self):
        a = BoundingBox(0, 10, 0, 10)
        b = BoundingBox(0, 10, 5, 15)
        assert a.overlap_fraction(b) == pytest.approx(0.5)
        assert a.overlap_fraction(a) == pytest.approx(1.0)

    @given(boxes(), boxes())
    def test_intersection_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)
        ia, ib = a.intersection(b), b.intersection(a)
        assert ia == ib

    @given(boxes(), boxes())
    def test_intersection_contained_in_both(self, a, b):
        inter = a.intersection(b)
        if inter is not None:
            assert a.contains_box(inter)
            assert b.contains_box(inter)

    @given(boxes(), boxes())
    def test_union_contains_both(self, a, b):
        u = a.union_bounds(b)
        assert u.contains_box(a)
        assert u.contains_box(b)


class TestTransforms:
    def test_translate_simple(self):
        box = BoundingBox(0, 1, 0, 1).translated(5, -5)
        assert box == BoundingBox(5, 6, -5, -4)

    def test_translate_clamps_at_pole(self):
        box = BoundingBox(85, 89, 0, 1).translated(10, 0)
        assert box.north == 90
        assert box.height == pytest.approx(4)

    def test_translate_clamps_at_antimeridian(self):
        box = BoundingBox(0, 1, 175, 179).translated(0, 10)
        assert box.east == 180
        assert box.width == pytest.approx(4)

    def test_scaled_area(self):
        box = BoundingBox(10, 20, 10, 30)
        smaller = box.scaled(0.8)
        assert smaller.area == pytest.approx(box.area * 0.8, rel=1e-9)
        assert box.contains_box(smaller)

    def test_scaled_preserves_center(self):
        box = BoundingBox(10, 20, 10, 30)
        smaller = box.scaled(0.5)
        assert smaller.center == pytest.approx(box.center)

    def test_scaled_invalid(self):
        with pytest.raises(GeohashError):
            BoundingBox(0, 1, 0, 1).scaled(0)

    @given(boxes(min_size=0.5), st.floats(0.1, 0.99))
    def test_scaled_down_always_contained(self, box, factor):
        assert box.contains_box(box.scaled(factor))

    @given(boxes(min_size=0.5))
    def test_translate_preserves_area(self, box):
        moved = box.translated(3.0, -7.0)
        assert math.isclose(moved.area, box.area, rel_tol=1e-9)

"""Chrome trace_event export: schema shape and file round-trip."""

import json

import pytest

from repro.obs.export import chrome_trace_events, to_chrome_trace, write_chrome_trace
from repro.obs.tracer import Tracer
from repro.sim.engine import Simulator


@pytest.fixture()
def traced():
    tracer = Tracer(Simulator(), enabled=True)
    root = tracer.record("query", "compute", 0.0, 0.010, node="client", query_id=0)
    rpc = tracer.record("rpc:evaluate", "network", 0.0, 0.009, parent=root)
    tracer.record(
        "handle:evaluate", "compute", 0.001, 0.008,
        parent=rpc, node="node-0", attrs={"cells": 4},
    )
    tracer.record("disk:read", "disk", 0.002, 0.006, parent=rpc, node="node-0")
    tracer.begin("populate:insert", "compute", node="node-0")  # left open
    return tracer


def test_events_have_valid_phases_and_fields(traced):
    events = chrome_trace_events(traced)
    assert events, "expected events"
    for event in events:
        assert event["ph"] in {"X", "M"}
        if event["ph"] == "X":
            for field in ("name", "cat", "ts", "dur", "pid", "tid", "args"):
                assert field in event
            assert event["dur"] >= 0.0


def test_unfinished_spans_are_skipped(traced):
    events = chrome_trace_events(traced)
    names = [e["name"] for e in events if e["ph"] == "X"]
    assert "populate:insert" not in names
    assert "disk:read" in names


def test_timestamps_are_microseconds(traced):
    events = chrome_trace_events(traced)
    (disk,) = [e for e in events if e["name"] == "disk:read"]
    assert disk["ts"] == pytest.approx(2_000.0)
    assert disk["dur"] == pytest.approx(4_000.0)


def test_nodes_map_to_processes_and_queries_to_threads(traced):
    events = chrome_trace_events(traced)
    meta = {e["args"]["name"]: e["pid"] for e in events if e["ph"] == "M"}
    # Deterministic, sorted, 1-based pid assignment.
    assert meta == {"client": 1, "node-0": 2}
    (root,) = [e for e in events if e["name"] == "query"]
    assert root["pid"] == meta["client"]
    assert root["tid"] == 1  # query 0 -> lane 1
    (handle,) = [e for e in events if e["name"] == "handle:evaluate"]
    assert handle["pid"] == meta["node-0"]
    assert handle["args"]["cells"] == 4
    assert "parent_id" in handle["args"]


def test_to_chrome_trace_shape(traced):
    doc = to_chrome_trace(traced)
    assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
    assert doc["displayTimeUnit"] == "ms"
    assert doc["otherData"]["source"] == "repro.obs"
    assert doc["otherData"]["spans"] == len(traced)
    assert doc["otherData"]["truncated"] is False
    json.dumps(doc)  # must be serializable as-is


def test_write_chrome_trace_round_trips(traced, tmp_path):
    out = write_chrome_trace(traced, tmp_path / "trace.json")
    assert out.exists()
    loaded = json.loads(out.read_text(encoding="utf-8"))
    assert loaded["traceEvents"]
    assert loaded == to_chrome_trace(traced)


def test_empty_tracer_exports_empty_trace():
    tracer = Tracer(Simulator(), enabled=True)
    doc = to_chrome_trace(tracer)
    assert doc["traceEvents"] == []
    assert doc["otherData"]["spans"] == 0

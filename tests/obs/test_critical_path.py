"""Critical-path attribution on synthetic span trees."""

import pytest

from repro.obs.critical_path import (
    ATTRIBUTION_CATEGORIES,
    attribute_span,
    attribution_fractions,
)
from repro.obs.tracer import Tracer
from repro.sim.engine import Simulator


def make_tracer():
    return Tracer(Simulator(), enabled=True)


def test_leaf_span_goes_to_own_category():
    tracer = make_tracer()
    root = tracer.record("disk:read", "disk", 0.0, 2.0)
    attribution = attribute_span(root)
    assert attribution == {
        "queueing": 0.0, "network": 0.0, "disk": 2.0, "compute": 0.0
    }


def test_serial_children_partition_the_parent():
    tracer = make_tracer()
    root = tracer.record("query", "compute", 0.0, 10.0)
    tracer.record("net", "network", 0.0, 3.0, parent=root)
    tracer.record("disk", "disk", 3.0, 7.0, parent=root)
    # 7..10 uncovered -> root self time (compute).
    attribution = attribute_span(root)
    assert attribution["network"] == pytest.approx(3.0)
    assert attribution["disk"] == pytest.approx(4.0)
    assert attribution["compute"] == pytest.approx(3.0)
    assert sum(attribution.values()) == pytest.approx(root.duration)


def test_overlapping_children_clip_to_latest_finisher():
    tracer = make_tracer()
    root = tracer.record("query", "compute", 0.0, 10.0)
    # Two concurrent scans; the slower one [0, 9] determines latency.
    tracer.record("fast", "network", 0.0, 6.0, parent=root)
    tracer.record("slow", "disk", 0.0, 9.0, parent=root)
    attribution = attribute_span(root)
    # Slow child owns [0, 9]; fast child is fully hidden behind it.
    assert attribution["disk"] == pytest.approx(9.0)
    assert attribution["network"] == pytest.approx(0.0)
    assert attribution["compute"] == pytest.approx(1.0)
    assert sum(attribution.values()) == pytest.approx(10.0)


def test_partial_overlap_attributes_uncovered_prefix():
    tracer = make_tracer()
    root = tracer.record("query", "compute", 0.0, 10.0)
    tracer.record("early", "network", 0.0, 5.0, parent=root)
    tracer.record("late", "disk", 4.0, 10.0, parent=root)
    attribution = attribute_span(root)
    # late owns [4, 10]; early is clipped to [0, 4].
    assert attribution["disk"] == pytest.approx(6.0)
    assert attribution["network"] == pytest.approx(4.0)
    assert attribution["compute"] == pytest.approx(0.0)


def test_nested_tree_sums_to_root_duration():
    tracer = make_tracer()
    root = tracer.record("query", "compute", 0.0, 12.0)
    rpc = tracer.record("rpc", "network", 1.0, 11.0, parent=root)
    handle = tracer.record("handle", "compute", 2.0, 10.0, parent=rpc)
    tracer.record("wait", "queueing", 2.0, 3.0, parent=handle)
    tracer.record("disk", "disk", 3.0, 8.0, parent=handle)
    attribution = attribute_span(root)
    assert sum(attribution.values()) == pytest.approx(12.0)
    assert attribution["queueing"] == pytest.approx(1.0)
    assert attribution["disk"] == pytest.approx(5.0)
    # rpc self time: [1,2] + [10,11]; root self: [0,1] + [11,12];
    # handle self: [8,10] -> compute = 2 + 2 = 4, network = 2.
    assert attribution["network"] == pytest.approx(2.0)
    assert attribution["compute"] == pytest.approx(4.0)


def test_unfinished_root_returns_zeros():
    tracer = make_tracer()
    root = tracer.begin("query", "compute")
    attribution = attribute_span(root)
    assert set(attribution) == set(ATTRIBUTION_CATEGORIES)
    assert sum(attribution.values()) == 0.0


def test_unfinished_children_are_ignored():
    tracer = make_tracer()
    root = tracer.record("query", "compute", 0.0, 5.0)
    tracer.begin("populate", "compute", parent=root)  # still open
    tracer.record("disk", "disk", 0.0, 2.0, parent=root)
    attribution = attribute_span(root)
    assert attribution["disk"] == pytest.approx(2.0)
    assert attribution["compute"] == pytest.approx(3.0)


def test_children_outside_root_window_are_clipped():
    tracer = make_tracer()
    root = tracer.record("query", "compute", 2.0, 6.0)
    # Background work ending after the reply must not inflate the total.
    tracer.record("late", "disk", 5.0, 9.0, parent=root)
    attribution = attribute_span(root)
    assert sum(attribution.values()) == pytest.approx(root.duration)
    assert attribution["disk"] == pytest.approx(1.0)


def test_unknown_category_counts_as_compute():
    tracer = make_tracer()
    root = tracer.record("query", "mystery", 0.0, 4.0)
    attribution = attribute_span(root)
    assert attribution["compute"] == pytest.approx(4.0)


def test_fractions_normalize_and_handle_zero():
    fractions = attribution_fractions({"disk": 3.0, "compute": 1.0})
    assert fractions["disk"] == pytest.approx(0.75)
    assert fractions["compute"] == pytest.approx(0.25)
    assert sum(fractions.values()) == pytest.approx(1.0)
    zeros = attribution_fractions({})
    assert set(zeros) == set(ATTRIBUTION_CATEGORIES)
    assert all(v == 0.0 for v in zeros.values())

"""The query flight recorder: passivity, context keying, exact outcomes."""

import pytest

from repro.client.session import ExplorationSession
from repro.config import (
    ClusterConfig,
    FaultConfig,
    ObservabilityConfig,
    OverloadConfig,
    StashConfig,
)
from repro.core.cluster import StashCluster
from repro.data.generator import small_test_dataset
from repro.geo.bbox import BoundingBox
from repro.geo.resolution import Resolution
from repro.geo.temporal import TemporalResolution, TimeKey
from repro.obs.histogram import LatencyHistogram
from repro.obs.recorder import FlightRecorder, QueryContext
from repro.query.model import AggregationQuery
from repro.sim.engine import Simulator


@pytest.fixture(scope="module")
def dataset():
    return small_test_dataset(num_records=6_000)


def base_query(i: int = 0) -> AggregationQuery:
    return AggregationQuery(
        bbox=BoundingBox(33, 37, -108, -100),
        time_range=TimeKey.of(2013, 2, 2).epoch_range(),
        resolution=Resolution(3, TemporalResolution.DAY),
    ).panned(0.02 * (i % 5), 0.02 * (i % 5))


def hotspot_query(i: int) -> AggregationQuery:
    """Two interleaved hotspots in different geohash prefixes.

    Every node is simultaneously a busy coordinator for one hotspot and
    a fetch target for the other, so under a flood ``fetch_cells`` legs
    land on deep queues and get shed — the ctx-carrying shed path.
    """
    box = (
        BoundingBox(25, 30, -85, -80) if i % 2
        else BoundingBox(33, 37, -108, -100)
    )
    return AggregationQuery(
        bbox=box,
        time_range=TimeKey.of(2013, 2, 2).epoch_range(),
        resolution=Resolution(4, TemporalResolution.DAY),
    ).panned(0.02 * (i % 5), 0.02 * (i % 5))


def flood_config(flight_recorder: bool, queue_limit: int = 2) -> StashConfig:
    """An overload flood: tiny queue, aggressive breaker, fault RPC."""
    return StashConfig(
        cluster=ClusterConfig(num_nodes=4),
        faults=FaultConfig(enabled=True, rpc_timeout=0.5, max_retries=1),
        overload=OverloadConfig(
            enabled=True,
            queue_limit=queue_limit,
            breaker_sheds=4,
            breaker_window=2.0,
            breaker_cooldown=1.0,
        ),
        observability=ObservabilityConfig(flight_recorder=flight_recorder),
    )


def shed_flood_config(flight_recorder: bool) -> StashConfig:
    """Deep flood tuned so fetch legs (not just populate) get shed."""
    return StashConfig(
        cluster=ClusterConfig(num_nodes=4),
        faults=FaultConfig(enabled=True, rpc_timeout=0.5, max_retries=1),
        overload=OverloadConfig(
            enabled=True, queue_limit=1, breaker_sheds=10_000
        ),
        observability=ObservabilityConfig(flight_recorder=flight_recorder),
    )


class TestPassivity:
    def test_recorder_on_is_byte_identical_to_off(self, dataset):
        """The tentpole invariant: observing must not change the sim."""
        queries = [base_query(i) for i in range(30)]
        runs = {}
        for enabled in (False, True):
            system = StashCluster(dataset, flood_config(enabled))
            results = system.run_open_loop(
                [q.panned(0, 0) for q in queries], rate=400.0, seed=5
            )
            system.drain()
            runs[enabled] = (system, results)
        off_sys, off_results = runs[False]
        on_sys, on_results = runs[True]
        assert off_sys.sim.now == on_sys.sim.now
        assert off_sys.network.messages_sent == on_sys.network.messages_sent
        assert off_sys.network.messages_dropped == on_sys.network.messages_dropped
        for a, b in zip(off_results, on_results):
            assert a.latency == b.latency
            assert a.completeness == b.completeness
            assert a.cells == b.cells
        # And the recorder actually saw the run.
        assert on_sys.recorder.queries > 0
        assert off_sys.recorder.queries == 0

    def test_disabled_recorder_context_is_none(self):
        recorder = FlightRecorder(Simulator(), enabled=False)
        assert recorder.context(7) is None
        recorder.record_event("anything", None, node="n")
        recorder.record_query(
            kind="pan", coordinator="n", latency=0.1, completeness=1.0, ctx=None
        )
        assert recorder.events == []
        assert recorder.queries == 0


class TestExactlyOnceOutcomes:
    def test_duplicate_terminal_records_are_dropped(self):
        recorder = FlightRecorder(Simulator(), enabled=True)
        ctx = recorder.context(1)
        for _ in range(3):
            recorder.record_query(
                kind="pan", coordinator="n0", latency=0.1,
                completeness=0.5, ctx=ctx,
            )
        assert recorder.queries == 1
        assert recorder.outcome_counts == {"degraded": 1}
        # A different attempt of the same query is a new terminal record.
        recorder.record_query(
            kind="pan", coordinator="n0", latency=0.2,
            completeness=1.0, ctx=ctx.with_(attempt=1),
        )
        assert recorder.outcome_counts == {"degraded": 1, "ok": 1}

    def test_flood_counts_exactly_one_outcome_per_attempt(self, dataset):
        """Shed legs that are later resolved must not double-count."""
        system = StashCluster(dataset, shed_flood_config(True))
        queries = [hotspot_query(i) for i in range(120)]
        results = system.run_open_loop(queries, rate=5_000.0, seed=5)
        system.drain()
        recorder = system.recorder
        # The flood actually shed query-path legs (else this test proves
        # nothing): the shed is recorded server-side AND observed by the
        # coordinator as a failed leg...
        incident_names = {e.name for e in recorder.events}
        assert "shed:fetch_cells" in incident_names
        assert "fetch_leg_shed" in incident_names
        # ...while outcomes stayed exactly one per attempt even though
        # every shed leg was later resolved another way.
        assert sum(recorder.outcome_counts.values()) == recorder.queries
        assert recorder.queries == len(recorder._terminal_seen)
        terminal_query_ids = {qid for qid, _ in recorder._terminal_seen}
        assert terminal_query_ids == {r.query.query_id for r in results}
        # When no client-level retries happened (one attempt per query),
        # recorded outcomes must mirror the client-visible results 1:1.
        if recorder.queries == len(results):
            complete = sum(1 for r in results if r.completeness == 1.0)
            assert recorder.outcome_counts.get("ok", 0) == complete


class TestContextKeying:
    def test_events_are_keyed_to_real_queries(self, dataset):
        system = StashCluster(dataset, flood_config(True))
        queries = [base_query(i) for i in range(40)]
        results = system.run_open_loop(queries, rate=400.0, seed=5)
        system.drain()
        known = {r.query.query_id for r in results}
        assert system.recorder.events  # the flood produced incidents
        for event in system.recorder.events:
            assert event.query_id in known
            assert event.attempt >= 0
        one = results[0].query.query_id
        assert all(e.query_id == one for e in system.recorder.events_for(one))

    def test_context_with_derives_legs(self):
        ctx = QueryContext(query_id=9)
        leg = ctx.with_(leg="node-2", redirect_depth=1)
        assert (leg.query_id, leg.leg, leg.redirect_depth) == (9, "node-2", 1)
        assert ctx.leg == ""  # the original is untouched (frozen)


class TestHistograms:
    def session_cluster(self, dataset):
        config = StashConfig(
            cluster=ClusterConfig(num_nodes=4),
            observability=ObservabilityConfig(
                flight_recorder=True,
                slo_targets=(("pan", 95.0, 100.0), ("*", 99.0, 100.0)),
            ),
        )
        return StashCluster(dataset, config)

    def test_per_class_and_per_node_histograms_merge_to_cluster(self, dataset):
        system = self.session_cluster(dataset)
        session = ExplorationSession(
            system,
            viewport=BoundingBox(33, 37, -108, -100),
            day=TimeKey.of(2013, 2, 2),
            resolution=Resolution(3, TemporalResolution.DAY),
        )
        session.refresh()
        session.pan("e")
        session.pan("e")
        session.dice(0.7)
        session.drill_down()
        system.drain()
        recorder = system.recorder
        classes = recorder.class_histograms()
        assert {"other", "pan", "zoom", "drill"} <= set(classes)
        assert classes["pan"].count == 2
        cluster = recorder.histograms["cluster"]
        assert LatencyHistogram.merge_all(classes.values()) == cluster
        assert (
            LatencyHistogram.merge_all(recorder.node_histograms().values())
            == cluster
        )
        assert cluster.count == recorder.queries == 5

    def test_slo_report_and_gauges(self, dataset):
        system = self.session_cluster(dataset)
        session = ExplorationSession(
            system,
            viewport=BoundingBox(33, 37, -108, -100),
            day=TimeKey.of(2013, 2, 2),
            resolution=Resolution(3, TemporalResolution.DAY),
        )
        session.pan("e")
        system.drain()
        report = system.recorder.slo_report()
        assert [entry["class"] for entry in report] == ["pan", "*"]
        assert all(entry["status"] == "met" for entry in report)
        assert system.recorder.slo_violations == 0
        gauges = set(system.metrics._gauges)
        assert {"recorder.queries", "recorder.slo_violations"} <= gauges

    def test_tight_slo_counts_violations(self, dataset):
        config = StashConfig(
            cluster=ClusterConfig(num_nodes=4),
            observability=ObservabilityConfig(
                flight_recorder=True, slo_targets=(("*", 95.0, 1e-12),)
            ),
        )
        system = StashCluster(dataset, config)
        system.run_query(base_query())
        system.drain()
        assert system.recorder.slo_violations == 1
        assert any(e.name == "slo_violation" for e in system.recorder.events)
        assert system.recorder.slo_report()[0]["status"] == "missed"

"""Edge cases of the Chrome trace export and critical-path attribution:
unfinished spans, zero-duration spans, and children outliving parents."""

import json

import pytest

from repro.obs.critical_path import attribute_span
from repro.obs.export import chrome_trace_events, to_chrome_trace, write_chrome_trace
from repro.obs.tracer import Tracer
from repro.sim.engine import Simulator


def make_tracer() -> tuple[Simulator, Tracer]:
    sim = Simulator()
    return sim, Tracer(sim, enabled=True)


def advance(sim: Simulator, seconds: float) -> None:
    sim.timeout(seconds)
    sim.run()


def trace_events_only(events):
    """Drop the process_name metadata rows."""
    return [e for e in events if e["ph"] == "X"]


class TestUnfinishedSpans:
    def test_open_span_is_skipped_not_exported_broken(self):
        sim, tracer = make_tracer()
        root = tracer.begin("query", "compute", node="client", query_id=1)
        advance(sim, 0.010)
        child = tracer.begin("rpc", "network", parent=root)
        advance(sim, 0.005)
        tracer.end(root)
        # child never ended: it must not appear in the export at all.
        events = trace_events_only(chrome_trace_events(tracer))
        assert [e["name"] for e in events] == ["query"]
        assert child.end is None

    def test_open_span_has_zero_duration_for_attribution(self):
        sim, tracer = make_tracer()
        root = tracer.begin("query", "compute", node="client", query_id=1)
        advance(sim, 0.010)
        open_child = tracer.begin("populate", "network", parent=root)
        advance(sim, 0.002)
        tracer.end(root)
        # The unfinished child is ignored; everything is root self-time.
        attribution = attribute_span(root)
        assert sum(attribution.values()) == pytest.approx(root.duration)
        assert attribution["compute"] == pytest.approx(root.duration)
        assert open_child.duration == 0.0

    def test_unfinished_root_attributes_to_nothing(self):
        sim, tracer = make_tracer()
        root = tracer.begin("query", "compute")
        advance(sim, 0.010)
        assert attribute_span(root) == {
            "queueing": 0.0, "network": 0.0, "disk": 0.0, "compute": 0.0
        }


class TestZeroDurationSpans:
    def test_zero_duration_span_exports_with_zero_dur(self):
        sim, tracer = make_tracer()
        root = tracer.begin("query", "compute", node="client", query_id=3)
        instant = tracer.begin("aggregate", "compute", parent=root)
        tracer.end(instant)  # no time passed
        advance(sim, 0.004)
        tracer.end(root)
        events = trace_events_only(chrome_trace_events(tracer))
        by_name = {e["name"]: e for e in events}
        assert by_name["aggregate"]["dur"] == 0.0
        assert by_name["query"]["dur"] == pytest.approx(4_000.0)  # µs

    def test_zero_duration_child_contributes_nothing(self):
        sim, tracer = make_tracer()
        root = tracer.begin("query", "compute")
        instant = tracer.begin("net", "network", parent=root)
        tracer.end(instant)
        advance(sim, 0.008)
        tracer.end(root)
        attribution = attribute_span(root)
        assert attribution["network"] == 0.0
        assert sum(attribution.values()) == pytest.approx(root.duration)


class TestChildOutlivesParent:
    def test_overrun_child_is_clipped_to_root(self):
        """A populate reply can land after the query's root span closed;
        attribution must clip it so the sum still equals root duration."""
        sim, tracer = make_tracer()
        root = tracer.begin("query", "compute", node="client", query_id=5)
        advance(sim, 0.002)
        overrun = tracer.begin("populate", "network", parent=root)
        advance(sim, 0.004)
        tracer.end(root)  # root closes at t=6ms
        advance(sim, 0.010)
        tracer.end(overrun)  # child closes at t=16ms, 10ms past the root
        attribution = attribute_span(root)
        assert sum(attribution.values()) == pytest.approx(root.duration)
        # Only the in-root part of the child counts.
        assert attribution["network"] == pytest.approx(0.004)
        assert attribution["compute"] == pytest.approx(0.002)

    def test_attribution_sums_to_root_duration_in_deep_tree(self):
        sim, tracer = make_tracer()
        root = tracer.begin("query", "compute", node="client", query_id=6)
        advance(sim, 0.001)
        rpc = tracer.begin("rpc", "network", parent=root)
        advance(sim, 0.002)
        disk = tracer.begin("read", "disk", parent=rpc)
        advance(sim, 0.005)
        tracer.end(disk)
        advance(sim, 0.001)
        tracer.end(rpc)
        advance(sim, 0.001)
        stray = tracer.begin("late", "queueing", parent=root)
        advance(sim, 0.003)
        tracer.end(root)
        advance(sim, 1.0)
        tracer.end(stray)
        attribution = attribute_span(root)
        assert sum(attribution.values()) == pytest.approx(root.duration)
        assert attribution["disk"] == pytest.approx(0.005)


class TestTraceFile:
    def test_full_trace_round_trips_as_json(self, tmp_path):
        sim, tracer = make_tracer()
        root = tracer.begin("query", "compute", node="node-0", query_id=9)
        open_child = tracer.begin("orphan", "network", parent=root)
        advance(sim, 0.001)
        tracer.end(root)
        assert open_child.end is None
        path = write_chrome_trace(tracer, tmp_path / "trace.json")
        data = json.loads(path.read_text())
        assert data["otherData"]["spans"] == 2
        names = [e["name"] for e in data["traceEvents"] if e["ph"] == "X"]
        assert names == ["query"]
        # Metadata names every node as a process.
        meta = [e for e in data["traceEvents"] if e["ph"] == "M"]
        assert {m["args"]["name"] for m in meta} == {"node-0"}

    def test_trace_object_marks_truncation(self):
        sim, tracer = make_tracer()
        tracer.max_spans = 1
        tracer.begin("a", "compute")
        tracer.begin("b", "compute")
        data = to_chrome_trace(tracer)
        assert data["otherData"]["truncated"] is True

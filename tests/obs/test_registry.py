"""Metrics registry: grid sampling via simulator tick hooks."""

import pytest

from repro.errors import SimulationError
from repro.obs.registry import MetricsRegistry, TimeSeries
from repro.sim.engine import Simulator


def test_time_series_basics():
    series = TimeSeries("x")
    assert len(series) == 0
    series.record(0.0, 1.0)
    series.record(1.0, 3.0)
    series.record(2.0, 2.0)
    assert series.first() == 1.0
    assert series.last() == 2.0
    assert series.peak() == 3.0
    assert series.to_dict() == {"name": "x", "times": [0.0, 1.0, 2.0], "values": [1.0, 3.0, 2.0]}


def test_empty_series_accessors_raise():
    series = TimeSeries("x")
    for accessor in (series.first, series.last, series.peak):
        with pytest.raises(SimulationError):
            accessor()


def test_start_requires_positive_interval():
    registry = MetricsRegistry(Simulator())
    with pytest.raises(SimulationError):
        registry.start(0.0)
    with pytest.raises(SimulationError):
        registry.start(-1.0)


def test_grid_sampling_stamps_grid_times():
    sim = Simulator()
    registry = MetricsRegistry(sim)
    state = {"v": 0.0}
    registry.gauge("v", lambda: state["v"])
    registry.start(1.0)

    def proc():
        for step in range(5):
            state["v"] = float(step)
            yield sim.timeout(0.7)

    sim.process(proc())
    sim.run()
    series = registry.series["v"]
    # Events at 0.7, 1.4, 2.1, 2.8, 3.5 -> grid points 1, 2, 3 crossed.
    assert series.times == [1.0, 2.0, 3.0]
    # Samples carry the state *after* the event that crossed the grid
    # point: t=1.4 sets v=2 then crosses 1.0; t=3.5 sets v=4, crossing 3.0.
    assert series.values == [2.0, 3.0, 4.0]


def test_large_jump_emits_every_crossed_grid_point():
    sim = Simulator()
    registry = MetricsRegistry(sim)
    registry.gauge("one", lambda: 1.0)
    registry.start(0.5)
    sim.timeout(2.2)
    sim.run()
    assert registry.series["one"].times == [0.5, 1.0, 1.5, 2.0]


def test_sampler_never_blocks_drain():
    sim = Simulator()
    registry = MetricsRegistry(sim)
    registry.gauge("one", lambda: 1.0)
    registry.start(0.25)
    sim.timeout(1.0)
    sim.run()  # must terminate: sampling is passive, no self-scheduling
    assert sim.now == 1.0
    assert len(registry.series["one"]) == 4


def test_stop_halts_sampling_but_keeps_series():
    sim = Simulator()
    registry = MetricsRegistry(sim)
    registry.gauge("one", lambda: 1.0)
    registry.start(1.0)
    sim.timeout(1.5)
    sim.run()
    registry.stop()
    sim.timeout(5.0)
    sim.run()
    assert registry.series["one"].times == [1.0]
    registry.stop()  # idempotent


def test_manual_record_and_sample():
    sim = Simulator()
    registry = MetricsRegistry(sim)
    registry.gauge("g", lambda: 7.0)
    registry.record("manual", 42.0, at=3.0)
    registry.sample()
    assert registry.series["manual"].values == [42.0]
    assert registry.series["manual"].times == [3.0]
    assert registry.series["g"].values == [7.0]


def test_format_table_and_to_dict():
    sim = Simulator()
    registry = MetricsRegistry(sim)
    registry.gauge("full", lambda: 1.0)
    registry.gauge("empty", lambda: 0.0)
    registry.series["full"].record(0.0, 1.0)
    table = registry.format_table()
    assert "full" in table and "empty" in table
    assert "(no samples)" in table
    exported = registry.to_dict()
    assert set(exported) == {"full", "empty"}
    assert exported["full"]["values"] == [1.0]

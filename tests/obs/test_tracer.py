"""Unit tests for the span tracer."""

from repro.obs.tracer import Span, Tracer
from repro.sim.engine import Simulator


def test_disabled_tracer_records_nothing():
    sim = Simulator()
    tracer = Tracer(sim, enabled=False)
    span = tracer.begin("query", "compute")
    assert span is None
    tracer.end(span)  # no-op, no error
    assert tracer.record("x", "disk", 0.0, 1.0) is None
    assert len(tracer) == 0


def test_begin_end_uses_simulated_clock():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True)
    span = tracer.begin("query", "compute", node="client")
    assert span is not None and span.start == 0.0 and span.end is None
    assert span.duration == 0.0
    sim.timeout(1.5)
    sim.run()
    tracer.end(span)
    assert span.end == 1.5
    assert span.duration == 1.5


def test_end_is_idempotent():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True)
    span = tracer.begin("query", "compute")
    tracer.end(span)
    first_end = span.end
    sim.timeout(1.0)
    sim.run()
    tracer.end(span)
    assert span.end == first_end


def test_children_inherit_query_id_and_node():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True)
    root = tracer.begin("query", "compute", node="client", query_id=7)
    child = tracer.begin("rpc:evaluate", "network", parent=root)
    grandchild = tracer.record("net:evaluate", "network", 0.0, 0.1, parent=child)
    assert child.query_id == 7 and child.node == "client"
    assert grandchild.query_id == 7
    assert root.children == [child]
    assert child.children == [grandchild]
    assert list(root.walk()) == [root, child, grandchild]


def test_explicit_node_overrides_inheritance():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True)
    root = tracer.begin("query", "compute", node="client", query_id=3)
    child = tracer.begin("handle", "compute", parent=root, node="node-1")
    assert child.node == "node-1"
    assert child.query_id == 3


def test_max_spans_truncates():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True, max_spans=2)
    a = tracer.begin("a", "compute")
    b = tracer.begin("b", "compute")
    c = tracer.begin("c", "compute")
    assert a is not None and b is not None
    assert c is None
    assert tracer.truncated
    assert len(tracer) == 2
    tracer.end(c)  # dropped spans end as no-ops


def test_roots_and_query_roots():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True)
    q0 = tracer.begin("query", "compute", query_id=0)
    tracer.begin("rpc", "network", parent=q0)
    q1 = tracer.begin("query", "compute", query_id=1)
    background = tracer.begin("janitor", "compute")
    assert tracer.roots() == [q0, q1, background]
    assert tracer.query_roots() == [q0, q1]
    assert tracer.query_roots(query_id=1) == [q1]


def test_structure_and_clear():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True)
    root = tracer.begin("query", "compute", node="client", query_id=0)
    tracer.end(root)
    structure = tracer.structure()
    assert structure == [("query", "compute", "client", 0, 0.0, 0.0, None)]
    tracer.clear()
    assert len(tracer) == 0 and not tracer.truncated


def test_end_merges_attrs():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True)
    span = tracer.begin("scan", "compute", attrs={"blocks": 3})
    tracer.end(span, attrs={"records": 10})
    assert span.attrs == {"blocks": 3, "records": 10}


def test_span_repr_mentions_state():
    sim = Simulator()
    tracer = Tracer(sim, enabled=True)
    span = tracer.begin("scan", "compute", node="node-0")
    assert "..." in repr(span)
    tracer.end(span)
    assert "ms" in repr(span)
    assert isinstance(span, Span)

"""Property tests for the mergeable log-bucketed latency histogram."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.histogram import (
    MAX_EXP,
    MIN_EXP,
    NUM_BUCKETS,
    LatencyHistogram,
    bucket_bounds,
    bucket_index,
)
from repro.stats import percentile

latencies = st.floats(min_value=0.0, max_value=1e5, allow_nan=False)
samples = st.lists(latencies, max_size=60)


def hist_of(values) -> LatencyHistogram:
    histogram = LatencyHistogram()
    for value in values:
        histogram.observe(value)
    return histogram


class TestBuckets:
    def test_underflow_and_overflow(self):
        assert bucket_index(0.0) == 0
        assert bucket_index(2.0**MIN_EXP / 2) == 0
        assert bucket_index(2.0**MAX_EXP) == NUM_BUCKETS - 1
        assert bucket_index(1e9) == NUM_BUCKETS - 1

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            bucket_index(-1e-9)

    @given(latencies)
    def test_value_lies_within_its_bucket(self, value):
        lo, hi = bucket_bounds(bucket_index(value))
        assert lo <= value < hi

    def test_boundary_goes_to_upper_bucket(self):
        # 2**k is the *lower* bound of bucket k+1, not in bucket k.
        index = bucket_index(0.5)
        lo, _hi = bucket_bounds(index)
        assert lo == 0.5

    def test_bounds_tile_the_line(self):
        previous_hi = 0.0
        for index in range(NUM_BUCKETS):
            lo, hi = bucket_bounds(index)
            assert lo == previous_hi
            previous_hi = hi
        assert math.isinf(previous_hi)


class TestMonoid:
    @given(samples, samples)
    def test_merge_commutative(self, a, b):
        assert hist_of(a).merge(hist_of(b)) == hist_of(b).merge(hist_of(a))

    @given(samples, samples, samples)
    def test_merge_associative(self, a, b, c):
        ha, hb, hc = hist_of(a), hist_of(b), hist_of(c)
        assert ha.merge(hb).merge(hc) == ha.merge(hb.merge(hc))

    @given(samples)
    def test_empty_is_identity(self, a):
        h = hist_of(a)
        assert h.merge(LatencyHistogram.empty()) == h
        assert LatencyHistogram.empty().merge(h) == h

    @given(samples, samples)
    def test_merge_equals_observing_concatenation(self, a, b):
        assert hist_of(a).merge(hist_of(b)) == hist_of(a + b)

    @given(st.lists(samples, max_size=5))
    def test_merge_all(self, chunks):
        merged = LatencyHistogram.merge_all(hist_of(c) for c in chunks)
        assert merged == hist_of([v for c in chunks for v in c])


class TestPercentileBounds:
    @given(
        st.lists(latencies, min_size=1, max_size=60),
        st.floats(min_value=0.0, max_value=100.0),
    )
    def test_bounds_contain_exact_percentile(self, values, q):
        h = hist_of(values)
        lo, hi = h.percentile_bounds(q)
        exact = percentile(values, q)
        assert lo <= exact <= hi

    @given(st.lists(latencies, min_size=1, max_size=60))
    def test_estimate_within_bounds(self, values):
        h = hist_of(values)
        lo, hi = h.percentile_bounds(95.0)
        estimate = h.percentile_estimate(95.0)
        assert lo <= estimate <= (hi if not math.isinf(hi) else lo)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            LatencyHistogram().percentile_bounds(50.0)

    def test_bad_q_raises(self):
        with pytest.raises(ValueError):
            hist_of([1.0]).percentile_bounds(101.0)

    def test_overflow_estimate_is_finite(self):
        h = hist_of([2.0**MAX_EXP * 4])
        assert math.isfinite(h.percentile_estimate(50.0))


class TestSerialization:
    @given(samples)
    def test_round_trip(self, values):
        h = hist_of(values)
        restored = LatencyHistogram.from_dict(h.to_dict())
        assert restored == h
        assert restored.total == h.total

    def test_layout_mismatch_rejected(self):
        data = hist_of([1.0]).to_dict()
        data["min_exp"] = MIN_EXP - 1
        with pytest.raises(ValueError, match="layout mismatch"):
            LatencyHistogram.from_dict(data)

    def test_sparse_form(self):
        data = hist_of([0.25, 0.25]).to_dict()
        assert list(data["buckets"].values()) == [2]

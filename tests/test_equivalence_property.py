"""Property-based cross-system equivalence.

The repository's master invariant: for ANY query, every engine variant
returns the same aggregates as the single-threaded oracle.  Hypothesis
drives random query rectangles, days, and resolutions at all three
engines against one shared dataset.
"""

from hypothesis import HealthCheck, given, settings

from repro.baselines.basic import BasicSystem
from repro.baselines.elastic import ElasticSystem
from repro.config import ClusterConfig, ElasticConfig, StashConfig
from repro.core.cluster import StashCluster
from repro.data.generator import small_test_dataset
from repro.geo.resolution import Resolution
from repro.query.model import AggregationQuery
from repro.storage.backend import ground_truth_cells
from tests.strategies import queries

DATASET = small_test_dataset(num_records=5_000, num_days=4)
CONFIG = StashConfig(
    cluster=ClusterConfig(num_nodes=5),
    elastic=ElasticConfig(num_shards=10),
)


def assert_equals_truth(result, query):
    truth = ground_truth_cells(DATASET, query)
    assert set(result.cells) == set(truth)
    for key, vec in result.cells.items():
        assert vec.approx_equal(truth[key])


class TestCrossSystemEquivalence:
    @given(queries())
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_basic_matches_oracle(self, query):
        system = BasicSystem(DATASET, CONFIG)
        assert_equals_truth(system.run_query(query), query)

    @given(queries())
    @settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_stash_cold_and_hot_match_oracle(self, query):
        cluster = StashCluster(DATASET, CONFIG)
        cold = cluster.run_query(query)
        assert_equals_truth(cold, query)
        cluster.drain()
        hot = cluster.run_query(
            AggregationQuery(
                bbox=query.bbox,
                time_range=query.time_range,
                resolution=query.resolution,
            )
        )
        assert_equals_truth(hot, query)
        assert hot.matches(cold)

    @given(queries())
    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_elastic_matches_oracle(self, query):
        system = ElasticSystem(DATASET, CONFIG)
        assert_equals_truth(system.run_query(query), query)

    @given(queries())
    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_rollup_path_matches_oracle(self, query):
        """Warm the finer level, then ask coarser: roll-up must be exact."""
        if query.resolution.spatial >= 4:
            query = query.at_resolution(
                Resolution(3, query.resolution.temporal)
            )
        cluster = StashCluster(DATASET, CONFIG)
        finer = AggregationQuery(
            bbox=query.snapped_bbox(),
            time_range=query.time_range,
            resolution=Resolution(
                query.resolution.spatial + 1, query.resolution.temporal
            ),
        )
        cluster.warm([finer])
        result = cluster.run_query(query)
        assert_equals_truth(result, query)
        if result.provenance["cells_from_rollup"] > 0:
            assert result.provenance["cells_from_disk"] == 0

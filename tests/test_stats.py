"""The shared percentile implementation vs numpy's reference."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats import percentile, percentiles


class TestPercentile:
    def test_matches_numpy_linear(self):
        rng = np.random.default_rng(7)
        values = rng.exponential(0.1, size=101).tolist()
        for q in (0.0, 1.0, 25.0, 50.0, 90.0, 95.0, 99.0, 100.0):
            assert percentile(values, q) == pytest.approx(
                float(np.percentile(values, q)), rel=1e-12
            )

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1,
            max_size=50,
        ),
        st.floats(min_value=0.0, max_value=100.0),
    )
    def test_matches_numpy_property(self, values, q):
        assert percentile(values, q) == pytest.approx(
            float(np.percentile(values, q)), rel=1e-9, abs=1e-9
        )

    def test_single_value(self):
        assert percentile([3.5], 95.0) == 3.5

    def test_unsorted_input(self):
        assert percentile([3.0, 1.0, 2.0], 50.0) == 2.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50.0)

    def test_out_of_range_q_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)
        with pytest.raises(ValueError):
            percentile([1.0], -0.1)

    def test_percentiles_batch(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentiles(values, [0.0, 50.0, 100.0]) == [1.0, 3.0, 5.0]
        with pytest.raises(ValueError):
            percentiles([], [50.0])

"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestDatasetCommand:
    def test_prints_stats(self, capsys):
        code = main(["dataset", "--records", "2000", "--days", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "records:    2,000" in out
        assert "temperature" in out

    def test_seed_changes_output(self, capsys):
        main(["dataset", "--records", "2000", "--seed", "1"])
        first = capsys.readouterr().out
        main(["dataset", "--records", "2000", "--seed", "2"])
        second = capsys.readouterr().out
        assert first != second


class TestQueryCommand:
    def test_basic_run(self, capsys):
        code = main(
            [
                "query",
                "--records", "5000",
                "--nodes", "4",
                "--spatial", "3",
                "--repeat", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "run 1:" in out and "run 2:" in out
        assert "provenance" in out

    def test_caching_visible_across_repeats(self, capsys):
        main(
            [
                "query",
                "--records", "5000",
                "--nodes", "4",
                "--spatial", "3",
                "--repeat", "2",
            ]
        )
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l.strip().startswith("run")]
        first_ms = float(lines[0].split()[2])
        second_ms = float(lines[1].split()[2])
        assert second_ms < first_ms

    def test_engine_choices(self, capsys):
        for engine in ("basic", "elastic"):
            code = main(
                [
                    "query",
                    "--engine", engine,
                    "--records", "4000",
                    "--nodes", "4",
                    "--spatial", "3",
                    "--repeat", "1",
                ]
            )
            assert code == 0

    def test_bad_box(self, capsys):
        code = main(["query", "--box", "not-a-box"])
        assert code == 2
        assert "south,north,west,east" in capsys.readouterr().err

    def test_json_output(self, capsys):
        import json

        code = main(
            [
                "query",
                "--records", "4000",
                "--nodes", "4",
                "--spatial", "3",
                "--repeat", "1",
                "--json",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # The JSON body starts at the first line-leading brace (earlier
        # braces belong to the provenance dicts in the run lines).
        body = out[out.rindex("\n{") + 1 :]
        parsed = json.loads(body)
        assert "cells" in parsed

    def test_heatmap_output(self, capsys):
        code = main(
            [
                "query",
                "--records", "4000",
                "--nodes", "4",
                "--spatial", "3",
                "--repeat", "1",
                "--heatmap", "temperature",
            ]
        )
        assert code == 0
        assert "temperature (mean)" in capsys.readouterr().out


class TestExperimentCommand:
    def test_runs_unit_scale_experiment(self, capsys):
        code = main(["experiment", "fig6c", "--scale", "unit"])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig6c" in out
        assert "cells_populated" in out

    def test_save_writes_files(self, tmp_path, capsys, monkeypatch):
        import repro.bench.reporting as reporting

        monkeypatch.setattr(reporting, "RESULTS_DIR", tmp_path)
        code = main(["experiment", "fig6c", "--scale", "unit", "--save"])
        assert code == 0
        assert (tmp_path / "fig6c.txt").exists()
        assert (tmp_path / "fig6c.json").exists()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestTraceCommand:
    def test_record_then_replay(self, tmp_path, capsys):
        path = str(tmp_path / "trace.jsonl")
        code = main(
            [
                "trace", "record", path,
                "--workload", "hotspot",
                "--requests", "10",
            ]
        )
        assert code == 0
        assert "wrote 10 queries" in capsys.readouterr().out
        code = main(
            [
                "trace", "replay", path,
                "--records", "5000",
                "--nodes", "4",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "replayed 10 queries on stash" in out
        assert "mean latency" in out

    def test_record_workload_kinds(self, tmp_path, capsys):
        for kind in ("pan-cloud", "zipf"):
            path = str(tmp_path / f"{kind}.jsonl")
            assert main(
                ["trace", "record", path, "--workload", kind, "--requests", "8"]
            ) == 0

    def test_replay_concurrent(self, tmp_path, capsys):
        path = str(tmp_path / "trace.jsonl")
        main(["trace", "record", path, "--requests", "6"])
        capsys.readouterr()
        code = main(
            [
                "trace", "replay", path,
                "--records", "5000",
                "--nodes", "4",
                "--concurrent",
            ]
        )
        assert code == 0
        assert "queries/s" in capsys.readouterr().out


class TestExplainCommand:
    def test_waterfall_for_slowest_query(self, capsys):
        code = main(
            [
                "explain",
                "--records", "5000",
                "--nodes", "4",
                "--requests", "6",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "critical path:" in out
        assert " ms  [" in out  # at least one waterfall row with a gantt bar

    def test_explain_specific_query_with_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        code = main(
            [
                "explain",
                "--records", "5000",
                "--nodes", "4",
                "--requests", "4",
                "--query", "2",
                "--trace-out", str(trace),
            ]
        )
        assert code == 0
        assert trace.exists()
        assert "critical path:" in capsys.readouterr().out

    def test_bad_query_index_rejected(self, capsys):
        code = main(
            [
                "explain",
                "--records", "5000",
                "--nodes", "4",
                "--requests", "3",
                "--query", "99",
            ]
        )
        assert code == 2
        assert "out of range" in capsys.readouterr().err


class TestSloCommand:
    def test_report_and_json_output(self, tmp_path, capsys):
        import json

        path = tmp_path / "BENCH_slo.json"
        code = main(
            ["slo", "--requests", "12", "--output", str(path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "== bench slo" in out
        assert "outcomes:" in out
        report = json.loads(path.read_text())
        assert report["schema"] == "stash-bench-slo/v1"
        assert set(report["meta"]) >= {"python", "numpy", "seed"}
        assert report["recorder"]["queries"] == 12

    def test_skip_output(self, capsys):
        code = main(["slo", "--requests", "6", "--output", "-"])
        assert code == 0
        assert "wrote report" not in capsys.readouterr().out

"""Tests for the storage node server process (worker pools, dispatch)."""

import pytest

from repro.config import ClusterConfig, StashConfig
from repro.data.generator import small_test_dataset
from repro.dht.partitioner import PrefixPartitioner
from repro.errors import StorageError
from repro.geo.bbox import BoundingBox
from repro.geo.resolution import Resolution
from repro.geo.temporal import TemporalResolution, TimeKey
from repro.query.model import AggregationQuery
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.storage.backend import StorageCatalog
from repro.storage.node import StorageNode

NODES = ["node-0", "node-1"]


@pytest.fixture()
def rig():
    sim = Simulator()
    config = StashConfig(cluster=ClusterConfig(num_nodes=2, workers_per_node=2))
    partitioner = PrefixPartitioner(NODES, 2)
    catalog = StorageCatalog(partitioner, block_precision=3)
    catalog.ingest(small_test_dataset(num_records=3_000))
    network = Network(sim, config.cost)
    network.register("client")
    nodes = {
        node_id: StorageNode(sim, network, catalog, node_id, config)
        for node_id in NODES
    }
    for node in nodes.values():
        node.start()
    return sim, network, catalog, nodes


def make_query():
    return AggregationQuery(
        bbox=BoundingBox(30, 45, -115, -95),
        time_range=TimeKey.of(2013, 2, 2).epoch_range(),
        resolution=Resolution(3, TemporalResolution.DAY),
    )


class TestScanService:
    def test_scan_rpc_round_trip(self, rig):
        sim, network, catalog, nodes = rig
        query = make_query()
        node_id = NODES[0]
        block_ids = [
            b for b in catalog.blocks_for_query(query)
            if catalog.node_of(b) == node_id
        ]
        assert block_ids, "need local blocks for this test"
        reply = network.request(
            "client", node_id, "scan", {"query": query, "block_ids": block_ids}
        )
        cells = sim.run(until=reply)
        assert cells
        assert nodes[node_id].counters.get("blocks_scanned") == len(block_ids)
        assert nodes[node_id].disk.reads == len(block_ids)

    def test_scan_foreign_block_fails(self, rig):
        sim, network, catalog, nodes = rig
        query = make_query()
        foreign = [
            b for b in catalog.blocks_for_query(query)
            if catalog.node_of(b) == NODES[1]
        ]
        reply = network.request(
            "client", NODES[0], "scan", {"query": query, "block_ids": foreign[:1]}
        )
        with pytest.raises(StorageError):
            sim.run(until=reply)

    def test_unknown_kind_fails_rpc(self, rig):
        sim, network, _catalog, _nodes = rig
        reply = network.request("client", NODES[0], "frobnicate", {})
        with pytest.raises(StorageError):
            sim.run(until=reply)

    def test_unknown_kind_without_reply_raises_in_sim(self, rig):
        sim, network, _catalog, _nodes = rig
        network.send("client", NODES[0], "frobnicate", {})
        with pytest.raises(StorageError):
            sim.run()


class TestWorkerPools:
    def test_worker_pool_bounds_concurrency(self, rig):
        sim, network, catalog, nodes = rig
        query = make_query()
        node_id = NODES[0]
        block_ids = [
            b for b in catalog.blocks_for_query(query)
            if catalog.node_of(b) == node_id
        ]
        replies = [
            network.request(
                "client", node_id, "scan", {"query": query, "block_ids": block_ids}
            )
            for _ in range(6)
        ]
        sim.run(until=sim.all_of(replies))
        # With 2 service workers, 6 scans take >= 3 sequential batches
        # of disk time; verify the disk saw all the work.
        assert nodes[node_id].disk.reads == 6 * len(block_ids)

    def test_pending_requests_counts_queued_coordinator_work(self, rig):
        sim, network, _catalog, nodes = rig
        node = nodes[NODES[0]]

        def slow_handler(message):
            yield sim.timeout(10.0)
            network.respond(message, {"cells": {}, "provenance": {}})

        node.register_handler("evaluate", slow_handler)
        replies = [
            network.request("client", NODES[0], "evaluate", {}) for _ in range(10)
        ]
        # Let messages arrive and workers pick up their first jobs.
        sim.run(until=0.01)
        # 2 coordinator workers are busy; 8 requests still pending.
        assert node.pending_requests == 8
        sim.run(until=sim.all_of(replies))
        assert node.pending_requests == 0

    def test_coordinator_and_service_kinds_split(self):
        from repro.storage.node import COORDINATOR_KINDS

        assert "evaluate" in COORDINATOR_KINDS
        assert "scan" not in COORDINATOR_KINDS
        assert "fetch_cells" not in COORDINATOR_KINDS

"""Tests for the storage catalog and the scan kernel."""

import numpy as np
import pytest

from repro.data.block import BlockId
from repro.data.generator import small_test_dataset
from repro.data.statistics import SummaryVector
from repro.dht.partitioner import PrefixPartitioner
from repro.errors import StorageError
from repro.geo.bbox import BoundingBox
from repro.geo.resolution import Resolution
from repro.geo.temporal import TemporalResolution, TimeKey
from repro.query.model import AggregationQuery
from repro.storage.backend import StorageCatalog, ground_truth_cells, scan_blocks

NODES = [f"node-{i}" for i in range(6)]


@pytest.fixture(scope="module")
def batch():
    return small_test_dataset(num_records=8_000)


@pytest.fixture(scope="module")
def catalog(batch):
    cat = StorageCatalog(PrefixPartitioner(NODES, 2))
    cat.ingest(batch)
    return cat


def make_query(box=None, resolution=None, day=(2013, 2, 2)):
    return AggregationQuery(
        bbox=box or BoundingBox(30, 45, -115, -95),
        time_range=TimeKey.of(*day).epoch_range(),
        resolution=resolution or Resolution(3, TemporalResolution.DAY),
    )


class TestCatalog:
    def test_ingest_places_all_records(self, catalog, batch):
        assert catalog.total_records == len(batch)
        assert catalog.num_blocks > 1

    def test_every_block_on_its_partition_node(self, catalog):
        for node in NODES:
            for block_id in catalog.blocks_on(node):
                assert catalog.partitioner.node_for_partition(block_id.geohash) == node
                assert catalog.node_of(block_id) == node

    def test_reingest_merges(self, batch):
        cat = StorageCatalog(PrefixPartitioner(NODES, 2))
        half = len(batch) // 2
        idx = np.arange(len(batch))
        cat.ingest(batch.select(idx[:half]))
        cat.ingest(batch.select(idx[half:]))
        assert cat.total_records == len(batch)

    def test_unknown_block(self, catalog):
        with pytest.raises(StorageError):
            catalog.node_of(BlockId("zz", "1999-01-01"))
        assert catalog.get_block(BlockId("zz", "1999-01-01")) is None

    def test_unknown_node(self, catalog):
        with pytest.raises(StorageError):
            catalog.blocks_on("ghost")

    def test_blocks_for_query_overlap(self, catalog, batch):
        query = make_query()
        block_ids = catalog.blocks_for_query(query)
        assert block_ids
        snapped_box = query.snapped_bbox()
        for block_id in block_ids:
            assert block_id.day == "2013-02-02"
            from repro.geo.geohash import bbox as geohash_bbox

            assert geohash_bbox(block_id.geohash).intersects(snapped_box)

    def test_blocks_for_query_complete(self, catalog, batch):
        """Every record in the snapped extent lives in a selected block."""
        query = make_query()
        selected = set(catalog.blocks_for_query(query))
        sub = batch.filter_bbox(query.snapped_bbox()).filter_time(
            query.snapped_time_range()
        )
        from repro.data.block import partition_into_blocks

        needed = partition_into_blocks(sub, 2)
        assert set(needed).issubset(selected)

    def test_blocks_by_node_plan(self, catalog):
        block_ids = catalog.blocks_for_query(make_query())
        plan = catalog.blocks_by_node(block_ids)
        assert sum(len(v) for v in plan.values()) == len(block_ids)
        for node, ids in plan.items():
            for block_id in ids:
                assert catalog.node_of(block_id) == node


class TestScanKernel:
    def test_scan_matches_ground_truth(self, catalog, batch):
        query = make_query()
        block_ids = catalog.blocks_for_query(query)
        blocks = [catalog.get_block(b) for b in block_ids]
        cells, stats = scan_blocks(blocks, query)
        truth = ground_truth_cells(batch, query)
        assert set(cells) == set(truth)
        for key, vec in cells.items():
            assert vec.approx_equal(truth[key])

    def test_scan_stats(self, catalog):
        query = make_query()
        block_ids = catalog.blocks_for_query(query)
        blocks = [catalog.get_block(b) for b in block_ids]
        _, stats = scan_blocks(blocks, query)
        assert stats.blocks_read == len(blocks)
        assert stats.records_scanned == sum(len(b) for b in blocks)
        assert stats.bytes_read == sum(b.nbytes for b in blocks)

    def test_scan_empty_blocks(self, catalog):
        query = make_query()
        cells, stats = scan_blocks([], query)
        assert cells == {} and stats.blocks_read == 0

    def test_scan_ignores_attribute_selection(self, catalog, batch):
        """Scans aggregate *every* attribute regardless of the query's
        selection: cells cache full vectors so they stay reusable by any
        later query, and projection happens only at the response
        boundary (``SummaryVector.project``)."""
        query = AggregationQuery(
            bbox=BoundingBox(30, 45, -115, -95),
            time_range=TimeKey.of(2013, 2, 2).epoch_range(),
            resolution=Resolution(3, TemporalResolution.DAY),
            attributes=("temperature",),
        )
        block_ids = catalog.blocks_for_query(query)
        blocks = [catalog.get_block(b) for b in block_ids]
        cells, _ = scan_blocks(blocks, query)
        assert cells
        for vec in cells.values():
            assert vec.attributes == sorted(batch.attributes)
        # ground_truth_cells sits at the response boundary: it projects.
        truth = ground_truth_cells(batch, query)
        for key, vec in truth.items():
            assert vec.attributes == ["temperature"]
            assert vec.approx_equal(cells[key].project(["temperature"]))

    def test_scan_columnar_matches_scalar(self, catalog):
        """The columnar (bin-id + SummaryFrame) scan is bitwise identical
        to the frozen scalar string-label path, cell order included."""
        query = make_query()
        block_ids = catalog.blocks_for_query(query)
        blocks = [catalog.get_block(b) for b in block_ids]
        columnar, stats_c = scan_blocks(blocks, query, columnar=True)
        scalar, stats_s = scan_blocks(blocks, query, columnar=False)
        assert columnar == scalar
        assert list(columnar) == list(scalar)
        assert stats_c == stats_s

    def test_ground_truth_no_matches(self, batch):
        query = make_query(day=(2013, 6, 6))  # outside February dataset
        assert ground_truth_cells(batch, query) == {}

    def test_cells_cover_full_cell_extents(self, catalog, batch):
        """A cell's summary covers its whole extent, not just the query box."""
        query = make_query(box=BoundingBox(34.9, 35.1, -105.1, -104.9))
        block_ids = catalog.blocks_for_query(query)
        blocks = [catalog.get_block(b) for b in block_ids]
        cells, _ = scan_blocks(blocks, query)
        for key, vec in cells.items():
            sub = batch.filter_bbox(key.bbox).filter_time(key.time_range)
            expected = SummaryVector.from_arrays(
                {name: values for name, values in sub.attributes.items()}
            )
            assert vec.approx_equal(expected)

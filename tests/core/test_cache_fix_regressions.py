"""Server-side cache-correctness regressions.

Two fixes pinned here:

* the guest fast path (``evaluate_guest`` answered straight from the
  guest graph) must honor the query's attribute projection and reply with
  an explicit ``completeness``, matching ``_evaluate_core``'s response
  contract — a rerouted query must be indistinguishable from a direct
  one;
* ``fetch_cells`` must give roll-up-recomputed cells freshness credit:
  the parent cell created by the roll-up was absent during the footprint
  touch, and without a follow-up touch it would sit at zero freshness —
  first in line for eviction despite having just been used.
"""

import pytest

from repro.config import ClusterConfig, StashConfig
from repro.core.cell import Cell
from repro.core.cluster import StashCluster
from repro.core.keys import CellKey
from repro.data.generator import small_test_dataset
from repro.data.statistics import SummaryVector
from repro.geo import geohash as gh
from repro.geo.bbox import BoundingBox
from repro.geo.resolution import Resolution
from repro.geo.temporal import TemporalResolution, TimeKey
from repro.query.model import AggregationQuery

DAY = TimeKey.of(2013, 2, 2)


@pytest.fixture(scope="module")
def dataset():
    return small_test_dataset(num_records=5_000)


def make_cluster(dataset):
    cluster = StashCluster(dataset, StashConfig(cluster=ClusterConfig(num_nodes=4)))
    cluster.start()
    return cluster


class TestGuestFastPath:
    def _guest_answer(self, cluster, query):
        """Fill one helper's guest graph and serve ``query`` from it."""
        helper = cluster.nodes["node-0"]
        for key, summary in cluster.compute_footprint_cells(query).items():
            helper.guest.upsert(Cell(key=key, summary=summary))
        reply = cluster.network.request(
            "client", helper.node_id, "evaluate_guest", {"query": query}, size=512
        )
        return helper, cluster.sim.run(until=reply)

    def test_projection_applied_on_guest_hit(self, dataset):
        cluster = make_cluster(dataset)
        query = AggregationQuery(
            bbox=BoundingBox(32, 40, -112, -102),
            time_range=DAY.epoch_range(),
            resolution=Resolution(3, TemporalResolution.DAY),
            attributes=("temperature",),
        )
        helper, response = self._guest_answer(cluster, query)
        # Served from the guest graph, not via fallback evaluation.
        assert helper.counters.as_dict().get("guest_queries_served", 0) == 1
        assert response["cells"]
        for vec in response["cells"].values():
            assert vec.attributes == ["temperature"]

    def test_guest_hit_matches_direct_evaluation(self, dataset):
        cluster = make_cluster(dataset)
        query = AggregationQuery(
            bbox=BoundingBox(32, 40, -112, -102),
            time_range=DAY.epoch_range(),
            resolution=Resolution(3, TemporalResolution.DAY),
            attributes=("temperature", "humidity"),
        )
        _helper, response = self._guest_answer(cluster, query)
        direct = cluster.run_query(
            AggregationQuery(
                bbox=query.bbox,
                time_range=query.time_range,
                resolution=query.resolution,
                attributes=query.attributes,
            )
        )
        assert set(response["cells"]) == set(direct.cells)
        for key, vec in response["cells"].items():
            assert vec.approx_equal(direct.cells[key])

    def test_guest_reply_carries_completeness(self, dataset):
        cluster = make_cluster(dataset)
        query = AggregationQuery(
            bbox=BoundingBox(33, 38, -110, -104),
            time_range=DAY.epoch_range(),
            resolution=Resolution(3, TemporalResolution.DAY),
        )
        _helper, response = self._guest_answer(cluster, query)
        assert response["completeness"] == 1.0


class TestRollupFreshnessCredit:
    def test_rolled_up_parent_gets_touched(self, dataset):
        cluster = make_cluster(dataset)
        parent = CellKey("9q8y", DAY)
        node = cluster.owner_node(parent)
        empty = SummaryVector.empty(node.attribute_names)
        for child in gh.children(parent.geohash):
            node.graph.upsert(Cell(key=CellKey(child, DAY), summary=empty))
        reply = cluster.network.request(
            "client",
            node.node_id,
            "fetch_cells",
            {"cells": [parent], "ring": []},
            size=64,
        )
        response = cluster.sim.run(until=reply)
        assert parent in response["found"]  # answered by roll-up
        cell = node.graph.get(parent)
        assert cell is not None  # roll-up result was cached
        # The fix under test: the fresh parent is credited for the access
        # that created it instead of starting at zero freshness.
        assert cell.freshness > 0.0
        assert cell.access_count == 1
        assert 0.0 < cell.last_touched <= cluster.sim.now

    def test_children_also_credited_by_the_same_fetch(self, dataset):
        cluster = make_cluster(dataset)
        parent = CellKey("9q8z", DAY)
        node = cluster.owner_node(parent)
        empty = SummaryVector.empty(node.attribute_names)
        children = [CellKey(c, DAY) for c in gh.children(parent.geohash)]
        for child in children:
            node.graph.upsert(Cell(key=child, summary=empty))
        reply = cluster.network.request(
            "client",
            node.node_id,
            "fetch_cells",
            {"cells": [parent], "ring": []},
            size=64,
        )
        cluster.sim.run(until=reply)
        # Roll-up reads the children but does not double-count them as
        # direct accesses: only the requested (parent) key is an access.
        assert node.graph.get(parent).access_count == 1
        for child in children:
            assert node.graph.get(child).access_count == 0

"""Equivalence and integrity tests for the columnar freshness store.

The graph keeps ``(freshness, last_touch, access_count)`` in dense
per-level numpy columns; cells are views into them while resident.  These
tests pin the two contracts that make that safe:

* the vectorized kernels (``rank_victims``, ``touch_batch``) produce
  *bit-identical* results to the scalar per-cell model, so simulated
  experiment outputs cannot shift, and
* column residency is invisible to callers — values survive swap-remove,
  detach on removal, and ``clear``.
"""

import numpy as np
import pytest

from repro.config import EvictionConfig, FreshnessConfig
from repro.core.cell import Cell
from repro.core.eviction import EvictionPolicy, rank_victims, rank_victims_scalar
from repro.core.freshness import FreshnessTracker
from repro.core.graph import StashGraph
from repro.core.keys import CellKey
from repro.data.statistics import SummaryVector
from repro.geo import geohash as gh
from repro.geo.resolution import ResolutionSpace
from repro.geo.temporal import TimeKey

SPACE = ResolutionSpace(1, 8)
DAY = TimeKey.of(2013, 2, 2)
SUMMARY = SummaryVector.from_arrays({"temperature": np.array([1.0])})


def make_graph(num_parents=8, seed=7):
    """A two-level graph with a randomized touch history.

    Returns ``(graph, tracker, keys, now)`` where every cell has a
    distinct (freshness, last_touch) pair.
    """
    rng = np.random.default_rng(seed)
    graph = StashGraph(SPACE)
    keys = []
    for parent in ("9q8y", "9q8z", "dr5r", "c216", "9q8v", "dr72", "u4pr", "ezs4")[
        :num_parents
    ]:
        keys.append(CellKey(parent, DAY))
        for child in gh.children(parent)[:12]:
            keys.append(CellKey(child, DAY))
    for key in keys:
        graph.upsert(Cell(key=key, summary=SUMMARY))
    tracker = FreshnessTracker(FreshnessConfig())
    now = 0.0
    for step in range(5):
        now = step * 17.0
        sample = rng.choice(len(keys), size=len(keys) // 2, replace=False)
        tracker.touch_cells(graph, [keys[i] for i in sample.tolist()], now)
    return graph, tracker, keys, now + 40.0


class TestVectorizedEviction:
    def test_rank_victims_matches_scalar_exactly(self):
        graph, tracker, keys, now = make_graph()
        for excess in (1, 5, len(keys) // 3, len(keys) - 1, len(keys)):
            vectorized = rank_victims(graph, tracker.decay_rate, now, excess)
            scalar = rank_victims_scalar(graph, tracker, now, excess)
            assert vectorized == scalar  # same victims, same order

    def test_rank_victims_many_seeds(self):
        for seed in range(5):
            graph, tracker, keys, now = make_graph(num_parents=4, seed=seed)
            excess = len(keys) // 4
            assert rank_victims(graph, tracker.decay_rate, now, excess) == (
                rank_victims_scalar(graph, tracker, now, excess)
            )

    def test_rank_victims_with_score_ties(self):
        # Untouched cells all score 0.0: ordering must fall back to the
        # key tie-break, identically in both implementations.
        graph = StashGraph(SPACE)
        keys = [CellKey(c, DAY) for c in gh.children("9q8y")]
        for key in keys:
            graph.upsert(Cell(key=key, summary=SUMMARY))
        tracker = FreshnessTracker(FreshnessConfig())
        victims = rank_victims(graph, tracker.decay_rate, 10.0, 7)
        assert victims == rank_victims_scalar(graph, tracker, 10.0, 7)
        assert victims == sorted(keys, key=str)[:7]

    def test_enforce_removes_rank_victims(self):
        graph, tracker, keys, now = make_graph()
        policy = EvictionPolicy(
            EvictionConfig(max_cells=len(keys) // 2, safe_fraction=1.0)
        )
        expected = rank_victims(
            graph, tracker.decay_rate, now, len(keys) - len(keys) // 2
        )
        evicted = policy.enforce(graph, tracker, now)
        assert evicted == expected
        assert all(not graph.contains(key) for key in evicted)


class TestTouchBatchEquivalence:
    def test_matches_scalar_cell_model_bitwise(self):
        graph, tracker, keys, now = make_graph()
        # Scalar model: detached Cell twins carrying the same state.
        twins = {
            key: Cell(
                key=key,
                summary=SUMMARY,
                freshness=graph.get(key).freshness,
                last_touched=graph.get(key).last_touched,
                access_count=graph.get(key).access_count,
            )
            for key in keys
        }
        batch = keys[::3]
        tracker.touch_cells(graph, batch, now)
        for key in batch:
            twin = twins[key]
            twin.touched(tracker.config.f_inc, now, tracker.decay_rate)
            twin.access_count += 1
        for key in keys:
            cell = graph.get(key)
            twin = twins[key]
            assert cell.freshness == twin.freshness  # bitwise, no tolerance
            assert cell.last_touched == twin.last_touched
            assert cell.access_count == twin.access_count

    def test_duplicate_keys_accumulate(self):
        graph = StashGraph(SPACE)
        key = CellKey("9q8y", DAY)
        graph.upsert(Cell(key=key, summary=SUMMARY))
        tracker = FreshnessTracker(FreshnessConfig())
        tracker.touch_cells(graph, [key, key, key], 1.0)
        twin = Cell(key=key, summary=SUMMARY)
        for _ in range(3):
            twin.touched(tracker.config.f_inc, 1.0, tracker.decay_rate)
        cell = graph.get(key)
        assert cell.freshness == pytest.approx(twin.freshness, rel=1e-12)
        assert cell.access_count == 3

    def test_missing_keys_are_skipped(self):
        graph = StashGraph(SPACE)
        resident = CellKey("9q8y", DAY)
        graph.upsert(Cell(key=resident, summary=SUMMARY))
        touched = graph.touch_batch(
            [resident, CellKey("dr5r", DAY)], 1.0, 1.0, 0.01, count_access=True
        )
        assert touched == 1
        assert graph.get(resident).access_count == 1

    def test_disperse_matches_scalar_model(self):
        graph, tracker, keys, now = make_graph()
        ring = [key for key in keys if len(key.geohash) == 5][:10]
        amount = tracker.config.f_inc * tracker.config.dispersion_fraction
        expected = {}
        for key in ring:
            cell = graph.get(key)
            twin = Cell(
                key=key,
                summary=SUMMARY,
                freshness=cell.freshness,
                last_touched=cell.last_touched,
                access_count=cell.access_count,
            )
            twin.touched(amount, now, tracker.decay_rate)
            expected[key] = (twin.freshness, twin.last_touched, twin.access_count)
        tracker.disperse_to_neighborhood(graph, ring, now)
        for key in ring:
            cell = graph.get(key)
            # Dispersion adds freshness but never counts as an access.
            assert (
                cell.freshness,
                cell.last_touched,
                cell.access_count,
            ) == expected[key]


class TestColumnIntegrity:
    def test_swap_remove_preserves_other_cells(self):
        graph, tracker, keys, now = make_graph(num_parents=2)
        snapshot = {
            key: (
                graph.get(key).freshness,
                graph.get(key).last_touched,
                graph.get(key).access_count,
            )
            for key in keys
        }
        removed = keys[len(keys) // 2]
        cell = graph.get(removed)
        graph.remove(removed)
        # The removed cell detaches with its values intact...
        assert (cell.freshness, cell.last_touched, cell.access_count) == snapshot[
            removed
        ]
        # ...and every other cell is untouched by the swap-remove.
        for key in keys:
            if key == removed:
                continue
            assert (
                graph.get(key).freshness,
                graph.get(key).last_touched,
                graph.get(key).access_count,
            ) == snapshot[key]

    def test_column_blocks_cover_population(self):
        graph, _tracker, keys, _now = make_graph()
        total = sum(columns.size for columns in graph.freshness_columns())
        assert total == len(graph) == len(keys)

    def test_clear_detaches_values(self):
        graph = StashGraph(SPACE)
        key = CellKey("9q8y", DAY)
        graph.upsert(Cell(key=key, summary=SUMMARY))
        cell = graph.get(key)
        cell.freshness = 3.5
        cell.access_count = 4
        graph.clear()
        assert len(graph) == 0
        assert cell.freshness == 3.5
        assert cell.access_count == 4

    def test_upsert_existing_key_keeps_freshness_state(self):
        graph = StashGraph(SPACE)
        key = CellKey("9q8y", DAY)
        graph.upsert(Cell(key=key, summary=SUMMARY))
        graph.get(key).freshness = 2.0
        richer = SummaryVector.from_arrays({"temperature": np.array([1.0, 2.0])})
        assert graph.upsert(Cell(key=key, summary=richer)) is False
        assert len(graph) == 1
        assert graph.get(key).freshness == 2.0  # first write won, state kept

"""End-to-end polygonal queries across all three engines."""

import pytest

from repro.baselines.basic import BasicSystem
from repro.baselines.elastic import ElasticSystem
from repro.config import ClusterConfig, ElasticConfig, StashConfig
from repro.core.cluster import StashCluster
from repro.data.generator import small_test_dataset
from repro.geo.polygon import Polygon
from repro.geo.resolution import Resolution
from repro.geo.temporal import TemporalResolution, TimeKey
from repro.query.model import AggregationQuery
from repro.storage.backend import ground_truth_cells

TRIANGLE = Polygon.of((28.0, -115.0), (45.0, -115.0), (28.0, -95.0))


@pytest.fixture(scope="module")
def dataset():
    return small_test_dataset(num_records=6_000)


def make_config():
    return StashConfig(
        cluster=ClusterConfig(num_nodes=5), elastic=ElasticConfig(num_shards=10)
    )


def polygon_query():
    return AggregationQuery.for_polygon(
        TRIANGLE,
        time_range=TimeKey.of(2013, 2, 2).epoch_range(),
        resolution=Resolution(3, TemporalResolution.DAY),
    )


class TestPolygonFootprint:
    def test_footprint_respects_polygon(self):
        query = polygon_query()
        for key in query.footprint():
            lat, lon = key.bbox.center
            assert TRIANGLE.contains_point(lat, lon)

    def test_footprint_smaller_than_bbox(self):
        poly = polygon_query()
        rect = AggregationQuery(
            bbox=poly.bbox, time_range=poly.time_range, resolution=poly.resolution
        )
        assert len(poly.footprint()) < len(rect.footprint())

    def test_footprint_size_matches(self):
        query = polygon_query()
        assert query.footprint_size() == len(query.footprint())

    def test_pan_and_dice_preserve_polygon(self):
        query = polygon_query()
        moved = query.panned(1.0, 1.0)
        assert moved.polygon is not None
        assert moved.polygon.bbox.south == pytest.approx(29.0)
        smaller = query.diced(0.25)
        assert smaller.polygon.bbox.height == pytest.approx(
            query.polygon.bbox.height / 2
        )


class TestPolygonEvaluation:
    def _truth(self, dataset, query):
        footprint = set(query.footprint())
        truth = ground_truth_cells(dataset, query)
        assert set(truth) <= footprint
        return truth

    def test_stash_cold_and_hot(self, dataset):
        cluster = StashCluster(dataset, make_config())
        query = polygon_query()
        truth = self._truth(dataset, query)
        cold = cluster.run_query(query)
        assert set(cold.cells) == set(truth)
        for key, vec in cold.cells.items():
            assert vec.approx_equal(truth[key])
        cluster.drain()
        hot = cluster.run_query(polygon_query())
        assert hot.matches(cold)
        assert hot.provenance["cells_from_disk"] == 0

    def test_basic_engine(self, dataset):
        system = BasicSystem(dataset, make_config())
        query = polygon_query()
        result = system.run_query(query)
        truth = self._truth(dataset, query)
        assert set(result.cells) == set(truth)

    def test_elastic_engine(self, dataset):
        system = ElasticSystem(dataset, make_config())
        query = polygon_query()
        result = system.run_query(query)
        truth = self._truth(dataset, query)
        assert set(result.cells) == set(truth)

    def test_no_cells_outside_polygon(self, dataset):
        cluster = StashCluster(dataset, make_config())
        result = cluster.run_query(polygon_query())
        assert result.cells  # the triangle has data
        for key in result.cells:
            lat, lon = key.bbox.center
            assert TRIANGLE.contains_point(lat, lon)

    def test_polygon_cache_reused_by_rectangle_query(self, dataset):
        """Polygon and rectangle queries share the same cells."""
        cluster = StashCluster(dataset, make_config())
        cluster.run_query(polygon_query())
        cluster.drain()
        rect = AggregationQuery(
            bbox=TRIANGLE.bbox,
            time_range=TimeKey.of(2013, 2, 2).epoch_range(),
            resolution=Resolution(3, TemporalResolution.DAY),
        )
        result = cluster.run_query(rect)
        # The triangle's cells come from cache; only the rest hit disk.
        assert result.provenance["cells_from_cache"] > 0

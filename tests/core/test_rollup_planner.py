"""Tests for roll-up recomputation and the query planner."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import try_rollup
from repro.core.cell import Cell
from repro.core.graph import StashGraph
from repro.core.keys import CellKey
from repro.core.planner import plan_query
from repro.data.statistics import SummaryVector
from repro.geo import geohash as gh
from repro.geo.resolution import ResolutionSpace
from repro.geo.temporal import TimeKey

SPACE = ResolutionSpace(1, 8)
DAY = TimeKey.of(2013, 2, 2)
ATTRS = ["temperature"]


def cell_with(geohash, time_key, values):
    key = CellKey(geohash, time_key)
    if len(values) == 0:
        return Cell(key=key, summary=SummaryVector.empty(ATTRS))
    return Cell(
        key=key,
        summary=SummaryVector.from_arrays({"temperature": np.asarray(values, float)}),
    )


def fill_spatial_children(graph, parent_hash, time_key=DAY, base=0.0):
    """Insert all 32 spatial children; children 0-3 nonempty, rest empty."""
    total = []
    for i, child in enumerate(gh.children(parent_hash)):
        values = [base + i, base + i + 1] if i < 4 else []
        total.extend(values)
        graph.upsert(cell_with(child, time_key, values))
    return total


class TestRollup:
    def test_spatial_rollup_complete(self):
        graph = StashGraph(SPACE)
        values = fill_spatial_children(graph, "9q8y")
        result = try_rollup(graph, CellKey("9q8y", DAY), ATTRS)
        assert result is not None
        assert result.axis == "spatial"
        assert result.merges == 32
        expected = SummaryVector.from_arrays({"temperature": np.asarray(values)})
        assert result.summary.approx_equal(expected)

    def test_rollup_fails_with_missing_child(self):
        graph = StashGraph(SPACE)
        children = gh.children("9q8y")
        for child in children[:31]:  # one child missing
            graph.upsert(cell_with(child, DAY, [1.0]))
        assert try_rollup(graph, CellKey("9q8y", DAY), ATTRS) is None

    def test_empty_children_do_not_block_rollup(self):
        graph = StashGraph(SPACE)
        for child in gh.children("9q8y"):
            graph.upsert(cell_with(child, DAY, []))
        result = try_rollup(graph, CellKey("9q8y", DAY), ATTRS)
        assert result is not None
        assert result.summary.is_empty

    def test_temporal_rollup(self):
        graph = StashGraph(SPACE)
        month = TimeKey.of(2013, 2)
        for day_key in month.children():
            graph.upsert(cell_with("9q8y7", day_key, [float(day_key.components[2])]))
        result = try_rollup(graph, CellKey("9q8y7", month), ATTRS)
        assert result is not None
        assert result.axis == "temporal"
        assert result.summary.count == 28

    def test_spatial_preferred_over_temporal(self):
        graph = StashGraph(SPACE)
        month = TimeKey.of(2013, 2)
        fill_spatial_children(graph, "9q8y", time_key=month)
        for day_key in month.children():
            graph.upsert(cell_with("9q8y", day_key, [1.0]))
        result = try_rollup(graph, CellKey("9q8y", month), ATTRS)
        assert result.axis == "spatial"

    def test_rollup_collects_backing_blocks(self):
        from repro.data.block import BlockId

        graph = StashGraph(SPACE)
        for i, child in enumerate(gh.children("9q8y")):
            cell = cell_with(child, DAY, [1.0])
            graph.insert(cell, frozenset({BlockId("9q", "2013-02-02")}))
        result = try_rollup(graph, CellKey("9q8y", DAY), ATTRS)
        assert result.backing_blocks == frozenset({BlockId("9q", "2013-02-02")})

    def test_rollup_outside_space(self):
        # Children precision (9) would exceed the space's max (8).
        narrow = ResolutionSpace(1, 8)
        graph = StashGraph(narrow)
        key = CellKey("9q8y7x2w", DAY)  # precision 8: spatial children at 9
        hour_key = CellKey("9q8y7x2w", TimeKey.of(2013, 2, 2, 5))
        # No children cached at all; must simply return None, not raise.
        assert try_rollup(graph, key, ATTRS) is None
        assert try_rollup(graph, hour_key, ATTRS) is None


class TestPlanner:
    def _footprint(self):
        return [CellKey(c, DAY) for c in gh.children("9q8y")]

    def test_all_missing_on_empty_graph(self):
        graph = StashGraph(SPACE)
        footprint = self._footprint()
        plan = plan_query(graph, footprint, ATTRS)
        assert plan.cached == {} and plan.rollup == {}
        assert plan.missing == footprint
        assert plan.lookups == len(footprint)
        assert plan.hit_fraction == 0.0

    def test_all_cached(self):
        graph = StashGraph(SPACE)
        footprint = self._footprint()
        for key in footprint:
            graph.upsert(cell_with(key.geohash, DAY, [1.0]))
        plan = plan_query(graph, footprint, ATTRS)
        assert set(plan.cached) == set(footprint)
        assert plan.missing == []
        assert plan.hit_fraction == 1.0

    def test_mixed_plan_partitions_footprint(self):
        graph = StashGraph(SPACE)
        footprint = self._footprint()
        for key in footprint[:10]:
            graph.upsert(cell_with(key.geohash, DAY, [1.0]))
        # Make footprint[10] recomputable by roll-up from its children.
        fill_spatial_children(graph, footprint[10].geohash)
        plan = plan_query(graph, footprint, ATTRS)
        assert set(plan.cached) == set(footprint[:10])
        assert set(plan.rollup) == {footprint[10]}
        assert set(plan.missing) == set(footprint[11:])
        union = set(plan.cached) | set(plan.rollup) | set(plan.missing)
        assert union == set(footprint)
        assert plan.merges == 32

    def test_rollup_disabled(self):
        graph = StashGraph(SPACE)
        footprint = self._footprint()
        fill_spatial_children(graph, footprint[0].geohash)
        plan = plan_query(graph, footprint, ATTRS, attempt_rollup=False)
        assert plan.rollup == {}
        assert footprint[0] in plan.missing

    def test_found_combines_cached_and_rollup(self):
        graph = StashGraph(SPACE)
        footprint = self._footprint()[:2]
        graph.upsert(cell_with(footprint[0].geohash, DAY, [5.0]))
        fill_spatial_children(graph, footprint[1].geohash)
        plan = plan_query(graph, footprint, ATTRS)
        found = plan.found
        assert set(found) == set(footprint)
        assert plan.hit_fraction == 1.0

    def test_empty_footprint(self):
        graph = StashGraph(SPACE)
        plan = plan_query(graph, [], ATTRS)
        assert plan.hit_fraction == 1.0
        assert plan.lookups == 0
        assert plan.partition_ok([])


class TestPartitionInvariant:
    """plan_query's three-way split always partitions the footprint, and
    ``partition_ok`` is a real check — it rejects tampered plans."""

    def _crafted_graph_and_footprint(self, cached_mask, rollup_index):
        graph = StashGraph(SPACE)
        footprint = [CellKey(c, DAY) for c in gh.children("9q8y")]
        for key, cached in zip(footprint, cached_mask):
            if cached:
                graph.upsert(cell_with(key.geohash, DAY, [1.0]))
        if rollup_index is not None and not cached_mask[rollup_index]:
            fill_spatial_children(graph, footprint[rollup_index].geohash)
        return graph, footprint

    @given(
        cached_mask=st.lists(st.booleans(), min_size=32, max_size=32),
        rollup_index=st.one_of(st.none(), st.integers(min_value=0, max_value=31)),
        attempt_rollup=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_three_way_split_partitions(self, cached_mask, rollup_index, attempt_rollup):
        graph, footprint = self._crafted_graph_and_footprint(cached_mask, rollup_index)
        plan = plan_query(graph, footprint, ATTRS, attempt_rollup=attempt_rollup)
        assert plan.partition_ok(footprint)
        assert plan.lookups == len(footprint)
        expected_cached = {k for k, c in zip(footprint, cached_mask) if c}
        assert set(plan.cached) == expected_cached
        if attempt_rollup and rollup_index is not None and not cached_mask[rollup_index]:
            assert set(plan.rollup) == {footprint[rollup_index]}
        else:
            assert plan.rollup == {}

    def test_partition_ok_rejects_overlap(self):
        graph = StashGraph(SPACE)
        footprint = [CellKey(c, DAY) for c in gh.children("9q8y")]
        graph.upsert(cell_with(footprint[0].geohash, DAY, [1.0]))
        plan = plan_query(graph, footprint, ATTRS)
        assert plan.partition_ok(footprint)
        plan.missing.append(footprint[0])  # now both cached and missing
        assert not plan.partition_ok(footprint)

    def test_partition_ok_rejects_duplicates_and_drops(self):
        graph = StashGraph(SPACE)
        footprint = [CellKey(c, DAY) for c in gh.children("9q8y")]
        plan = plan_query(graph, footprint, ATTRS)
        plan.missing.append(footprint[0])  # duplicate missing entry
        assert not plan.partition_ok(footprint)
        plan.missing = [k for k in footprint if k != footprint[0]]  # dropped cell
        assert not plan.partition_ok(footprint)

    def test_partition_ok_rejects_foreign_cell(self):
        graph = StashGraph(SPACE)
        footprint = [CellKey(c, DAY) for c in gh.children("9q8y")]
        plan = plan_query(graph, footprint, ATTRS)
        plan.missing.append(CellKey("9q8z0", DAY))
        assert not plan.partition_ok(footprint)

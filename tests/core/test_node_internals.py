"""Targeted tests for StashNode internals: guest registry, distress,
handoff edge cases, and the collective-caching property."""

import pytest

from repro.client.session import ExplorationSession
from repro.config import ClusterConfig, ReplicationConfig, StashConfig
from repro.core.cluster import StashCluster
from repro.core.keys import CellKey
from repro.core.node import GuestCliqueRegistry
from repro.data.generator import small_test_dataset
from repro.geo.bbox import BoundingBox
from repro.geo.resolution import Resolution
from repro.geo.temporal import TemporalResolution, TimeKey
from repro.query.model import AggregationQuery

DAY = TimeKey.of(2013, 2, 2)


def key(geohash: str) -> CellKey:
    return CellKey(geohash, DAY)


class TestGuestCliqueRegistry:
    def test_add_and_expire(self):
        registry = GuestCliqueRegistry()
        registry.add(key("9q8y"), [key("9q8y7"), key("9q8yd")], now=0.0)
        assert registry.expired(now=5.0, ttl=10.0) == []
        assert registry.expired(now=11.0, ttl=10.0) == [str(key("9q8y"))]

    def test_touch_refreshes(self):
        registry = GuestCliqueRegistry()
        registry.add(key("9q8y"), [key("9q8y7")], now=0.0)
        registry.touch_covering({key("9q8y7")}, now=9.0)
        assert registry.expired(now=15.0, ttl=10.0) == []
        assert registry.expired(now=20.0, ttl=10.0) == [str(key("9q8y"))]

    def test_touch_ignores_unrelated_keys(self):
        registry = GuestCliqueRegistry()
        registry.add(key("9q8y"), [key("9q8y7")], now=0.0)
        registry.touch_covering({key("zzzz1")}, now=9.0)
        assert registry.expired(now=11.0, ttl=10.0) == [str(key("9q8y"))]

    def test_remove_returns_members(self):
        registry = GuestCliqueRegistry()
        members = [key("9q8y7"), key("9q8yd")]
        registry.add(key("9q8y"), members, now=0.0)
        assert registry.remove(str(key("9q8y"))) == members
        assert registry.entries == {}


class TestDistressProtocol:
    def make_cluster(self, guest_capacity=100):
        dataset = small_test_dataset(num_records=3_000)
        config = StashConfig(
            cluster=ClusterConfig(num_nodes=4),
            replication=ReplicationConfig(guest_capacity=guest_capacity),
        )
        cluster = StashCluster(dataset, config)
        cluster.start()
        return cluster

    def _distress(self, cluster, node_id, ncells):
        reply = cluster.network.request(
            "client", node_id, "distress", {"ncells": ncells}, size=64
        )
        return cluster.sim.run(until=reply)

    def test_accepts_when_idle_and_room(self):
        cluster = self.make_cluster()
        assert self._distress(cluster, "node-0", 50) is True

    def test_rejects_when_guest_full(self):
        cluster = self.make_cluster(guest_capacity=10)
        assert self._distress(cluster, "node-0", 50) is False

    def test_accepts_exactly_at_capacity(self):
        cluster = self.make_cluster(guest_capacity=50)
        assert self._distress(cluster, "node-0", 50) is True
        assert self._distress(cluster, "node-0", 51) is False


class TestCollectiveCaching:
    """Paper section V-B: "STASH's in-memory cache is collectively built
    through query evaluations from multiple users."""

    def test_one_users_exploration_warms_anothers(self):
        dataset = small_test_dataset(num_records=5_000)
        cluster = StashCluster(
            dataset, StashConfig(cluster=ClusterConfig(num_nodes=4))
        )
        viewport = BoundingBox(32, 40, -112, -102)
        alice = ExplorationSession(
            cluster, viewport=viewport, day=DAY,
            resolution=Resolution(3, TemporalResolution.DAY),
        )
        bob = ExplorationSession(
            cluster, viewport=viewport, day=DAY,
            resolution=Resolution(3, TemporalResolution.DAY),
        )
        alice_result = alice.refresh()
        cluster.drain()
        bob_result = bob.refresh()
        # Bob's identical viewport is a pure cache hit on the server.
        assert bob_result.provenance["cells_from_disk"] == 0
        assert bob_result.latency < alice_result.latency / 3
        assert bob_result.matches(alice_result)

    def test_partial_overlap_across_users(self):
        dataset = small_test_dataset(num_records=5_000)
        cluster = StashCluster(
            dataset, StashConfig(cluster=ClusterConfig(num_nodes=4))
        )
        alice = ExplorationSession(
            cluster, viewport=BoundingBox(32, 40, -112, -102), day=DAY,
            resolution=Resolution(3, TemporalResolution.DAY),
        )
        bob = ExplorationSession(
            cluster, viewport=BoundingBox(34, 42, -110, -100), day=DAY,
            resolution=Resolution(3, TemporalResolution.DAY),
        )
        alice.refresh()
        cluster.drain()
        bob_result = bob.refresh()
        assert bob_result.provenance["cells_from_cache"] > 0


class TestGuestFallback:
    def test_guest_fallback_still_correct(self):
        """A rerouted query whose replica was purged falls back to a full
        evaluation at the helper and still answers correctly."""
        from repro.storage.backend import ground_truth_cells

        dataset = small_test_dataset(num_records=5_000)
        config = StashConfig(
            cluster=ClusterConfig(num_nodes=4),
            replication=ReplicationConfig(
                hotspot_queue_threshold=4,
                cooldown=0.1,
                reroute_probability=1.0,
                guest_ttl=1e9,
                routing_ttl=1e9,
            ),
        )
        cluster = StashCluster(dataset, config)
        query = AggregationQuery(
            bbox=BoundingBox(35, 36, -106, -104),
            time_range=DAY.epoch_range(),
            resolution=Resolution(4, TemporalResolution.DAY),
        )
        cluster.warm([query.panned(0, 0)])
        clones = [query.panned(0, 0) for _ in range(40)]
        cluster.run_concurrent(clones)
        counts = cluster.counters_total()
        if counts.get("queries_rerouted", 0) == 0:
            pytest.skip("no reroute happened at this scale")
        # Purge every guest graph, then fire more rerouted queries.
        for node in cluster.nodes.values():
            for cell in list(node.guest.cells()):
                node.guest.remove(cell.key)
            node.guest_cliques.entries.clear()
        results = cluster.run_concurrent([query.panned(0, 0) for _ in range(10)])
        truth = ground_truth_cells(dataset, query)
        for result in results:
            assert set(result.cells) == set(truth)

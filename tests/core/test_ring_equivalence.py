"""query_ring vs neighborhood_ring equivalence on box footprints.

:func:`repro.core.freshness.query_ring` computes the dispersion ring
from box geometry in O(perimeter + cover); it must produce exactly the
same cell set as the general O(cells x 10) :func:`neighborhood_ring`
for every rectangular query, including the degenerate shapes the query
path actually emits (single-cell covers, single time bins, time ranges
that end exactly on bin boundaries).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.freshness import neighborhood_ring, query_ring
from repro.geo import geohash as gh
from repro.geo.bbox import BoundingBox
from repro.geo.resolution import Resolution
from repro.geo.temporal import TemporalResolution, TimeKey, TimeRange
from repro.query.model import AggregationQuery

DAY = TimeKey.of(2013, 2, 2)


def make_query(
    bbox: BoundingBox,
    time_range: TimeRange,
    spatial: int = 3,
    temporal: TemporalResolution = TemporalResolution.DAY,
) -> AggregationQuery:
    return AggregationQuery(
        bbox=bbox,
        time_range=time_range,
        resolution=Resolution(spatial, temporal),
    )


def assert_rings_equivalent(query: AggregationQuery) -> None:
    footprint = query.footprint()
    fast = query_ring(query)
    general = neighborhood_ring(footprint)
    assert set(fast) == set(general)
    # Both forms must also exclude the footprint itself.
    assert set(fast).isdisjoint(footprint)


class TestRingEquivalence:
    def test_multi_cell_multi_day(self):
        time_range = TimeRange(
            DAY.epoch_range().start, DAY.step(2).epoch_range().start
        )
        assert_rings_equivalent(
            make_query(BoundingBox(35, 38, -107, -103), time_range)
        )

    def test_single_cell_footprint(self):
        """A box strictly inside one geohash cell, one time bin: the ring
        is exactly the cell's 8 spatial neighbors x 1 bin + itself in the
        2 adjacent bins."""
        cell_box = gh.bbox("9q8")
        lat = (cell_box.south + cell_box.north) / 2
        lon = (cell_box.west + cell_box.east) / 2
        eps = 1e-4
        query = make_query(
            BoundingBox(lat - eps, lat + eps, lon - eps, lon + eps),
            DAY.epoch_range(),
        )
        assert len(query.footprint()) == 1
        assert_rings_equivalent(query)
        assert len(set(query_ring(query))) == 10

    def test_single_cell_column_through_time(self):
        """One spatial cell, several days: interior time bins' spatial
        neighbors plus the two temporal end caps."""
        cell_box = gh.bbox("9q8")
        lat = (cell_box.south + cell_box.north) / 2
        lon = (cell_box.west + cell_box.east) / 2
        query = make_query(
            BoundingBox(lat - 1e-4, lat + 1e-4, lon - 1e-4, lon + 1e-4),
            TimeRange(DAY.epoch_range().start, DAY.step(3).epoch_range().start),
        )
        assert_rings_equivalent(query)

    def test_time_range_ending_exactly_on_bin_edge(self):
        """end == the exclusive edge of a bin must not pull in an extra
        bin, and the ring must still match the general form."""
        day_range = DAY.epoch_range()
        query = make_query(
            BoundingBox(35, 37, -106, -104),
            TimeRange(day_range.start, day_range.end),
        )
        assert_rings_equivalent(query)

    def test_hour_resolution_across_midnight(self):
        start = DAY.epoch_range().end - 3600.0
        query = make_query(
            BoundingBox(35, 36, -106, -105),
            TimeRange(start, start + 7200.0),
            temporal=TemporalResolution.HOUR,
        )
        assert_rings_equivalent(query)

    def test_first_hour_of_day_edge(self):
        start = DAY.epoch_range().start
        query = make_query(
            BoundingBox(35, 36, -106, -105),
            TimeRange(start, start + 3600.0),
            temporal=TemporalResolution.HOUR,
        )
        assert_rings_equivalent(query)

    def test_coarse_resolution_wide_box(self):
        assert_rings_equivalent(
            make_query(
                BoundingBox(20, 45, -120, -80), DAY.epoch_range(), spatial=2
            )
        )

    @given(
        lat=st.floats(-60.0, 60.0),
        lon=st.floats(-150.0, 150.0),
        dlat=st.floats(0.05, 4.0),
        dlon=st.floats(0.05, 4.0),
        spatial=st.integers(2, 3),
        days=st.integers(1, 3),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_boxes(self, lat, lon, dlat, dlon, spatial, days):
        time_range = TimeRange(
            DAY.epoch_range().start, DAY.step(days).epoch_range().start
        )
        query = make_query(
            BoundingBox(lat, lat + dlat, lon, lon + dlon),
            time_range,
            spatial=spatial,
        )
        assert_rings_equivalent(query)

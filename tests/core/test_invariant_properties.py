"""Hypothesis property tests for the DESIGN.md section-6 invariants that
random examples exercise better than hand-picked ones."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import EvictionConfig, FreshnessConfig
from repro.core.cell import Cell
from repro.core.eviction import EvictionPolicy
from repro.core.freshness import FreshnessTracker
from repro.core.graph import StashGraph
from repro.core.keys import CellKey
from repro.core.planner import plan_query
from repro.data.statistics import SummaryVector
from repro.geo import geohash as gh
from repro.geo.resolution import ResolutionSpace
from repro.geo.temporal import TimeKey

SPACE = ResolutionSpace(1, 8)
DAY = TimeKey.of(2013, 2, 2)
ATTRS = ["t"]

#: A pool of cell geohashes: a 4-char region plus its children.
POOL = gh.children("9q8y") + ["9q8y"] + gh.children("9q8z")[:16]


def cell_for(code: str, value: float = 1.0) -> Cell:
    return Cell(
        key=CellKey(code, DAY),
        summary=SummaryVector.from_arrays({"t": np.array([value])}),
    )


@st.composite
def cache_states(draw):
    """A random subset of the pool loaded into a graph, with random
    freshness touch patterns."""
    codes = draw(st.sets(st.sampled_from(POOL), max_size=len(POOL)))
    touches = draw(
        st.lists(st.tuples(st.sampled_from(POOL), st.floats(0, 50)), max_size=20)
    )
    graph = StashGraph(SPACE)
    tracker = FreshnessTracker(FreshnessConfig(half_life=25.0))
    for code in codes:
        graph.upsert(cell_for(code))
    for code, now in touches:
        tracker.touch_cells(graph, [CellKey(code, DAY)], now)
    return graph, tracker


class TestPlannerPartitionInvariant:
    @given(cache_states(), st.lists(st.sampled_from(POOL), min_size=1, max_size=40))
    @settings(max_examples=60)
    def test_partition_exact_and_disjoint(self, state, footprint_codes):
        graph, _tracker = state
        footprint = [CellKey(c, DAY) for c in dict.fromkeys(footprint_codes)]
        plan = plan_query(graph, footprint, ATTRS)
        cached = set(plan.cached)
        rollup = set(plan.rollup)
        missing = set(plan.missing)
        assert cached | rollup | missing == set(footprint)
        assert not (cached & rollup)
        assert not (cached & missing)
        assert not (rollup & missing)
        # Cached cells really are resident; missing really are not.
        for key in cached:
            assert graph.contains(key)
        for key in missing:
            assert not graph.contains(key)

    @given(cache_states(), st.lists(st.sampled_from(POOL), min_size=1, max_size=40))
    @settings(max_examples=40)
    def test_rollup_only_when_all_children_resident(self, state, footprint_codes):
        graph, _tracker = state
        footprint = [CellKey(c, DAY) for c in dict.fromkeys(footprint_codes)]
        plan = plan_query(graph, footprint, ATTRS)
        for key in plan.rollup:
            axis = plan.rollup[key].axis
            for child in key.children(axis):
                assert graph.contains(child)


class TestEvictionProperties:
    @given(
        cache_states(),
        st.integers(1, 40),
        st.floats(0.1, 1.0),
        st.floats(0.0, 100.0),
    )
    @settings(max_examples=60)
    def test_evicted_freshness_below_survivors(
        self, state, max_cells, safe_fraction, now
    ):
        graph, tracker = state
        policy = EvictionPolicy(
            EvictionConfig(max_cells=max_cells, safe_fraction=safe_fraction)
        )
        before = len(graph)
        survivors_expected = policy.safe_limit if before > max_cells else before
        scores_before = {
            cell.key: tracker.score(cell, now) for cell in graph.cells()
        }
        evicted = policy.enforce(graph, tracker, now)
        if before <= max_cells:
            assert evicted == []
            return
        assert len(graph) == min(survivors_expected, before)
        if not evicted:
            return
        worst_survivor = min(
            (scores_before[cell.key] for cell in graph.cells()), default=np.inf
        )
        best_evicted = max(scores_before[key] for key in evicted)
        assert best_evicted <= worst_survivor + 1e-12

    @given(cache_states(), st.floats(0, 1000))
    @settings(max_examples=40)
    def test_scores_nonnegative_and_decay_monotone(self, state, later):
        graph, tracker = state
        for cell in graph.cells():
            now_score = tracker.score(cell, cell.last_touched)
            later_score = tracker.score(cell, cell.last_touched + later)
            assert later_score >= 0.0
            assert later_score <= now_score + 1e-12

"""Tests for CellKey: computed hierarchical and lateral edges."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.keys import CellKey
from repro.data.block import BlockId
from repro.errors import CacheError
from repro.geo import geohash as gh
from repro.geo.resolution import Resolution
from repro.geo.temporal import TemporalResolution, TimeKey
from tests.strategies import cell_keys


class TestIdentity:
    def test_str_parse_roundtrip(self):
        key = CellKey("9q8y7", TimeKey.of(2015, 3))
        assert str(key) == "9q8y7@2015-03"
        assert CellKey.parse(str(key)) == key

    def test_parse_invalid(self):
        with pytest.raises(CacheError):
            CellKey.parse("no-separator")

    def test_resolution(self):
        key = CellKey("9q8y7", TimeKey.of(2015, 3))
        assert key.resolution == Resolution(5, TemporalResolution.MONTH)

    def test_bbox_and_time_range(self):
        key = CellKey("9q8y7", TimeKey.of(2015, 3))
        assert key.bbox == gh.bbox("9q8y7")
        assert key.time_range == TimeKey.of(2015, 3).epoch_range()


class TestHierarchicalEdges:
    def test_three_parents(self):
        key = CellKey("9q8y7", TimeKey.of(2015, 3))
        parents = key.parents()
        assert CellKey("9q8y", TimeKey.of(2015, 3)) in parents  # spatial
        assert CellKey("9q8y7", TimeKey.of(2015)) in parents  # temporal
        assert CellKey("9q8y", TimeKey.of(2015)) in parents  # both
        assert len(parents) == 3

    def test_parents_at_coarsest(self):
        key = CellKey("9", TimeKey.of(2015))
        assert key.parents() == []

    def test_spatial_children(self):
        key = CellKey("9q8y", TimeKey.of(2015, 3))
        kids = key.spatial_children()
        assert len(kids) == 32
        assert all(k.time_key == key.time_key for k in kids)
        assert CellKey("9q8y7", TimeKey.of(2015, 3)) in kids

    def test_temporal_children(self):
        key = CellKey("9q8y", TimeKey.of(2015, 3))
        kids = key.temporal_children()
        assert len(kids) == 31  # March has 31 days
        assert all(k.geohash == "9q8y" for k in kids)

    def test_temporal_children_at_hour(self):
        key = CellKey("9q8y", TimeKey.of(2015, 3, 14, 7))
        assert key.temporal_children() == []

    def test_both_axis_children(self):
        key = CellKey("9q", TimeKey.of(2015, 3))
        kids = key.children("both")
        assert len(kids) == 32 * 31

    def test_unknown_axis(self):
        with pytest.raises(CacheError):
            CellKey("9q", TimeKey.of(2015)).children("diagonal")

    @given(cell_keys(min_precision=2, max_precision=5))
    @settings(max_examples=50)
    def test_parent_child_duality(self, key):
        for parent in key.parents():
            # The key must appear among the parent's children along the
            # axis that was coarsened.
            all_kids = (
                parent.spatial_children()
                + parent.temporal_children()
                + parent.children("both")
            )
            assert key in all_kids

    @given(cell_keys())
    @settings(max_examples=50)
    def test_spatial_children_nest_in_parent(self, key):
        for child in key.spatial_children():
            assert key.bbox.contains_box(child.bbox)
            assert child.spatial_parent() == key


class TestLateralEdges:
    def test_paper_example(self):
        key = CellKey("9q8y7", TimeKey.of(2015, 3))
        spatial = {k.geohash for k in key.spatial_neighbors()}
        assert spatial == {
            "9q8yd", "9q8ye", "9q8ys", "9q8yk", "9q8yh", "9q8y5", "9q8y4", "9q8y6",
        }
        temporal = [str(k.time_key) for k in key.temporal_neighbors()]
        assert temporal == ["2015-02", "2015-04"]

    @given(cell_keys())
    @settings(max_examples=30)
    def test_lateral_symmetry(self, key):
        for neighbor in key.lateral_neighbors():
            assert key in neighbor.lateral_neighbors()

    @given(cell_keys())
    @settings(max_examples=30)
    def test_lateral_same_resolution(self, key):
        for neighbor in key.lateral_neighbors():
            assert neighbor.resolution == key.resolution


class TestBackingBlocks:
    def test_fine_cell_single_day(self):
        key = CellKey("9q8y7", TimeKey.of(2013, 2, 2))
        blocks = key.backing_blocks(partition_precision=2)
        assert blocks == [BlockId("9q", "2013-02-02")]

    def test_hour_cell_maps_to_day_block(self):
        key = CellKey("9q8y7", TimeKey.of(2013, 2, 2, 13))
        assert key.backing_blocks(2) == [BlockId("9q", "2013-02-02")]

    def test_month_cell_spans_days(self):
        key = CellKey("9q8y", TimeKey.of(2013, 2))
        blocks = key.backing_blocks(2)
        assert len(blocks) == 28
        assert all(b.geohash == "9q" for b in blocks)

    def test_year_cell_spans_year(self):
        key = CellKey("9q8y", TimeKey.of(2013))
        assert len(key.backing_blocks(2)) == 365

    def test_coarse_cell_spans_prefixes(self):
        key = CellKey("9", TimeKey.of(2013, 2, 2))
        blocks = key.backing_blocks(2)
        assert len(blocks) == 32
        assert all(b.geohash.startswith("9") for b in blocks)
        assert all(b.day == "2013-02-02" for b in blocks)

    def test_exact_partition_precision(self):
        key = CellKey("9q", TimeKey.of(2013, 2, 2))
        assert key.backing_blocks(2) == [BlockId("9q", "2013-02-02")]

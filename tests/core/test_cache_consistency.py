"""Cache-consistency regressions: PLM/graph lockstep, eviction victim
order, and the guest-clique inverted index."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import EvictionConfig, FreshnessConfig
from repro.core.cell import Cell
from repro.core.eviction import EvictionPolicy
from repro.core.freshness import FreshnessTracker
from repro.core.graph import StashGraph
from repro.core.keys import CellKey
from repro.core.node import GuestCliqueRegistry
from repro.data.block import BlockId
from repro.data.statistics import SummaryVector
from repro.errors import CacheError
from repro.geo import geohash as gh
from repro.geo.resolution import ResolutionSpace
from repro.geo.temporal import TimeKey

SPACE = ResolutionSpace(1, 8)
DAY = TimeKey.of(2013, 2, 2)
CODES = gh.children("9q8y") + gh.children("9q8z")


def make_cell(code: str, value: float = 1.0) -> Cell:
    return Cell(
        key=CellKey(code, DAY),
        summary=SummaryVector.from_arrays({"temperature": np.array([value])}),
    )


def blocks_for(code: str) -> frozenset[BlockId]:
    return frozenset({BlockId(code[:2], "2013-02-02")})


class TestPlmGraphLockstep:
    def test_plm_rejection_leaves_graph_untouched(self):
        """Insert is exception-safe: a PLM failure must not strand a cell
        in the graph, or every later evict -> repopulate cycle wedges on
        'PLM already tracks' errors."""
        graph = StashGraph(SPACE)
        cell = make_cell("9q8y7")
        level = graph.level_of(cell.key)
        # Sabotage: PLM already tracks the key the graph is about to add.
        graph.plm.add(level, cell.key, blocks_for("9q8y7"))
        with pytest.raises(CacheError, match="PLM already tracks"):
            graph.insert(cell, blocks_for("9q8y7"))
        assert not graph.contains(cell.key)
        assert len(graph) == 0
        # Repair the PLM and the same key inserts cleanly again.
        graph.plm.remove(level, cell.key)
        graph.insert(cell, blocks_for("9q8y7"))
        assert graph.contains(cell.key)
        assert len(graph.plm) == len(graph) == 1

    @given(
        ops=st.lists(st.sampled_from(CODES), min_size=1, max_size=80),
        max_cells=st.integers(2, 20),
    )
    @settings(max_examples=30, deadline=None)
    def test_evict_repopulate_cycles_keep_plm_consistent(self, ops, max_cells):
        graph = StashGraph(SPACE)
        tracker = FreshnessTracker(FreshnessConfig(half_life=1e9))
        policy = EvictionPolicy(EvictionConfig(max_cells=max_cells))
        for now, code in enumerate(ops):
            # Repopulation of a previously evicted key must always work.
            graph.upsert(make_cell(code), blocks_for(code))
            tracker.touch_cells(graph, [CellKey(code, DAY)], now=float(now))
            policy.enforce(graph, tracker, now=float(now))
            assert len(graph.plm) == len(graph)
            for cell in graph.cells():
                level = graph.level_of(cell.key)
                assert graph.plm.contains(level, cell.key)

    def test_clear_resets_plm(self):
        graph = StashGraph(SPACE)
        for code in CODES[:5]:
            graph.insert(make_cell(code), blocks_for(code))
        assert graph.clear() == 5
        assert len(graph) == 0
        assert len(graph.plm) == 0
        # Everything reinserts cleanly after the wipe (cold restart).
        for code in CODES[:5]:
            graph.insert(make_cell(code), blocks_for(code))
        assert len(graph.plm) == len(graph) == 5


class TestEvictionVictimOrder:
    def _loaded(self, n: int, seed: int = 0):
        graph = StashGraph(SPACE)
        tracker = FreshnessTracker(FreshnessConfig(half_life=1e9))
        rng = np.random.default_rng(seed)
        for code in CODES[:n]:
            cell = make_cell(code)
            graph.insert(cell)
            # Random (sometimes tied) freshness.
            for _ in range(int(rng.integers(0, 4))):
                tracker.touch_cells(graph, [cell.key], now=0.0)
        return graph, tracker

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_victims_match_full_sort_reference(self, seed):
        """heapq.nsmallest must pick the exact victims (and order) the
        old full-sort implementation chose."""
        graph, tracker = self._loaded(30, seed)
        policy = EvictionPolicy(EvictionConfig(max_cells=20, safe_fraction=0.5))
        excess = len(graph) - policy.safe_limit
        reference = [
            cell.key
            for cell in sorted(
                graph.cells(),
                key=lambda cell: (tracker.score(cell, 1.0), str(cell.key)),
            )[:excess]
        ]
        victims = policy.enforce(graph, tracker, now=1.0)
        assert victims == reference


class TestGuestCliqueIndex:
    def k(self, code: str) -> CellKey:
        return CellKey(code, DAY)

    def test_touch_covering_refreshes_only_covering_cliques(self):
        registry = GuestCliqueRegistry()
        registry.add(self.k("9q8y0"), [self.k("9q8y0"), self.k("9q8y1")], now=0.0)
        registry.add(self.k("9q8z0"), [self.k("9q8z0")], now=0.0)
        registry.touch_covering({self.k("9q8y1")}, now=5.0)
        assert registry.entries["9q8y0@2013-02-02"]["last_used"] == 5.0
        assert registry.entries["9q8z0@2013-02-02"]["last_used"] == 0.0

    def test_overwrite_returns_orphans(self):
        registry = GuestCliqueRegistry()
        root = self.k("9q8y0")
        registry.add(root, [self.k("9q8y0"), self.k("9q8y1"), self.k("9q8y2")], 0.0)
        orphans = registry.add(root, [self.k("9q8y0"), self.k("9q8y3")], 1.0)
        assert set(orphans) == {self.k("9q8y1"), self.k("9q8y2")}

    def test_overwrite_keeps_members_shared_with_other_cliques(self):
        registry = GuestCliqueRegistry()
        shared = self.k("9q8y1")
        registry.add(self.k("9q8y0"), [self.k("9q8y0"), shared], 0.0)
        registry.add(self.k("9q8z0"), [self.k("9q8z0"), shared], 0.0)
        orphans = registry.add(self.k("9q8y0"), [self.k("9q8y0")], 1.0)
        # ``shared`` is still referenced by the 9q8z0 clique.
        assert orphans == []

    def test_remove_respects_shared_members(self):
        registry = GuestCliqueRegistry()
        shared = self.k("9q8y1")
        registry.add(self.k("9q8y0"), [self.k("9q8y0"), shared], 0.0)
        registry.add(self.k("9q8z0"), [self.k("9q8z0"), shared], 0.0)
        dropped = registry.remove("9q8y0@2013-02-02")
        assert shared not in dropped
        assert self.k("9q8y0") in dropped
        # Removing the second clique releases the shared member.
        dropped = registry.remove("9q8z0@2013-02-02")
        assert shared in dropped

    def test_tolerates_direct_entry_mutation(self):
        """Some callers (and older tests) clear ``entries`` directly; a
        stale index must not crash touch_covering."""
        registry = GuestCliqueRegistry()
        registry.add(self.k("9q8y0"), [self.k("9q8y0")], 0.0)
        registry.entries.clear()
        registry.touch_covering({self.k("9q8y0")}, now=1.0)
        assert registry.entries == {}

    def test_clear(self):
        registry = GuestCliqueRegistry()
        registry.add(self.k("9q8y0"), [self.k("9q8y0"), self.k("9q8y1")], 0.0)
        registry.clear()
        assert registry.entries == {}
        registry.add(self.k("9q8y0"), [self.k("9q8y1")], 1.0)
        registry.touch_covering({self.k("9q8y1")}, now=2.0)
        assert registry.entries["9q8y0@2013-02-02"]["last_used"] == 2.0

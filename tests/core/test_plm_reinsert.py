"""PLM bitmap bookkeeping across evict -> re-insert cycles.

Audit target: every ``remove`` must be the exact inverse of the ``add``
that created the entry — forward map, reverse (block -> dependents)
index, and no dangling empty reverse entries — otherwise a cell evicted
and later recomputed from *different* blocks would keep stale
invalidation edges, and a real-time block update would either miss the
cell or invalidate an innocent one.  ``PrecisionLevelMap.
check_consistency`` asserts the mirror property; these tests drive it
through eviction, invalidation, crash-clear, and randomized churn.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import EvictionConfig, FreshnessConfig
from repro.core.cell import Cell
from repro.core.eviction import EvictionPolicy
from repro.core.freshness import FreshnessTracker
from repro.core.graph import StashGraph
from repro.core.keys import CellKey
from repro.core.plm import PrecisionLevelMap
from repro.data.block import BlockId
from repro.data.statistics import SummaryVector
from repro.errors import CacheError
from repro.geo import geohash as gh
from repro.geo.resolution import ResolutionSpace
from repro.geo.temporal import TimeKey

SPACE = ResolutionSpace(1, 8)
DAY = TimeKey.of(2013, 2, 2)

KEY = CellKey("9q8y", DAY)
B1 = BlockId("9q8", "2013-02-02")
B2 = BlockId("9q9", "2013-02-02")
B3 = BlockId("9qb", "2013-02-02")


def cell(geohash="9q8y", time_key=DAY, value=1.0):
    return Cell(
        key=CellKey(geohash, time_key),
        summary=SummaryVector.from_arrays({"temperature": np.asarray([value])}),
    )


class TestPlmReinsert:
    def test_remove_then_readd_same_blocks(self):
        plm = PrecisionLevelMap()
        plm.add(0, KEY, frozenset({B1, B2}))
        plm.remove(0, KEY)
        plm.check_consistency()
        assert len(plm) == 0
        assert plm.dependents_of_block(B1) == set()
        plm.add(0, KEY, frozenset({B1, B2}))
        plm.check_consistency()
        assert plm.blocks_of(0, KEY) == {B1, B2}

    def test_readd_with_different_blocks_drops_stale_edges(self):
        """The re-insert case that motivates the audit: a cell evicted and
        recomputed from a different block set must not keep invalidation
        edges to its old blocks."""
        plm = PrecisionLevelMap()
        plm.add(0, KEY, frozenset({B1, B2}))
        plm.remove(0, KEY)
        plm.add(0, KEY, frozenset({B3}))
        plm.check_consistency()
        assert plm.blocks_of(0, KEY) == {B3}
        assert plm.dependents_of_block(B1) == set()
        assert plm.dependents_of_block(B2) == set()
        assert plm.dependents_of_block(B3) == {KEY}

    def test_shared_block_survives_partial_removal(self):
        other = CellKey("9q8z", DAY)
        plm = PrecisionLevelMap()
        plm.add(0, KEY, frozenset({B1}))
        plm.add(0, other, frozenset({B1, B2}))
        plm.remove(0, KEY)
        plm.check_consistency()
        assert plm.dependents_of_block(B1) == {other}
        plm.remove(0, other)
        plm.check_consistency()
        # No dangling empty reverse entries after the last dependent goes.
        assert plm.dependents_of_block(B1) == set()
        assert plm.dependents_of_block(B2) == set()

    def test_duplicate_add_rejected_without_corruption(self):
        plm = PrecisionLevelMap()
        plm.add(0, KEY, frozenset({B1}))
        with pytest.raises(CacheError):
            plm.add(0, KEY, frozenset({B2}))
        plm.check_consistency()
        # The failed add must not have touched the reverse index.
        assert plm.blocks_of(0, KEY) == {B1}
        assert plm.dependents_of_block(B2) == set()

    def test_remove_untracked_rejected(self):
        plm = PrecisionLevelMap()
        with pytest.raises(CacheError):
            plm.remove(0, KEY)
        plm.check_consistency()

    def test_same_key_at_two_levels_is_independent(self):
        plm = PrecisionLevelMap()
        plm.add(0, KEY, frozenset({B1}))
        plm.add(1, KEY, frozenset({B2}))
        plm.remove(0, KEY)
        plm.check_consistency()
        assert not plm.contains(0, KEY)
        assert plm.contains(1, KEY)
        assert plm.dependents_of_block(B2) == {KEY}

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["9q8y", "9q8z", "9qby", "9qbz"]),
                st.sets(st.sampled_from([B1, B2, B3]), max_size=3),
            ),
            max_size=30,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_randomized_churn_keeps_indexes_mirrored(self, ops):
        """Interleaved add/remove against a model dict: the PLM's forward
        and reverse indexes stay exact mirrors at every step."""
        plm = PrecisionLevelMap()
        model: dict[CellKey, frozenset] = {}
        for geohash, blocks in ops:
            key = CellKey(geohash, DAY)
            if key in model:
                plm.remove(0, key)
                del model[key]
            else:
                plm.add(0, key, frozenset(blocks))
                model[key] = frozenset(blocks)
            plm.check_consistency()
        assert len(plm) == len(model)
        for key, blocks in model.items():
            assert plm.blocks_of(0, key) == blocks
        for block in (B1, B2, B3):
            expected = {k for k, blocks in model.items() if block in blocks}
            assert plm.dependents_of_block(block) == expected


class TestGraphEvictReinsert:
    """The same invariants driven through the real eviction path."""

    def _full_graph(self):
        graph = StashGraph(SPACE)
        for i, child in enumerate(gh.children("9q8")):
            graph.insert(cell(child, value=float(i)), frozenset({B1}))
        return graph

    def test_eviction_clears_plm_and_reinsert_succeeds(self):
        graph = self._full_graph()
        policy = EvictionPolicy(EvictionConfig(max_cells=16, safe_fraction=0.5))
        tracker = FreshnessTracker(FreshnessConfig())
        victims = policy.enforce(graph, tracker, now=10.0)
        assert victims
        graph.plm.check_consistency()
        level = graph.level_of(victims[0])
        for key in victims:
            assert not graph.plm.contains(level, key)
        # Recompute the evicted cells from a different block set.
        for key in victims:
            graph.insert(cell(key.geohash), frozenset({B2, B3}))
        graph.plm.check_consistency()
        assert graph.plm.blocks_of(level, victims[0]) == {B2, B3}
        assert victims[0] not in graph.plm.dependents_of_block(B1)

    def test_invalidate_block_then_repopulate(self):
        graph = self._full_graph()
        stale = graph.invalidate_block(B1)
        assert len(stale) == 32
        graph.plm.check_consistency()
        assert len(graph) == 0
        for key in stale:
            graph.insert(cell(key.geohash), frozenset({B2}))
        graph.plm.check_consistency()
        assert graph.plm.dependents_of_block(B1) == set()
        assert len(graph.plm.dependents_of_block(B2)) == 32

    def test_clear_then_reinsert(self):
        graph = self._full_graph()
        assert graph.clear() == 32
        graph.plm.check_consistency()
        graph.insert(cell("9q8y"), frozenset({B1}))
        graph.plm.check_consistency()
        assert len(graph) == 1

    def test_graph_and_plm_membership_agree_after_churn(self):
        graph = self._full_graph()
        policy = EvictionPolicy(EvictionConfig(max_cells=20, safe_fraction=0.5))
        tracker = FreshnessTracker(FreshnessConfig())
        policy.enforce(graph, tracker, now=5.0)
        for c in graph.cells():
            assert graph.plm.contains(graph.level_of(c.key), c.key)
        assert len(graph.plm) == len(graph)

"""Failure-path robustness: one bad request must not wound the cluster."""

import pytest

from repro.config import ClusterConfig, StashConfig
from repro.core.cluster import StashCluster
from repro.data.generator import small_test_dataset
from repro.errors import QueryError
from repro.geo.bbox import BoundingBox
from repro.geo.resolution import Resolution
from repro.geo.temporal import TemporalResolution, TimeKey
from repro.query.model import AggregationQuery


@pytest.fixture()
def cluster():
    dataset = small_test_dataset(num_records=4_000)
    return StashCluster(dataset, StashConfig(cluster=ClusterConfig(num_nodes=4)))


def good_query():
    return AggregationQuery(
        bbox=BoundingBox(32, 40, -112, -102),
        time_range=TimeKey.of(2013, 2, 2).epoch_range(),
        resolution=Resolution(3, TemporalResolution.DAY),
    )


def oversized_query():
    """A footprint beyond MAX_FOOTPRINT_CELLS: global box at precision 8."""
    return AggregationQuery(
        bbox=BoundingBox.global_box(),
        time_range=TimeKey.of(2013, 2, 2).epoch_range(),
        resolution=Resolution(8, TemporalResolution.DAY),
    )


class TestRequestFailureIsolation:
    def test_oversized_query_raises_to_client(self, cluster):
        with pytest.raises(QueryError, match="footprint"):
            cluster.run_query(oversized_query())

    def test_cluster_survives_bad_request(self, cluster):
        with pytest.raises(QueryError):
            cluster.run_query(oversized_query())
        # The worker that hit the error is still alive and serving.
        result = cluster.run_query(good_query())
        assert result.cells
        counts = cluster.counters_total()
        assert counts.get("errors:evaluate", 0) == 1

    def test_many_bad_requests_then_good(self, cluster):
        for _ in range(5):
            with pytest.raises(QueryError):
                cluster.run_query(oversized_query())
        results = cluster.run_serial([good_query() for _ in range(3)])
        assert all(r.cells for r in results)

    def test_concurrent_mix_of_good_and_bad(self, cluster):
        cluster.start()
        good = [cluster.submit(good_query()) for _ in range(3)]
        bad = cluster.submit(oversized_query())

        def guard():
            # Registered before the simulation runs, so the failure has a
            # waiter the moment it fires.
            try:
                yield bad
            except QueryError:
                return "failed"
            return "unexpected success"

        guard_process = cluster.sim.process(guard())
        ok = cluster.sim.run(until=cluster.sim.all_of(good))
        verdict = cluster.sim.run(until=guard_process)
        assert verdict == "failed"
        assert len(ok) == 3
        assert all(r.cells for r in ok)

"""Tests for StashGraph, PrecisionLevelMap, freshness, and eviction."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import EvictionConfig, FreshnessConfig
from repro.core.cell import Cell
from repro.core.eviction import EvictionPolicy
from repro.core.freshness import FreshnessTracker, neighborhood_ring, query_ring
from repro.core.graph import StashGraph
from repro.core.keys import CellKey
from repro.data.block import BlockId
from repro.data.statistics import SummaryVector
from repro.errors import CacheError
from repro.geo import geohash as gh
from repro.geo.resolution import ResolutionSpace
from repro.geo.temporal import TimeKey

SPACE = ResolutionSpace(1, 8)
DAY = TimeKey.of(2013, 2, 2)
ATTRS = ["temperature"]


def make_cell(geohash: str, day: TimeKey = DAY, value: float = 1.0) -> Cell:
    import numpy as np

    key = CellKey(geohash, day)
    return Cell(key=key, summary=SummaryVector.from_arrays({"temperature": np.array([value])}))


def empty_cell(geohash: str, day: TimeKey = DAY) -> Cell:
    return Cell(key=CellKey(geohash, day), summary=SummaryVector.empty(ATTRS))


class TestGraphBasics:
    def test_insert_get_contains(self):
        graph = StashGraph(SPACE)
        cell = make_cell("9q8y7")
        graph.insert(cell)
        assert graph.contains(cell.key)
        assert graph.get(cell.key) is cell
        assert len(graph) == 1

    def test_duplicate_insert_rejected(self):
        graph = StashGraph(SPACE)
        graph.insert(make_cell("9q8y7"))
        with pytest.raises(CacheError):
            graph.insert(make_cell("9q8y7"))

    def test_upsert_keeps_first(self):
        graph = StashGraph(SPACE)
        first = make_cell("9q8y7", value=1.0)
        second = make_cell("9q8y7", value=99.0)
        assert graph.upsert(first)
        assert not graph.upsert(second)
        assert graph.get(first.key) is first

    def test_remove(self):
        graph = StashGraph(SPACE)
        cell = make_cell("9q8y7")
        graph.insert(cell)
        removed = graph.remove(cell.key)
        assert removed is cell
        assert not graph.contains(cell.key)
        with pytest.raises(CacheError):
            graph.remove(cell.key)

    def test_levels_separate_resolutions(self):
        graph = StashGraph(SPACE)
        graph.insert(make_cell("9q8y7"))
        graph.insert(make_cell("9q8y"))
        sizes = graph.level_sizes()
        assert len(sizes) == 2
        assert all(v == 1 for v in sizes.values())

    def test_empty_cell_is_resident(self):
        graph = StashGraph(SPACE)
        cell = empty_cell("9q8y7")
        graph.insert(cell)
        assert graph.contains(cell.key)
        assert graph.get(cell.key).count == 0


class TestPLM:
    def test_plm_tracks_blocks(self):
        graph = StashGraph(SPACE)
        cell = make_cell("9q8y7")
        blocks = frozenset({BlockId("9q", "2013-02-02")})
        graph.insert(cell, backing_blocks=blocks)
        level = graph.level_of(cell.key)
        assert graph.plm.blocks_of(level, cell.key) == blocks

    def test_split_footprint_partition(self):
        graph = StashGraph(SPACE)
        cached_cell = make_cell("9q8y7")
        graph.insert(cached_cell)
        footprint = [
            cached_cell.key,
            CellKey("9q8yd", DAY),
            CellKey("9q8ye", DAY),
        ]
        level = graph.level_of(cached_cell.key)
        cached, missing = graph.plm.split_footprint(level, footprint)
        assert cached == [cached_cell.key]
        assert set(missing) == {CellKey("9q8yd", DAY), CellKey("9q8ye", DAY)}
        assert set(cached) | set(missing) == set(footprint)
        assert set(cached).isdisjoint(missing)

    def test_invalidate_block(self):
        graph = StashGraph(SPACE)
        block = BlockId("9q", "2013-02-02")
        other = BlockId("9r", "2013-02-02")
        a = make_cell("9q8y7")
        b = make_cell("9q8yd")
        c = make_cell("9r8y7")
        graph.insert(a, frozenset({block}))
        graph.insert(b, frozenset({block}))
        graph.insert(c, frozenset({other}))
        stale = graph.invalidate_block(block)
        assert set(stale) == {a.key, b.key}
        assert not graph.contains(a.key)
        assert graph.contains(c.key)

    def test_plm_remove_unknown(self):
        graph = StashGraph(SPACE)
        with pytest.raises(CacheError):
            graph.plm.remove(0, CellKey("9q8y7", DAY))

    @given(st.sets(st.text(gh.GEOHASH_ALPHABET, min_size=5, max_size=5), max_size=30))
    @settings(max_examples=25)
    def test_footprint_split_invariant(self, cached_hashes):
        graph = StashGraph(SPACE)
        for code in cached_hashes:
            graph.upsert(make_cell(code))
        footprint = [CellKey(c, DAY) for c in gh.children("9q8y")]
        level = SPACE.level_of(footprint[0].resolution)
        cached, missing = graph.plm.split_footprint(level, footprint)
        assert set(cached) | set(missing) == set(footprint)
        assert set(cached).isdisjoint(missing)
        assert all(graph.contains(k) for k in cached)
        assert not any(graph.contains(k) for k in missing)


class TestFreshness:
    def test_touch_increments(self):
        tracker = FreshnessTracker(FreshnessConfig(f_inc=2.0, half_life=100.0))
        graph = StashGraph(SPACE)
        cell = make_cell("9q8y7")
        graph.insert(cell)
        touched = tracker.touch_cells(graph, [cell.key], now=0.0)
        assert touched == 1
        assert cell.freshness == pytest.approx(2.0)
        assert cell.access_count == 1

    def test_touch_absent_skipped(self):
        tracker = FreshnessTracker(FreshnessConfig())
        graph = StashGraph(SPACE)
        assert tracker.touch_cells(graph, [CellKey("9q8y7", DAY)], now=0.0) == 0

    def test_decay_halves_at_half_life(self):
        config = FreshnessConfig(f_inc=1.0, half_life=10.0)
        tracker = FreshnessTracker(config)
        graph = StashGraph(SPACE)
        cell = make_cell("9q8y7")
        graph.insert(cell)
        tracker.touch_cells(graph, [cell.key], now=0.0)
        assert tracker.score(cell, now=10.0) == pytest.approx(0.5)

    def test_repeat_access_accumulates(self):
        config = FreshnessConfig(f_inc=1.0, half_life=1e9)
        tracker = FreshnessTracker(config)
        graph = StashGraph(SPACE)
        cell = make_cell("9q8y7")
        graph.insert(cell)
        for t in range(5):
            tracker.touch_cells(graph, [cell.key], now=float(t))
        assert cell.freshness == pytest.approx(5.0, rel=1e-6)

    def test_dispersion_fraction(self):
        config = FreshnessConfig(f_inc=1.0, dispersion_fraction=0.25, half_life=1e9)
        tracker = FreshnessTracker(config)
        graph = StashGraph(SPACE)
        ring_cell = make_cell("9q8yd")
        graph.insert(ring_cell)
        tracker.disperse_to_neighborhood(graph, [ring_cell.key], now=0.0)
        assert ring_cell.freshness == pytest.approx(0.25)

    def test_query_ring_matches_general_ring(self):
        from repro.geo.bbox import BoundingBox
        from repro.geo.resolution import Resolution
        from repro.geo.temporal import TemporalResolution, TimeRange
        from repro.query.model import AggregationQuery

        query = AggregationQuery(
            bbox=BoundingBox(35, 38, -107, -103),
            time_range=TimeRange(
                DAY.epoch_range().start, DAY.step(2).epoch_range().start
            ),
            resolution=Resolution(3, TemporalResolution.DAY),
        )
        fast = set(query_ring(query))
        general = set(neighborhood_ring(query.footprint()))
        assert fast == general

    def test_neighborhood_ring_excludes_footprint(self):
        footprint = [CellKey(c, DAY) for c in gh.children("9q8y")]
        ring = neighborhood_ring(footprint)
        assert set(ring).isdisjoint(footprint)
        assert len(ring) == len(set(ring))
        # Ring contains temporal neighbors too.
        assert any(k.time_key != DAY for k in ring)
        # Every ring member is a lateral neighbor of some footprint cell.
        members = set(footprint)
        for key in ring:
            assert any(n in members for n in key.lateral_neighbors())


class TestEviction:
    def _loaded_graph(self, n: int):
        graph = StashGraph(SPACE)
        tracker = FreshnessTracker(FreshnessConfig(half_life=1e9))
        cells = []
        for i, code in enumerate(gh.children("9q8y")[:n]):
            cell = make_cell(code)
            graph.insert(cell)
            cells.append(cell)
        return graph, tracker, cells

    def test_no_eviction_under_threshold(self):
        graph, tracker, _ = self._loaded_graph(10)
        policy = EvictionPolicy(EvictionConfig(max_cells=20, safe_fraction=0.5))
        assert policy.enforce(graph, tracker, now=0.0) == []

    def test_eviction_to_safe_limit(self):
        graph, tracker, cells = self._loaded_graph(21)
        policy = EvictionPolicy(EvictionConfig(max_cells=20, safe_fraction=0.5))
        evicted = policy.enforce(graph, tracker, now=0.0)
        assert len(graph) == 10
        assert len(evicted) == 11
        assert policy.evictions == 11

    def test_eviction_keeps_freshest(self):
        graph, tracker, cells = self._loaded_graph(21)
        hot = cells[:10]
        tracker.touch_cells(graph, [c.key for c in hot], now=0.0)
        policy = EvictionPolicy(EvictionConfig(max_cells=20, safe_fraction=0.5))
        evicted = set(policy.enforce(graph, tracker, now=1.0))
        for cell in hot:
            assert cell.key not in evicted
            assert graph.contains(cell.key)

    def test_bad_config(self):
        with pytest.raises(CacheError):
            EvictionPolicy(EvictionConfig(max_cells=0))
        with pytest.raises(CacheError):
            EvictionPolicy(EvictionConfig(safe_fraction=0.0))

    @given(st.integers(1, 64), st.integers(1, 40))
    @settings(max_examples=25)
    def test_eviction_never_exceeds_safe_limit(self, max_cells, extra):
        graph = StashGraph(SPACE)
        tracker = FreshnessTracker(FreshnessConfig(half_life=1e9))
        codes = gh.children("9q8y") + gh.children("9q8z") + gh.children("9q8w")
        for code in codes[: max_cells + extra]:
            graph.upsert(make_cell(code))
        policy = EvictionPolicy(EvictionConfig(max_cells=max_cells, safe_fraction=0.8))
        policy.enforce(graph, tracker, now=0.0)
        assert len(graph) <= max(1, int(max_cells * 0.8))

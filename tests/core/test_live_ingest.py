"""Real-time update path: live ingest invalidates stale cached cells."""

import numpy as np
import pytest

from repro.config import ClusterConfig, StashConfig
from repro.core.cluster import StashCluster
from repro.data.generator import small_test_dataset
from repro.data.observation import ObservationBatch
from repro.geo.bbox import BoundingBox
from repro.geo.resolution import Resolution
from repro.geo.temporal import TemporalResolution, TimeKey
from repro.query.model import AggregationQuery
from repro.storage.backend import ground_truth_cells


def make_query(box=None):
    return AggregationQuery(
        bbox=box or BoundingBox(32, 40, -112, -102),
        time_range=TimeKey.of(2013, 2, 2).epoch_range(),
        resolution=Resolution(4, TemporalResolution.DAY),
    )


def new_observations(n=50, lat0=35.0, lon0=-107.0, temp=99.0):
    """A burst of hot observations inside the query box on the query day."""
    rng = np.random.default_rng(123)
    base = TimeKey.of(2013, 2, 2).epoch_range()
    return ObservationBatch(
        lats=rng.uniform(lat0, lat0 + 1.0, n),
        lons=rng.uniform(lon0, lon0 + 1.0, n),
        epochs=rng.uniform(base.start, base.end - 1, n),
        attributes={
            "temperature": np.full(n, temp),
            "humidity": np.full(n, 10.0),
            "precipitation": np.zeros(n),
            "snow_depth": np.zeros(n),
        },
    )


@pytest.fixture()
def cluster():
    dataset = small_test_dataset(num_records=6_000)
    return StashCluster(dataset, StashConfig(cluster=ClusterConfig(num_nodes=6)))


class TestLiveIngest:
    def test_stale_cells_recomputed(self, cluster):
        query = make_query()
        before = cluster.run_query(query)
        cluster.drain()
        blocks, invalidated = cluster.ingest_live(new_observations())
        assert blocks > 0
        assert invalidated > 0
        after = cluster.run_query(make_query())
        # New records are visible: total count grew by exactly the burst.
        assert after.total_count == before.total_count + 50
        # The hot burst shows up in the max temperature.
        assert after.overall_summary()["temperature"].maximum == 99.0

    def test_result_matches_oracle_after_update(self, cluster):
        query = make_query()
        cluster.run_query(query)
        cluster.drain()
        burst = new_observations()
        cluster.ingest_live(burst)
        combined = small_test_dataset(num_records=6_000).concat(burst)
        result = cluster.run_query(make_query())
        truth = ground_truth_cells(combined, query)
        assert set(result.cells) == set(truth)
        for key, vec in result.cells.items():
            assert vec.approx_equal(truth[key])

    def test_cells_cached_as_empty_are_invalidated(self, cluster):
        # Query an ocean region with no data: cells cached as empty.
        empty_box = BoundingBox(0.0, 2.0, -60.0, -56.0)
        query = make_query(box=empty_box)
        first = cluster.run_query(query)
        assert first.cells == {}
        cluster.drain()
        assert cluster.total_cached_cells() > 0
        # New data lands in that previously-empty region (new blocks!).
        cluster.ingest_live(new_observations(lat0=0.5, lon0=-58.0))
        second = cluster.run_query(make_query(box=empty_box))
        assert second.total_count == 50

    def test_untouched_regions_keep_their_cache(self, cluster):
        far_query = make_query(box=BoundingBox(45, 50, -90, -80))
        cluster.run_query(far_query)
        cluster.drain()
        cached_before = cluster.total_cached_cells()
        cluster.ingest_live(new_observations())  # far away from far_query
        # The far region's footprint stays cached.
        repeat = cluster.run_query(make_query(box=BoundingBox(45, 50, -90, -80)))
        assert repeat.provenance["cells_from_disk"] == 0
        assert cluster.total_cached_cells() <= cached_before

    def test_day_ingest_only_affects_that_day(self, cluster):
        other_day = AggregationQuery(
            bbox=BoundingBox(32, 40, -112, -102),
            time_range=TimeKey.of(2013, 2, 3).epoch_range(),
            resolution=Resolution(4, TemporalResolution.DAY),
        )
        cluster.run_query(other_day)
        cluster.drain()
        cluster.ingest_live(new_observations())  # lands on 2013-02-02
        repeat = cluster.run_query(
            AggregationQuery(
                bbox=other_day.bbox,
                time_range=other_day.time_range,
                resolution=other_day.resolution,
            )
        )
        assert repeat.provenance["cells_from_disk"] == 0

"""Attribute slicing (OLAP "slice"): selection must not poison the cache."""

import pytest

from repro.config import ClusterConfig, StashConfig
from repro.core.cluster import StashCluster
from repro.data.generator import small_test_dataset
from repro.data.statistics import SummaryVector
from repro.errors import StatisticsError
from repro.geo.bbox import BoundingBox
from repro.geo.resolution import Resolution
from repro.geo.temporal import TemporalResolution, TimeKey
from repro.query.model import AggregationQuery
from repro.storage.backend import ground_truth_cells


@pytest.fixture(scope="module")
def dataset():
    return small_test_dataset(num_records=5_000)


@pytest.fixture()
def cluster(dataset):
    return StashCluster(dataset, StashConfig(cluster=ClusterConfig(num_nodes=4)))


def make_query(attributes=None):
    return AggregationQuery(
        bbox=BoundingBox(32, 40, -112, -102),
        time_range=TimeKey.of(2013, 2, 2).epoch_range(),
        resolution=Resolution(3, TemporalResolution.DAY),
        attributes=attributes,
    )


class TestProjection:
    def test_project_subset(self):
        import numpy as np

        vec = SummaryVector.from_arrays(
            {"a": np.array([1.0]), "b": np.array([2.0])}
        )
        projected = vec.project(["a"])
        assert projected.attributes == ["a"]
        assert projected["a"].total == 1.0

    def test_project_unknown(self):
        import numpy as np

        vec = SummaryVector.from_arrays({"a": np.array([1.0])})
        with pytest.raises(StatisticsError):
            vec.project(["a", "zzz"])

    def test_project_empty_selection(self):
        import numpy as np

        vec = SummaryVector.from_arrays({"a": np.array([1.0])})
        with pytest.raises(StatisticsError):
            vec.project([])


class TestSlicedQueries:
    def test_sliced_query_returns_only_selected(self, cluster, dataset):
        query = make_query(attributes=("temperature",))
        result = cluster.run_query(query)
        assert result.cells
        for vec in result.cells.values():
            assert vec.attributes == ["temperature"]
        truth = ground_truth_cells(dataset, query)
        for key, vec in result.cells.items():
            assert vec.approx_equal(truth[key])

    def test_sliced_query_does_not_poison_cache(self, cluster, dataset):
        """A temperature-only query must not cache temperature-only cells:
        a later full query served from cache needs every attribute."""
        cluster.run_query(make_query(attributes=("temperature",)))
        cluster.drain()
        full = cluster.run_query(make_query())
        # Served from cache (the sliced query populated complete cells)...
        assert full.provenance["cells_from_disk"] == 0
        # ... and every attribute is present and correct.
        truth = ground_truth_cells(dataset, make_query())
        assert set(full.cells) == set(truth)
        for key, vec in full.cells.items():
            assert set(vec.attributes) == {
                "humidity", "precipitation", "snow_depth", "temperature",
            }
            assert vec.approx_equal(truth[key])

    def test_full_then_sliced_serves_from_cache(self, cluster):
        cluster.run_query(make_query())
        cluster.drain()
        sliced = cluster.run_query(make_query(attributes=("humidity",)))
        assert sliced.provenance["cells_from_disk"] == 0
        for vec in sliced.cells.values():
            assert vec.attributes == ["humidity"]

    def test_sliced_matches_full_on_common_attribute(self, cluster):
        full = cluster.run_query(make_query())
        cluster.drain()
        sliced = cluster.run_query(make_query(attributes=("temperature",)))
        assert set(sliced.cells) == set(full.cells)
        for key, vec in sliced.cells.items():
            assert vec["temperature"].approx_equal(full.cells[key]["temperature"])

    def test_preload_with_sliced_query_does_not_poison_cache(
        self, cluster, dataset
    ):
        """``preload_fraction`` inserts scan results straight into the
        graph; a projected preload query must still stack complete cells,
        or a later query for a different attribute reads a poisoned
        cache.  (Regression: ``scan_blocks`` used to apply the query's
        attribute selection at scan time.)"""
        inserted = cluster.preload_fraction(
            make_query(attributes=("temperature",)), fraction=1.0
        )
        assert inserted > 0
        result = cluster.run_query(make_query(attributes=("humidity",)))
        assert result.cells
        assert result.provenance["cells_from_disk"] == 0
        truth = ground_truth_cells(dataset, make_query(attributes=("humidity",)))
        assert set(truth).issubset(set(result.cells))
        for key, vec in result.cells.items():
            assert vec.attributes == ["humidity"]
            if key in truth:
                assert vec.approx_equal(truth[key])

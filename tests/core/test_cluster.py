"""Integration tests: the STASH cluster end-to-end."""

import pytest

from repro.config import (
    ClusterConfig,
    EvictionConfig,
    FreshnessConfig,
    ReplicationConfig,
    StashConfig,
)
from repro.core.cluster import StashCluster
from repro.data.generator import small_test_dataset
from repro.geo.bbox import BoundingBox
from repro.geo.resolution import Resolution
from repro.geo.temporal import TemporalResolution, TimeKey
from repro.query.model import AggregationQuery
from repro.storage.backend import ground_truth_cells


@pytest.fixture(scope="module")
def dataset():
    return small_test_dataset(num_records=6_000)


def make_config(**kwargs):
    defaults = dict(cluster=ClusterConfig(num_nodes=6))
    defaults.update(kwargs)
    return StashConfig(**defaults)


@pytest.fixture()
def cluster(dataset):
    return StashCluster(dataset, make_config())


def make_query(box=None, precision=3, day=(2013, 2, 2)):
    return AggregationQuery(
        bbox=box or BoundingBox(30, 45, -115, -95),
        time_range=TimeKey.of(*day).epoch_range(),
        resolution=Resolution(precision, TemporalResolution.DAY),
    )


def assert_matches_truth(result, dataset, query):
    truth = ground_truth_cells(dataset, query)
    assert set(result.cells) == set(truth)
    for key, vec in result.cells.items():
        assert vec.approx_equal(truth[key])


class TestCorrectness:
    def test_cold_query_matches_ground_truth(self, cluster, dataset):
        query = make_query()
        result = cluster.run_query(query)
        assert_matches_truth(result, dataset, query)
        assert result.provenance["cells_from_disk"] > 0
        assert result.provenance["cells_from_cache"] == 0

    def test_hot_query_matches_and_hits_cache(self, cluster, dataset):
        query = make_query()
        cluster.warm([query])
        repeat = make_query()  # identical extent, fresh query id
        result = cluster.run_query(repeat)
        assert_matches_truth(result, dataset, repeat)
        assert result.provenance["cells_from_disk"] == 0
        assert result.provenance["cells_from_cache"] == len(repeat.footprint())

    def test_hot_query_is_much_faster(self, cluster):
        query = make_query()
        cold = cluster.run_query(query)
        cluster.drain()
        hot = cluster.run_query(make_query())
        assert hot.latency < cold.latency / 3

    def test_cold_stash_slower_than_basic(self, dataset):
        """Paper Fig 6a: empty STASH pays lookup overhead over basic."""
        from repro.baselines.basic import BasicSystem

        query = make_query()
        basic = BasicSystem(dataset, make_config()).run_query(query)
        stash = StashCluster(dataset, make_config()).run_query(make_query())
        assert stash.latency > basic.latency
        # ... but only slightly (within ~50%).
        assert stash.latency < basic.latency * 1.5

    def test_overlapping_query_partial_reuse(self, cluster, dataset):
        query = make_query()
        cluster.warm([query])
        panned = make_query().panned(1.0, 1.0)
        result = cluster.run_query(panned)
        assert_matches_truth(result, dataset, panned)
        assert result.provenance["cells_from_cache"] > 0
        assert result.provenance["cells_from_disk"] > 0

    def test_population_is_asynchronous(self, cluster):
        query = make_query()
        result = cluster.run_query(query)
        # Population messages may still be in flight right after the
        # client response; draining completes them.
        cluster.drain()
        assert cluster.total_cached_cells() >= len(result.cells)

    def test_empty_cells_cached_explicitly(self, cluster):
        query = make_query()
        cluster.warm([query])
        cached = cluster.total_cached_cells()
        assert cached == len(query.footprint())

    def test_matches_basic_system_exactly(self, dataset):
        from repro.baselines.basic import BasicSystem

        query = make_query(box=BoundingBox(28, 44, -120, -90))
        basic = BasicSystem(dataset, make_config()).run_query(query)
        stash_cluster = StashCluster(dataset, make_config())
        cold = stash_cluster.run_query(make_query(box=BoundingBox(28, 44, -120, -90)))
        stash_cluster.drain()
        hot = stash_cluster.run_query(make_query(box=BoundingBox(28, 44, -120, -90)))
        assert cold.matches(basic)
        assert hot.matches(basic)


class TestRollupReuse:
    def _warm_children_of(self, cluster, coarse):
        """Warm the fine-resolution cells tiling the coarse query exactly."""
        fine = AggregationQuery(
            bbox=coarse.snapped_bbox(),
            time_range=coarse.time_range,
            resolution=Resolution(
                coarse.resolution.spatial + 1, coarse.resolution.temporal
            ),
        )
        cluster.warm([fine])
        return fine

    def test_rollup_answers_coarser_query_without_disk(self, cluster, dataset):
        coarse = make_query(precision=3)
        self._warm_children_of(cluster, coarse)
        result = cluster.run_query(coarse)
        assert_matches_truth(result, dataset, coarse)
        assert result.provenance["cells_from_rollup"] == len(coarse.footprint())
        assert result.provenance["cells_from_disk"] == 0

    def test_rollup_results_are_cached(self, cluster):
        coarse = make_query(precision=3)
        self._warm_children_of(cluster, coarse)
        cluster.run_query(coarse)
        cluster.drain()
        again = cluster.run_query(make_query(precision=3))
        assert again.provenance["cells_from_rollup"] == 0
        assert again.provenance["cells_from_cache"] == len(coarse.footprint())

    def test_drilldown_cannot_use_coarser_cells(self, cluster):
        coarse = make_query(precision=3)
        cluster.warm([coarse])
        fine = make_query(precision=4)
        result = cluster.run_query(fine)
        assert result.provenance["cells_from_disk"] == len(fine.footprint())


class TestPreload:
    def test_preload_full_makes_query_hot(self, cluster, dataset):
        query = make_query()
        inserted = cluster.preload_fraction(query, 1.0)
        assert inserted == len(query.footprint())
        result = cluster.run_query(make_query())
        assert_matches_truth(result, dataset, query)
        assert result.provenance["cells_from_disk"] == 0

    def test_preload_half(self, cluster):
        query = make_query()
        inserted = cluster.preload_fraction(query, 0.5)
        footprint_size = len(query.footprint())
        assert inserted == round(footprint_size * 0.5)
        result = cluster.run_query(make_query())
        assert result.provenance["cells_from_cache"] == inserted

    def test_preload_bad_fraction(self, cluster):
        from repro.errors import CacheError

        with pytest.raises(CacheError):
            cluster.preload_fraction(make_query(), 1.5)

    def test_preload_latency_decreases_with_fraction(self):
        # Needs a dense day and fine partitioning so the query spans many
        # nonempty blocks — otherwise caching half the cells saves no
        # block reads (the paper's queries cover hundreds of blocks).
        dense = small_test_dataset(num_records=40_000, num_days=2)
        config = make_config(
            cluster=ClusterConfig(num_nodes=6, partition_precision=3)
        )
        query = make_query(box=BoundingBox(32, 40, -112, -102), precision=4)
        latencies = {}
        for fraction in (0.0, 0.5, 1.0):
            cluster = StashCluster(dense, config)
            cluster.preload_fraction(query, fraction)
            latencies[fraction] = cluster.run_query(
                make_query(box=BoundingBox(32, 40, -112, -102), precision=4)
            ).latency
        assert latencies[1.0] < latencies[0.5] < latencies[0.0]


class TestInvalidation:
    def test_invalidate_block_forces_rescan(self, cluster, dataset):
        query = make_query()
        cluster.warm([query])
        counts = cluster.counters_total()
        assert counts["cells_populated"] > 0
        # Invalidate one backing block; dependent cells must drop.
        some_key = next(iter(ground_truth_cells(dataset, query)))
        block_id = cluster.catalog.blocks_for_cell(some_key)[0]
        dropped = cluster.invalidate_block(block_id)
        assert dropped > 0
        result = cluster.run_query(make_query())
        assert result.provenance["cells_from_disk"] >= dropped - 1
        # Results still correct after recompute.
        assert_matches_truth(result, dataset, query)


class TestEvictionUnderPressure:
    def test_cache_respects_capacity(self, dataset):
        config = make_config(
            eviction=EvictionConfig(max_cells=50, safe_fraction=0.8),
            freshness=FreshnessConfig(half_life=30.0),
        )
        cluster = StashCluster(dataset, config)
        for i in range(6):
            cluster.run_query(make_query(box=BoundingBox(25 + i, 40 + i, -115, -95)))
            cluster.drain()
        for node in cluster.nodes.values():
            assert len(node.graph) <= 50
        assert cluster.counters_total().get("cells_evicted", 0) > 0

    def test_results_correct_despite_eviction(self, dataset):
        config = make_config(eviction=EvictionConfig(max_cells=30, safe_fraction=0.5))
        cluster = StashCluster(dataset, config)
        query = make_query()
        for _ in range(3):
            result = cluster.run_query(make_query())
            cluster.drain()
            assert_matches_truth(result, dataset, query)

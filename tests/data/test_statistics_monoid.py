"""Monoid laws for AttributeSummary / SummaryVector (property-based).

Every correctness argument in STASH — roll-up recomputation, cross-block
scan merges, the oracle's reference aggregation — reduces to "summaries
of disjoint data form a commutative monoid under merge".  These tests pin
that algebra directly: associativity, identity, commutativity, and the
homomorphism ``summary(x ++ y) == summary(x) . summary(y)``.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.statistics import AttributeSummary, SummaryVector
from repro.errors import StatisticsError
from repro.oracle.engine import reference_merge

# Bounded magnitudes keep total_sq far from overflow so the laws are
# about algebra, not float saturation.
finite_values = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
    max_size=16,
)

summaries = finite_values.map(
    lambda v: AttributeSummary.from_values(np.asarray(v, dtype=float))
)


@st.composite
def vectors(draw, attrs=("pressure", "temperature")):
    n = draw(st.integers(min_value=0, max_value=12))
    arrays = {
        a: np.asarray(
            draw(
                st.lists(
                    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                    min_size=n,
                    max_size=n,
                )
            ),
            dtype=float,
        )
        for a in attrs
    }
    if n == 0:
        return SummaryVector.empty(list(attrs))
    return SummaryVector.from_arrays(arrays)


class TestAttributeSummaryMonoid:
    @given(summaries, summaries, summaries)
    @settings(max_examples=200, deadline=None)
    def test_associative(self, a, b, c):
        assert a.merge(b).merge(c).approx_equal(a.merge(b.merge(c)))

    @given(summaries)
    @settings(max_examples=100, deadline=None)
    def test_identity(self, a):
        e = AttributeSummary.empty()
        assert a.merge(e) == a
        assert e.merge(a) == a

    @given(summaries, summaries)
    @settings(max_examples=200, deadline=None)
    def test_commutative(self, a, b):
        # Exact, not approx: float + and min/max commute bitwise.
        assert a.merge(b) == b.merge(a)

    @given(finite_values, finite_values)
    @settings(max_examples=200, deadline=None)
    def test_merge_is_concat_homomorphism(self, x, y):
        merged = AttributeSummary.from_values(np.asarray(x)).merge(
            AttributeSummary.from_values(np.asarray(y))
        )
        direct = AttributeSummary.from_values(np.asarray(x + y))
        assert merged.approx_equal(direct, rel=1e-9)

    @given(summaries, summaries)
    @settings(max_examples=100, deadline=None)
    def test_merge_preserves_derived_stats_domain(self, a, b):
        merged = a.merge(b)
        assert merged.count == a.count + b.count
        if merged.count:
            assert merged.minimum <= merged.maximum
            assert merged.variance >= 0.0
            # total/count can overshoot an extremum by a few ulps.
            slack = 1e-9 * max(1.0, abs(merged.mean))
            assert merged.minimum - slack <= merged.mean <= merged.maximum + slack
        else:
            assert merged.is_empty


class TestSummaryVectorMonoid:
    @given(vectors(), vectors(), vectors())
    @settings(max_examples=100, deadline=None)
    def test_associative(self, a, b, c):
        assert a.merge(b).merge(c).approx_equal(a.merge(b.merge(c)))

    @given(vectors())
    @settings(max_examples=50, deadline=None)
    def test_identity(self, a):
        e = SummaryVector.empty(a.attributes)
        assert a.merge(e) == a
        assert e.merge(a) == a

    @given(vectors(), vectors())
    @settings(max_examples=100, deadline=None)
    def test_commutative(self, a, b):
        assert a.merge(b) == b.merge(a)

    @given(st.lists(vectors(), min_size=1, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_merge_all_is_left_fold(self, vecs):
        folded = vecs[0]
        for vec in vecs[1:]:
            folded = folded.merge(vec)
        assert SummaryVector.merge_all(vecs) == folded

    @given(st.lists(vectors(), max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_reference_merge_agrees(self, vecs):
        """The oracle's independent merge computes the same monoid."""
        attrs = ["pressure", "temperature"]
        expected = SummaryVector.empty(attrs)
        for vec in vecs:
            expected = expected.merge(vec)
        assert reference_merge(vecs, attrs).approx_equal(expected)

    def test_attribute_mismatch_rejected(self):
        a = SummaryVector.empty(["x"])
        b = SummaryVector.empty(["y"])
        with pytest.raises(StatisticsError):
            a.merge(b)

    def test_inconsistent_counts_rejected(self):
        with pytest.raises(StatisticsError):
            SummaryVector(
                {
                    "x": AttributeSummary.from_values(np.asarray([1.0])),
                    "y": AttributeSummary.empty(),
                }
            )

    def test_empty_identity_attributes(self):
        e = SummaryVector.empty(["x", "y"])
        assert e.is_empty
        assert e["x"] == AttributeSummary.empty()
        assert math.isinf(e["x"].minimum)

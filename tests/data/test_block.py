"""Tests for block partitioning."""

import numpy as np
import pytest

from repro.data.block import Block, BlockId, partition_into_blocks
from repro.data.generator import small_test_dataset
from repro.data.observation import ObservationBatch
from repro.errors import StorageError


@pytest.fixture(scope="module")
def batch():
    return small_test_dataset(num_records=3_000)


class TestBlockId:
    def test_str(self):
        bid = BlockId(geohash="9x", day="2013-02-02")
        assert str(bid) == "9x@2013-02-02"
        assert str(bid.time_key) == "2013-02-02"

    def test_ordering(self):
        a = BlockId("9x", "2013-02-01")
        b = BlockId("9x", "2013-02-02")
        assert a < b


class TestPartitioning:
    def test_partition_covers_all_records(self, batch):
        blocks = partition_into_blocks(batch, 2)
        assert sum(len(b) for b in blocks.values()) == len(batch)

    def test_blocks_validate(self, batch):
        blocks = partition_into_blocks(batch, 2)
        for block in blocks.values():
            block.validate()

    def test_block_ids_match_content(self, batch):
        blocks = partition_into_blocks(batch, 2)
        for bid, block in blocks.items():
            assert block.block_id == bid
            assert len(bid.geohash) == 2

    def test_partition_empty(self):
        assert partition_into_blocks(ObservationBatch.empty(), 2) == {}

    def test_partition_bad_precision(self, batch):
        with pytest.raises(StorageError):
            partition_into_blocks(batch, 0)

    def test_multiple_days_split(self, batch):
        blocks = partition_into_blocks(batch, 1)
        days = {bid.day for bid in blocks}
        assert len(days) > 1

    def test_validate_detects_wrong_cell(self, batch):
        blocks = partition_into_blocks(batch, 2)
        bid, block = next(iter(blocks.items()))
        other_bid = BlockId(geohash="zz", day=bid.day)
        bad = Block(block_id=other_bid, batch=block.batch)
        with pytest.raises(StorageError):
            bad.validate()

    def test_validate_detects_wrong_day(self, batch):
        blocks = partition_into_blocks(batch, 2)
        bid, block = next(iter(blocks.items()))
        bad = Block(
            block_id=BlockId(geohash=bid.geohash, day="2019-01-01"),
            batch=block.batch,
        )
        with pytest.raises(StorageError):
            bad.validate()

    def test_nbytes(self, batch):
        blocks = partition_into_blocks(batch, 2)
        total = sum(b.nbytes for b in blocks.values())
        assert total == batch.nbytes

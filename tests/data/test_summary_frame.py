"""Property tests pinning SummaryFrame / grouped_summaries to a
per-record Python reference (and to the frozen scalar implementation)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.statistics import (
    AttributeSummary,
    SummaryFrame,
    SummaryVector,
    grouped_summaries,
    grouped_summaries_scalar,
)
from repro.errors import StatisticsError

finite = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)
key_pool = st.sampled_from(["9q8@2013-02-01", "9q8@2013-02-02", "dr5@2013-02-01", "x"])


@st.composite
def grouped_inputs(draw, min_records=0, identical_keys=False):
    n = draw(st.integers(min_records, 40))
    if identical_keys:
        keys = [draw(key_pool)] * n
    else:
        keys = draw(st.lists(key_pool, min_size=n, max_size=n))
    num_attrs = draw(st.integers(1, 3))
    arrays = {
        f"attr{i}": np.array(
            draw(st.lists(finite, min_size=n, max_size=n)), dtype=np.float64
        )
        for i in range(num_attrs)
    }
    return np.array(keys, dtype="U32") if n else np.array([], dtype="U32"), arrays


def reference(keys, arrays):
    """Per-record pure-Python reference: fsum totals, running extrema."""
    out = {}
    for i, key in enumerate(keys.tolist()):
        group = out.setdefault(key, {name: [] for name in arrays})
        for name, values in arrays.items():
            group[name].append(float(values[i]))
    return {
        key: SummaryVector(
            {
                name: AttributeSummary(
                    count=len(vals),
                    total=math.fsum(vals),
                    total_sq=math.fsum(v * v for v in vals),
                    minimum=min(vals),
                    maximum=max(vals),
                )
                for name, vals in group.items()
            }
        )
        for key, group in out.items()
    }


def assert_matches_reference(result, expected):
    assert set(result) == set(expected)
    for key, vec in result.items():
        assert vec.approx_equal(expected[key]), f"mismatch at {key}"


class TestAgainstReference:
    @given(grouped_inputs())
    @settings(max_examples=80)
    def test_grouped_summaries_matches_per_record_reference(self, inputs):
        keys, arrays = inputs
        assert_matches_reference(grouped_summaries(keys, arrays), reference(keys, arrays))

    @given(grouped_inputs(min_records=1, identical_keys=True))
    @settings(max_examples=30)
    def test_single_group_all_identical_keys(self, inputs):
        keys, arrays = inputs
        result = grouped_summaries(keys, arrays)
        assert len(result) == 1
        assert_matches_reference(result, reference(keys, arrays))

    def test_negative_values(self):
        keys = np.array(["a", "a", "b"])
        arrays = {"x": np.array([-5.0, -7.0, -1.5])}
        result = grouped_summaries(keys, arrays)
        assert result["a"]["x"] == AttributeSummary(2, -12.0, 74.0, -7.0, -5.0)
        assert result["b"]["x"] == AttributeSummary(1, -1.5, 2.25, -1.5, -1.5)

    def test_empty_attribute_dict_raises(self):
        """A group with no attributes would be an invalid SummaryVector
        (the old implementation silently built broken vectors here)."""
        with pytest.raises(StatisticsError):
            grouped_summaries(np.array(["a"]), {})
        with pytest.raises(StatisticsError):
            SummaryFrame.from_groups(np.array(["a"]), {})

    def test_length_mismatch_raises(self):
        with pytest.raises(StatisticsError):
            grouped_summaries(np.array(["a", "b"]), {"x": np.array([1.0])})

    def test_no_records_yields_no_groups(self):
        result = grouped_summaries(np.array([], dtype="U8"), {"x": np.array([])})
        assert result == {}


class TestScalarEquivalence:
    @given(grouped_inputs())
    @settings(max_examples=80)
    def test_bitwise_identical_to_frozen_scalar(self, inputs):
        """Same stable sort, same reduceat segments, same summation
        order: the columnar kernel reproduces the scalar one exactly —
        not just approximately — including group iteration order."""
        keys, arrays = inputs
        columnar = grouped_summaries(keys, arrays)
        scalar = grouped_summaries_scalar(keys, arrays)
        assert columnar == scalar
        assert list(columnar) == list(scalar)


class TestFrameMerge:
    @given(grouped_inputs(min_records=1), st.integers(0, 40))
    @settings(max_examples=60)
    def test_merge_of_splits_matches_whole(self, inputs, cut):
        """Summarizing two halves and merging the frames equals (to fp
        tolerance; counts/extrema exactly) summarizing the whole — the
        monoid law scan_blocks relies on when combining per-block frames."""
        keys, arrays = inputs
        cut = min(cut, keys.size)
        left = SummaryFrame.from_groups(
            keys[:cut], {n: v[:cut] for n, v in arrays.items()}
        )
        right = SummaryFrame.from_groups(
            keys[cut:], {n: v[cut:] for n, v in arrays.items()}
        )
        merged = left.merge(right).materialize()
        whole = SummaryFrame.from_groups(keys, arrays).materialize()
        assert set(merged) == set(whole)
        for key, vec in merged.items():
            assert vec.approx_equal(whole[key])
            assert vec.count == whole[key].count

    @given(grouped_inputs(min_records=1))
    @settings(max_examples=40)
    def test_merge_matches_vector_merge_chain_bitwise(self, inputs):
        """Frame merge accumulates partials in the same left-to-right
        order as chaining SummaryVector.merge, so the results are
        bitwise identical — the property that lets the columnar scan
        replace the per-cell merge loop without changing any answer."""
        keys, arrays = inputs
        cut = keys.size // 2
        parts = [
            (keys[:cut], {n: v[:cut] for n, v in arrays.items()}),
            (keys[cut:], {n: v[cut:] for n, v in arrays.items()}),
        ]
        frames = [SummaryFrame.from_groups(k, a) for k, a in parts if k.size]
        via_frames = SummaryFrame.merge_all(frames).materialize()
        via_vectors = {}
        for k, a in parts:
            for key, vec in grouped_summaries_scalar(k, a).items():
                existing = via_vectors.get(key)
                via_vectors[key] = vec if existing is None else existing.merge(vec)
        assert via_frames == via_vectors

    def test_merge_attribute_mismatch_raises(self):
        a = SummaryFrame.from_groups(np.array(["k"]), {"x": np.array([1.0])})
        b = SummaryFrame.from_groups(np.array(["k"]), {"y": np.array([1.0])})
        with pytest.raises(StatisticsError):
            a.merge(b)

    def test_merge_all_empty_raises(self):
        with pytest.raises(StatisticsError):
            SummaryFrame.merge_all([])

    def test_frame_repr_and_len(self):
        frame = SummaryFrame.from_groups(
            np.array(["a", "b", "a"]), {"x": np.array([1.0, 2.0, 3.0])}
        )
        assert len(frame) == 2
        assert frame.attributes == ["x"]
        assert "bins=2" in repr(frame)

"""Unit and property tests for mergeable summary statistics."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.data.statistics import AttributeSummary, SummaryVector, grouped_summaries
from repro.errors import StatisticsError

value_arrays = hnp.arrays(
    np.float64,
    st.integers(0, 60),
    elements=st.floats(-1e4, 1e4, allow_nan=False),
)
nonempty_arrays = hnp.arrays(
    np.float64,
    st.integers(1, 60),
    elements=st.floats(-1e4, 1e4, allow_nan=False),
)


class TestAttributeSummary:
    def test_empty_identity_values(self):
        e = AttributeSummary.empty()
        assert e.count == 0 and e.is_empty
        assert e.minimum == math.inf and e.maximum == -math.inf

    def test_from_values(self):
        s = AttributeSummary.from_values(np.array([1.0, 2.0, 3.0]))
        assert s.count == 3
        assert s.total == 6.0
        assert s.minimum == 1.0 and s.maximum == 3.0
        assert s.mean == 2.0
        assert s.variance == pytest.approx(2.0 / 3.0)

    def test_empty_statistics_raise(self):
        e = AttributeSummary.empty()
        with pytest.raises(StatisticsError):
            _ = e.mean
        with pytest.raises(StatisticsError):
            _ = e.variance

    def test_variance_clamped_nonnegative(self):
        # Catastrophic cancellation candidate: large offset, tiny spread.
        values = np.full(100, 1e8) + np.linspace(0, 1e-4, 100)
        s = AttributeSummary.from_values(values)
        assert s.variance >= 0.0

    @given(value_arrays, value_arrays)
    def test_merge_matches_concatenation(self, a, b):
        merged = AttributeSummary.from_values(a).merge(AttributeSummary.from_values(b))
        direct = AttributeSummary.from_values(np.concatenate([a, b]))
        assert merged.approx_equal(direct, rel=1e-9)

    @given(value_arrays, value_arrays, value_arrays)
    @settings(max_examples=50)
    def test_merge_associative(self, a, b, c):
        sa, sb, sc = (AttributeSummary.from_values(x) for x in (a, b, c))
        left = sa.merge(sb).merge(sc)
        right = sa.merge(sb.merge(sc))
        assert left.approx_equal(right)

    @given(value_arrays, value_arrays)
    def test_merge_commutative(self, a, b):
        sa, sb = AttributeSummary.from_values(a), AttributeSummary.from_values(b)
        assert sa.merge(sb).approx_equal(sb.merge(sa))

    @given(value_arrays)
    def test_merge_identity(self, a):
        s = AttributeSummary.from_values(a)
        assert s.merge(AttributeSummary.empty()) == s
        assert AttributeSummary.empty().merge(s) == s

    @given(nonempty_arrays)
    def test_derived_stats_match_numpy(self, a):
        s = AttributeSummary.from_values(a)
        assert s.mean == pytest.approx(a.mean(), rel=1e-9, abs=1e-9)
        # The sum-of-squares variance loses ~|x|^2 * eps to cancellation,
        # so the tolerance must scale with the value magnitude.
        var_tol = max(1e-12, float(np.abs(a).max()) ** 2 * 1e-12)
        assert s.variance == pytest.approx(a.var(), rel=1e-6, abs=var_tol)
        assert s.minimum == a.min() and s.maximum == a.max()


class TestSummaryVector:
    def test_requires_attributes(self):
        with pytest.raises(StatisticsError):
            SummaryVector({})

    def test_rejects_inconsistent_counts(self):
        with pytest.raises(StatisticsError):
            SummaryVector(
                {
                    "a": AttributeSummary.from_values(np.array([1.0])),
                    "b": AttributeSummary.from_values(np.array([1.0, 2.0])),
                }
            )

    def test_getitem_unknown(self):
        vec = SummaryVector.empty(["temperature"])
        with pytest.raises(StatisticsError):
            _ = vec["pressure"]
        assert "temperature" in vec
        assert "pressure" not in vec

    def test_merge_attribute_mismatch(self):
        a = SummaryVector.empty(["x"])
        b = SummaryVector.empty(["y"])
        with pytest.raises(StatisticsError):
            a.merge(b)

    def test_merge_all_empty_list(self):
        with pytest.raises(StatisticsError):
            SummaryVector.merge_all([])

    @given(nonempty_arrays, nonempty_arrays)
    def test_merge_matches_concat(self, a, b):
        va = SummaryVector.from_arrays({"t": a, "h": a * 2})
        vb = SummaryVector.from_arrays({"t": b, "h": b * 2})
        merged = va.merge(vb)
        direct = SummaryVector.from_arrays(
            {"t": np.concatenate([a, b]), "h": np.concatenate([a, b]) * 2}
        )
        assert merged.approx_equal(direct)

    def test_to_json_dict(self):
        vec = SummaryVector.from_arrays({"t": np.array([1.0, 3.0])})
        d = vec.to_json_dict()
        assert d["t"]["count"] == 2
        assert d["t"]["mean"] == 2.0
        empty = SummaryVector.empty(["t"]).to_json_dict()
        assert empty["t"] == {"count": 0}


class TestGroupedSummaries:
    def test_empty_input(self):
        assert grouped_summaries(np.array([]), {"t": np.array([])}) == {}

    def test_length_mismatch(self):
        with pytest.raises(StatisticsError):
            grouped_summaries(np.array(["a", "b"]), {"t": np.array([1.0])})

    def test_simple_groups(self):
        keys = np.array(["a", "b", "a", "b", "a"])
        vals = np.array([1.0, 10.0, 2.0, 20.0, 3.0])
        out = grouped_summaries(keys, {"t": vals})
        assert set(out) == {"a", "b"}
        assert out["a"]["t"].count == 3
        assert out["a"]["t"].total == 6.0
        assert out["b"]["t"].minimum == 10.0 and out["b"]["t"].maximum == 20.0

    @given(
        st.lists(
            st.tuples(st.sampled_from("abcd"), st.floats(-100, 100)),
            min_size=1,
            max_size=80,
        )
    )
    def test_matches_per_group_computation(self, records):
        keys = np.array([r[0] for r in records])
        vals = np.array([r[1] for r in records])
        out = grouped_summaries(keys, {"v": vals})
        for key in set(r[0] for r in records):
            expected = AttributeSummary.from_values(vals[keys == key])
            assert out[key]["v"].approx_equal(expected)

    def test_multiple_attributes_share_counts(self):
        keys = np.array(["x", "x", "y"])
        out = grouped_summaries(
            keys, {"a": np.array([1.0, 2.0, 3.0]), "b": np.array([4.0, 5.0, 6.0])}
        )
        assert out["x"].count == 2
        assert out["x"]["b"].total == 9.0

"""Tests for observation batches."""

import numpy as np
import pytest

from repro.data.generator import small_test_dataset
from repro.data.observation import ObservationBatch
from repro.errors import StatisticsError
from repro.geo.bbox import BoundingBox
from repro.geo.geohash import encode
from repro.geo.temporal import TemporalResolution, TimeKey, TimeRange


@pytest.fixture(scope="module")
def batch():
    return small_test_dataset(num_records=2_000)


class TestConstruction:
    def test_shape_mismatch(self):
        with pytest.raises(StatisticsError):
            ObservationBatch(np.zeros(3), np.zeros(2), np.zeros(3))

    def test_attribute_shape_mismatch(self):
        with pytest.raises(StatisticsError):
            ObservationBatch(
                np.zeros(3), np.zeros(3), np.zeros(3), {"t": np.zeros(2)}
            )

    def test_immutability(self, batch):
        with pytest.raises(ValueError):
            batch.lats[0] = 0.0

    def test_empty(self):
        e = ObservationBatch.empty()
        assert len(e) == 0
        assert e.nbytes == 0

    def test_nbytes_positive(self, batch):
        assert batch.nbytes == batch.lats.nbytes * (3 + len(batch.attributes))


class TestFiltering:
    def test_filter_bbox(self, batch):
        box = BoundingBox(30, 45, -110, -90)
        sub = batch.filter_bbox(box)
        assert 0 < len(sub) < len(batch)
        assert (sub.lats >= 30).all() and (sub.lats < 45).all()
        assert (sub.lons >= -110).all() and (sub.lons < -90).all()

    def test_filter_bbox_preserves_attribute_alignment(self, batch):
        box = BoundingBox(30, 45, -110, -90)
        mask = (
            (batch.lats >= 30)
            & (batch.lats < 45)
            & (batch.lons >= -110)
            & (batch.lons < -90)
        )
        sub = batch.filter_bbox(box)
        np.testing.assert_array_equal(
            sub.attributes["temperature"], batch.attributes["temperature"][mask]
        )

    def test_filter_time(self, batch):
        day = TimeKey.of(2013, 2, 2).epoch_range()
        sub = batch.filter_time(day)
        assert len(sub) > 0
        assert all(day.contains(e) for e in sub.epochs)

    def test_filters_compose(self, batch):
        box = BoundingBox(30, 45, -110, -90)
        day = TimeKey.of(2013, 2, 2).epoch_range()
        a = batch.filter_bbox(box).filter_time(day)
        b = batch.filter_time(day).filter_bbox(box)
        assert len(a) == len(b)
        np.testing.assert_array_equal(np.sort(a.epochs), np.sort(b.epochs))


class TestConcat:
    def test_concat_roundtrip(self, batch):
        half = len(batch) // 2
        idx = np.arange(len(batch))
        a, b = batch.select(idx[:half]), batch.select(idx[half:])
        combined = a.concat(b)
        assert len(combined) == len(batch)
        np.testing.assert_array_equal(combined.lats, batch.lats)

    def test_concat_attribute_mismatch(self):
        a = ObservationBatch(np.zeros(1), np.zeros(1), np.zeros(1), {"x": np.zeros(1)})
        b = ObservationBatch(np.zeros(1), np.zeros(1), np.zeros(1), {"y": np.zeros(1)})
        with pytest.raises(StatisticsError):
            a.concat(b)

    def test_concat_all_empty_list(self):
        assert len(ObservationBatch.concat_all([])) == 0


class TestBinKeys:
    def test_bin_keys_format(self, batch):
        keys = batch.bin_keys(4, TemporalResolution.DAY)
        assert keys.shape == (len(batch),)
        gh_part, time_part = str(keys[0]).split("@")
        assert len(gh_part) == 4
        assert len(time_part) == len("2013-02-01")

    def test_bin_keys_match_scalar(self, batch):
        keys = batch.bin_keys(3, TemporalResolution.MONTH)
        for i in [0, 17, 101]:
            expected_gh = encode(batch.lats[i], batch.lons[i], 3)
            expected_tk = str(
                TimeKey.from_epoch(batch.epochs[i], TemporalResolution.MONTH)
            )
            assert str(keys[i]) == f"{expected_gh}@{expected_tk}"

    def test_bin_keys_empty(self):
        assert ObservationBatch.empty().bin_keys(4, TemporalResolution.DAY).size == 0

"""Tests for the synthetic NAM generator."""

import numpy as np
import pytest

from repro.data.generator import (
    NAM_DOMAIN,
    DatasetSpec,
    SyntheticNAMGenerator,
    small_test_dataset,
)
from repro.data.observation import OBSERVATION_ATTRIBUTES
from repro.errors import WorkloadError


class TestSpecValidation:
    def test_bad_num_records(self):
        with pytest.raises(WorkloadError):
            DatasetSpec(num_records=0)

    def test_bad_num_days(self):
        with pytest.raises(WorkloadError):
            DatasetSpec(num_days=0)

    def test_bad_obs_per_day(self):
        with pytest.raises(WorkloadError):
            DatasetSpec(observations_per_day=25)

    def test_time_bounds(self):
        spec = DatasetSpec(start_day=(2013, 2, 1), num_days=28)
        assert spec.time_end - spec.time_start == 28 * 86_400.0


class TestGeneration:
    def test_reproducible(self):
        spec = DatasetSpec(num_records=500, seed=99)
        a = SyntheticNAMGenerator(spec).generate()
        b = SyntheticNAMGenerator(spec).generate()
        np.testing.assert_array_equal(a.lats, b.lats)
        np.testing.assert_array_equal(a.attributes["temperature"], b.attributes["temperature"])

    def test_different_seeds_differ(self):
        a = SyntheticNAMGenerator(DatasetSpec(num_records=500, seed=1)).generate()
        b = SyntheticNAMGenerator(DatasetSpec(num_records=500, seed=2)).generate()
        assert not np.array_equal(a.lats, b.lats)

    def test_records_inside_domain(self):
        batch = small_test_dataset(num_records=1_000)
        assert (batch.lats >= NAM_DOMAIN.south).all()
        assert (batch.lats < NAM_DOMAIN.north).all()
        assert (batch.lons >= NAM_DOMAIN.west).all()
        assert (batch.lons < NAM_DOMAIN.east).all()

    def test_records_inside_time_range(self):
        spec = DatasetSpec(num_records=1_000, start_day=(2013, 2, 1), num_days=28)
        batch = SyntheticNAMGenerator(spec).generate()
        assert (batch.epochs >= spec.time_start).all()
        assert (batch.epochs < spec.time_end).all()

    def test_all_attributes_present(self):
        batch = small_test_dataset(num_records=100)
        assert set(batch.attributes) == set(OBSERVATION_ATTRIBUTES)

    def test_physical_shape(self):
        batch = small_test_dataset(num_records=20_000)
        temp = batch.attributes["temperature"]
        hum = batch.attributes["humidity"]
        # Southern points warmer than northern on average.
        south = temp[batch.lats < 25]
        north = temp[batch.lats > 50]
        assert south.mean() > north.mean() + 10
        # Humidity anti-correlated with temperature.
        assert np.corrcoef(temp, hum)[0, 1] < -0.3
        # Snow only when freezing.
        snowy = batch.attributes["snow_depth"] > 0
        assert (temp[snowy] < 0).all()
        # Humidity bounded.
        assert (hum >= 0).all() and (hum <= 100).all()

    def test_generate_chunks_cover_total(self):
        spec = DatasetSpec(num_records=1_050, seed=5)
        chunks = SyntheticNAMGenerator(spec).generate_chunks(200)
        assert sum(len(c) for c in chunks) == 1_050
        assert len(chunks) == 6
        assert len(chunks[-1]) == 50

    def test_generate_chunks_bad_size(self):
        with pytest.raises(WorkloadError):
            SyntheticNAMGenerator(DatasetSpec(num_records=10)).generate_chunks(0)

"""Tests for elastic rebalance, open-loop arrivals, and PGM rendering."""

import numpy as np
import pytest

from repro.baselines.basic import BasicSystem
from repro.config import ClusterConfig, StashConfig
from repro.data.generator import small_test_dataset
from repro.dht.partitioner import ConsistentHashPartitioner, PrefixPartitioner
from repro.errors import QueryError, StorageError
from repro.geo.bbox import BoundingBox
from repro.geo.resolution import Resolution
from repro.geo.temporal import TemporalResolution, TimeKey
from repro.query.model import AggregationQuery
from repro.storage.backend import StorageCatalog

NODES = [f"node-{i}" for i in range(8)]


@pytest.fixture(scope="module")
def dataset():
    return small_test_dataset(num_records=5_000)


def make_query():
    return AggregationQuery(
        bbox=BoundingBox(30, 45, -115, -95),
        time_range=TimeKey.of(2013, 2, 2).epoch_range(),
        resolution=Resolution(3, TemporalResolution.DAY),
    )


class TestRebalance:
    def test_consistent_hash_moves_few_blocks(self, dataset):
        partitioner = ConsistentHashPartitioner(NODES, 2, virtual_nodes=128)
        catalog = StorageCatalog(partitioner, block_precision=3)
        catalog.ingest(dataset)
        shrunk = partitioner.without_node(NODES[3])
        moved, total = catalog.rebalance(shrunk)
        # Only the departed node's blocks move (plus ring jitter).
        assert 0 < moved < total * 0.35

    def test_modulo_rebalance_moves_most(self, dataset):
        catalog = StorageCatalog(PrefixPartitioner(NODES, 2), block_precision=3)
        catalog.ingest(dataset)
        moved, total = catalog.rebalance(PrefixPartitioner(NODES[:-1], 2))
        # Modulo placement reshuffles nearly everything.
        assert moved > total * 0.5

    def test_rebalance_preserves_data(self, dataset):
        partitioner = ConsistentHashPartitioner(NODES, 2, virtual_nodes=64)
        catalog = StorageCatalog(partitioner, block_precision=3)
        catalog.ingest(dataset)
        before = catalog.total_records
        catalog.rebalance(partitioner.without_node(NODES[0]))
        assert catalog.total_records == before
        # Every block is findable on its (new) node.
        for node in catalog.partitioner.node_ids:
            for block_id in catalog.blocks_on(node):
                assert catalog.node_of(block_id) == node
                assert catalog.partitioner.node_for(block_id.geohash) == node

    def test_rebalance_rejects_precision_change(self, dataset):
        catalog = StorageCatalog(PrefixPartitioner(NODES, 2), block_precision=3)
        catalog.ingest(dataset)
        with pytest.raises(StorageError):
            catalog.rebalance(PrefixPartitioner(NODES, 3))


class TestOpenLoopArrivals:
    def test_all_queries_answered(self, dataset):
        system = BasicSystem(dataset, StashConfig(cluster=ClusterConfig(num_nodes=4)))
        queries = [make_query().panned(0.1 * i, 0) for i in range(10)]
        results = system.run_open_loop(queries, rate=200.0, seed=1)
        assert len(results) == 10
        assert all(r.latency > 0 for r in results)

    def test_arrivals_spread_over_time(self, dataset):
        system = BasicSystem(dataset, StashConfig(cluster=ClusterConfig(num_nodes=4)))
        queries = [make_query().panned(0.1 * i, 0) for i in range(20)]
        system.run_open_loop(queries, rate=50.0, seed=2)
        completions = system.timeline.completions
        # Mean inter-arrival 20ms: the stream spans a real interval,
        # unlike run_concurrent where everything lands at t~0.
        assert completions[-1] - completions[0] > 0.1

    def test_overload_builds_queueing_delay(self, dataset):
        config = StashConfig(cluster=ClusterConfig(num_nodes=4, workers_per_node=1))
        queries = [make_query().panned(0.05 * i, 0) for i in range(30)]
        relaxed = BasicSystem(dataset, config)
        relaxed.run_open_loop([q.panned(0, 0) for q in queries], rate=5.0, seed=3)
        slammed = BasicSystem(dataset, config)
        slammed.run_open_loop([q.panned(0, 0) for q in queries], rate=5_000.0, seed=3)
        assert slammed.latencies.mean() > relaxed.latencies.mean() * 2

    def test_bad_rate(self, dataset):
        system = BasicSystem(dataset, StashConfig(cluster=ClusterConfig(num_nodes=4)))
        with pytest.raises(QueryError):
            system.run_open_loop([make_query()], rate=0.0)

    def test_reproducible(self, dataset):
        def run():
            system = BasicSystem(
                dataset, StashConfig(cluster=ClusterConfig(num_nodes=4))
            )
            queries = [make_query().panned(0.1 * i, 0) for i in range(8)]
            return [
                r.latency for r in system.run_open_loop(queries, rate=100.0, seed=7)
            ]

        assert run() == run()


class TestPgmRendering:
    def _result(self, dataset):
        from repro.core.cluster import StashCluster

        cluster = StashCluster(
            dataset, StashConfig(cluster=ClusterConfig(num_nodes=4))
        )
        return cluster.run_query(make_query())

    def test_pgm_header_and_size(self, dataset, tmp_path):
        from repro.client.render import heatmap_grid, render_pgm

        result = self._result(dataset)
        path = tmp_path / "map.pgm"
        render_pgm(result, "temperature", path, pixel_size=4)
        data = path.read_bytes()
        assert data.startswith(b"P5\n")
        header, rest = data.split(b"\n255\n", 1)
        dims = header.split(b"\n")[1].split()
        width, height = int(dims[0]), int(dims[1])
        grid = heatmap_grid(result, "temperature")
        assert (height, width) == (grid.shape[0] * 4, grid.shape[1] * 4)
        assert len(rest) == width * height

    def test_pgm_distinguishes_data_from_void(self, dataset, tmp_path):
        from repro.client.render import render_pgm

        result = self._result(dataset)
        path = tmp_path / "map.pgm"
        render_pgm(result, "temperature", path, pixel_size=1)
        body = path.read_bytes().split(b"\n255\n", 1)[1]
        values = set(body)
        assert 0 in values  # empty cells are black
        assert any(v >= 32 for v in values)  # data cells are visible

    def test_pgm_bad_pixel_size(self, dataset, tmp_path):
        from repro.client.render import render_pgm

        result = self._result(dataset)
        with pytest.raises(QueryError):
            render_pgm(result, "temperature", tmp_path / "x.pgm", pixel_size=0)

    def test_grid_warmer_south(self, dataset):
        from repro.client.render import heatmap_grid

        result = self._result(dataset)
        grid = heatmap_grid(result, "temperature")
        third = max(1, grid.shape[0] // 3)
        top = np.nanmean(grid[:third])
        bottom = np.nanmean(grid[-third:])
        assert bottom > top  # north is on top; south is warmer
"""The asyncio transport: engine timers, socket RPC, failure mapping.

No pytest-asyncio in the container: every test drives its own loop with
``asyncio.run``.  Ports are always OS-assigned (bind 0), so tests can
run in parallel.
"""

import asyncio
import time

import pytest

from repro.errors import StorageError
from repro.faults.membership import RPC_FAILED
from repro.transport.asyncio_net import AsyncioEngine, AsyncioTransport

SCALE = 0.02  # 50x compression: 1 simulated second = 20 ms wall


async def _make_peers(*names, time_scale=SCALE):
    """Bound transports with full address maps and self-named endpoints."""
    transports = {}
    addresses = {}
    for name in names:
        transport = AsyncioTransport(name, time_scale=time_scale)
        host, port = await transport.start()
        transports[name] = transport
        addresses[name] = (host, port)
    for transport in transports.values():
        transport.network.set_peers(addresses)
        transport.network.register(transport.network.peer_id)
    return transports


async def _close_all(transports):
    for transport in transports.values():
        await transport.aclose()


def _echo_service(transport):
    """Generator process answering echo / slow / boom on its own endpoint."""
    inbox = transport.network.inbox(transport.network.peer_id)
    network = transport.network

    def service():
        while True:
            message = yield inbox.get()
            if message.kind == "echo":
                network.respond(message, {"echo": message.payload}, size=8)
            elif message.kind == "slow":
                yield transport.engine.timeout(0.5)  # simulated seconds
                network.respond(message, "slow-done", size=8)
            elif message.kind == "boom":
                network.respond_error(message, StorageError("service failed"))
            # "hang": never respond — the caller only sees link death.

    transport.engine.process(service())


class TestEngine:
    def test_timeout_fires_in_scaled_wall_time(self):
        async def main():
            engine = AsyncioEngine(time_scale=0.01)
            started = time.monotonic()
            await engine.as_future(engine.timeout(1.0, value="done"))
            wall = time.monotonic() - started
            engine.close()
            return wall

        wall = asyncio.run(main())
        # 1 simulated second at scale 0.01 = 10 ms wall (plus loop slop).
        assert 0.005 < wall < 0.5

    def test_now_advances_in_simulated_seconds(self):
        async def main():
            engine = AsyncioEngine(time_scale=0.01)
            before = engine.now
            await engine.as_future(engine.timeout(2.0))
            after = engine.now
            engine.close()
            return after - before

        elapsed = asyncio.run(main())
        assert elapsed == pytest.approx(2.0, rel=0.5)

    def test_process_generator_runs(self):
        async def main():
            engine = AsyncioEngine(time_scale=0.001)
            log = []

            def worker():
                log.append("start")
                value = yield engine.timeout(0.5, value=41)
                log.append(value + 1)
                return "finished"

            result = await engine.as_future(engine.process(worker()))
            engine.close()
            return log, result

        log, result = asyncio.run(main())
        assert log == ["start", 42]
        assert result == "finished"

    def test_any_of_and_all_of(self):
        async def main():
            engine = AsyncioEngine(time_scale=0.001)
            index, value = await engine.as_future(
                engine.any_of([engine.timeout(5.0, "slow"), engine.timeout(0.1, "fast")])
            )
            values = await engine.as_future(
                engine.all_of([engine.timeout(0.2, "a"), engine.timeout(0.1, "b")])
            )
            engine.close()
            return index, value, values

        index, value, values = asyncio.run(main())
        assert (index, value) == (1, "fast")
        assert values == ["a", "b"]

    def test_close_cancels_pending_timers(self):
        async def main():
            engine = AsyncioEngine(time_scale=0.001)
            fired = []
            event = engine.timeout(5.0)
            event.add_callback(lambda _ev: fired.append(True))
            engine.close()
            await asyncio.sleep(0.05)
            return fired

        assert asyncio.run(main()) == []

    def test_rejects_nonpositive_time_scale(self):
        from repro.errors import NetworkError

        async def main():
            with pytest.raises(NetworkError):
                AsyncioEngine(time_scale=0.0)

        asyncio.run(main())


class TestSocketRpc:
    def test_round_trip(self):
        async def main():
            peers = await _make_peers("peer-a", "peer-b")
            _echo_service(peers["peer-b"])
            client = peers["peer-a"]
            reply = client.network.request(
                "peer-a", "peer-b", "echo", {"x": (1, 2.5)}, size=16
            )
            value = await asyncio.wait_for(
                client.engine.as_future(reply), timeout=10
            )
            await _close_all(peers)
            return value

        assert asyncio.run(main()) == {"echo": {"x": (1, 2.5)}}

    def test_many_concurrent_rpcs_keep_order(self):
        async def main():
            peers = await _make_peers("peer-a", "peer-b")
            _echo_service(peers["peer-b"])
            client = peers["peer-a"]
            replies = [
                client.network.request("peer-a", "peer-b", "echo", {"i": i}, size=8)
                for i in range(40)
            ]
            values = await asyncio.gather(
                *(
                    asyncio.wait_for(client.engine.as_future(r), timeout=10)
                    for r in replies
                )
            )
            await _close_all(peers)
            return [v["echo"]["i"] for v in values]

        assert asyncio.run(main()) == list(range(40))

    def test_local_endpoint_short_circuits(self):
        async def main():
            peers = await _make_peers("peer-a")
            transport = peers["peer-a"]
            _echo_service(transport)
            reply = transport.network.request(
                "peer-a", "peer-a", "echo", "loopback", size=8
            )
            value = await asyncio.wait_for(
                transport.engine.as_future(reply), timeout=10
            )
            await _close_all(peers)
            return value

        assert asyncio.run(main()) == {"echo": "loopback"}

    def test_remote_error_reaches_caller_as_exception(self):
        async def main():
            peers = await _make_peers("peer-a", "peer-b")
            _echo_service(peers["peer-b"])
            client = peers["peer-a"]
            reply = client.network.request("peer-a", "peer-b", "boom", None, size=8)
            try:
                with pytest.raises(StorageError, match="service failed"):
                    await asyncio.wait_for(
                        client.engine.as_future(reply), timeout=10
                    )
            finally:
                await _close_all(peers)

        asyncio.run(main())

    def test_engine_timeout_races_slow_rpc(self):
        async def main():
            peers = await _make_peers("peer-a", "peer-b")
            _echo_service(peers["peer-b"])
            client = peers["peer-a"]
            slow = client.network.request("peer-a", "peer-b", "slow", None, size=8)
            race = client.engine.any_of([slow, client.engine.timeout(0.1)])
            index, _ = await asyncio.wait_for(
                client.engine.as_future(race), timeout=10
            )
            # The late real reply must still resolve the original event.
            value = await asyncio.wait_for(
                client.engine.as_future(slow), timeout=10
            )
            await _close_all(peers)
            return index, value

        index, value = asyncio.run(main())
        assert index == 1  # 0.1 simulated s beats the 0.5 s service delay
        assert value == "slow-done"

    def test_connection_drop_resolves_rpc_failed(self):
        async def main():
            peers = await _make_peers("peer-a", "peer-b")
            _echo_service(peers["peer-b"])
            client = peers["peer-a"]
            pending = client.network.request(
                "peer-a", "peer-b", "hang", None, size=8
            )
            await asyncio.sleep(0.02)  # let the request reach the peer
            await peers["peer-b"].aclose()  # die mid-request
            value = await asyncio.wait_for(
                client.engine.as_future(pending), timeout=10
            )
            await client.aclose()
            return value

        assert asyncio.run(main()) is RPC_FAILED

    def test_unroutable_peer_resolves_rpc_failed(self):
        async def main():
            peers = await _make_peers("peer-a")
            client = peers["peer-a"]
            reply = client.network.request(
                "peer-a", "peer-nowhere", "echo", None, size=8
            )
            value = await asyncio.wait_for(
                client.engine.as_future(reply), timeout=10
            )
            dropped = client.network.messages_dropped
            await _close_all(peers)
            return value, dropped

        value, dropped = asyncio.run(main())
        assert value is RPC_FAILED
        assert dropped == 1

    def test_forwarded_reply_obligation_relays(self):
        """B forwards A's request to C; C's answer must reach A (the
        coordinator evaluate -> evaluate_guest reroute shape)."""

        async def main():
            peers = await _make_peers("peer-a", "peer-b", "peer-c")
            b, c = peers["peer-b"], peers["peer-c"]
            _echo_service(c)

            def forwarder():
                inbox = b.network.inbox("peer-b")
                while True:
                    message = yield inbox.get()
                    b.network.send(
                        "peer-b",
                        "peer-c",
                        "echo",
                        message.payload,
                        size=8,
                        reply_to=message.reply_to,
                    )

            b.engine.process(forwarder())
            client = peers["peer-a"]
            reply = client.network.request(
                "peer-a", "peer-b", "job", {"v": 9}, size=8
            )
            value = await asyncio.wait_for(
                client.engine.as_future(reply), timeout=10
            )
            await _close_all(peers)
            return value

        assert asyncio.run(main()) == {"echo": {"v": 9}}

    def test_gossip_endpoint_routes_to_owning_peer(self):
        async def main():
            peers = await _make_peers("peer-a", "peer-b")
            b = peers["peer-b"]
            received = []
            gossip_inbox = b.network.register("gossip:peer-b")

            def gossip_agent():
                while True:
                    message = yield gossip_inbox.get()
                    received.append(message.payload)

            b.engine.process(gossip_agent())
            peers["peer-a"].network.send(
                "gossip:peer-a", "gossip:peer-b", "gossip", {"view": 1}, size=8
            )
            for _ in range(100):
                if received:
                    break
                await asyncio.sleep(0.01)
            await _close_all(peers)
            return received

        assert asyncio.run(main()) == [{"view": 1}]

"""Length-prefixed framing: incremental parsing over arbitrary chunking."""

import struct

import pytest

from repro.transport.framing import (
    MAX_FRAME_BYTES,
    FrameDecoder,
    FramingError,
    encode_frame,
)


def test_single_frame_roundtrip():
    decoder = FrameDecoder()
    frames = decoder.feed(encode_frame({"t": "msg", "x": (1, 2)}))
    assert frames == [{"t": "msg", "x": (1, 2)}]
    assert decoder.pending_bytes == 0


def test_multiple_frames_one_chunk():
    data = encode_frame(1) + encode_frame("two") + encode_frame([3.0])
    assert FrameDecoder().feed(data) == [1, "two", [3.0]]


def test_partial_reads_byte_by_byte():
    payloads = [{"i": i, "blob": "x" * 50} for i in range(3)]
    data = b"".join(encode_frame(p) for p in payloads)
    decoder = FrameDecoder()
    out = []
    for i in range(len(data)):
        out.extend(decoder.feed(data[i : i + 1]))
    assert out == payloads
    assert decoder.pending_bytes == 0


def test_partial_header_then_rest():
    data = encode_frame({"k": "v"})
    decoder = FrameDecoder()
    assert decoder.feed(data[:2]) == []  # half a header
    assert decoder.pending_bytes == 2
    assert decoder.feed(data[2:]) == [{"k": "v"}]


def test_frame_split_mid_body():
    data = encode_frame(list(range(100)))
    decoder = FrameDecoder()
    assert decoder.feed(data[:10]) == []
    assert decoder.feed(data[10:-1]) == []
    assert decoder.feed(data[-1:]) == [list(range(100))]


def test_trailing_bytes_buffered_across_frames():
    a, b = encode_frame("a"), encode_frame("b")
    decoder = FrameDecoder()
    # First frame plus half the second in one chunk.
    out = decoder.feed(a + b[: len(b) // 2])
    assert out == ["a"]
    assert decoder.pending_bytes > 0
    assert decoder.feed(b[len(b) // 2 :]) == ["b"]


def test_oversized_header_rejected():
    bad = struct.pack(">I", MAX_FRAME_BYTES + 1) + b"x"
    with pytest.raises(FramingError, match="corrupt"):
        FrameDecoder().feed(bad)


def test_oversized_body_rejected_on_encode(monkeypatch):
    import repro.transport.framing as framing

    monkeypatch.setattr(framing, "MAX_FRAME_BYTES", 8)
    with pytest.raises(FramingError, match="exceeds"):
        framing.encode_frame("a much longer payload than eight bytes")

"""Wire codec: every payload type must round-trip faithfully."""

import math

import numpy as np
import pytest

from repro.core.keys import CellKey
from repro.data.block import BlockId
from repro.data.statistics import AttributeSummary, SummaryVector
from repro.errors import NetworkError, StorageError
from repro.faults.membership import RPC_FAILED, RPC_SHED
from repro.geo.bbox import BoundingBox
from repro.geo.polygon import Polygon
from repro.geo.resolution import Resolution
from repro.geo.temporal import TemporalResolution, TimeKey, TimeRange
from repro.obs.recorder import QueryContext
from repro.query.model import AggregationQuery
from repro.transport.codec import (
    CodecError,
    RemoteRpcError,
    codec_name,
    decode,
    encode,
)


def roundtrip(value):
    return decode(encode(value))


class TestScalars:
    def test_primitives(self):
        for value in (None, True, False, 0, -7, 3.25, "text", [1, 2], ["a"]):
            assert roundtrip(value) == value

    def test_float_bit_exact(self):
        for value in (0.1, 1e300, -1e-300, math.pi, float("inf"), float("-inf")):
            result = roundtrip(value)
            assert result == value
            assert isinstance(result, float)

    def test_numpy_scalars_lowered(self):
        assert roundtrip(np.int64(12)) == 12
        assert roundtrip(np.float64(2.5)) == 2.5

    def test_bytes(self):
        assert roundtrip(b"\x00\xffhello") == b"\x00\xffhello"

    def test_tuple_survives(self):
        value = (1, (2.5, "x"), None)
        result = roundtrip(value)
        assert result == value
        assert isinstance(result, tuple)
        assert isinstance(result[1], tuple)

    def test_sets(self):
        assert roundtrip({1, 2, 3}) == {1, 2, 3}
        result = roundtrip(frozenset(("a", "b")))
        assert result == frozenset(("a", "b"))
        assert isinstance(result, frozenset)

    def test_unencodable_raises(self):
        with pytest.raises(CodecError):
            encode(object())


class TestDicts:
    def test_order_preserved(self):
        value = {"z": 1, "a": 2, "m": 3}
        assert list(roundtrip(value)) == ["z", "a", "m"]

    def test_cellkey_keys(self):
        key = CellKey.parse("9q8@2013-02-01")
        value = {key: 7}
        result = roundtrip(value)
        assert result == value
        assert isinstance(next(iter(result)), CellKey)

    def test_nested(self):
        value = {"outer": {"inner": [1, (2, 3)]}}
        assert roundtrip(value) == value


class TestDomainTypes:
    def test_geometry(self):
        box = BoundingBox(30.0, 40.0, -110.0, -100.0)
        poly = Polygon.of((30.0, -110.0), (40.0, -110.0), (30.0, -100.0))
        assert roundtrip(box) == box
        assert roundtrip(poly) == poly

    def test_temporal(self):
        key = TimeKey.of(2013, 2, 3)
        assert roundtrip(key) == key
        rng = TimeRange(100.0, 200.5)
        assert roundtrip(rng) == rng
        assert roundtrip(TemporalResolution.DAY) is TemporalResolution.DAY
        res = Resolution(4, TemporalResolution.HOUR)
        assert roundtrip(res) == res

    def test_block_and_cell_ids(self):
        block = BlockId(geohash="9q8", day="2013-02-01")
        assert roundtrip(block) == block
        key = CellKey.parse("9q@2013-02")
        assert roundtrip(key) == key

    def test_summary_vector_bit_exact(self):
        vec = SummaryVector._trusted(
            {
                "temperature": AttributeSummary(3, 10.5, 40.25, -1.5, 9.0),
                "humidity": AttributeSummary.empty(),
            }
        )
        result = roundtrip(vec)
        assert result == vec  # SummaryVector.__eq__ is exact float equality
        assert list(result._summaries) == ["temperature", "humidity"]

    def test_aggregation_query_preserves_id(self):
        query = AggregationQuery(
            bbox=BoundingBox(30.0, 40.0, -110.0, -100.0),
            time_range=TimeKey.of(2013, 2, 2).epoch_range(),
            resolution=Resolution(3, TemporalResolution.DAY),
            attributes=("temperature",),
        )
        result = roundtrip(query)
        assert result.query_id == query.query_id
        assert result.bbox == query.bbox
        assert result.resolution == query.resolution
        assert result.attributes == query.attributes
        assert result.footprint() == query.footprint()

    def test_polygon_query(self):
        poly = Polygon.of((30.0, -110.0), (40.0, -110.0), (30.0, -100.0))
        query = AggregationQuery.for_polygon(
            poly,
            TimeKey.of(2013, 2, 2).epoch_range(),
            Resolution(3, TemporalResolution.DAY),
        )
        result = roundtrip(query)
        assert result.polygon == poly
        assert result.footprint() == query.footprint()

    def test_query_context(self):
        ctx = QueryContext(query_id=9, attempt=1, leg="node-2", redirect_depth=1)
        assert roundtrip(ctx) == ctx


class TestRpcSemantics:
    def test_sentinel_identity(self):
        assert roundtrip(RPC_FAILED) is RPC_FAILED
        assert roundtrip(RPC_SHED) is RPC_SHED

    def test_known_exception_class(self):
        result = roundtrip(StorageError("no such block"))
        assert isinstance(result, StorageError)
        assert "no such block" in str(result)

    def test_unknown_exception_class(self):
        result = roundtrip(ValueError("boom"))
        assert isinstance(result, RemoteRpcError)
        assert "ValueError" in str(result)
        assert "boom" in str(result)

    def test_nested_rpc_payload(self):
        # The exact shape a node reply travels in.
        key = CellKey.parse("9q8@2013-02-01")
        payload = {
            "cells": {key: SummaryVector._trusted({"t": AttributeSummary.empty()})},
            "provenance": {"cache": 1, "disk": 2},
            "completeness": 1.0,
        }
        assert roundtrip(payload) == payload


def test_codec_name_reports_backend():
    assert codec_name() in ("msgpack", "json")


def test_network_error_roundtrip():
    result = roundtrip(NetworkError("link down"))
    assert isinstance(result, NetworkError)

"""Closed-loop overload flood through the HTTP facade.

The batching backend races whole batches inside the simulator while
admission control sheds and the circuit breaker fires.  The contract
under stress is narrow but absolute: the flood terminates, every
request gets an answer with honest completeness, and the flight
recorder accounts for every evaluated query exactly once.
"""

import threading

import pytest

from repro.config import (
    ClusterConfig,
    FaultConfig,
    ObservabilityConfig,
    OverloadConfig,
    StashConfig,
)
from repro.core.cluster import StashCluster
from repro.data.generator import small_test_dataset
from repro.serve.http import BatchingSimBackend, StashHttpServer
from repro.workload.scale import ScaleWorkloadSpec, SessionTable
from repro.workload.trace import query_to_dict

from tests.serve._http import http_get, http_post

NUM_USERS = 16
SESSION_LENGTH = 6


@pytest.fixture(scope="module")
def flood():
    """Run the flood once; every test inspects the same aftermath."""
    config = StashConfig(
        cluster=ClusterConfig(num_nodes=4),
        faults=FaultConfig(enabled=True, rpc_timeout=0.5, max_retries=1),
        overload=OverloadConfig(
            enabled=True,
            queue_limit=1,
            breaker_sheds=2,
            breaker_window=2.0,
            breaker_cooldown=1.0,
        ),
        observability=ObservabilityConfig(flight_recorder=True),
    )
    system = StashCluster(small_test_dataset(num_records=6_000), config)
    backend = BatchingSimBackend(system, max_batch=32)
    table = SessionTable.synthesize(
        ScaleWorkloadSpec(
            num_users=NUM_USERS, session_length=SESSION_LENGTH, seed=21
        )
    )

    responses: list[tuple[int, dict, dict]] = []
    lock = threading.Lock()

    def one_user(user: int) -> None:
        for step in range(SESSION_LENGTH):
            body = query_to_dict(table.query(user, step))
            reply = http_post(server.url, "/aggregate", body, timeout=300.0)
            with lock:
                responses.append(reply)

    with StashHttpServer(backend, config) as server:
        threads = [
            threading.Thread(target=one_user, args=(user,))
            for user in range(NUM_USERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            # The satellite's termination clause: a hung flood fails
            # here instead of wedging the suite.
            thread.join(timeout=300.0)
        alive = [thread for thread in threads if thread.is_alive()]
        assert not alive, f"{len(alive)} client threads never finished"
        stats = http_get(server.url, "/stats")[1]
    backend.close()
    return system, responses, stats


class TestFloodTerminates:
    def test_every_request_answered(self, flood):
        _, responses, _ = flood
        assert len(responses) == NUM_USERS * SESSION_LENGTH
        assert all(status == 200 for status, _, _ in responses)

    def test_answers_stay_honest_under_pressure(self, flood):
        _, responses, _ = flood
        for _, body, _ in responses:
            assert 0.0 <= body["completeness"] <= 1.0
            assert body["degraded"] is (body["completeness"] < 1.0)

    def test_every_evaluation_reached_the_simulator(self, flood):
        system, _, stats = flood
        # Duplicate viewports (users sharing a hotspot) are absorbed by
        # the facade cache; everything else went through the batching
        # driver into the simulator.
        assert system.recorder.queries == stats["cache"]["misses"]
        assert system.recorder.queries > 0


class TestExactlyOnceAccounting:
    def test_recorder_outcome_sum_matches_queries(self, flood):
        system, _, _ = flood
        report = system.recorder.report()
        assert sum(report["outcomes"].values()) == report["queries"]

    def test_recorder_matches_cache_misses(self, flood):
        """Every facade cache miss became exactly one recorded query —
        no double-counted retries, no dropped attempts."""
        system, _, stats = flood
        assert system.recorder.queries == stats["cache"]["misses"]
        assert (
            stats["cache"]["hits"]
            + stats["cache"]["misses"]
            == NUM_USERS * SESSION_LENGTH
        )

    def test_stats_endpoint_reflects_the_recorder(self, flood):
        _, _, stats = flood
        recorded = stats["recorder"]
        assert recorded["queries"] == stats["cache"]["misses"]
        assert sum(recorded["outcomes"].values()) == recorded["queries"]

    def test_no_phantom_shed_outcomes(self, flood):
        """Whether or not admission control actually shed anything under
        this machine's thread timing (tests/faults/test_overload.py pins
        shedding deterministically), the accounting never invents or
        drops an outcome: every recorded query is exactly one of
        ok/degraded/failed."""
        system, _, _ = flood
        report = system.recorder.report()
        assert all(count >= 0 for count in report["outcomes"].values())
        assert (
            report["outcomes"]["ok"]
            + report["outcomes"]["degraded"]
            + report["outcomes"]["failed"]
            == report["queries"]
        )

"""Tiny urllib client shared by the HTTP facade test suites."""

import json
import urllib.error
import urllib.request


def http_get(url: str, path: str, timeout: float = 60.0):
    """GET; returns (status, parsed_body, headers)."""
    try:
        with urllib.request.urlopen(url + path, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


def http_post(url: str, path: str, body, timeout: float = 60.0, raw: bytes | None = None):
    """POST JSON (or ``raw`` bytes); returns (status, parsed_body, headers)."""
    data = raw if raw is not None else json.dumps(body).encode()
    request = urllib.request.Request(
        url + path, data=data, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read()), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


def http_post_bytes(url: str, path: str, body, timeout: float = 60.0):
    """POST JSON; returns (status, raw_body_bytes, headers)."""
    request = urllib.request.Request(
        url + path,
        data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, resp.read(), dict(resp.headers)
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read(), dict(exc.headers)

"""Contract tests for the HTTP query facade (repro/serve/http.py).

Field-by-field response schemas, pagination round trips with no
duplicate or skipped cells, and structured 4xx error codes for every
malformed-request class — the satellite checklist of ISSUE 9, pinned
as executable contract.
"""

import json

import pytest

from repro.bench.harness import BenchScale, bench_config, bench_dataset, make_system
from repro.query.model import PROVENANCE_KEYS
from repro.serve.http import (
    SimBackend,
    StashHttpServer,
    decode_token,
    encode_token,
)

from tests.serve._http import http_get, http_post

#: A viewport with a few hundred result cells — enough pages to matter.
QUERY = {
    "bbox": [25.0, 50.0, -130.0, -70.0],
    "time": [1359763200, 1359849600],
    "spatial": 3,
    "temporal": "day",
}

SUMMARY_FIELDS = {"count", "min", "max", "mean", "std"}


@pytest.fixture(scope="module")
def server():
    scale = BenchScale.unit()
    backend = SimBackend(
        make_system("stash", bench_dataset(scale), bench_config(scale))
    )
    with StashHttpServer(backend) as running:
        yield running
    backend.close()


@pytest.fixture(scope="module")
def url(server):
    return server.url


# ---------------------------------------------------------------------------
# response schemas, field by field


class TestAggregateSchema:
    def test_exact_field_set(self, url):
        status, body, headers = http_post(url, "/aggregate", QUERY)
        assert status == 200
        assert set(body) == {
            "type", "query", "cell_count", "summary",
            "completeness", "degraded", "provenance",
        }
        assert headers["Content-Type"] == "application/json"

    def test_field_values(self, url):
        _, body, _ = http_post(url, "/aggregate", QUERY)
        assert body["type"] == "aggregation"
        assert body["query"]["bbox"] == QUERY["bbox"]
        assert body["query"]["time"] == QUERY["time"]
        assert body["query"]["spatial"] == QUERY["spatial"]
        assert body["query"]["temporal"] == "day"
        assert body["query"]["attributes"] is None
        assert isinstance(body["cell_count"], int) and body["cell_count"] > 0
        assert body["completeness"] == 1.0
        assert body["degraded"] is False
        assert set(body["provenance"]) == set(PROVENANCE_KEYS)
        for stats in body["summary"].values():
            assert set(stats) == SUMMARY_FIELDS
            assert stats["count"] > 0
            assert stats["min"] <= stats["mean"] <= stats["max"]

    def test_attribute_projection(self, url):
        _, body, _ = http_post(
            url, "/aggregate", {**QUERY, "attributes": ["temperature"]}
        )
        assert list(body["summary"]) == ["temperature"]
        assert body["query"]["attributes"] == ["temperature"]


class TestSearchSchema:
    def test_exact_field_set(self, url):
        status, body, _ = http_post(url, "/search", {**QUERY, "limit": 10})
        assert status == 200
        assert set(body) == {
            "type", "query", "matched", "returned", "limit", "offset",
            "cells", "next_token", "completeness", "degraded",
        }
        assert body["type"] == "cells"

    def test_entry_shape_and_order(self, url):
        _, body, _ = http_post(url, "/search", {**QUERY, "limit": 25})
        assert body["returned"] == len(body["cells"]) == 25
        labels = [entry["cell"] for entry in body["cells"]]
        assert labels == sorted(labels)
        for entry in body["cells"]:
            assert set(entry) == {"cell", "geohash", "time_key", "summary"}
            assert entry["cell"] == f"{entry['geohash']}@{entry['time_key']}"
            assert len(entry["geohash"]) == QUERY["spatial"]
            for stats in entry["summary"].values():
                assert set(stats) == SUMMARY_FIELDS or set(stats) == {"count"}

    def test_default_limit_applied(self, url, server):
        _, body, _ = http_post(url, "/search", QUERY)
        assert body["limit"] == server.default_limit


class TestDrillSchema:
    def test_down_and_up(self, url):
        status, down, _ = http_post(url, "/drill", {"query": QUERY})
        assert status == 200
        assert down["type"] == "drill"
        assert down["direction"] == "down"
        assert down["resolution"] == QUERY["spatial"] + 1
        assert down["query"]["spatial"] == QUERY["spatial"] + 1
        _, up, _ = http_post(
            url, "/drill", {"query": QUERY, "direction": "up"}
        )
        assert up["resolution"] == QUERY["spatial"] - 1

    def test_drill_changes_cell_population(self, url):
        _, base, _ = http_post(url, "/aggregate", QUERY)
        _, down, _ = http_post(url, "/drill", {"query": QUERY})
        assert down["cell_count"] > base["cell_count"]


class TestIntrospection:
    def test_service_description(self, url):
        status, body, _ = http_get(url, "/")
        assert status == 200
        assert body["service"] == "stash-http"
        assert body["backend"] == "sim"
        assert set(body["endpoints"]) == {
            "GET /", "GET /healthz", "GET /stats",
            "POST /aggregate", "POST /search", "POST /drill",
        }
        assert "temperature" in body["attributes"]

    def test_healthz(self, url):
        assert http_get(url, "/healthz")[1] == {"ok": True, "backend": "sim"}

    def test_stats_counts_requests_and_cache(self, url):
        before = http_get(url, "/stats")[1]
        http_post(url, "/aggregate", QUERY)
        after = http_get(url, "/stats")[1]
        assert after["requests"]["/aggregate"] > before["requests"].get("/aggregate", 0)
        assert set(after["cache"]) == {
            "entries", "hits", "misses", "degraded_skipped",
        }
        assert after["recorder"] is not None  # sim backend exposes the recorder
        outcomes = after["recorder"]["outcomes"]
        assert sum(outcomes.values()) == after["recorder"]["queries"]


# ---------------------------------------------------------------------------
# pagination


class TestPagination:
    def test_token_walk_covers_everything_exactly_once(self, url):
        seen: list[str] = []
        body = {**QUERY, "limit": 7}
        pages = 0
        while True:
            status, page, _ = http_post(url, "/search", body)
            assert status == 200
            seen.extend(entry["cell"] for entry in page["cells"])
            pages += 1
            if page["next_token"] is None:
                break
            body = {**QUERY, "limit": 7, "next_token": page["next_token"]}
        assert pages == -(-page["matched"] // 7)
        assert len(seen) == page["matched"]
        assert len(set(seen)) == len(seen), "duplicate cells across pages"
        assert seen == sorted(seen)

    def test_offset_equals_token_walk(self, url):
        _, first, _ = http_post(url, "/search", {**QUERY, "limit": 9})
        _, by_token, _ = http_post(
            url, "/search", {**QUERY, "limit": 9, "next_token": first["next_token"]}
        )
        _, by_offset, _ = http_post(
            url, "/search", {**QUERY, "limit": 9, "offset": 9}
        )
        assert by_token["cells"] == by_offset["cells"]
        assert by_token["offset"] == by_offset["offset"] == 9

    def test_final_page_is_partial_with_null_token(self, url):
        _, probe, _ = http_post(url, "/search", {**QUERY, "limit": 10})
        matched = probe["matched"]
        last_offset = (matched // 7) * 7
        if last_offset == matched:
            last_offset -= 7
        _, page, _ = http_post(
            url, "/search", {**QUERY, "limit": 7, "offset": last_offset}
        )
        assert page["returned"] == matched - last_offset
        assert page["next_token"] is None

    def test_offset_past_end_returns_empty_page(self, url):
        _, page, _ = http_post(
            url, "/search", {**QUERY, "limit": 7, "offset": 10**6}
        )
        assert page["cells"] == []
        assert page["returned"] == 0
        assert page["next_token"] is None

    def test_token_round_trips(self):
        token = encode_token("abcdef0123456789", 42)
        assert decode_token(token, "abcdef0123456789") == 42


# ---------------------------------------------------------------------------
# structured errors


BAD_REQUESTS = [
    ("/aggregate", {}, "invalid_bbox"),
    ("/aggregate", {**QUERY, "bbox": [25, 50, -130]}, "invalid_bbox"),
    ("/aggregate", {**QUERY, "bbox": ["a", "b", "c", "d"]}, "invalid_bbox"),
    ("/aggregate", {**QUERY, "bbox": [50, 25, -130, -70]}, "invalid_bbox"),
    ("/aggregate", {**QUERY, "bbox": [25, 95, -130, -70]}, "invalid_bbox"),
    ("/aggregate", {**QUERY, "bbox": [25, 50, -70, -130]}, "invalid_bbox"),
    ("/aggregate", {**QUERY, "bbox": [25, 50, -181, -70]}, "invalid_bbox"),
    ("/aggregate", {"bbox": QUERY["bbox"], "spatial": 3}, "invalid_time"),
    ("/aggregate", {**QUERY, "time": [1359763200]}, "invalid_time"),
    ("/aggregate", {**QUERY, "time": ["now", "later"]}, "invalid_time"),
    ("/aggregate", {**QUERY, "time": [5, 5]}, "invalid_time"),
    ("/aggregate", {**QUERY, "time": [9, 5]}, "invalid_time"),
    ("/aggregate", {**QUERY, "spatial": 0}, "invalid_resolution"),
    ("/aggregate", {**QUERY, "spatial": 13}, "invalid_resolution"),
    ("/aggregate", {**QUERY, "spatial": "three"}, "invalid_resolution"),
    ("/aggregate", {**QUERY, "spatial": True}, "invalid_resolution"),
    ("/aggregate", {**QUERY, "temporal": "fortnight"}, "invalid_resolution"),
    ("/aggregate", {**QUERY, "attributes": ["bogus"]}, "unknown_attribute"),
    ("/aggregate", {**QUERY, "attributes": "temperature"}, "unknown_attribute"),
    ("/aggregate", {**QUERY, "attributes": [1, 2]}, "unknown_attribute"),
    ("/aggregate", {**QUERY, "kind": "teleport"}, "invalid_kind"),
    ("/search", {**QUERY, "limit": 0}, "invalid_limit"),
    ("/search", {**QUERY, "limit": -3}, "invalid_limit"),
    ("/search", {**QUERY, "limit": 10**6}, "invalid_limit"),
    ("/search", {**QUERY, "limit": True}, "invalid_limit"),
    ("/search", {**QUERY, "limit": "ten"}, "invalid_limit"),
    ("/search", {**QUERY, "offset": -1}, "invalid_limit"),
    ("/search", {**QUERY, "next_token": "!!!not-base64!!!"}, "invalid_token"),
    ("/search", {**QUERY, "next_token": 17}, "invalid_token"),
    ("/drill", {}, "invalid_json"),
    ("/drill", {"query": QUERY, "direction": "sideways"}, "invalid_direction"),
    ("/drill", {"query": {**QUERY, "spatial": 12}}, "invalid_resolution"),
    (
        "/drill",
        {"query": {**QUERY, "spatial": 1}, "direction": "up"},
        "invalid_resolution",
    ),
]


class TestStructuredErrors:
    @pytest.mark.parametrize(
        "path,body,code",
        BAD_REQUESTS,
        ids=[f"{p[1:]}-{c}-{i}" for i, (p, _, c) in enumerate(BAD_REQUESTS)],
    )
    def test_malformed_request_is_a_structured_400(self, url, path, body, code):
        status, reply, _ = http_post(url, path, body)
        assert status == 400
        assert set(reply) == {"code", "error"}
        assert reply["code"] == code
        assert isinstance(reply["error"], str) and reply["error"]

    def test_body_that_is_not_json(self, url):
        status, reply, _ = http_post(url, "/aggregate", None, raw=b"{nope")
        assert (status, reply["code"]) == (400, "invalid_json")

    def test_body_that_is_a_json_array(self, url):
        status, reply, _ = http_post(url, "/aggregate", [1, 2, 3])
        assert (status, reply["code"]) == (400, "invalid_json")

    def test_foreign_token_rejected(self, url):
        """A token minted for one query must not page another."""
        _, page, _ = http_post(url, "/search", {**QUERY, "limit": 5})
        other = {**QUERY, "spatial": 2, "next_token": page["next_token"]}
        status, reply, _ = http_post(url, "/search", other)
        assert (status, reply["code"]) == (400, "invalid_token")

    def test_crafted_negative_offset_token_rejected(self, url):
        import base64

        forged = base64.urlsafe_b64encode(
            json.dumps(["0" * 16, -4]).encode()
        ).decode().rstrip("=")
        status, reply, _ = http_post(
            url, "/search", {**QUERY, "next_token": forged}
        )
        assert (status, reply["code"]) == (400, "invalid_token")

    def test_unknown_path_is_404(self, url):
        status, reply, _ = http_get(url, "/collections")
        assert (status, reply["code"]) == (404, "not_found")

    def test_get_on_post_endpoint_is_405(self, url):
        status, reply, _ = http_get(url, "/aggregate")
        assert (status, reply["code"]) == (405, "method_not_allowed")

    def test_post_on_get_endpoint_is_405(self, url):
        status, reply, _ = http_post(url, "/healthz", {})
        assert (status, reply["code"]) == (405, "method_not_allowed")


# ---------------------------------------------------------------------------
# caching headers


class TestCacheHeaders:
    def test_repeat_hits_cache_with_identical_body(self, url):
        fresh = {**QUERY, "bbox": [26.0, 49.0, -129.0, -71.0]}
        status, first, h1 = http_post(url, "/aggregate", fresh)
        assert status == 200 and h1["X-Cache"] == "miss"
        _, again, h2 = http_post(url, "/aggregate", fresh)
        assert h2["X-Cache"] == "hit"
        assert again == first

    def test_search_pages_share_the_cached_answer(self, url):
        fresh = {**QUERY, "bbox": [27.0, 48.0, -128.0, -72.0], "limit": 5}
        _, _, h1 = http_post(url, "/search", fresh)
        assert h1["X-Cache"] == "miss"
        _, _, h2 = http_post(url, "/search", {**fresh, "offset": 5})
        assert h2["X-Cache"] == "hit"

    def test_latency_header_present(self, url):
        _, _, headers = http_post(url, "/aggregate", QUERY)
        assert float(headers["X-Latency-S"]) >= 0.0

"""Sim-vs-socket equivalence: the acceptance gate of the serve backend.

Same seed, same workload, serial replay with quiesce barriers, no
faults, no eviction pressure: every answer must be **byte-identical**
(exact float equality on each SummaryVector, identical key sets,
identical completeness) across the discrete-event and asyncio-socket
transports.  See docs/serving.md for why those preconditions matter.
"""

import asyncio
import threading

import pytest

from repro.config import ClusterConfig, FaultConfig, ServeConfig, StashConfig
from repro.core.cluster import StashCluster
from repro.data.generator import DatasetSpec, SyntheticNAMGenerator
from repro.dht.partitioner import PrefixPartitioner
from repro.faults.schedule import FaultEvent
from repro.geo.bbox import BoundingBox
from repro.geo.resolution import Resolution
from repro.geo.temporal import TemporalResolution, TimeKey
from repro.query.model import AggregationQuery
from repro.serve.driver import _quiesce, _rpc, coordinator_for
from repro.serve.http import (
    BackendAnswer,
    SimBackend,
    SocketBackend,
    StashHttpServer,
    aggregate_body,
    canonical_json,
    query_fingerprint,
)
from repro.serve.server import NodeSpec, build_node
from repro.system import CLIENT_ID
from repro.transport.asyncio_net import AsyncioTransport
from repro.workload.trace import query_to_dict

from tests.serve._http import http_get, http_post_bytes

SPEC = DatasetSpec(
    num_records=6_000, start_day=(2013, 2, 1), num_days=2, seed=11
)
CONFIG = StashConfig(
    cluster=ClusterConfig(num_nodes=2), serve=ServeConfig(time_scale=0.02)
)
NODE_IDS = ("node-0", "node-1")


def _workload() -> list[AggregationQuery]:
    """A small session exercising cache, pan, and roll-up paths."""
    box = BoundingBox(35.0, 42.0, -105.0, -95.0)
    day = TimeKey.of(2013, 2, 1).epoch_range()
    fine = Resolution(3, TemporalResolution.DAY)
    return [
        AggregationQuery(bbox=box, time_range=day, resolution=fine),
        # Identical repeat: must be served from cache on both backends.
        AggregationQuery(bbox=box, time_range=day, resolution=fine),
        # A pan: partial overlap with the cached footprint.
        AggregationQuery(
            bbox=box.translated(0.0, 3.0), time_range=day, resolution=fine
        ),
        # Coarser resolution over the same extent: the roll-up path.
        AggregationQuery(
            bbox=box,
            time_range=day,
            resolution=Resolution(2, TemporalResolution.DAY),
        ),
    ]


def _socket_answers(queries):
    """Replay on real sockets: every node in-process, each on its own
    transport, wired through 127.0.0.1 — the full wire path (framing,
    codec, controller) without multiprocessing overhead."""

    async def main():
        transports = {}
        addresses = {}
        for index, node_id in enumerate(NODE_IDS):
            transport = AsyncioTransport(
                node_id, time_scale=CONFIG.serve.time_scale
            )
            addresses[node_id] = await transport.start()
            node = build_node(
                NodeSpec(
                    node_index=index,
                    node_ids=NODE_IDS,
                    dataset=SPEC,
                    config=CONFIG,
                ),
                transport,
            )
            node.start()
            transports[node_id] = transport
        client = AsyncioTransport(CLIENT_ID, time_scale=CONFIG.serve.time_scale)
        addresses[CLIENT_ID] = await client.start()
        client.network.register(CLIENT_ID)
        client.network.set_peers(addresses)
        for transport in transports.values():
            transport.network.set_peers(addresses)
        partitioner = PrefixPartitioner(
            list(NODE_IDS), CONFIG.cluster.partition_precision
        )
        answers = []
        try:
            for query in queries:
                coordinator = coordinator_for(partitioner, query)
                reply = await _rpc(
                    client,
                    coordinator,
                    "evaluate",
                    {"query": query, "ctx": None},
                    size=512,
                    timeout=60,
                )
                await _quiesce(client, NODE_IDS, timeout=60)
                answers.append(reply)
        finally:
            await client.aclose()
            for transport in transports.values():
                await transport.aclose()
        return answers

    return asyncio.run(main())


def _sim_answers(queries):
    dataset = SyntheticNAMGenerator(SPEC).generate()
    cluster = StashCluster(dataset, CONFIG)
    results = []
    for query in queries:
        results.append(cluster.run_query(query))
        cluster.drain()
    return results


class TestByteIdentity:
    @pytest.fixture(scope="class")
    def answers(self):
        queries = _workload()
        return _socket_answers(queries), _sim_answers(queries)

    def test_nonempty_workload(self, answers):
        socket_answers, _ = answers
        assert any(len(a["cells"]) > 0 for a in socket_answers)

    def test_identical_key_sets(self, answers):
        socket_answers, sim_results = answers
        for socket_reply, sim_result in zip(socket_answers, sim_results):
            assert set(socket_reply["cells"]) == set(sim_result.cells)

    def test_byte_identical_summaries(self, answers):
        socket_answers, sim_results = answers
        for socket_reply, sim_result in zip(socket_answers, sim_results):
            for key, summary in sim_result.cells.items():
                # SummaryVector.__eq__ is exact float equality.
                assert socket_reply["cells"][key] == summary, key

    def test_identical_completeness(self, answers):
        socket_answers, sim_results = answers
        for socket_reply, sim_result in zip(socket_answers, sim_results):
            assert (
                float(socket_reply.get("completeness", 1.0))
                == sim_result.completeness
                == 1.0
            )

    def test_repeat_query_served_from_cache(self, answers):
        socket_answers, _ = answers
        first, repeat = socket_answers[0], socket_answers[1]
        assert repeat["cells"] == first["cells"]
        provenance = repeat.get("provenance", {})
        assert provenance.get("cells_from_cache", 0) > 0
        assert provenance.get("cells_from_disk", 0) == 0


class TestMultiprocessServe:
    """One small end-to-end pass through ``run_serve``: real processes,
    real sockets, sim twin cross-check — the ``repro serve`` path."""

    def test_run_serve_two_nodes_byte_identical(self):
        from repro.serve import run_serve

        queries = _workload()[:2]
        report = run_serve(queries, SPEC, CONFIG)
        assert report["nodes"] == 2
        assert report["queries"] == 2
        assert report["sim_checked"] is True
        assert report["divergences"] == []
        assert report["ok"] is True
        assert all(a["cells"] > 0 for a in report["answers"])


class TestQuiesceHandlers:
    """The ping/stats introspection RPCs, exercised on the sim backend."""

    def test_ping_and_idle_stats(self):
        dataset = SyntheticNAMGenerator(SPEC).generate()
        cluster = StashCluster(dataset, CONFIG)
        cluster.run_query(_workload()[0])
        cluster.drain()
        reply = cluster.sim.run(
            until=cluster.network.request(
                CLIENT_ID, "node-0", "ping", {}, size=16
            )
        )
        assert reply == {"node": "node-0", "ok": True}
        stats = cluster.sim.run(
            until=cluster.network.request(
                CLIENT_ID, "node-0", "stats", {}, size=16
            )
        )
        assert stats["node"] == "node-0"
        assert stats["pending"] == 0
        assert stats["service_queue"] == 0
        assert stats["inflight"] == 0  # excludes the stats request itself


# ---------------------------------------------------------------------------
# the HTTP facade: every answer byte-identical to the sim-twin oracle


def _twin_http_bodies(queries, config=CONFIG, spec=SPEC):
    """The oracle: serial sim replay, serialized exactly as the facade
    serializes — same body builders, same canonical JSON, same caching
    discipline (complete answers replayed from cache, degraded answers
    re-evaluated every time)."""
    dataset = SyntheticNAMGenerator(spec).generate()
    cluster = StashCluster(dataset, config)
    cached: dict[str, BackendAnswer] = {}
    bodies = []
    for query in queries:
        fingerprint = query_fingerprint(query)
        answer = cached.get(fingerprint)
        if answer is None:
            result = cluster.run_query(query)
            cluster.drain()
            answer = BackendAnswer(
                cells=result.cells,
                completeness=result.completeness,
                provenance=dict(result.provenance),
                latency_s=result.latency,
            )
            if answer.completeness >= 1.0:
                cached[fingerprint] = answer
        bodies.append(canonical_json(aggregate_body(query, answer)))
    return bodies


def _replay_over_http(server):
    """POST the workload through the facade; return (raw_bodies, dispositions)."""
    raw, dispositions = [], []
    for query in _workload():
        status, body, headers = http_post_bytes(
            server.url, "/aggregate", query_to_dict(query)
        )
        assert status == 200
        raw.append(body)
        dispositions.append(headers["X-Cache"])
    return raw, dispositions


class TestHttpByteIdentity:
    """ISSUE 9 acceptance: HTTP replay has zero divergences from the twin."""

    @pytest.fixture(scope="class")
    def replay(self):
        dataset = SyntheticNAMGenerator(SPEC).generate()
        backend = SimBackend(StashCluster(dataset, CONFIG))
        with StashHttpServer(backend, CONFIG) as server:
            raw, dispositions = _replay_over_http(server)
        backend.close()
        return raw, dispositions, _twin_http_bodies(_workload())

    def test_every_answer_byte_identical(self, replay):
        raw, _, twin = replay
        assert len(raw) == len(twin) == 4
        for index, (got, expected) in enumerate(zip(raw, twin)):
            assert got == expected, f"query {index} diverged"

    def test_repeat_served_from_facade_cache(self, replay):
        _, dispositions, _ = replay
        assert dispositions == ["miss", "hit", "miss", "miss"]


class _InProcessSocketCluster:
    """The `_socket_answers` wiring, kept alive on a background loop so a
    SocketBackend (which owns its own loop and client transport) can dial
    the nodes while HTTP requests flow."""

    def __init__(self):
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._loop.run_forever, daemon=True)
        self._thread.start()
        self.addresses = asyncio.run_coroutine_threadsafe(
            self._start(), self._loop
        ).result(timeout=120)

    async def _start(self):
        self.transports = {}
        addresses = {}
        for index, node_id in enumerate(NODE_IDS):
            transport = AsyncioTransport(
                node_id, time_scale=CONFIG.serve.time_scale
            )
            addresses[node_id] = await transport.start()
            node = build_node(
                NodeSpec(
                    node_index=index,
                    node_ids=NODE_IDS,
                    dataset=SPEC,
                    config=CONFIG,
                ),
                transport,
            )
            node.start()
            self.transports[node_id] = transport
        for transport in self.transports.values():
            transport.network.set_peers(addresses)
        return addresses

    def close(self):
        async def stop():
            for transport in self.transports.values():
                await transport.aclose()
            # Reap leftover per-link tasks so their coroutines are not
            # garbage-collected against a closed loop.
            tasks = [
                task
                for task in asyncio.all_tasks()
                if task is not asyncio.current_task()
            ]
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)

        asyncio.run_coroutine_threadsafe(stop(), self._loop).result(timeout=60)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._loop.close()


class TestHttpSocketByteIdentity:
    """The facade over real TCP nodes still matches the sim twin byte for
    byte — the full wire path behind the HTTP surface."""

    def test_socket_backend_replay_matches_twin(self):
        cluster = _InProcessSocketCluster()
        backend = None
        try:
            backend = SocketBackend(NODE_IDS, cluster.addresses, CONFIG)
            with StashHttpServer(backend, CONFIG) as server:
                assert http_get(server.url, "/healthz")[1]["backend"] == "socket"
                raw, dispositions = _replay_over_http(server)
        finally:
            if backend is not None:
                backend.close()
            cluster.close()
        twin = _twin_http_bodies(_workload())
        for index, (got, expected) in enumerate(zip(raw, twin)):
            assert got == expected, f"query {index} diverged"
        assert dispositions == ["miss", "hit", "miss", "miss"]


class TestDegradedThroughHttp:
    """Partial answers (completeness < 1) flow through the facade
    unmangled — byte-identical to a twin running the same fault schedule
    — and are never served from the response cache."""

    @pytest.fixture(scope="class")
    def faulted_config(self):
        probe = StashCluster(SyntheticNAMGenerator(SPEC).generate(), CONFIG)
        target = probe.coordinator_for(_workload()[0])
        return StashConfig(
            cluster=ClusterConfig(num_nodes=2),
            serve=ServeConfig(time_scale=0.02),
            faults=FaultConfig(
                enabled=True,
                schedule=(FaultEvent(kind="crash", at=0.0, node=target),),
                rpc_timeout=0.2,
                evaluate_timeout=1.0,
                max_retries=1,
                backoff_base=0.05,
            ),
        )

    def test_degraded_replay_byte_identical_and_uncached(self, faulted_config):
        # The same query twice: a complete answer would be a cache hit
        # on the repeat, a degraded one must be re-evaluated both times.
        queries = [_workload()[0], _workload()[0]]
        dataset = SyntheticNAMGenerator(SPEC).generate()
        backend = SimBackend(StashCluster(dataset, faulted_config))
        raw, dispositions, parsed = [], [], []
        with StashHttpServer(backend, faulted_config) as server:
            for query in queries:
                status, body, headers = http_post_bytes(
                    server.url, "/aggregate", query_to_dict(query)
                )
                assert status == 200
                raw.append(body)
                dispositions.append(headers["X-Cache"])
                parsed.append(body)
            stats = http_get(server.url, "/stats")[1]
        backend.close()

        import json

        first = json.loads(parsed[0])
        assert first["degraded"] is True
        assert 0.0 <= first["completeness"] < 1.0
        # Never cached: the repeat is a miss too, and the cache counted
        # the skips.
        assert dispositions == ["miss", "miss"]
        assert stats["cache"]["degraded_skipped"] >= 2
        assert stats["cache"]["entries"] == 0

        twin = _twin_http_bodies(queries, config=faulted_config)
        assert raw[0] == twin[0]
        assert raw[1] == twin[1]

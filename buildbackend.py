"""Minimal in-tree PEP 517 / PEP 660 build backend.

This environment is offline and its setuptools predates native
``bdist_wheel`` support, so ``pip install -e .`` cannot use the standard
backends.  A wheel is just a zip file with a dist-info directory; this
backend builds one directly with the standard library — no setuptools,
no wheel package, no network.

Supports ``pip install .`` (regular wheel containing ``src/repro``) and
``pip install -e .`` (editable wheel containing a ``.pth`` pointing at
``src/``).
"""

from __future__ import annotations

import base64
import hashlib
import os
import zipfile

NAME = "repro"
VERSION = "1.0.0"
DIST = f"{NAME}-{VERSION}"
TAG = "py3-none-any"

_METADATA = f"""Metadata-Version: 2.1
Name: {NAME}
Version: {VERSION}
Summary: STASH (CLUSTER 2019) reproduction: distributed in-memory cache for hierarchical spatiotemporal aggregation queries
Requires-Python: >=3.10
Requires-Dist: numpy>=1.24
Requires-Dist: scipy>=1.10
"""

_WHEEL = f"""Wheel-Version: 1.0
Generator: {NAME}-in-tree-backend
Root-Is-Purelib: true
Tag: {TAG}
"""


def _record_entry(archive_name: str, data: bytes) -> str:
    digest = base64.urlsafe_b64encode(hashlib.sha256(data).digest())
    return f"{archive_name},sha256={digest.rstrip(b'=').decode()},{len(data)}"


class _WheelWriter:
    def __init__(self, path: str):
        self._zip = zipfile.ZipFile(path, "w", zipfile.ZIP_DEFLATED)
        self._records: list[str] = []

    def add(self, archive_name: str, data: bytes) -> None:
        self._zip.writestr(archive_name, data)
        self._records.append(_record_entry(archive_name, data))

    def close(self) -> None:
        record_name = f"{DIST}.dist-info/RECORD"
        self._records.append(f"{record_name},,")
        self._zip.writestr(record_name, "\n".join(self._records) + "\n")
        self._zip.close()


def _write_dist_info(writer: _WheelWriter) -> None:
    writer.add(f"{DIST}.dist-info/METADATA", _METADATA.encode())
    writer.add(f"{DIST}.dist-info/WHEEL", _WHEEL.encode())
    writer.add(f"{DIST}.dist-info/top_level.txt", f"{NAME}\n".encode())


# -- PEP 517 hooks ----------------------------------------------------------

def get_requires_for_build_wheel(config_settings=None):
    return []


def get_requires_for_build_editable(config_settings=None):
    return []


def prepare_metadata_for_build_wheel(metadata_directory, config_settings=None):
    info_dir = os.path.join(metadata_directory, f"{DIST}.dist-info")
    os.makedirs(info_dir, exist_ok=True)
    with open(os.path.join(info_dir, "METADATA"), "w") as handle:
        handle.write(_METADATA)
    with open(os.path.join(info_dir, "WHEEL"), "w") as handle:
        handle.write(_WHEEL)
    return f"{DIST}.dist-info"


prepare_metadata_for_build_editable = prepare_metadata_for_build_wheel


def build_wheel(wheel_directory, config_settings=None, metadata_directory=None):
    wheel_name = f"{DIST}-{TAG}.whl"
    src_root = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
    writer = _WheelWriter(os.path.join(wheel_directory, wheel_name))
    for base, _dirs, files in sorted(os.walk(os.path.join(src_root, NAME))):
        for file_name in sorted(files):
            if file_name.endswith(".pyc"):
                continue
            full = os.path.join(base, file_name)
            rel = os.path.relpath(full, src_root)
            with open(full, "rb") as handle:
                writer.add(rel.replace(os.sep, "/"), handle.read())
    _write_dist_info(writer)
    writer.close()
    return wheel_name


def build_editable(wheel_directory, config_settings=None, metadata_directory=None):
    wheel_name = f"{DIST}-{TAG}.whl"
    src_root = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
    writer = _WheelWriter(os.path.join(wheel_directory, wheel_name))
    writer.add(f"_{NAME}_editable.pth", (src_root + "\n").encode())
    _write_dist_info(writer)
    writer.close()
    return wheel_name

"""Fig. 7a/7b — iterative dicing (descending and ascending).

Paper claims: descending dicing (country, then -20% area per step) is
where STASH shines — from the second query on, every cell is already in
memory.  Ascending dicing still improves on the basic system, "but not
to the extent of the descending version".
"""

from conftest import run_once

from repro.bench.experiments import fig7ab_iterative_dicing
from repro.bench.reporting import report


def test_fig7a_descending_dicing(benchmark, scale):
    result = run_once(benchmark, fig7ab_iterative_dicing, scale, False)
    report(result)
    basic = result.series["basic"]
    stash = result.series["stash"]

    # Step 1 is cold for both; from step 2 STASH is dramatically faster.
    assert stash["q1"] >= basic["q1"] * 0.8
    for step in ("q2", "q3", "q4", "q5"):
        assert stash[step] < basic[step] * 0.4, step
    # Steep drop from q1 to q2 (paper Fig. 7a / 8c shape).
    assert result.meta["stash_q2_over_q1"] < 0.4


def test_fig7b_ascending_dicing(benchmark, scale):
    result = run_once(benchmark, fig7ab_iterative_dicing, scale, True)
    report(result)
    basic = result.series["basic"]
    stash = result.series["stash"]

    # Improvement exists from q2 on, but is weaker than descending.
    later = ("q2", "q3", "q4", "q5")
    stash_avg = sum(stash[s] for s in later) / len(later)
    basic_avg = sum(basic[s] for s in later) / len(later)
    assert stash_avg < basic_avg
    # Partial reuse: not the near-total elimination of the descending case.
    assert stash_avg > basic_avg * 0.15

"""Fig. 8b/8c — iterative dicing: STASH vs ElasticSearch.

Paper claims: STASH "achieves a much steeper drop in latency from the
second query onwards by efficiently utilizing the common Cells stored
in-memory", in both ascending and descending variants.
"""

from conftest import run_once

from repro.bench.experiments import fig8bc_es_dicing
from repro.bench.reporting import report


def test_fig8b_ascending_dicing_vs_es(benchmark, scale):
    result = run_once(benchmark, fig8bc_es_dicing, scale, True)
    report(result)
    stash = result.series["stash"]
    elastic = result.series["elastic"]
    # STASH's relative step-to-step improvement beats ES's.
    assert result.meta["stash_q2_over_q1"] < result.meta["es_q2_over_q1"]
    later = ("q2", "q3", "q4", "q5")
    assert sum(stash[s] for s in later) < sum(elastic[s] for s in later)


def test_fig8c_descending_dicing_vs_es(benchmark, scale):
    result = run_once(benchmark, fig8bc_es_dicing, scale, False)
    report(result)
    stash = result.series["stash"]
    elastic = result.series["elastic"]
    # Much steeper drop from q2 onward for STASH.
    assert result.meta["stash_q2_over_q1"] < 0.3
    assert result.meta["es_q2_over_q1"] > 0.5
    for step in ("q2", "q3", "q4", "q5"):
        assert stash[step] < elastic[step] * 0.3, step

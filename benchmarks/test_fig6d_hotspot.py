"""Fig. 6d — hotspot autoscaling: dynamic clique replication vs none.

Paper claims: under a single-region county-level hotspot, STASH with
dynamic replication sustains more responses per second and finishes the
whole workload earlier (~40% throughput improvement; ~20 s earlier on
their 2-minute run).
"""

from conftest import run_once

from repro.bench.experiments import fig6d_hotspot
from repro.bench.reporting import report


def test_fig6d_hotspot(benchmark, scale):
    result = run_once(benchmark, fig6d_hotspot, scale)
    report(result)
    qps = result.series["throughput_qps"]
    duration = result.series["total_duration_s"]

    # Replication completed at least one handoff and rerouted traffic.
    assert result.meta["handoffs"] >= 1
    assert result.meta["rerouted"] > 0

    # Replication improves throughput by >= 25% (paper: ~40%).
    assert qps["replication"] >= qps["no_replication"] * 1.25

    # ... and finishes the workload earlier.
    assert duration["replication"] < duration["no_replication"]
    assert result.meta["finish_advantage_s"] > 0

"""Fig. 6b — throughput of STASH vs the basic system on pan clouds.

Paper claims: 5.7x / 4x / 3.7x throughput improvement for state /
county / city query groups on a locality-heavy panning workload.
"""

from conftest import run_once

from repro.bench.experiments import fig6b_throughput
from repro.bench.reporting import report


def test_fig6b_throughput(benchmark, scale):
    result = run_once(benchmark, fig6b_throughput, scale)
    report(result)
    basic = result.series["basic"]
    stash = result.series["stash"]

    # STASH improves throughput for every query-size group, materially.
    for size in ("state", "county", "city"):
        assert stash[size] > basic[size] * 1.5, size

"""Micro-benchmarks of the numerical hot kernels.

Not paper figures — these track the wall-clock performance of the
vectorized inner loops that make the simulation feasible at scale
(DESIGN.md section 8 / the HPC guides: vectorize the per-record work,
profile the rest).  Each benchmark also asserts the kernel's output so a
"fast but wrong" regression cannot slip through.
"""

import numpy as np
import pytest

from repro.data.generator import DatasetSpec, SyntheticNAMGenerator
from repro.data.statistics import grouped_summaries
from repro.geo.geohash import encode, encode_many
from repro.geo.temporal import TemporalResolution, bin_epochs
from repro.storage.backend import scan_blocks
from repro.data.block import partition_into_blocks


@pytest.fixture(scope="module")
def batch():
    spec = DatasetSpec(num_records=100_000, start_day=(2013, 2, 1), num_days=2)
    return SyntheticNAMGenerator(spec).generate()


def test_encode_many_100k(benchmark, batch):
    out = benchmark(encode_many, batch.lats, batch.lons, 6)
    assert out.shape == (len(batch),)
    # Spot-check against the scalar encoder.
    for i in (0, 1_000, 99_999):
        assert str(out[i]) == encode(batch.lats[i], batch.lons[i], 6)


def test_bin_epochs_100k(benchmark, batch):
    out = benchmark(bin_epochs, batch.epochs, TemporalResolution.HOUR)
    assert out.shape == (len(batch),)
    assert str(out[0]).count("-") == 3  # YYYY-MM-DD-hh


def test_grouped_summaries_100k(benchmark, batch):
    keys = batch.bin_keys(4, TemporalResolution.DAY)

    result = benchmark(grouped_summaries, keys, batch.attributes)
    total = sum(vec.count for vec in result.values())
    assert total == len(batch)


def test_partition_into_blocks_100k(benchmark, batch):
    blocks = benchmark(partition_into_blocks, batch, 3)
    assert sum(len(b) for b in blocks.values()) == len(batch)


def test_scan_kernel_one_query(benchmark, batch):
    from repro.geo.bbox import BoundingBox
    from repro.geo.resolution import Resolution
    from repro.geo.temporal import TimeKey
    from repro.query.model import AggregationQuery

    blocks = list(partition_into_blocks(batch, 3).values())
    query = AggregationQuery(
        bbox=BoundingBox(25, 50, -130, -70),
        time_range=TimeKey.of(2013, 2, 2).epoch_range(),
        resolution=Resolution(4, TemporalResolution.DAY),
    )
    relevant = [
        b for b in blocks
        if b.block_id.day == "2013-02-02"
    ]

    cells, stats = benchmark(scan_blocks, relevant, query)
    assert stats.records_scanned == sum(len(b) for b in relevant)
    assert cells

"""Micro-benchmarks of the numerical hot kernels.

Not paper figures — these track the wall-clock performance of the
vectorized inner loops that make the simulation feasible at scale
(DESIGN.md section 8 / the HPC guides: vectorize the per-record work,
profile the rest).  Each benchmark also asserts the kernel's output so a
"fast but wrong" regression cannot slip through.
"""

import numpy as np
import pytest

from repro.data.generator import DatasetSpec, SyntheticNAMGenerator
from repro.data.statistics import grouped_summaries
from repro.geo.geohash import encode, encode_many
from repro.geo.temporal import TemporalResolution, bin_epochs
from repro.storage.backend import scan_blocks
from repro.data.block import partition_into_blocks


@pytest.fixture(scope="module")
def batch():
    spec = DatasetSpec(num_records=100_000, start_day=(2013, 2, 1), num_days=2)
    return SyntheticNAMGenerator(spec).generate()


def test_encode_many_100k(benchmark, batch):
    out = benchmark(encode_many, batch.lats, batch.lons, 6)
    assert out.shape == (len(batch),)
    # Spot-check against the scalar encoder.
    for i in (0, 1_000, 99_999):
        assert str(out[i]) == encode(batch.lats[i], batch.lons[i], 6)


def test_bin_epochs_100k(benchmark, batch):
    out = benchmark(bin_epochs, batch.epochs, TemporalResolution.HOUR)
    assert out.shape == (len(batch),)
    assert str(out[0]).count("-") == 3  # YYYY-MM-DD-hh


def test_grouped_summaries_100k(benchmark, batch):
    keys = batch.bin_keys(4, TemporalResolution.DAY)

    result = benchmark(grouped_summaries, keys, batch.attributes)
    total = sum(vec.count for vec in result.values())
    assert total == len(batch)


def test_columnar_bin_summarize_100k(benchmark, batch):
    """The full columnar scan pipeline: integer binning + SummaryFrame.

    Times bin->summarize end to end (encoding included) — the honest
    form of the scan kernel; materialization is deliberately excluded
    because the pipeline defers it to the query/response boundary.
    """
    from repro.data.statistics import SummaryFrame

    frame = benchmark(
        lambda: SummaryFrame.from_groups(
            batch.bin_ids(4, TemporalResolution.DAY), batch.attributes
        )
    )
    assert int(frame.counts.sum()) == len(batch)
    # Fast-but-wrong guard: bitwise identical to the string-label path.
    from repro.data.statistics import grouped_summaries_scalar
    from repro.geo.binning import decode_bin_ids

    scalar = grouped_summaries_scalar(
        batch.bin_keys(4, TemporalResolution.DAY), batch.attributes
    )
    pairs = decode_bin_ids(frame.ids, 4, TemporalResolution.DAY)
    assert {
        f"{gh}@{key}": vec for (gh, key), vec in zip(pairs, frame.vectors())
    } == {str(k): v for k, v in scalar.items()}


def test_partition_into_blocks_100k(benchmark, batch):
    blocks = benchmark(partition_into_blocks, batch, 3)
    assert sum(len(b) for b in blocks.values()) == len(batch)


@pytest.fixture(scope="module")
def bench_graph():
    from repro.bench.kernels import build_bench_graph

    return build_bench_graph(20_000, seed=42)


def test_eviction_scoring_vectorized_20k(benchmark, bench_graph):
    from repro.core.eviction import rank_victims, rank_victims_scalar

    graph, tracker, _keys, now = bench_graph
    excess = len(graph) // 5

    victims = benchmark(rank_victims, graph, tracker.decay_rate, now, excess)
    assert len(victims) == excess
    # Fast-but-wrong guard: must match the scalar reference exactly.
    assert victims == rank_victims_scalar(graph, tracker, now, excess)


def test_eviction_scoring_scalar_20k(benchmark, bench_graph):
    from repro.core.eviction import rank_victims_scalar

    graph, tracker, _keys, now = bench_graph
    excess = len(graph) // 5

    victims = benchmark(rank_victims_scalar, graph, tracker, now, excess)
    assert len(victims) == excess


def test_touch_batch_512_of_20k(benchmark, bench_graph):
    graph, tracker, keys, now = bench_graph
    footprint = keys[:512]

    touched = benchmark(
        graph.touch_batch,
        footprint,
        tracker.config.f_inc,
        now,
        tracker.decay_rate,
        True,
    )
    assert touched == len(footprint)


def test_plan_query_512_of_20k(benchmark, bench_graph):
    from repro.core.planner import plan_query

    graph, _tracker, keys, _now = bench_graph
    footprint = keys[:512]

    plan = benchmark(plan_query, graph, footprint, ["temperature"])
    assert len(plan.found) == len(footprint)


def test_scan_kernel_one_query(benchmark, batch):
    from repro.geo.bbox import BoundingBox
    from repro.geo.resolution import Resolution
    from repro.geo.temporal import TimeKey
    from repro.query.model import AggregationQuery

    blocks = list(partition_into_blocks(batch, 3).values())
    query = AggregationQuery(
        bbox=BoundingBox(25, 50, -130, -70),
        time_range=TimeKey.of(2013, 2, 2).epoch_range(),
        resolution=Resolution(4, TemporalResolution.DAY),
    )
    relevant = [
        b for b in blocks
        if b.block_id.day == "2013-02-02"
    ]

    cells, stats = benchmark(scan_blocks, relevant, query)
    assert stats.records_scanned == sum(len(b) for b in relevant)
    assert cells

"""Ablation benches: what each STASH mechanism individually buys.

Not figures from the paper — these isolate the design choices DESIGN.md
calls out (roll-up reuse, freshness dispersion, reroute probability,
and the future-work client prefetch).
"""

from conftest import run_once

from repro.bench.ablations import (
    ablation_cache_capacity,
    ablation_client_graph,
    ablation_cluster_scaling,
    ablation_dispersion,
    ablation_prefetch,
    ablation_reroute_probability,
    ablation_rollup,
)
from repro.bench.reporting import report


def test_ablation_rollup(benchmark, scale):
    result = run_once(benchmark, ablation_rollup, scale)
    report(result)
    latency = result.series["latency_s"]
    disk = result.series["disk_blocks"]
    # Roll-up answers the coarse query entirely from cached finer cells.
    assert disk["rollup_on"] == 0
    assert disk["rollup_off"] > 0
    assert latency["rollup_on"] < latency["rollup_off"] * 0.5
    assert result.series["rollup_cells"]["rollup_on"] > 0


def test_ablation_dispersion(benchmark, scale):
    result = run_once(benchmark, ablation_dispersion, scale)
    report(result)
    latency = result.series["pan_latency_s"]
    cached = result.series["cells_from_cache"]
    # Dispersion keeps the hot region's halo resident through churn.
    assert cached["dispersion_0.35"] > cached["dispersion_0"]
    assert latency["dispersion_0.35"] < latency["dispersion_0"]


def test_ablation_reroute_probability(benchmark, scale):
    result = run_once(benchmark, ablation_reroute_probability, scale)
    report(result)
    qps = result.series["throughput_qps"]
    # Any rerouting beats none under a hotspot.
    assert qps["p=0.5"] > qps["p=0.0"]
    assert qps["p=0.25"] > qps["p=0.0"]


def test_ablation_cache_capacity(benchmark, scale):
    result = run_once(benchmark, ablation_cache_capacity, scale)
    report(result)
    hit = result.series["hit_rate"]
    latency = result.series["mean_latency_s"]
    labels = list(hit)
    # Hit rate grows (weakly) and latency falls (weakly) with capacity.
    for smaller, bigger in zip(labels, labels[1:]):
        assert hit[bigger] >= hit[smaller] - 1e-9
        assert latency[bigger] <= latency[smaller] + 1e-9
    # The extremes differ substantially.
    assert hit[labels[-1]] > hit[labels[0]] * 2
    assert latency[labels[-1]] < latency[labels[0]] * 0.5


def test_ablation_cluster_scaling(benchmark, scale):
    result = run_once(benchmark, ablation_cluster_scaling, scale)
    report(result)
    stash = result.series["stash"]
    basic = result.series["basic"]
    # STASH wins at every cluster size, and more nodes never hurt much:
    # the largest cluster beats the smallest for both systems.
    for size in stash:
        assert stash[size] > basic[size], size
    assert stash["32 nodes"] > stash["4 nodes"]
    assert basic["32 nodes"] > basic["4 nodes"]


def test_ablation_client_graph(benchmark, scale):
    result = run_once(benchmark, ablation_client_graph, scale)
    report(result)
    queries = result.series["server_queries"]
    latency = result.series["total_latency_s"]
    # The client graph answers revisits locally: fewer backend queries
    # and lower total latency (paper future-work IX-A claim).
    assert queries["client_graph_on"] < queries["client_graph_off"]
    assert latency["client_graph_on"] < latency["client_graph_off"]
    assert result.series["client_hits"]["client_graph_on"] > 0


def test_ablation_prefetch(benchmark, scale):
    result = run_once(benchmark, ablation_prefetch, scale)
    report(result)
    latency = result.series["avg_pan_latency_s"]
    # Momentum prefetch makes straight-line pans near-instant.
    assert latency["prefetch_on"] < latency["prefetch_off"] * 0.5

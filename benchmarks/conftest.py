"""Shared fixtures for the figure-regeneration benchmark suite.

Run with::

    pytest benchmarks/ --benchmark-only

Each benchmark regenerates one paper figure's data (printed with ``-s``
and always written to ``benchmarks/results/``) and asserts the paper's
*shape* claims.  Set ``REPRO_BENCH_SCALE=unit`` for a fast smoke run.
"""

import os

import pytest

from repro.bench.harness import BenchScale, bench_dataset


def _scale() -> BenchScale:
    name = os.environ.get("REPRO_BENCH_SCALE", "default")
    if name == "unit":
        return BenchScale.unit()
    if name == "default":
        return BenchScale.default()
    raise ValueError(f"unknown REPRO_BENCH_SCALE={name!r}")


@pytest.fixture(scope="session")
def scale() -> BenchScale:
    value = _scale()
    # Materialize the shared dataset once up front so the first benchmark
    # doesn't pay generation time.
    bench_dataset(value)
    return value


def run_once(benchmark, fn, *args):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, rounds=1, iterations=1)

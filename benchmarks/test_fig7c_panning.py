"""Fig. 7c — panning a state-level query by 10/20/25% in 8 directions.

Paper claims: the basic system stays uniformly slow; STASH is
considerably faster, with 60-73% latency reduction at the 25% pan and
better reuse (lower latency) for smaller pans.
"""

from conftest import run_once

from repro.bench.experiments import fig7c_panning
from repro.bench.reporting import report


def test_fig7c_panning(benchmark, scale):
    result = run_once(benchmark, fig7c_panning, scale)
    report(result)
    basic = result.series["basic"]
    stash = result.series["stash"]

    for label in ("pan10%", "pan20%", "pan25%"):
        # Substantial reduction at every pan size (paper: 60-73% at 25%).
        assert stash[label] < basic[label] * 0.6, label

    # Smaller pans overlap more, so STASH latency grows with pan size.
    assert stash["pan10%"] <= stash["pan20%"] <= stash["pan25%"]

    # Headline claim: >= 50% latency reduction at the 25% pan.
    assert result.meta["reduction_pan25%"] >= 0.5

"""Fig. 6c — STASH maintenance (cold-start population) cost by size.

Paper claims: the cold-start population time "goes down considerably
with query size since lesser Cells are to be inserted", and population
happens on a separate thread (it does not inflate the client latency —
checked in the integration tests).
"""

from conftest import run_once

from repro.bench.experiments import fig6c_maintenance
from repro.bench.reporting import report


def test_fig6c_maintenance(benchmark, scale):
    result = run_once(benchmark, fig6c_maintenance, scale)
    report(result)
    cells = result.series["cells_populated"]
    busy = result.series["population_busy_s"]

    order = ["country", "state", "county", "city"]
    for bigger, smaller in zip(order, order[1:]):
        assert cells[bigger] > cells[smaller]
        assert busy[bigger] > busy[smaller]

    # Every footprint cell of every query got populated exactly once.
    assert cells["country"] >= 100 * cells["city"] or cells["city"] <= 32

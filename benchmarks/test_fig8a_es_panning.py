"""Fig. 8a — panning: STASH vs ElasticSearch.

Paper claims: relative to the first request, STASH's per-step latency
reduction ranges between ~70% and 49.7%, while ElasticSearch's stays
between ~2% and 0.6% — ES's request cache cannot reuse overlapping
(non-identical) queries.
"""

from conftest import run_once

from repro.bench.experiments import fig8a_es_panning
from repro.bench.reporting import report


def test_fig8a_es_panning(benchmark, scale):
    result = run_once(benchmark, fig8a_es_panning, scale)
    report(result)

    # STASH: large average reduction vs its first request (paper 49-70%).
    assert result.meta["stash_reduction_vs_q1"] >= 0.40

    # ES: marginal reduction only (paper 0.6-2%; allow up to 10%).
    assert result.meta["es_reduction_vs_q1"] < 0.10

    # From the second query on, STASH's latency is significantly lower
    # than ES's ("better management of in-memory data").
    stash = result.series["stash"]
    elastic = result.series["elastic"]
    later = [label for label in stash if label != "q1"]
    stash_avg = sum(stash[l] for l in later) / len(later)
    es_avg = sum(elastic[l] for l in later) / len(later)
    assert stash_avg < es_avg * 0.7

"""Fig. 7d/7e — drill-down and roll-up with 50/75/100% preloaded cells.

Paper claims: the more relevant cells in memory, the lower the latency;
"in all scenarios with partial information, we see at least 40%
improvement in latency over a system without STASH".
"""

from conftest import run_once

from repro.bench.experiments import fig7de_zoom
from repro.bench.reporting import report


def _series_avg(series):
    return sum(series.values()) / len(series)


def _check_zoom(result):
    basic = _series_avg(result.series["basic"])
    stash50 = _series_avg(result.series["stash50%"])
    stash75 = _series_avg(result.series["stash75%"])
    stash100 = _series_avg(result.series["stash100%"])

    # Monotone: more cells in memory, lower latency.
    assert stash100 < stash75 <= stash50 < basic

    # Paper's headline: >= 40% improvement with any partial cache.
    assert stash50 <= basic * 0.6

    # Full preload is interactive.
    assert stash100 < 0.05


def test_fig7d_drill_down(benchmark, scale):
    result = run_once(benchmark, fig7de_zoom, scale, "drill")
    report(result)
    _check_zoom(result)


def test_fig7e_roll_up(benchmark, scale):
    result = run_once(benchmark, fig7de_zoom, scale, "roll")
    report(result)
    _check_zoom(result)

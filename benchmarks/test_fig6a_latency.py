"""Fig. 6a — query latency by size: basic vs cold STASH vs hot STASH.

Paper claims: a fully populated STASH outperforms the basic system by
~5x on country/state queries and turns them interactive; an empty STASH
is slightly *slower* than basic (unsuccessful lookup overhead).
"""

from conftest import run_once

from repro.bench.experiments import fig6a_latency_by_query_size
from repro.bench.reporting import report


def test_fig6a_latency_by_query_size(benchmark, scale):
    result = run_once(benchmark, fig6a_latency_by_query_size, scale)
    report(result)
    basic = result.series["basic"]
    cold = result.series["stash_cold"]
    hot = result.series["stash_hot"]

    # Latency grows with query size in every scenario.
    for series in (basic, cold, hot):
        assert series["country"] > series["city"]

    # Hot STASH beats basic by >= 5x on large queries (paper: ~5x).
    assert basic["country"] / hot["country"] >= 5.0
    assert basic["state"] / hot["state"] >= 5.0

    # Hot STASH reaches interactive latency (< 100 ms simulated).
    assert hot["country"] < 0.1

    # Cold STASH pays a small overhead over basic, but stays within 50%.
    for size in ("country", "state", "county", "city"):
        assert cold[size] >= basic[size]
        assert cold[size] <= basic[size] * 1.5

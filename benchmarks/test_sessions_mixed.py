"""Mixed multi-user session traffic: STASH vs basic vs ElasticSearch.

Beyond the paper's individual figures: the introduction's motivating
scenario — many users exploring interactively at once — run end-to-end.
STASH's collective cache should put it clearly ahead of both baselines
on mean latency.
"""

from conftest import run_once

from repro.bench.ablations import experiment_realistic_sessions
from repro.bench.reporting import report


def test_mixed_session_traffic(benchmark, scale):
    result = run_once(benchmark, experiment_realistic_sessions, scale)
    report(result)
    mean = result.series["mean_latency_s"]

    # STASH beats the scan-only baseline on mixed gesture traffic.
    assert mean["stash"] < mean["basic"] * 0.75
    # ... and wins against the ES comparator too (by a smaller margin:
    # cold jump-to-new-region gestures favor ES's all-shard parallelism,
    # the cache pays off on the locality-heavy remainder).
    assert mean["stash"] < mean["elastic"]
    # Its cache actually carried traffic.
    assert result.meta["stash_cells_from_cache"] > 0

#!/usr/bin/env python
"""Quickstart: bring up a STASH cluster and run your first queries.

This walks through the whole pipeline in ~60 lines:

1. generate a synthetic NAM-like observation dataset;
2. start a simulated STASH cluster on top of it;
3. run a cold aggregation query (scans the distributed storage);
4. run the same query hot (served from the in-memory STASH graph);
5. inspect the per-cell summary statistics and latency provenance.

Run with::

    python examples/quickstart.py
"""

from repro import (
    AggregationQuery,
    BoundingBox,
    DatasetSpec,
    Resolution,
    StashCluster,
    SyntheticNAMGenerator,
    TemporalResolution,
    TimeKey,
)


def main() -> None:
    # 1. A seeded synthetic dataset: one week of observations over the
    #    NAM (North American Mesoscale) coverage area.
    spec = DatasetSpec(num_records=60_000, start_day=(2013, 2, 1), num_days=7)
    dataset = SyntheticNAMGenerator(spec).generate()
    print(f"dataset: {len(dataset):,} observations, {sorted(dataset.attributes)}")

    # 2. A simulated 16-node cluster with STASH as caching middleware.
    cluster = StashCluster(dataset)

    # 3. A state-sized query: Colorado-ish box, one day, geohash
    #    precision 4, daily bins.
    query = AggregationQuery(
        bbox=BoundingBox(south=37.0, north=41.0, west=-109.0, east=-102.0),
        time_range=TimeKey.of(2013, 2, 3).epoch_range(),
        resolution=Resolution(4, TemporalResolution.DAY),
    )
    cold = cluster.run_query(query)
    print(f"\ncold query: {len(cold)} non-empty cells, "
          f"{cold.total_count:,} observations aggregated")
    print(f"  simulated latency: {cold.latency * 1e3:8.2f} ms")
    print(f"  provenance: {cold.provenance}")

    # Let the background cache population finish (a separate service
    # message in the simulation, a separate thread in the paper).
    cluster.drain()

    # 4. The identical viewport again — now served from memory.
    hot = cluster.run_query(
        AggregationQuery(
            bbox=query.bbox, time_range=query.time_range, resolution=query.resolution
        )
    )
    print(f"\nhot query latency: {hot.latency * 1e3:8.2f} ms "
          f"({cold.latency / hot.latency:.1f}x faster)")
    print(f"  provenance: {hot.provenance}")
    assert hot.matches(cold), "cache answers must equal scan answers"

    # 5. Per-cell summaries: the payload a map front-end would render.
    print("\nsample cells (temperature):")
    for key, summary in list(hot.cells.items())[:5]:
        temp = summary["temperature"]
        print(f"  {key}: n={temp.count:4d}  mean={temp.mean:6.1f}C  "
              f"[{temp.minimum:6.1f}, {temp.maximum:6.1f}]")

    overall = hot.overall_summary()["temperature"]
    print(f"\nviewport overall: n={overall.count}, mean={overall.mean:.1f}C")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Hotspot autoscaling: dynamic clique replication under skewed load.

Simulates the paper's section VIII-E scenario: a sudden burst of
county-level queries from many users over one region (think: a wildfire
or storm making the news).  The owning node's request queue floods; it
detects the hotspot, hands off its hottest cliques to the antipode
node, and starts rerouting — watch the completion timeline pull ahead
of the no-replication run.

Run with::

    python examples/hotspot_autoscaling.py
"""

import numpy as np

from repro import (
    AggregationQuery,
    DatasetSpec,
    NAM_DOMAIN,
    ReplicationConfig,
    Resolution,
    StashCluster,
    StashConfig,
    SyntheticNAMGenerator,
    TemporalResolution,
    TimeKey,
)
from repro.workload.hotspot import hotspot_workload


def run(dataset, queries, enable_replication: bool):
    config = StashConfig(
        replication=ReplicationConfig(
            hotspot_queue_threshold=20,
            cooldown=0.5,
            reroute_probability=0.5,
        ),
        enable_replication=enable_replication,
    )
    cluster = StashCluster(dataset, config)
    # Warm the cache: the experiment isolates the *queueing* effect of
    # the hotspot, as in the paper's Fig. 6d.
    cluster.warm([q.panned(0, 0) for q in queries])
    start = cluster.sim.now
    cluster.run_concurrent([q.panned(0, 0) for q in queries])
    completions = cluster.timeline.completions
    phase = completions[completions >= start] - start
    return cluster, phase


def ascii_timeline(label: str, phase: np.ndarray, bins: int, bin_width: float) -> None:
    counts = np.bincount(
        np.minimum((phase / bin_width).astype(int), bins - 1), minlength=bins
    )
    cumulative = np.cumsum(counts)
    total = cumulative[-1]
    print(f"\n{label} (each row = {bin_width * 1e3:.1f} ms of simulated time)")
    for i, done in enumerate(cumulative):
        bar = "#" * int(50 * done / total)
        print(f"  t={i * bin_width * 1e3:6.1f}ms |{bar:<50}| {done:4d} done")
        if done == total:
            break


def main() -> None:
    spec = DatasetSpec(num_records=120_000, start_day=(2013, 2, 1), num_days=2)
    dataset = SyntheticNAMGenerator(spec).generate()

    rng = np.random.default_rng(13)
    queries = [
        AggregationQuery(
            bbox=q.bbox,
            time_range=TimeKey.of(2013, 2, 2).epoch_range(),
            resolution=Resolution(4, TemporalResolution.DAY),
        )
        for q in hotspot_workload(rng, NAM_DOMAIN, 400)
    ]
    print(f"firing {len(queries)} county-level queries at one region...")

    with_repl, phase_repl = run(dataset, queries, enable_replication=True)
    without_repl, phase_none = run(dataset, queries, enable_replication=False)

    longest = max(phase_repl.max(), phase_none.max())
    bin_width = longest / 15
    ascii_timeline("WITH dynamic replication", phase_repl, 16, bin_width)
    ascii_timeline("WITHOUT replication", phase_none, 16, bin_width)

    counts = with_repl.counters_total()
    print(f"\nhandoffs completed: {counts.get('handoffs_completed', 0)}")
    print(f"queries rerouted:   {counts.get('queries_rerouted', 0)}")
    print(f"guest cells hosted: {with_repl.total_guest_cells():,}")
    speedup = phase_none.max() / phase_repl.max()
    print(f"\nworkload finished {speedup:.2f}x faster with replication "
          f"({phase_repl.max() * 1e3:.1f} ms vs {phase_none.max() * 1e3:.1f} ms)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Visual exploration session: pan / zoom / dice over a weather map.

Reproduces the front-end workflow the paper motivates (section II): a
user explores a winter storm, panning and drilling down, while STASH
turns the repeated overlapping queries into cache hits.  Each step
prints the simulated latency and an ASCII heatmap of the viewport.

Run with::

    python examples/visual_exploration.py
"""

from repro import (
    BoundingBox,
    DatasetSpec,
    Resolution,
    StashCluster,
    SyntheticNAMGenerator,
    TemporalResolution,
    TimeKey,
)
from repro.client.render import render_ascii_heatmap
from repro.client.session import ExplorationSession


def show(step: str, session: ExplorationSession, result) -> None:
    print(f"\n=== {step}")
    print(f"viewport: {session.viewport.height:.1f} x {session.viewport.width:.1f} deg "
          f"at {session.resolution}, {session.day}")
    print(f"latency: {result.latency * 1e3:7.2f} ms   "
          f"cells: {len(result.cells):5d}   provenance: {result.provenance}")
    if result.cells:
        print(render_ascii_heatmap(result, "temperature", "mean", max_width=60))


def main() -> None:
    spec = DatasetSpec(num_records=80_000, start_day=(2013, 2, 1), num_days=5)
    dataset = SyntheticNAMGenerator(spec).generate()
    cluster = StashCluster(dataset)

    session = ExplorationSession(
        cluster,
        viewport=BoundingBox(south=25.0, north=50.0, west=-125.0, east=-70.0),
        day=TimeKey.of(2013, 2, 2),
        resolution=Resolution(3, TemporalResolution.DAY),
        prefetch=True,  # paper future-work: momentum prefetching
    )

    show("initial continental view", session, session.refresh())
    cluster.drain()

    show("drill down (zoom in one level)", session, session.drill_down())
    cluster.drain()

    show("dice to the northern half", session, session.dice(0.5))
    cluster.drain()

    for direction in ("e", "e", "e"):
        result = session.pan(direction, fraction=0.25)
        cluster.drain()
        show(f"pan {direction} by 25%", session, result)

    show("next day (temporal slice)", session, session.slice_day(TimeKey.of(2013, 2, 3)))
    cluster.drain()

    show("roll up (zoom back out)", session, session.roll_up())

    stats = session.stats
    print(f"\nsession: {stats.queries_sent} server queries, "
          f"{stats.prefetches_issued} prefetches issued")
    counters = cluster.counters_total()
    print(f"cluster: {counters.get('cells_served_from_cache', 0):,} cells from cache, "
          f"{counters.get('cells_served_from_rollup', 0):,} from roll-up, "
          f"{counters.get('cells_populated', 0):,} populated")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Engine shootout: STASH vs the basic system vs simulated ElasticSearch.

Runs the same exploratory sequence — one cold query, then a panning
trail — against all three engines and prints a latency table, the shape
of the paper's Figs. 6a and 8a.  All three return bit-identical
aggregates (asserted); only the time-to-answer differs.

Run with::

    python examples/engine_shootout.py
"""

from repro import (
    AggregationQuery,
    BasicSystem,
    BoundingBox,
    DatasetSpec,
    ElasticSystem,
    Resolution,
    StashCluster,
    SyntheticNAMGenerator,
    TemporalResolution,
    TimeKey,
)
from repro.workload.navigation import pan_sequence


def main() -> None:
    spec = DatasetSpec(num_records=100_000, start_day=(2013, 2, 1), num_days=2)
    dataset = SyntheticNAMGenerator(spec).generate()

    base = AggregationQuery(
        bbox=BoundingBox(south=33.0, north=37.0, west=-104.0, east=-96.0),
        time_range=TimeKey.of(2013, 2, 2).epoch_range(),
        resolution=Resolution(4, TemporalResolution.DAY),
    )
    trail = pan_sequence(base, fraction=0.10)

    engines = {
        "basic": BasicSystem(dataset),
        "stash": StashCluster(dataset),
        "elastic": ElasticSystem(dataset),
    }

    latencies: dict[str, list[float]] = {name: [] for name in engines}
    reference: list = []
    for step, query in enumerate(trail):
        answers = {}
        for name, engine in engines.items():
            result = engine.run_query(query.panned(0, 0))
            if name == "stash":
                engine.drain()  # background population between gestures
            latencies[name].append(result.latency)
            answers[name] = result
        # All engines agree on the data, always.
        assert answers["stash"].matches(answers["basic"])
        assert answers["elastic"].matches(answers["basic"])
        reference.append(answers["basic"])

    print(f"{'step':>6} | " + " | ".join(f"{n:>12}" for n in engines))
    print("-" * (9 + 15 * len(engines)))
    for step in range(len(trail)):
        row = " | ".join(
            f"{latencies[name][step] * 1e3:9.2f} ms" for name in engines
        )
        label = "cold" if step == 0 else f"pan{step}"
        print(f"{label:>6} | {row}")

    def reduction(series):
        later = series[1:]
        return 100.0 * (1.0 - (sum(later) / len(later)) / series[0])

    print(f"\nlatency reduction vs first request "
          f"(paper Fig. 8a: STASH 49.7-70%, ES 0.6-2%):")
    for name in engines:
        print(f"  {name:>8}: {reduction(latencies[name]):6.1f}%")


if __name__ == "__main__":
    main()

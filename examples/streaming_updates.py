#!/usr/bin/env python
"""Streaming updates: live ingest with PLM-driven cache invalidation.

Simulates a live sensor feed: a dashboard keeps watching one region
while new observation batches stream into the cluster.  After each
ingest, every cached cell whose extent was touched is invalidated (the
paper's section IV-D PLM update path), so the next refresh recomputes a
fresh — and *correct* — summary; untouched regions keep their cache.

Run with::

    python examples/streaming_updates.py
"""

import numpy as np

from repro import (
    AggregationQuery,
    BoundingBox,
    DatasetSpec,
    Resolution,
    StashCluster,
    SyntheticNAMGenerator,
    TemporalResolution,
    TimeKey,
)
from repro.data.observation import ObservationBatch


def sensor_burst(n, rng, day, lat0, lon0, temp):
    """A batch of fresh readings from a localized sensor array."""
    extent = day.epoch_range()
    return ObservationBatch(
        lats=rng.uniform(lat0, lat0 + 1.5, n),
        lons=rng.uniform(lon0, lon0 + 2.5, n),
        epochs=rng.uniform(extent.start, extent.end - 1, n),
        attributes={
            "temperature": rng.normal(temp, 1.5, n),
            "humidity": rng.uniform(20, 60, n),
            "precipitation": np.zeros(n),
            "snow_depth": np.zeros(n),
        },
    )


def main() -> None:
    day = TimeKey.of(2013, 2, 2)
    dataset = SyntheticNAMGenerator(
        DatasetSpec(num_records=60_000, start_day=(2013, 2, 1), num_days=2)
    ).generate()
    cluster = StashCluster(dataset)

    watched = AggregationQuery(
        bbox=BoundingBox(south=34.0, north=40.0, west=-108.0, east=-98.0),
        time_range=day.epoch_range(),
        resolution=Resolution(4, TemporalResolution.DAY),
    )
    elsewhere = AggregationQuery(
        bbox=BoundingBox(south=44.0, north=50.0, west=-90.0, east=-80.0),
        time_range=day.epoch_range(),
        resolution=Resolution(4, TemporalResolution.DAY),
    )

    def refresh(query):
        result = cluster.run_query(query.panned(0, 0))
        cluster.drain()
        return result

    baseline = refresh(watched)
    refresh(elsewhere)
    temp = baseline.overall_summary()["temperature"]
    print(f"baseline: {baseline.total_count:,} obs, "
          f"max temperature {temp.maximum:.1f}C "
          f"({baseline.latency * 1e3:.1f} ms)")

    rng = np.random.default_rng(7)
    for wave, heat in enumerate((25.0, 32.0, 41.0), start=1):
        burst = sensor_burst(400, rng, day, lat0=35.0, lon0=-106.0, temp=heat)
        blocks, invalidated = cluster.ingest_live(burst)
        print(f"\nwave {wave}: ingested {len(burst)} readings "
              f"({blocks} blocks touched, {invalidated} cached cells invalidated)")

        result = refresh(watched)
        temp = result.overall_summary()["temperature"]
        print(f"  watched region: {result.total_count:,} obs, "
              f"max temperature {temp.maximum:.1f}C "
              f"({result.latency * 1e3:.1f} ms, "
              f"{result.provenance['cells_from_disk']} cells recomputed)")

        far = refresh(elsewhere)
        print(f"  far region:     untouched cache -> "
              f"{far.provenance['cells_from_disk']} cells recomputed, "
              f"{far.latency * 1e3:.1f} ms")

    print("\nheat anomaly visible the moment it lands; cold cache only "
          "where the data actually changed.")


if __name__ == "__main__":
    main()

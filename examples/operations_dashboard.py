#!/usr/bin/env python
"""Operations view: watch a STASH cluster under a realistic mixed load.

Replays a recorded Zipf-skewed query trace (the kind of skew the paper's
section V-A cites) against a STASH cluster, taking monitoring snapshots
between waves: cache occupancy and balance, hit rate climbing as the
collective cache builds, hotspot/replication activity, and disk traffic
tapering off.  The cluster also runs the periodic time-series sampler
(``repro.obs.MetricsRegistry``), so the run ends with how the hit rate
and queue depths *evolved*, not just where they landed.

Run with::

    python examples/operations_dashboard.py
"""

import tempfile

import numpy as np

from repro import (
    AggregationQuery,
    DatasetSpec,
    NAM_DOMAIN,
    ReplicationConfig,
    Resolution,
    StashCluster,
    StashConfig,
    SyntheticNAMGenerator,
    TemporalResolution,
    TimeKey,
)
from repro.config import ObservabilityConfig
from repro.monitor import snapshot
from repro.workload.hotspot import zipf_region_workload
from repro.workload.trace import load_trace, replay_trace, save_trace


def main() -> None:
    dataset = SyntheticNAMGenerator(
        DatasetSpec(num_records=100_000, start_day=(2013, 2, 1), num_days=2)
    ).generate()
    config = StashConfig(
        replication=ReplicationConfig(hotspot_queue_threshold=25, cooldown=0.5),
        # Sample every gauge (queue depth, cache cells, hit rate, ...)
        # every 100ms of simulated time.
        observability=ObservabilityConfig(sample_interval=0.1),
    )
    cluster = StashCluster(dataset, config)

    # Record a 300-query Zipf trace, then replay it in three waves —
    # exactly how you would replay a captured production trace.
    rng = np.random.default_rng(21)
    queries = [
        AggregationQuery(
            bbox=q.bbox,
            time_range=TimeKey.of(2013, 2, 2).epoch_range(),
            resolution=Resolution(4, TemporalResolution.DAY),
        )
        for q in zipf_region_workload(rng, NAM_DOMAIN, 300, num_regions=6)
    ]
    with tempfile.NamedTemporaryFile(suffix=".jsonl", delete=False) as handle:
        trace_path = handle.name
    save_trace(queries, trace_path)
    trace = load_trace(trace_path)
    print(f"replaying {len(trace)} Zipf-skewed queries in 3 waves\n")

    for wave in range(3):
        chunk = trace[wave * 100 : (wave + 1) * 100]
        replay_trace(cluster, chunk, concurrent=True)
        cluster.drain()
        snap = snapshot(cluster)
        print(f"--- after wave {wave + 1} ({len(chunk)} queries) ---")
        print(snap.format_table())
        counts = cluster.counters_total()
        print(
            f"rollup serves: {counts.get('cells_served_from_rollup', 0):,}   "
            f"hotspots: {counts.get('hotspots_detected', 0)}   "
            f"handoffs: {counts.get('handoffs_completed', 0)}   "
            f"rerouted: {counts.get('queries_rerouted', 0)}\n"
        )

    final = snapshot(cluster)
    print(f"final hit rate: {final.cache_hit_rate():.1%} "
          f"(rises as the collective cache builds)")

    # The registry's time series show the trajectory between snapshots.
    hit = cluster.metrics.series["cluster.hit_rate"]
    if len(hit):
        print(
            f"\nhit-rate series ({len(hit)} samples @ "
            f"{config.observability.sample_interval}s): "
            f"{hit.first():.1%} -> {hit.last():.1%}"
        )
        peak_queue = max(
            (series.peak(), name)
            for name, series in cluster.metrics.series.items()
            if name.endswith(".queue_depth") and len(series)
        )
        print(f"peak queue depth: {peak_queue[0]:.0f} on {peak_queue[1].split('.')[0]}")
        print()
        print(cluster.metrics.format_table(
            names=["cluster.hit_rate", "network.bytes_sent"], last=6
        ))


if __name__ == "__main__":
    main()

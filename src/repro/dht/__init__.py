"""Zero-hop DHT partitioning (Galileo-style, paper section VI-C)."""

from repro.dht.partitioner import ConsistentHashPartitioner, Partitioner, PrefixPartitioner

__all__ = ["Partitioner", "PrefixPartitioner", "ConsistentHashPartitioner"]

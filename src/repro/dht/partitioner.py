"""Zero-hop DHT partitioners: geohash -> owning node.

Galileo is "a zero-hop DHT based storage system that uses Geohash to
generate data partitions that store and colocate geospatially proximate
data points" (paper section VI-C).  Zero-hop means every node holds the
complete partition map, so locating the owner of any key is a single
local computation — the paper's O(1) discovery cost.

Two implementations:

* :class:`PrefixPartitioner` — hashes the geohash *prefix* at the
  configured partition precision; all data within one coarse cell lands
  on one node (the paper's "first 2 characters" scheme).
* :class:`ConsistentHashPartitioner` — classic ring with virtual nodes;
  node removal only remaps keys the removed node owned.  Provided for
  elasticity experiments.
"""

from __future__ import annotations

import bisect
import hashlib
from abc import ABC, abstractmethod

from repro.errors import StorageError


def _stable_hash(text: str) -> int:
    """Platform/run-stable 64-bit hash (Python's built-in hash is salted)."""
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class Partitioner(ABC):
    """Maps geohash keys to node ids; shared by storage and STASH layers."""

    def __init__(self, node_ids: list[str], partition_precision: int):
        if not node_ids:
            raise StorageError("partitioner needs at least one node")
        if len(set(node_ids)) != len(node_ids):
            raise StorageError("duplicate node ids")
        if partition_precision < 1:
            raise StorageError("partition_precision must be >= 1")
        self.node_ids = list(node_ids)
        self.partition_precision = partition_precision

    def partition_key(self, geohash: str) -> str:
        """The coarse prefix that determines ownership."""
        if not geohash:
            raise StorageError("empty geohash")
        return geohash[: self.partition_precision]

    @abstractmethod
    def node_for_partition(self, prefix: str) -> str:
        """Owner node of a partition prefix."""

    def node_for(self, geohash: str) -> str:
        """Owner node of any geohash (cell or block)."""
        return self.node_for_partition(self.partition_key(geohash))

    def without_node(self, node_id: str) -> "Partitioner":
        """A new partition map with one node removed (ring repair).

        The base implementation rebuilds with the surviving nodes;
        subclasses with better remap locality override this.
        """
        if node_id not in self.node_ids:
            raise StorageError(f"unknown node {node_id!r}")
        remaining = [n for n in self.node_ids if n != node_id]
        return type(self)(remaining, self.partition_precision)

    def without_nodes(self, node_ids: "set[str] | frozenset[str]") -> "Partitioner":
        """Ring repair for a whole dead-set at once.

        Removes nodes one at a time in base order, so the result is
        identical to chained :meth:`without_node` calls regardless of the
        order deaths were observed in — every membership view that agrees
        on *which* nodes are dead agrees on the repaired map.
        """
        view: Partitioner = self
        for node_id in self.node_ids:
            if node_id in node_ids:
                view = view.without_node(node_id)
        return view


class PrefixPartitioner(Partitioner):
    """Uniform modulo placement of geohash prefixes (Galileo-style)."""

    def node_for_partition(self, prefix: str) -> str:
        return self.node_ids[_stable_hash(prefix) % len(self.node_ids)]


class ConsistentHashPartitioner(Partitioner):
    """Consistent-hash ring with virtual nodes."""

    def __init__(
        self,
        node_ids: list[str],
        partition_precision: int,
        virtual_nodes: int = 64,
    ):
        super().__init__(node_ids, partition_precision)
        if virtual_nodes < 1:
            raise StorageError("virtual_nodes must be >= 1")
        self.virtual_nodes = virtual_nodes
        self._ring: list[tuple[int, str]] = sorted(
            (_stable_hash(f"{node}#{v}"), node)
            for node in node_ids
            for v in range(virtual_nodes)
        )
        self._points = [p for p, _ in self._ring]

    def node_for_partition(self, prefix: str) -> str:
        point = _stable_hash(prefix)
        index = bisect.bisect_right(self._points, point) % len(self._ring)
        return self._ring[index][1]

    def without_node(self, node_id: str) -> "ConsistentHashPartitioner":
        """A new ring with one node removed (for remap-locality tests)."""
        if node_id not in self.node_ids:
            raise StorageError(f"unknown node {node_id!r}")
        remaining = [n for n in self.node_ids if n != node_id]
        return ConsistentHashPartitioner(
            remaining, self.partition_precision, self.virtual_nodes
        )

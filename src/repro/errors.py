"""Exception hierarchy for the STASH reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single except clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class GeohashError(ReproError):
    """Invalid geohash string, precision, or coordinate."""


class TemporalError(ReproError):
    """Invalid temporal key, resolution, or range."""


class ResolutionError(ReproError):
    """Invalid spatiotemporal resolution or level arithmetic."""


class StatisticsError(ReproError):
    """Invalid summary-statistics operation (e.g. merging mismatched attrs)."""


class SimulationError(ReproError):
    """Discrete-event simulation misuse (e.g. resuming a finished process)."""


class NetworkError(SimulationError):
    """Message routed to an unknown node or malformed RPC."""


class StorageError(ReproError):
    """Backend storage errors: missing block, bad partition key."""


class CacheError(ReproError):
    """STASH graph misuse: duplicate cell insert, level mismatch."""


class ReplicationError(ReproError):
    """Clique handoff protocol errors."""


class WorkloadError(ReproError):
    """Invalid workload specification."""


class QueryError(ReproError):
    """Malformed spatiotemporal query."""


class FaultError(ReproError):
    """Invalid fault schedule or fault-injection misuse."""

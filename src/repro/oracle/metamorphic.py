"""Metamorphic relations: result-level invariants needing no oracle.

Each check runs two (or more) queries against a live cluster and
compares the *results against each other*, exploiting algebraic
structure the paper's hierarchical exploration relies on:

* **parent = merge(children)** along both refinement axes — the monoid
  invariant behind roll-up and drill-down (paper V-B);
* **pan/zoom overlap consistency** — two overlapping queries must agree
  on every shared cell (cached cells are full-extent aggregates, so the
  answer for a cell cannot depend on which query asked);
* **query-split additivity** — a bbox answer equals the union of a
  partition of it (footprints partition, cells are disjoint);
* **eviction independence** — answers identical before and after the
  most violent eviction possible (a full cache flush).

Checks skip (return ``[]``) instead of failing when a result is
explicitly degraded (``completeness < 1``): degraded answers are allowed
to omit cells, and oracle-backed conformance covers their correctness.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.oracle.engine import reference_merge
from repro.query.model import AggregationQuery, QueryResult


@dataclass(frozen=True)
class RelationFailure:
    """One violated metamorphic relation."""

    relation: str
    query: AggregationQuery
    detail: str

    def __str__(self) -> str:
        return f"[{self.relation}] {describe_query(self.query)}: {self.detail}"


def describe_query(query: AggregationQuery) -> str:
    """Compact human-readable query description for reports."""
    box = query.bbox
    attrs = "*" if query.attributes is None else ",".join(query.attributes)
    return (
        f"bbox=({box.south:.4f},{box.north:.4f},{box.west:.4f},{box.east:.4f}) "
        f"time=[{query.time_range.start:.0f},{query.time_range.end:.0f}) "
        f"res={query.resolution} attrs={attrs}"
    )


def _run(cluster, query: AggregationQuery) -> QueryResult:
    result = cluster.run_query(query)
    cluster.drain()
    return result


def _cells_match(a, b, rel: float) -> bool:
    return a.approx_equal(b, rel=rel)


def check_parent_children(
    cluster, query: AggregationQuery, axis: str, rel: float = 1e-9
) -> list[RelationFailure]:
    """Parent cells must equal the merge of their children along ``axis``.

    Runs ``query`` and the same extent one step finer on ``axis``; every
    parent cell in the coarse answer must equal the
    :func:`reference_merge` of its child cells in the fine answer, and a
    parent absent from the coarse answer must have no non-empty children.
    """
    finer = (
        query.resolution.finer_spatial()
        if axis == "spatial"
        else query.resolution.finer_temporal()
    )
    if finer is None or not cluster.space.contains(finer):
        return []
    parent_q = AggregationQuery(
        bbox=query.snapped_bbox(),
        time_range=query.snapped_time_range(),
        resolution=query.resolution,
        attributes=query.attributes,
    )
    child_q = parent_q.at_resolution(finer)
    coarse = _run(cluster, parent_q)
    fine = _run(cluster, child_q)
    if coarse.degraded or fine.degraded:
        return []
    attributes = (
        cluster.attribute_names
        if query.attributes is None
        else list(query.attributes)
    )
    failures: list[RelationFailure] = []
    for key in parent_q.footprint():
        children = key.children(axis)
        present = [fine.cells[c] for c in children if c in fine.cells]
        expected = reference_merge(present, attributes)
        actual = coarse.cells.get(key)
        if actual is None:
            if not expected.is_empty:
                failures.append(
                    RelationFailure(
                        f"parent-children:{axis}",
                        parent_q,
                        f"parent {key} absent but children hold "
                        f"{expected.count} observations",
                    )
                )
        elif not _cells_match(actual, expected, rel):
            failures.append(
                RelationFailure(
                    f"parent-children:{axis}",
                    parent_q,
                    f"parent {key} != merge of its {axis} children "
                    f"(parent count {actual.count}, merged count "
                    f"{expected.count})",
                )
            )
    return failures


def check_pan_consistency(
    cluster,
    query: AggregationQuery,
    dlat: float,
    dlon: float,
    rel: float = 1e-9,
) -> list[RelationFailure]:
    """Two overlapping pans must agree on every shared footprint cell."""
    moved = query.panned(dlat, dlon)
    first = _run(cluster, query)
    second = _run(cluster, moved)
    if first.degraded or second.degraded:
        return []
    shared = set(query.footprint()) & set(moved.footprint())
    failures: list[RelationFailure] = []
    for key in sorted(shared, key=str):
        in_first = key in first.cells
        in_second = key in second.cells
        if in_first != in_second:
            failures.append(
                RelationFailure(
                    "pan-overlap",
                    query,
                    f"cell {key} {'present' if in_first else 'absent'} before "
                    f"pan but {'present' if in_second else 'absent'} after",
                )
            )
        elif in_first and not _cells_match(first.cells[key], second.cells[key], rel):
            failures.append(
                RelationFailure(
                    "pan-overlap", query, f"cell {key} changed value across pans"
                )
            )
    return failures


def check_split_additivity(
    cluster, query: AggregationQuery, rel: float = 1e-9
) -> list[RelationFailure]:
    """A bbox answer must equal the union of a partition of the bbox."""
    parts = query.split_spatial() or query.split_temporal()
    if not parts:
        return []
    whole_fp = set(query.footprint())
    part_fps = [set(p.footprint()) for p in parts]
    if (
        set.union(*part_fps) != whole_fp
        or sum(len(fp) for fp in part_fps) != len(whole_fp)
    ):
        return [
            RelationFailure(
                "split-additivity",
                query,
                "split sub-queries do not partition the footprint",
            )
        ]
    whole = _run(cluster, query)
    results = [_run(cluster, part) for part in parts]
    if whole.degraded or any(r.degraded for r in results):
        return []
    combined: dict = {}
    for result in results:
        combined.update(result.cells)
    failures: list[RelationFailure] = []
    if set(combined) != set(whole.cells):
        missing = {str(k) for k in set(whole.cells) - set(combined)}
        extra = {str(k) for k in set(combined) - set(whole.cells)}
        failures.append(
            RelationFailure(
                "split-additivity",
                query,
                f"cell sets differ: missing from parts {sorted(missing)[:3]}, "
                f"extra in parts {sorted(extra)[:3]}",
            )
        )
    else:
        for key, vec in whole.cells.items():
            if not _cells_match(vec, combined[key], rel):
                failures.append(
                    RelationFailure(
                        "split-additivity",
                        query,
                        f"cell {key} differs between whole and split answers",
                    )
                )
    return failures


def check_eviction_independence(
    cluster, query: AggregationQuery, rel: float = 1e-9
) -> list[RelationFailure]:
    """Answers must be identical before and after a forced full eviction."""
    before = _run(cluster, query)
    cluster.flush_caches()
    after = _run(cluster, query.clone())
    if before.degraded or after.degraded:
        return []
    failures: list[RelationFailure] = []
    if set(before.cells) != set(after.cells):
        failures.append(
            RelationFailure(
                "eviction-independence",
                query,
                f"cell sets differ across eviction: "
                f"{len(before.cells)} before vs {len(after.cells)} after",
            )
        )
    else:
        for key, vec in before.cells.items():
            if not _cells_match(vec, after.cells[key], rel):
                failures.append(
                    RelationFailure(
                        "eviction-independence",
                        query,
                        f"cell {key} changed value across a cache flush",
                    )
                )
    return failures

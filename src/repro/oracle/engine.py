"""Brute-force reference engine: query answers from raw observations.

Every existing test compared system components against each other (or
against :func:`~repro.storage.backend.ground_truth_cells`, which shares
the vectorized ``grouped_summaries`` kernel with the production scan
path).  :class:`BruteForceOracle` removes that blind spot: it bins each
record with the *scalar* geohash encoder and the *scalar*
datetime-based time binner, and accumulates statistics with
``math.fsum`` — a from-scratch recomputation sharing no aggregation
code with the system under test.  Slow by design; conformance datasets
are small.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.keys import CellKey
from repro.data.observation import ObservationBatch
from repro.data.statistics import AttributeSummary, SummaryVector
from repro.geo.geohash import encode
from repro.geo.temporal import TemporalResolution, TimeKey
from repro.query.model import AggregationQuery


def _summarize(values: list[float]) -> AttributeSummary:
    """Exact scalar summary of a list of raw values.

    ``math.fsum`` is correctly rounded, so the oracle's totals are the
    most trustworthy side of any comparison; the production path's
    pairwise reductions must agree within ``approx_equal`` tolerance.
    """
    return AttributeSummary(
        count=len(values),
        total=math.fsum(values),
        total_sq=math.fsum(v * v for v in values),
        minimum=min(values),
        maximum=max(values),
    )


def reference_merge(
    vectors: list[SummaryVector], attributes: list[str]
) -> SummaryVector:
    """Monoid merge reimplemented from the definition, for metamorphic checks.

    Independent of :meth:`SummaryVector.merge` (and of
    :func:`repro.core.aggregation.merge_summaries`) on purpose: a
    metamorphic relation like parent = merge(children) must not verify a
    corrupted merge with the same corrupted merge.
    """
    summaries: dict[str, AttributeSummary] = {}
    for name in attributes:
        count = 0
        totals: list[float] = []
        totals_sq: list[float] = []
        minimum, maximum = math.inf, -math.inf
        for vec in vectors:
            s = vec[name]
            count += s.count
            totals.append(s.total)
            totals_sq.append(s.total_sq)
            if s.count:
                minimum = min(minimum, s.minimum)
                maximum = max(maximum, s.maximum)
        summaries[name] = AttributeSummary(
            count=count,
            total=math.fsum(totals),
            total_sq=math.fsum(totals_sq),
            minimum=minimum,
            maximum=maximum,
        )
    return SummaryVector(summaries)


class BruteForceOracle:
    """Answers any query by re-scanning the raw dataset record-by-record.

    Per-record bin labels are memoized per (spatial precision, temporal
    resolution) pair — computed once with scalar code, reused by every
    query of a campaign — so a 500-query campaign stays in the seconds
    range without compromising independence.
    """

    def __init__(self, batch: ObservationBatch):
        self.batch = batch
        self._geohashes: dict[int, list[str]] = {}
        self._time_keys: dict[TemporalResolution, list[TimeKey]] = {}

    # -- memoized scalar binning ------------------------------------------

    def _geohash_column(self, precision: int) -> list[str]:
        column = self._geohashes.get(precision)
        if column is None:
            lats = self.batch.lats.tolist()
            lons = self.batch.lons.tolist()
            column = [encode(lat, lon, precision) for lat, lon in zip(lats, lons)]
            self._geohashes[precision] = column
        return column

    def _time_column(self, resolution: TemporalResolution) -> list[TimeKey]:
        column = self._time_keys.get(resolution)
        if column is None:
            column = [
                TimeKey.from_epoch(epoch, resolution)
                for epoch in self.batch.epochs.tolist()
            ]
            self._time_keys[resolution] = column
        return column

    # -- the oracle --------------------------------------------------------

    def answer(self, query: AggregationQuery) -> dict[CellKey, SummaryVector]:
        """The exact answer: non-empty cells over the snapped query extent.

        Mirrors the documented query semantics (cells are aggregates over
        full cell extents, so the request is snapped outward to cell
        boundaries) while sharing no aggregation code with any engine.
        """
        snapped_box = query.snapped_bbox()
        snapped_time = query.snapped_time_range()
        batch = self.batch
        mask = (
            (batch.lats >= snapped_box.south)
            & (batch.lats < snapped_box.north)
            & (batch.lons >= snapped_box.west)
            & (batch.lons < snapped_box.east)
            & (batch.epochs >= snapped_time.start)
            & (batch.epochs < snapped_time.end)
        )
        indices = np.flatnonzero(mask).tolist()
        geohashes = self._geohash_column(query.resolution.spatial)
        time_keys = self._time_column(query.resolution.temporal)
        groups: dict[CellKey, list[int]] = {}
        for i in indices:
            key = CellKey(geohash=geohashes[i], time_key=time_keys[i])
            groups.setdefault(key, []).append(i)

        wanted = (
            batch.attribute_names
            if query.attributes is None
            else list(query.attributes)
        )
        columns = {name: batch.attributes[name].tolist() for name in wanted}
        out: dict[CellKey, SummaryVector] = {}
        for key, idx in groups.items():
            out[key] = SummaryVector(
                {
                    name: _summarize([column[i] for i in idx])
                    for name, column in columns.items()
                }
            )
        if query.polygon is not None:
            footprint = set(query.footprint())
            out = {key: vec for key, vec in out.items() if key in footprint}
        return out

    def total_in(self, query: AggregationQuery) -> int:
        """Observation count inside the snapped extent (sanity probes)."""
        answer = self.answer(query)
        return sum(vec.count for vec in answer.values())

"""Ground-truth oracle and conformance harness (docs/testing.md).

The rest of the repository optimizes the query path; this package checks
it.  :class:`~repro.oracle.engine.BruteForceOracle` recomputes any
:class:`~repro.query.model.AggregationQuery` answer directly from the raw
observations with deliberately naive scalar code — no graph, no PLM, no
DHT, no cache, and none of the vectorized kernels the production path
uses.  :mod:`repro.oracle.conformance` replays randomized exploration
workloads through the full simulated cluster under every configuration
axis and reports divergences; :mod:`repro.oracle.metamorphic` checks
result-level relations (parent = merge(children), pan overlap, split
additivity, eviction independence) that need no oracle at all.
"""

from repro.oracle.conformance import (
    CampaignReport,
    Divergence,
    compare_result,
    minimize_failing_query,
    run_campaign,
)
from repro.oracle.engine import BruteForceOracle, reference_merge

__all__ = [
    "BruteForceOracle",
    "CampaignReport",
    "Divergence",
    "compare_result",
    "minimize_failing_query",
    "reference_merge",
    "run_campaign",
]

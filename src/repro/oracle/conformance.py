"""Conformance campaigns: the full cluster vs the brute-force oracle.

A campaign replays randomized exploration workloads through a freshly
built :class:`~repro.core.cluster.StashCluster` under every configuration
axis that could plausibly change an answer — cold cache, warm cache,
eviction pressure, roll-up on/off, replication on/off, hotspot rerouting,
fault schedules — and checks every result against
:class:`~repro.oracle.engine.BruteForceOracle`.

The comparison policy is the correctness contract of the whole system:

* a **complete** answer (``completeness == 1``) must have exactly the
  oracle's non-empty cell set, every value within ``approx_equal``
  tolerance;
* a **degraded** answer (``completeness < 1``) may *omit* cells, but
  every cell it does return must match the oracle — partial answers are
  explicit, never silently wrong, and a fabricated cell is a divergence
  even when flagged degraded.

When an axis diverges, the harness re-runs the failing query on the same
(still live, still stateful) cluster and greedily shrinks it along
spatial/temporal partitions to report a minimal failing query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.config import (
    DEFAULT_CONFIG,
    ClusterConfig,
    EvictionConfig,
    FaultConfig,
    GossipConfig,
    ObservabilityConfig,
    OverloadConfig,
    ReplicationConfig,
    StashConfig,
)
from repro.core.cluster import StashCluster
from repro.core.keys import CellKey
from repro.data.generator import NAM_DOMAIN, conformance_dataset
from repro.data.observation import ObservationBatch
from repro.data.statistics import SummaryVector
from repro.dht.partitioner import PrefixPartitioner
from repro.faults.schedule import FaultEvent
from repro.geo.bbox import BoundingBox
from repro.geo.geohash import encode
from repro.geo.resolution import Resolution
from repro.geo.temporal import TemporalResolution, TimeKey, TimeRange
from repro.oracle.engine import BruteForceOracle
from repro.oracle.metamorphic import (
    RelationFailure,
    check_eviction_independence,
    check_pan_consistency,
    check_parent_children,
    check_split_additivity,
    describe_query,
)
from repro.query.model import AggregationQuery, QueryResult

#: Value tolerance: production pairwise reductions vs the oracle's fsum.
DEFAULT_REL_TOL = 1e-9


# ---------------------------------------------------------------------------
# comparison policy
# ---------------------------------------------------------------------------


def compare_result(
    result: QueryResult,
    truth: dict[CellKey, SummaryVector],
    rel: float = DEFAULT_REL_TOL,
) -> list[tuple[str, str]]:
    """Divergences of one cluster answer from the oracle's answer.

    Returns ``(kind, detail)`` pairs; empty means the answer conforms.
    """
    out: list[tuple[str, str]] = []
    if not 0.0 <= result.completeness <= 1.0:
        out.append(
            ("bad-completeness", f"completeness {result.completeness} outside [0, 1]")
        )
        return out
    extra = sorted(set(result.cells) - set(truth), key=str)
    for key in extra:
        out.append(
            (
                "fabricated-cell",
                f"cell {key} returned with count {result.cells[key].count} "
                f"but holds no observations",
            )
        )
    if not result.degraded:
        missing = sorted(set(truth) - set(result.cells), key=str)
        for key in missing:
            out.append(
                (
                    "missing-cell",
                    f"cell {key} with {truth[key].count} observations omitted "
                    f"from an answer claiming completeness 1.0",
                )
            )
    for key, vec in result.cells.items():
        expected = truth.get(key)
        if expected is not None and not vec.approx_equal(expected, rel=rel):
            out.append(
                (
                    "value-mismatch",
                    f"cell {key}: got count {vec.count}, oracle says "
                    f"{expected.count} (or summary values differ beyond "
                    f"rel={rel})",
                )
            )
    return out


@dataclass(frozen=True)
class Divergence:
    """One confirmed disagreement between the cluster and the oracle."""

    axis: str
    kind: str
    query: AggregationQuery
    detail: str
    #: Smallest sub-query still diverging on the same cluster state, when
    #: the harness managed to shrink one (None for relation failures).
    minimal: AggregationQuery | None = None

    def format(self) -> str:
        lines = [
            f"axis={self.axis} kind={self.kind}",
            f"  query:   {describe_query(self.query)}",
            f"  detail:  {self.detail}",
        ]
        if self.minimal is not None:
            lines.append(f"  minimal: {describe_query(self.minimal)}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# divergence shrinking
# ---------------------------------------------------------------------------


def minimize_failing_query(
    diverges: Callable[[AggregationQuery], bool],
    query: AggregationQuery,
    max_steps: int = 24,
) -> AggregationQuery:
    """Greedily shrink a failing query along exact footprint partitions.

    Each step splits the current query spatially or temporally (both
    splits partition the footprint exactly — see
    :meth:`AggregationQuery.split_spatial`) and descends into a half that
    still fails ``diverges``; stops when no half reproduces.  ``diverges``
    is evaluated on clones so every probe is a fresh request.
    """
    current = query
    if not diverges(current.clone()):
        return current
    for _ in range(max_steps):
        descended = False
        for part in current.split_spatial() + current.split_temporal():
            if diverges(part.clone()):
                current = part
                descended = True
                break
        if not descended:
            break
    return current


# ---------------------------------------------------------------------------
# randomized exploration workloads
# ---------------------------------------------------------------------------

#: (size-class extent, resolution) mix.  Coarse spatial resolutions (2,
#: 3) are deliberately over-represented: cells coarser than the block
#: precision span multiple storage blocks, which is the only place
#: cross-block scan merges and roll-up merges actually fire.
_SHAPES: list[tuple[tuple[float, float], Resolution]] = [
    ((16.0, 32.0), Resolution(2, TemporalResolution.DAY)),
    ((16.0, 32.0), Resolution(3, TemporalResolution.DAY)),
    ((8.0, 16.0), Resolution(3, TemporalResolution.DAY)),
    ((4.0, 8.0), Resolution(3, TemporalResolution.DAY)),
    ((4.0, 8.0), Resolution(4, TemporalResolution.DAY)),
    ((4.0, 8.0), Resolution(3, TemporalResolution.HOUR)),
    ((1.0, 2.0), Resolution(4, TemporalResolution.DAY)),
    ((1.0, 2.0), Resolution(4, TemporalResolution.HOUR)),
]


#: Per-query footprint cap: keeps a multi-hundred-query campaign in the
#: seconds range while still covering multi-block and multi-day cells.
_MAX_WORKLOAD_CELLS = 1_500


def _random_box(
    rng: np.random.Generator, domain: BoundingBox, extent: tuple[float, float]
) -> BoundingBox:
    height, width = extent
    height = min(height, domain.height)
    width = min(width, domain.width)
    south = float(rng.uniform(domain.south, domain.north - height))
    west = float(rng.uniform(domain.west, domain.east - width))
    return BoundingBox(south, south + height, west, west + width)


def exploration_workload(
    rng: np.random.Generator,
    num_requests: int,
    days: list[TimeKey],
    attribute_names: list[str],
    domain: BoundingBox = NAM_DOMAIN,
) -> list[AggregationQuery]:
    """Randomized exploration sessions over the conformance dataset.

    Each session starts from a random rectangle/day/resolution/attribute
    selection and then navigates — pans, dices, drills, rolls — the way
    the paper's visual front-end does.  Sessions vary every query
    dimension the system branches on: multi-day time ranges (multi-block
    cells), HOUR resolution (temporal roll-up axis), coarse precisions
    (spatial roll-up + cross-block merges), and attribute projections.
    """
    out: list[AggregationQuery] = []
    while len(out) < num_requests:
        extent, resolution = _SHAPES[int(rng.integers(0, len(_SHAPES)))]
        day_idx = int(rng.integers(0, len(days)))
        span = 1
        if resolution.temporal == TemporalResolution.DAY and rng.random() < 0.3:
            span = int(rng.integers(2, len(days) + 1))
        day_idx = min(day_idx, len(days) - span)
        time_range = TimeRange(
            days[day_idx].epoch_range().start,
            days[day_idx + span - 1].epoch_range().end,
        )
        attributes: tuple[str, ...] | None = None
        if rng.random() < 0.3:
            count = min(int(rng.integers(1, 3)), len(attribute_names))
            picked = rng.choice(len(attribute_names), size=count, replace=False)
            attributes = tuple(sorted(attribute_names[i] for i in picked))
        query = AggregationQuery(
            bbox=_random_box(rng, domain, extent),
            time_range=time_range,
            resolution=resolution,
            attributes=attributes,
        )
        if query.footprint_size() > _MAX_WORKLOAD_CELLS:
            continue
        out.append(query)
        for _ in range(int(rng.integers(0, 4))):
            move = rng.random()
            if move < 0.45:
                query = query.panned(
                    float(rng.uniform(-0.4, 0.4)) * query.bbox.height,
                    float(rng.uniform(-0.4, 0.4)) * query.bbox.width,
                )
            elif move < 0.7:
                query = query.diced(float(rng.choice([0.5, 2.0])))
            else:
                res = query.resolution
                step = (
                    res.finer_spatial() if rng.random() < 0.5 else res.coarser_spatial()
                )
                if step is None or not 2 <= step.spatial <= 4:
                    continue
                query = query.at_resolution(step)
            if query.footprint_size() > _MAX_WORKLOAD_CELLS:
                break
            out.append(query)
    return out[:num_requests]


# ---------------------------------------------------------------------------
# configuration axes
# ---------------------------------------------------------------------------


def _base_config() -> StashConfig:
    """Conformance cluster shape: small enough to simulate hundreds of
    queries quickly, with both replication and roll-up exercised.  The
    flight recorder is ON so every conformance campaign doubles as a
    recorder-passivity check: if recording ever perturbed an answer,
    the oracle comparison would catch it."""
    return DEFAULT_CONFIG.with_(
        cluster=ClusterConfig(num_nodes=8),
        observability=ObservabilityConfig(flight_recorder=True),
    )


def _run_serial(cluster: StashCluster, queries: list[AggregationQuery]):
    results = []
    for query in queries:
        results.append(cluster.run_query(query))
        cluster.drain()
    return results


@dataclass
class AxisRun:
    """What one axis produced: each executed query with its result."""

    cluster: StashCluster
    pairs: list[tuple[AggregationQuery, QueryResult]]


def _axis_cold_cache(dataset, rng, n) -> AxisRun:
    """Every query hits a cold cluster path at least partly from disk."""
    cluster = StashCluster(dataset, _base_config())
    queries = exploration_workload(rng, n, _DAYS, dataset.attribute_names)
    return AxisRun(cluster, list(zip(queries, _run_serial(cluster, queries))))


def _axis_warm_cache(dataset, rng, n) -> AxisRun:
    """Replay after a warm-up: answers must come from cache unchanged."""
    cluster = StashCluster(dataset, _base_config())
    queries = exploration_workload(rng, n, _DAYS, dataset.attribute_names)
    cluster.warm(queries)
    replays = [query.clone() for query in queries]
    return AxisRun(cluster, list(zip(replays, _run_serial(cluster, replays))))


def _axis_eviction_pressure(dataset, rng, n) -> AxisRun:
    """A cache far smaller than any working set: constant churn."""
    config = _base_config().with_(
        eviction=EvictionConfig(max_cells=96, safe_fraction=0.5)
    )
    cluster = StashCluster(dataset, config)
    queries = exploration_workload(rng, n, _DAYS, dataset.attribute_names)
    return AxisRun(cluster, list(zip(queries, _run_serial(cluster, queries))))


def _axis_rollup(dataset, rng, n) -> AxisRun:
    """Warm fine, query coarse: answers recomputed via roll-up merges."""
    cluster = StashCluster(dataset, _base_config())
    pairs: list[tuple[AggregationQuery, QueryResult]] = []
    while len(pairs) < n:
        day = _DAYS[int(rng.integers(0, len(_DAYS)))]
        box = _random_box(rng, NAM_DOMAIN, (8.0, 16.0))
        fine = AggregationQuery(
            bbox=box,
            time_range=day.epoch_range(),
            resolution=Resolution(4, TemporalResolution.DAY),
        )
        cluster.warm([fine])
        hourly = AggregationQuery(
            bbox=_random_box(rng, box, (2.0, 4.0)),
            time_range=day.epoch_range(),
            resolution=Resolution(3, TemporalResolution.HOUR),
        )
        cluster.warm([hourly])
        coarse = [
            fine.at_resolution(Resolution(3, TemporalResolution.DAY)),
            fine.at_resolution(Resolution(2, TemporalResolution.DAY)),
            AggregationQuery(
                bbox=hourly.bbox,
                time_range=hourly.time_range,
                resolution=Resolution(3, TemporalResolution.DAY),
            ),
        ][: n - len(pairs)]
        pairs.extend(zip(coarse, _run_serial(cluster, coarse)))
    return AxisRun(cluster, pairs)


def _axis_no_rollup(dataset, rng, n) -> AxisRun:
    """Roll-up disabled: every miss must fall through to disk, correctly."""
    cluster = StashCluster(dataset, _base_config().with_(enable_rollup=False))
    queries = exploration_workload(rng, n, _DAYS, dataset.attribute_names)
    return AxisRun(cluster, list(zip(queries, _run_serial(cluster, queries))))


def _axis_no_replication(dataset, rng, n) -> AxisRun:
    """Replication disabled: owners answer everything themselves."""
    cluster = StashCluster(dataset, _base_config().with_(enable_replication=False))
    queries = exploration_workload(rng, n, _DAYS, dataset.attribute_names)
    return AxisRun(cluster, list(zip(queries, _run_serial(cluster, queries))))


def _axis_replication_hotspot(dataset, rng, n) -> AxisRun:
    """Forced clique handoff + rerouting: guest graphs serve queries."""
    config = _base_config().with_(
        replication=ReplicationConfig(
            hotspot_queue_threshold=3,
            cooldown=0.0,
            reroute_probability=1.0,
        )
    )
    cluster = StashCluster(dataset, config)
    day = _DAYS[0]
    base = AggregationQuery(
        bbox=_random_box(rng, NAM_DOMAIN, (4.0, 8.0)),
        time_range=day.epoch_range(),
        resolution=Resolution(4, TemporalResolution.DAY),
    )
    queries: list[AggregationQuery] = []
    query = base
    while len(queries) < n:
        queries.append(query)
        query = query.panned(
            float(rng.uniform(-0.15, 0.15)) * query.bbox.height,
            float(rng.uniform(-0.15, 0.15)) * query.bbox.width,
        )
    # Fire concurrently so queue depth crosses the (lowered) hotspot
    # threshold and handoffs actually happen, then drain the background
    # replication machinery before comparing.
    results = cluster.run_concurrent(queries)
    cluster.drain()
    return AxisRun(cluster, list(zip(queries, results)))


def _axis_faults(dataset, rng, n) -> AxisRun:
    """Crash/restart + link loss on the hot coordinator mid-campaign.

    Divergence policy still applies unchanged: any answer produced while
    the coordinator is down must either match the oracle or carry
    ``completeness < 1`` — a silently wrong answer fails the campaign.
    """
    queries = exploration_workload(rng, n, _DAYS, dataset.attribute_names)
    base = _base_config()
    # Resolve the coordinator of the first query exactly the way the
    # client will (same node ids, same partitioner), without building a
    # throwaway cluster.
    node_ids = [f"node-{i}" for i in range(base.cluster.num_nodes)]
    partitioner = PrefixPartitioner(node_ids, base.cluster.partition_precision)
    lat, lon = queries[0].bbox.center
    target = partitioner.node_for(encode(lat, lon, base.cluster.partition_precision))
    other = next(node for node in node_ids if node != target)
    schedule = (
        FaultEvent(kind="crash", at=0.05, node=target),
        FaultEvent(kind="restart", at=1.5, node=target),
        FaultEvent(kind="drop_link", at=2.0, until=2.6, src=None, dst=other),
        FaultEvent(kind="slow_disk", at=0.0, until=4.0, node=other, factor=3.0),
    )
    config = base.with_(
        faults=FaultConfig(
            enabled=True,
            rpc_timeout=0.25,
            evaluate_timeout=1.0,
            max_retries=1,
            schedule=schedule,
        )
    )
    cluster = StashCluster(dataset, config)
    # Open-loop arrivals, NOT serial: run_query + drain between queries
    # would fast-forward the simulator past every fault window after the
    # first request, silently testing a fault-free cluster.  Poisson
    # arrivals spread the workload across crash, link-loss, and slow-disk
    # windows so queries genuinely race the faults.
    rate = max(16.0, len(queries) / 3.0)
    results = cluster.run_open_loop(queries, rate=rate, seed=int(rng.integers(2**31)))
    cluster.drain()
    return AxisRun(cluster, list(zip(queries, results)))


def _axis_churn(dataset, rng, n) -> AxisRun:
    """Membership churn under gossip: crash/restart with anti-entropy.

    Unlike the ``faults`` axis (shared membership, instantaneous
    failover), every node here keeps its *own* epidemic liveness view:
    the crash is detected by heartbeat silence, views converge while
    queries race the rumor, misrouted legs bounce through the NOT_OWNER
    protocol, survivors promote guest replicas of the dead node's range,
    and the restarted node rejoins via handoff.  Overload protection is
    armed too, so shed-and-degrade paths face the oracle.  The policy is
    unchanged: a degraded answer may be a *subset*, but any cell it does
    return must match the oracle — never fabricated.
    """
    queries = exploration_workload(rng, n, _DAYS, dataset.attribute_names)
    base = _base_config()
    node_ids = [f"node-{i}" for i in range(base.cluster.num_nodes)]
    partitioner = PrefixPartitioner(node_ids, base.cluster.partition_precision)
    lat, lon = queries[0].bbox.center
    target = partitioner.node_for(encode(lat, lon, base.cluster.partition_precision))
    schedule = (
        FaultEvent(kind="crash", at=0.3, node=target),
        FaultEvent(kind="restart", at=2.0, node=target),
    )
    config = base.with_(
        faults=FaultConfig(
            enabled=True,
            rpc_timeout=0.25,
            evaluate_timeout=1.0,
            max_retries=1,
            backoff_jitter=0.2,
            schedule=schedule,
        ),
        # Tight timings so suspect -> dead -> repair -> rejoin all land
        # inside the workload window.
        gossip=GossipConfig(
            enabled=True,
            interval=0.05,
            fanout=2,
            suspect_after=0.2,
            dead_after=0.2,
        ),
        overload=OverloadConfig(enabled=True, queue_limit=32),
    )
    cluster = StashCluster(dataset, config)
    rate = max(16.0, len(queries) / 3.0)
    results = cluster.run_open_loop(queries, rate=rate, seed=int(rng.integers(2**31)))
    cluster.drain()
    return AxisRun(cluster, list(zip(queries, results)))


#: name -> (description, runner).  Order is report order.
AXES: dict[str, tuple[str, Callable]] = {
    "cold-cache": ("fresh cluster, serial workload", _axis_cold_cache),
    "warm-cache": ("same workload replayed after warm-up", _axis_warm_cache),
    "eviction-pressure": ("96-cell cache, constant churn", _axis_eviction_pressure),
    "rollup": ("warm fine, query coarse (roll-up path)", _axis_rollup),
    "no-rollup": ("enable_rollup=False, disk on every miss", _axis_no_rollup),
    "no-replication": ("enable_replication=False", _axis_no_replication),
    "replication-hotspot": (
        "forced clique handoff + reroute_probability=1",
        _axis_replication_hotspot,
    ),
    "faults": ("coordinator crash/restart + link loss", _axis_faults),
    "churn": (
        "gossip membership churn: crash/restart + anti-entropy + overload",
        _axis_churn,
    ),
}

#: Days of :func:`~repro.data.generator.conformance_dataset`.
_DAYS = [TimeKey.of(2013, 2, day) for day in (1, 2, 3)]


# ---------------------------------------------------------------------------
# campaign driver
# ---------------------------------------------------------------------------


@dataclass
class AxisReport:
    """Outcome of one configuration axis."""

    axis: str
    description: str
    queries: int = 0
    degraded: int = 0
    divergences: list[Divergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def to_json_dict(self) -> dict:
        return {
            "axis": self.axis,
            "description": self.description,
            "queries": self.queries,
            "degraded": self.degraded,
            "divergences": [
                {
                    "kind": d.kind,
                    "query": describe_query(d.query),
                    "detail": d.detail,
                    "minimal": None if d.minimal is None else describe_query(d.minimal),
                }
                for d in self.divergences
            ],
        }


@dataclass
class CampaignReport:
    """Outcome of a whole conformance campaign."""

    seed: int
    quick: bool
    axes: list[AxisReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(axis.ok for axis in self.axes)

    @property
    def total_queries(self) -> int:
        return sum(axis.queries for axis in self.axes)

    @property
    def total_divergences(self) -> int:
        return sum(len(axis.divergences) for axis in self.axes)

    def format(self) -> str:
        lines = [
            f"conformance campaign: seed={self.seed} "
            f"profile={'quick' if self.quick else 'full'}",
            "",
            f"{'axis':<22} {'queries':>8} {'degraded':>9} {'divergent':>10}",
        ]
        for axis in self.axes:
            lines.append(
                f"{axis.axis:<22} {axis.queries:>8} {axis.degraded:>9} "
                f"{len(axis.divergences):>10}  {'ok' if axis.ok else 'FAIL'}"
            )
        lines.append("")
        lines.append(
            f"total: {self.total_queries} checks, "
            f"{self.total_divergences} divergences -> "
            f"{'CONFORMS' if self.ok else 'DIVERGES'}"
        )
        for axis in self.axes:
            for divergence in axis.divergences:
                lines.append("")
                lines.append(divergence.format())
        return "\n".join(lines)

    def to_json_dict(self) -> dict:
        return {
            "seed": self.seed,
            "quick": self.quick,
            "ok": self.ok,
            "total_queries": self.total_queries,
            "total_divergences": self.total_divergences,
            "axes": [axis.to_json_dict() for axis in self.axes],
        }


#: Divergences minimized per axis; shrinking re-runs queries, so bound it.
_MAX_MINIMIZED = 2
#: Divergences recorded per axis before bailing (a broken merge diverges
#: on nearly every query; the report needs examples, not thousands).
_MAX_RECORDED = 8


def _check_axis(
    name: str,
    description: str,
    run: AxisRun,
    oracle: BruteForceOracle,
    rel: float,
) -> AxisReport:
    report = AxisReport(axis=name, description=description)
    cluster = run.cluster

    def diverges(query: AggregationQuery) -> bool:
        result = cluster.run_query(query)
        cluster.drain()
        return bool(compare_result(result, oracle.answer(query), rel))

    for query, result in run.pairs:
        report.queries += 1
        if result.degraded:
            report.degraded += 1
        problems = compare_result(result, oracle.answer(query), rel)
        if not problems:
            continue
        kind, detail = problems[0]
        minimal = None
        if len(report.divergences) < _MAX_MINIMIZED:
            minimal = minimize_failing_query(diverges, query)
            if minimal.query_id == query.query_id:
                minimal = None
        report.divergences.append(
            Divergence(axis=name, kind=kind, query=query, detail=detail, minimal=minimal)
        )
        if len(report.divergences) >= _MAX_RECORDED:
            break
    return report


def _check_metamorphic(
    dataset: ObservationBatch, rng: np.random.Generator, n: int
) -> AxisReport:
    """Relation checks on a default cluster (no oracle involved)."""
    report = AxisReport(
        axis="metamorphic",
        description="parent/children, pan overlap, split, eviction",
    )
    cluster = StashCluster(dataset, _base_config())
    queries = exploration_workload(rng, n, _DAYS, dataset.attribute_names)
    failures: list[RelationFailure] = []
    for index, query in enumerate(queries):
        checks = index % 4
        if checks == 0 and query.footprint_size() <= 48:
            axis = "spatial" if index % 8 == 0 else "temporal"
            failures = check_parent_children(cluster, query, axis)
        elif checks == 1:
            failures = check_pan_consistency(
                cluster, query, 0.3 * query.bbox.height, 0.3 * query.bbox.width
            )
        elif checks == 2:
            failures = check_split_additivity(cluster, query)
        else:
            failures = check_eviction_independence(cluster, query)
        report.queries += 1
        for failure in failures[:_MAX_RECORDED]:
            report.divergences.append(
                Divergence(
                    axis="metamorphic",
                    kind=failure.relation,
                    query=failure.query,
                    detail=failure.detail,
                )
            )
        if len(report.divergences) >= _MAX_RECORDED:
            break
    return report


def run_campaign(
    seed: int = 0,
    quick: bool = False,
    queries_per_axis: int | None = None,
    rel: float = DEFAULT_REL_TOL,
    axes: list[str] | None = None,
    progress: Callable[[str], None] | None = None,
) -> CampaignReport:
    """Run the full conformance campaign and return its report.

    The full profile runs enough randomized queries (>= 500 across all
    axes) to exercise every configuration surface; ``quick`` is the CI
    smoke shape.  Deterministic for a given seed.
    """
    if queries_per_axis is None:
        queries_per_axis = 8 if quick else 64
    dataset = conformance_dataset(seed=seed)
    oracle = BruteForceOracle(dataset)
    selected = list(AXES) if axes is None else [a for a in AXES if a in set(axes)]
    report = CampaignReport(seed=seed, quick=quick)
    axis_index = {name: i for i, name in enumerate(AXES)}
    for name in selected:
        description, runner = AXES[name]
        if progress is not None:
            progress(f"axis {name}: {description}")
        # Seed each axis independently of which axes were selected (and of
        # PYTHONHASHSEED) so one axis's workload is reproducible in isolation.
        rng = np.random.default_rng([seed, axis_index[name]])
        run = runner(dataset, rng, queries_per_axis)
        report.axes.append(_check_axis(name, description, run, oracle, rel))
    if axes is None or "metamorphic" in axes:
        if progress is not None:
            progress("axis metamorphic: relation checks")
        rng = np.random.default_rng([seed, 987_654_321])
        report.axes.append(
            _check_metamorphic(dataset, rng, max(4, queries_per_axis // 2))
        )
    return report

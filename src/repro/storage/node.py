"""Storage node server process.

Each node runs a bounded pool of worker processes draining its network
inbox; the inbox depth is the "pending requests" signal used for hotspot
detection (paper section VII-B-1).  The base node serves ``scan``
requests — read blocks from the simulated disk, aggregate, reply; the
STASH node subclasses this with cache-aware handlers.
"""

from __future__ import annotations

from typing import Any, Callable, Generator

import numpy as np

from repro.config import StashConfig
from repro.core.keys import CellKey
from repro.data.block import Block, BlockId
from repro.data.statistics import SummaryVector
from repro.dht.partitioner import _stable_hash
from repro.errors import StorageError
from repro.faults.gossip import GossipMembership
from repro.faults.membership import RPC_FAILED, RPC_SHED, ClusterMembership
from repro.faults.overload import OverloadGuard
from repro.obs.recorder import QueryContext
from repro.obs.tracer import Span
from repro.query.model import AggregationQuery
from repro.sim.disk import Disk
from repro.sim.engine import Event, Simulator
from repro.sim.metrics import CounterSet
from repro.sim.network import Message, Network
from repro.sim.resources import Store
from repro.storage.backend import StorageCatalog, scan_blocks

#: Handler signature: generator process consuming a message.
Handler = Callable[[Message], Generator[Event, Any, None]]

#: Message kinds handled by the coordinator pool.  Everything else goes to
#: the service pool.  Keeping the pools separate prevents distributed
#: deadlock: a coordinator blocked on remote scans can never starve the
#: workers that serve those scans.
COORDINATOR_KINDS = frozenset({"evaluate", "evaluate_guest", "evaluate_cells"})


class StorageNode:
    """One simulated storage server with coordinator + service worker pools."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        catalog: StorageCatalog,
        node_id: str,
        config: StashConfig,
        membership: "ClusterMembership | GossipMembership | None" = None,
    ):
        self.sim = sim
        self.network = network
        self.catalog = catalog
        self.node_id = node_id
        self.config = config
        self.cost = config.cost
        self.membership = membership
        self.overload = (
            OverloadGuard(config.overload) if config.overload.enabled else None
        )
        #: Dedicated stream for retry-backoff jitter; consumed only when
        #: ``faults.backoff_jitter`` > 0, so jitter-free runs draw nothing.
        self._backoff_rng = np.random.default_rng(
            [config.cluster.seed, 65_537, _stable_hash(node_id) % 2**31]
        )
        self.inbox = network.register(node_id)
        self.tracer = network.tracer
        self.recorder = network.recorder
        self.disk = Disk(sim, self.cost, node_id, tracer=network.tracer)
        self.counters = CounterSet()
        self._coord_queue = Store(sim, name=f"coord:{node_id}")
        self._service_queue = Store(sim, name=f"service:{node_id}")
        self._handlers: dict[str, Handler] = {
            "scan": self._handle_scan,
            "ping": self._handle_ping,
            "stats": self._handle_stats,
        }
        self._started = False
        self._workers_stale = False
        #: Handlers currently executing (any kind).  Together with
        #: :attr:`pending_requests` this gives an external driver a
        #: complete idleness signal (the serve quiesce barrier).
        self._inflight = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Spawn the dispatcher and worker pools; idempotent."""
        if self._started:
            return
        self._started = True
        self.sim.process(self._dispatcher())
        for _ in range(self.config.cluster.workers_per_node):
            self.sim.process(self._worker(self._coord_queue))
            self.sim.process(self._worker(self._service_queue))

    def crash(self) -> None:
        """Lose all volatile state (fault injection).

        Queued messages are dropped and the worker queues are replaced;
        workers blocked on (or mid-dispatch against) the old queues are
        stranded on objects nothing will ever touch again — their pending
        external effects are suppressed by the network's down-set.  The
        dispatcher keeps running but receives nothing while the node is
        down.  Subclasses additionally wipe their in-memory caches.
        """
        self.inbox.clear()
        self._coord_queue = Store(self.sim, name=f"coord:{self.node_id}")
        self._service_queue = Store(self.sim, name=f"service:{self.node_id}")
        self._workers_stale = True
        self.counters.increment("crashes")

    def restart(self) -> None:
        """Come back up cold: fresh worker pools on the fresh queues."""
        if self._started and self._workers_stale:
            for _ in range(self.config.cluster.workers_per_node):
                self.sim.process(self._worker(self._coord_queue))
                self.sim.process(self._worker(self._service_queue))
        self._workers_stale = False
        self.counters.increment("restarts")

    def _dispatcher(self) -> Generator[Event, Any, None]:
        while True:
            message = yield self.inbox.get()
            if self.overload is not None and self.overload.shed_class(
                message.kind, self.pending_requests
            ):
                self._shed(message)
                continue
            self.on_message_arrival(message)
            if message.kind in COORDINATOR_KINDS:
                self._coord_queue.put(message)
            else:
                self._service_queue.put(message)

    def _shed(self, message: Message) -> None:
        """Reject a message at admission (overload protection).

        RPC callers get an immediate explicit :data:`RPC_SHED` reply —
        a fast rejection they must not confuse with a death; one-way
        messages (``populate``) are dropped silently.
        """
        assert self.overload is not None
        self.overload.record_shed(self.sim.now)
        self.counters.increment("requests_shed")
        self.counters.increment(f"shed:{message.kind}")
        if self.recorder.enabled and isinstance(message.payload, dict):
            self.recorder.record_event(
                f"shed:{message.kind}",
                message.payload.get("ctx"),
                node=self.node_id,
                detail={"from": message.sender},
            )
        if message.reply_to is not None:
            self.network.respond(message, RPC_SHED, size=16)

    def on_message_arrival(self, message: Message) -> None:
        """Hook invoked as each message is dequeued from the network inbox.

        The STASH node overrides this to run hotspot detection.
        """

    def _worker(self, queue: Store) -> Generator[Event, Any, None]:
        while True:
            message = yield queue.get()
            yield self.sim.process(self._dispatch(message))

    def _dispatch(self, message: Message) -> Generator[Event, Any, None]:
        handler = self._handlers.get(message.kind)
        if handler is None:
            error = StorageError(
                f"node {self.node_id} has no handler for {message.kind!r}"
            )
            if message.reply_to is not None:
                self.network.respond_error(message, error)
                return
            raise error
        self.counters.increment(f"handled:{message.kind}")
        hspan: Span | None = None
        if self.tracer.enabled:
            now = self.sim.now
            if 0.0 <= message.delivered_at < now:
                self.tracer.record(
                    f"queue:{message.kind}",
                    "queueing",
                    message.delivered_at,
                    now,
                    parent=message.span,
                    node=self.node_id,
                )
            hspan = self.tracer.begin(
                f"handle:{message.kind}",
                "compute",
                parent=message.span,
                node=self.node_id,
            )
            if hspan is not None:
                # Receiver-side work (disk reads, fan-out RPCs) parents
                # onto the handler span, not the caller's rpc span.
                message.span = hspan
        self._inflight += 1
        try:
            yield self.sim.process(handler(message))
        except Exception as exc:
            # A failing request must not kill the worker: surface the
            # error to the caller when a reply is expected, otherwise
            # re-raise so the simulation fails loudly.
            self.counters.increment(f"errors:{message.kind}")
            if message.reply_to is not None and not message.reply_to.triggered:
                self.network.respond_error(message, exc)
            else:
                raise
        finally:
            self._inflight -= 1
            self.tracer.end(hspan)

    def register_handler(self, kind: str, handler: Handler) -> None:
        self._handlers[kind] = handler

    # -- fault-tolerant RPC ------------------------------------------------

    def request_resilient(
        self,
        recipient: str,
        kind: str,
        payload: Any,
        size: int = 0,
        parent: Span | None = None,
        ctx: QueryContext | None = None,
    ) -> Event:
        """An RPC that cannot hang the caller.

        With the fault layer inactive this *is* ``network.request`` —
        same events, same costs, bit-identical schedules.  Active, the
        request runs under a timeout/retry/backoff loop and the returned
        event resolves to :data:`RPC_FAILED` once the peer is hopeless,
        declaring it dead in this node's membership view (shared, or
        per-node under gossip) so the DHT ring repairs around it.  An
        overloaded peer may instead answer :data:`RPC_SHED` — alive but
        shedding; that reply passes through as-is and is never grounds
        for a death declaration.  Callers must compare with ``is``
        (the sentinels raise on truth-testing).
        """
        if self.membership is None or not self.config.faults.active:
            return self.network.request(
                self.node_id, recipient, kind, payload, size=size, parent=parent
            )
        return self.sim.process(
            self._request_with_retry(recipient, kind, payload, size, parent, ctx)
        )

    def _request_with_retry(
        self,
        recipient: str,
        kind: str,
        payload: Any,
        size: int,
        parent: Span | None,
        ctx: QueryContext | None = None,
    ) -> Generator[Event, Any, Any]:
        faults = self.config.faults
        membership = self.membership
        assert membership is not None
        attempts = faults.max_retries + 1
        for attempt in range(attempts):
            if not membership.is_live(recipient):
                # Someone already declared the peer dead: fail fast so
                # the caller reroutes instead of burning timeouts.
                self.counters.increment("rpc_failfast")
                self.recorder.record_event(
                    "rpc_failfast",
                    ctx,
                    node=self.node_id,
                    detail={"to": recipient, "kind": kind},
                )
                return RPC_FAILED
            started = self.sim.now
            reply = self.network.request(
                self.node_id, recipient, kind, payload, size=size, parent=parent
            )
            index, value = yield self.sim.any_of(
                [reply, self.sim.timeout(faults.rpc_timeout)]
            )
            if index == 0:
                return value
            self.counters.increment("rpc_timeouts")
            self.recorder.record_event(
                "rpc_timeout",
                ctx,
                node=self.node_id,
                detail={"to": recipient, "kind": kind, "attempt": attempt},
            )
            if self.tracer.enabled:
                self.tracer.record(
                    f"timeout:{kind}",
                    "network",
                    started,
                    self.sim.now,
                    parent=parent,
                    node=self.node_id,
                    attrs={"to": recipient, "attempt": attempt},
                )
            if attempt + 1 < attempts:
                backoff = faults.backoff_delay(attempt, self._backoff_rng)
                self.counters.increment("rpc_retries")
                self.recorder.record_event(
                    "rpc_retry",
                    ctx,
                    node=self.node_id,
                    detail={"to": recipient, "kind": kind, "attempt": attempt + 1},
                )
                if self.tracer.enabled:
                    self.tracer.record(
                        f"retry:{kind}",
                        "queueing",
                        self.sim.now,
                        self.sim.now + backoff,
                        parent=parent,
                        node=self.node_id,
                        attrs={"to": recipient, "attempt": attempt + 1},
                    )
                yield self.sim.timeout(backoff)
        if membership.is_live(recipient) and len(membership.live_nodes()) > 1:
            membership.declare_dead(recipient)
            self.counters.increment("peers_declared_dead")
            self.recorder.record_event(
                "peer_declared_dead",
                ctx,
                node=self.node_id,
                detail={"peer": recipient, "kind": kind},
            )
            if self.tracer.enabled:
                self.tracer.record(
                    f"failover:{recipient}",
                    "network",
                    self.sim.now,
                    self.sim.now,
                    parent=parent,
                    node=self.node_id,
                    attrs={"kind": kind},
                )
        self.recorder.record_event(
            "rpc_failed",
            ctx,
            node=self.node_id,
            detail={"to": recipient, "kind": kind},
        )
        return RPC_FAILED

    # -- introspection ---------------------------------------------------------

    @property
    def pending_requests(self) -> int:
        """Undispatched + queued coordinator requests — the hotspot signal."""
        return len(self.inbox) + len(self._coord_queue)

    # -- scan service ------------------------------------------------------

    def local_blocks(self, block_ids: list[BlockId]) -> list[Block]:
        """Resolve block ids against this node's local disk."""
        local = self.catalog.blocks_on(self.node_id)
        out = []
        for block_id in block_ids:
            block = local.get(block_id)
            if block is None:
                raise StorageError(
                    f"block {block_id} not on node {self.node_id}"
                )
            out.append(block)
        return out

    def scan_locally(
        self,
        query: AggregationQuery,
        block_ids: list[BlockId],
        parent: Span | None = None,
    ) -> Generator[Event, Any, dict[CellKey, SummaryVector]]:
        """Read + aggregate local blocks, charging disk and CPU time."""
        span = self.tracer.begin(
            "scan",
            "compute",
            parent=parent,
            node=self.node_id,
            attrs={"blocks": len(block_ids)},
        )
        blocks = self.local_blocks(block_ids)
        for block in blocks:
            yield self.disk.read(block.nbytes, parent=span if span else parent)
        cells, stats = scan_blocks(
            blocks, query, columnar=self.config.columnar_scan
        )
        cpu = stats.records_scanned * self.cost.scan_cost_per_record
        if span is not None and cpu > 0:
            self.tracer.record(
                "scan:aggregate",
                "compute",
                self.sim.now,
                self.sim.now + cpu,
                parent=span,
                node=self.node_id,
                attrs={"records": stats.records_scanned},
            )
        yield self.sim.timeout(cpu)
        self.counters.increment("blocks_scanned", stats.blocks_read)
        self.counters.increment("records_scanned", stats.records_scanned)
        self.tracer.end(span)
        return cells

    # -- liveness / introspection RPCs (serve quiesce barrier) -------------

    def _handle_ping(self, message: Message) -> Generator[Event, Any, None]:
        """Liveness probe: answers as soon as a service worker is free."""
        yield self.sim.timeout(0.0)
        self.network.respond(message, {"node": self.node_id, "ok": True}, size=16)

    def _handle_stats(self, message: Message) -> Generator[Event, Any, None]:
        """Idleness snapshot for an external driver.

        ``inflight`` excludes this stats request itself, so a fully idle
        node reports ``pending == 0 and inflight == 0`` — the serve
        driver's quiesce barrier between replayed queries.
        """
        yield self.sim.timeout(0.0)
        self.network.respond(
            message,
            {
                "node": self.node_id,
                "pending": self.pending_requests,
                "service_queue": len(self._service_queue),
                "inflight": self._inflight - 1,
                "handled": self.counters.get("handled:evaluate"),
            },
            size=64,
        )

    def _handle_scan(self, message: Message) -> Generator[Event, Any, None]:
        yield self.sim.timeout(self.cost.request_overhead)
        query: AggregationQuery = message.payload["query"]
        block_ids: list[BlockId] = message.payload["block_ids"]
        cells = yield self.sim.process(
            self.scan_locally(query, block_ids, parent=message.span)
        )
        self.network.respond(
            message, cells, size=len(cells) * self.cost.cell_wire_size
        )

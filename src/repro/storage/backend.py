"""Storage catalog and the raw-scan aggregation kernel.

:class:`StorageCatalog` is the cluster's on-disk state: every block,
placed on its owning node by the DHT partitioner.  :func:`scan_blocks`
is the Galileo-side aggregation kernel — the expensive code path STASH
exists to avoid — and :func:`ground_truth_cells` is the single-threaded
oracle used throughout the test suite for result verification.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.keys import CellKey
from repro.data.block import Block, BlockId, partition_into_blocks
from repro.data.observation import ObservationBatch
from repro.data.statistics import (
    SummaryFrame,
    SummaryVector,
    grouped_summaries_scalar,
)
from repro.dht.partitioner import Partitioner
from repro.errors import StorageError
from repro.geo.binning import decode_bin_ids, supports_bin_ids
from repro.query.model import AggregationQuery


@dataclass(frozen=True)
class ScanStats:
    """Cost drivers of one scan: what the simulation charges time for."""

    blocks_read: int
    bytes_read: int
    records_scanned: int


class StorageCatalog:
    """All blocks in the cluster, placed by the partitioner.

    Blocks are (geohash, day) files at ``block_precision``; ownership is
    decided by the coarser DHT partition prefix of the block's geohash
    (Galileo's "many block files per node partition" layout).
    """

    def __init__(self, partitioner: Partitioner, block_precision: int | None = None):
        self.partitioner = partitioner
        if block_precision is None:
            block_precision = partitioner.partition_precision
        if block_precision < partitioner.partition_precision:
            raise StorageError(
                "block_precision must be >= the DHT partition precision"
            )
        self.block_precision = block_precision
        #: node id -> {block id -> block}
        self._by_node: dict[str, dict[BlockId, Block]] = {
            node: {} for node in partitioner.node_ids
        }
        self._block_index: dict[BlockId, str] = {}
        #: day -> sorted list of block geohashes (prefix range queries).
        self._day_index: dict[str, list[str]] = {}

    # -- ingest ------------------------------------------------------------

    def ingest(self, batch: ObservationBatch) -> list[BlockId]:
        """Partition a batch into blocks and place them.

        Re-ingesting data for an existing (geohash, day) block merges the
        batches (streaming append).  Returns the ids of every block
        created *or modified* — the set a caching layer must invalidate
        (paper IV-D: the PLM tracks up-to-date cells across updates).
        """
        import bisect

        blocks = partition_into_blocks(batch, self.block_precision)
        touched: list[BlockId] = []
        for block_id, block in blocks.items():
            node = self.partitioner.node_for(block_id.geohash)
            existing = self._by_node[node].get(block_id)
            if existing is not None:
                block = Block(
                    block_id=block_id, batch=existing.batch.concat(block.batch)
                )
            else:
                day_list = self._day_index.setdefault(block_id.day, [])
                bisect.insort(day_list, block_id.geohash)
            self._by_node[node][block_id] = block
            self._block_index[block_id] = node
            touched.append(block_id)
        return sorted(touched)

    # -- lookup ------------------------------------------------------------

    @property
    def num_blocks(self) -> int:
        return len(self._block_index)

    @property
    def total_records(self) -> int:
        return sum(
            len(b) for blocks in self._by_node.values() for b in blocks.values()
        )

    def node_of(self, block_id: BlockId) -> str:
        try:
            return self._block_index[block_id]
        except KeyError:
            raise StorageError(f"unknown block {block_id}") from None

    def blocks_on(self, node_id: str) -> dict[BlockId, Block]:
        try:
            return self._by_node[node_id]
        except KeyError:
            raise StorageError(f"unknown node {node_id!r}") from None

    def get_block(self, block_id: BlockId) -> Block | None:
        node = self._block_index.get(block_id)
        return None if node is None else self._by_node[node][block_id]

    def blocks_for_query(self, query: AggregationQuery) -> list[BlockId]:
        """Existing blocks whose extent overlaps the (snapped) query."""
        from repro.geo.cover import covering_cells
        from repro.geo.temporal import TemporalResolution

        prefixes = set(
            covering_cells(query.snapped_bbox(), self.block_precision)
        )
        out: list[BlockId] = []
        for key in query.snapped_time_range().covering_keys(TemporalResolution.DAY):
            day = str(key)
            for geohash in self._day_index.get(day, ()):
                if geohash in prefixes:
                    out.append(BlockId(geohash=geohash, day=day))
        return sorted(out)

    def blocks_for_cell(self, key) -> list[BlockId]:
        """Existing blocks backing one cell (the PLM's block set).

        A cell finer than the block precision lives in exactly one block
        per covered day; a coarser cell spans every existing block whose
        geohash extends the cell's (found via a prefix range scan on the
        per-day index).
        """
        import bisect

        from repro.geo.temporal import TemporalResolution

        time_key = key.time_key
        if time_key.resolution in (TemporalResolution.DAY, TemporalResolution.HOUR):
            days = [
                time_key
                if time_key.resolution == TemporalResolution.DAY
                else time_key.parent()
            ]
        elif time_key.resolution == TemporalResolution.MONTH:
            days = time_key.children()
        else:  # YEAR
            days = [day for month in time_key.children() for day in month.children()]

        out: list[BlockId] = []
        geohash = key.geohash
        for day_key in days:
            day = str(day_key)
            day_list = self._day_index.get(day)
            if not day_list:
                continue
            if len(geohash) >= self.block_precision:
                prefix = geohash[: self.block_precision]
                index = bisect.bisect_left(day_list, prefix)
                if index < len(day_list) and day_list[index] == prefix:
                    out.append(BlockId(geohash=prefix, day=day))
            else:
                start = bisect.bisect_left(day_list, geohash)
                for candidate in day_list[start:]:
                    if not candidate.startswith(geohash):
                        break
                    out.append(BlockId(geohash=candidate, day=day))
        return out

    def blocks_by_node(self, block_ids: list[BlockId]) -> dict[str, list[BlockId]]:
        """Group block ids by owning node (the scatter plan)."""
        plan: dict[str, list[BlockId]] = {}
        for block_id in block_ids:
            plan.setdefault(self.node_of(block_id), []).append(block_id)
        return plan

    def rebalance(self, partitioner: Partitioner) -> tuple[int, int]:
        """Re-place every block under a new partitioner (elastic resize).

        Used when nodes join or leave: blocks whose owner changes are
        moved; the rest stay put.  With a
        :class:`~repro.dht.partitioner.ConsistentHashPartitioner` only
        the departed/arrived nodes' keys move — the property its tests
        verify.  Returns (blocks moved, blocks total).  Any caching layer
        above must be rebuilt or invalidated by the caller; ownership of
        *cells* follows the same partitioner.
        """
        if partitioner.partition_precision != self.partitioner.partition_precision:
            raise StorageError("rebalance cannot change the partition precision")
        moved = 0
        new_by_node: dict[str, dict[BlockId, Block]] = {
            node: {} for node in partitioner.node_ids
        }
        for block_id, old_node in list(self._block_index.items()):
            block = self._by_node[old_node][block_id]
            new_node = partitioner.node_for(block_id.geohash)
            if new_node != old_node:
                moved += 1
            new_by_node[new_node][block_id] = block
            self._block_index[block_id] = new_node
        self._by_node = new_by_node
        self.partitioner = partitioner
        return moved, len(self._block_index)


def _scan_frame(
    blocks: list[Block], query: AggregationQuery
) -> tuple[SummaryFrame | None, int, ScanStats]:
    """Columnar scan: one :class:`SummaryFrame` per block, merged in order.

    Returns ``(merged frame or None if nothing matched, spatial
    precision, stats)``.  Per-block frames bin on packed uint64 ids
    (:meth:`ObservationBatch.bin_ids`) and merge column-wise; no
    per-cell objects are built here — callers materialize at the
    query/response boundary.
    """
    snapped_box = query.snapped_bbox()
    snapped_time = query.snapped_time_range()
    precision = query.resolution.spatial
    resolution = query.resolution.temporal
    frames: list[SummaryFrame] = []
    bytes_read = 0
    records = 0
    for block in blocks:
        bytes_read += block.nbytes
        records += len(block)
        batch = block.batch.filter_bbox(snapped_box).filter_time(snapped_time)
        if len(batch) == 0:
            continue
        frames.append(
            SummaryFrame.from_groups(
                batch.bin_ids(precision, resolution), batch.attributes
            )
        )
    stats = ScanStats(
        blocks_read=len(blocks), bytes_read=bytes_read, records_scanned=records
    )
    merged = SummaryFrame.merge_all(frames) if frames else None
    return merged, precision, stats


def _frame_to_cells(
    frame: SummaryFrame | None, query: AggregationQuery
) -> dict[CellKey, SummaryVector]:
    """Materialize a merged scan frame into per-cell summary vectors."""
    if frame is None:
        return {}
    pairs = decode_bin_ids(
        frame.ids, query.resolution.spatial, query.resolution.temporal
    )
    return {
        CellKey(geohash=gh, time_key=key): vector
        for (gh, key), vector in zip(pairs, frame.vectors())
    }


def scan_blocks(
    blocks: list[Block], query: AggregationQuery, *, columnar: bool = True
) -> tuple[dict[CellKey, SummaryVector], ScanStats]:
    """Aggregate raw blocks into query-resolution cells (full cell extents).

    Every block is read in full (you cannot seek inside a block), records
    are filtered to the query's *snapped* extent, then binned and
    summarized with one vectorized grouped pass per block.

    The default ``columnar`` path bins on packed integer ids and merges
    per-block :class:`SummaryFrame` columns, materializing
    :class:`SummaryVector` objects once at the end; ``columnar=False``
    (or a resolution the packed id scheme cannot represent) takes the
    frozen string-label scalar path — the equivalence baseline.  Both
    produce bitwise-identical summaries: grouping order and float
    summation order are the same.

    Scans never apply the query's attribute selection: cells cache
    *every* attribute so they stay reusable by any later query, and
    projection happens only on responses (``SummaryVector.project``).
    """
    if columnar and supports_bin_ids(
        query.resolution.spatial, query.resolution.temporal
    ):
        frame, _, stats = _scan_frame(blocks, query)
        return _frame_to_cells(frame, query), stats

    snapped_box = query.snapped_bbox()
    snapped_time = query.snapped_time_range()
    out: dict[CellKey, SummaryVector] = {}
    bytes_read = 0
    records = 0
    for block in blocks:
        bytes_read += block.nbytes
        records += len(block)
        batch = block.batch.filter_bbox(snapped_box).filter_time(snapped_time)
        if len(batch) == 0:
            continue
        keys = batch.bin_keys(query.resolution.spatial, query.resolution.temporal)
        for label, vector in grouped_summaries_scalar(
            keys, batch.attributes
        ).items():
            cell_key = CellKey.parse(str(label))
            existing = out.get(cell_key)
            out[cell_key] = vector if existing is None else existing.merge(vector)
    stats = ScanStats(
        blocks_read=len(blocks), bytes_read=bytes_read, records_scanned=records
    )
    return out, stats


def ground_truth_cells(
    batch: ObservationBatch, query: AggregationQuery
) -> dict[CellKey, SummaryVector]:
    """Oracle: aggregate a raw dataset directly (no blocks, no cluster).

    Used by tests to verify that every system variant — basic scan,
    cold STASH, hot STASH, rolled-up STASH, replicated STASH, the
    ElasticSearch baseline — produces identical answers.  Unlike
    :func:`scan_blocks` this sits at the *response* boundary, so it does
    apply the query's attribute selection (and polygon footprint) to
    what it returns.
    """
    sub = batch.filter_bbox(query.snapped_bbox()).filter_time(
        query.snapped_time_range()
    )
    if len(sub) == 0:
        return {}
    precision = query.resolution.spatial
    resolution = query.resolution.temporal
    if supports_bin_ids(precision, resolution):
        frame = SummaryFrame.from_groups(
            sub.bin_ids(precision, resolution), sub.attributes
        )
        pairs = decode_bin_ids(frame.ids, precision, resolution)
        out = {
            CellKey(geohash=gh, time_key=key): vector
            for (gh, key), vector in zip(pairs, frame.vectors())
        }
    else:
        keys = sub.bin_keys(precision, resolution)
        out = {
            CellKey.parse(str(label)): vector
            for label, vector in grouped_summaries_scalar(
                keys, sub.attributes
            ).items()
        }
    if query.attributes is not None:
        out = {key: vec.project(list(query.attributes)) for key, vec in out.items()}
    if query.polygon is not None:
        footprint = set(query.footprint())
        out = {key: vec for key, vec in out.items() if key in footprint}
    return out

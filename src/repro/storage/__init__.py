"""Galileo-like distributed block storage and raw-scan aggregation.

The paper's back-end (section VI-C): a zero-hop-DHT storage system
partitioning observations into geohash-prefixed blocks, with distributed
scan + aggregate evaluation.  STASH sits on top of this layer and caches
its outputs.
"""

from repro.storage.backend import StorageCatalog, scan_blocks, ground_truth_cells
from repro.storage.node import StorageNode

__all__ = ["StorageCatalog", "scan_blocks", "ground_truth_cells", "StorageNode"]

"""Per-node overload protection: admission control + circuit breaker.

A node under sustained load protects itself in two stages:

1. **Load shedding** at admission.  The dispatcher consults
   :meth:`OverloadGuard.shed_class` before enqueueing work.  Priority-0
   background work (``populate``, ``replicate``, ``distress``) is shed
   once the pending-request depth exceeds ``queue_limit``; priority-1
   cache work (``fetch_cells``, ``scan``) is shed above twice that.
   Evaluate requests are never shed — the coordinator owes the client an
   answer, degraded if need be.  Shed RPCs are answered immediately with
   the ``RPC_SHED`` sentinel (an explicit fast rejection, not a timeout,
   and never grounds for declaring the peer dead).

2. **Circuit breaking**.  ``breaker_sheds`` sheds within a sliding
   ``breaker_window`` trip the breaker open for ``breaker_cooldown``
   seconds.  While open, a coordinator skips the expensive
   disk-resolution path for cache misses and returns an explicitly
   degraded (completeness < 1) answer — converting overload into an
   honest partial result instead of a cascade of timeouts.  Degraded
   answers are never cached, so the breaker can only omit cells, never
   fabricate them.
"""

from __future__ import annotations

from collections import deque

from repro.config import OverloadConfig

#: Message kinds that may be shed, mapped to shed priority (lower sheds
#: first).  Anything absent — evaluate traffic, gossip, repair control —
#: is never shed.
SHED_PRIORITY: dict[str, int] = {
    "populate": 0,
    "replicate": 0,
    "distress": 0,
    "fetch_cells": 1,
    "scan": 1,
}


class OverloadGuard:
    """Admission decisions and breaker state for one node."""

    def __init__(self, config: OverloadConfig):
        self.config = config
        self._shed_times: deque[float] = deque()
        self._open_until = float("-inf")
        #: Telemetry.
        self.shed_total = 0
        self.breaker_opens = 0

    def shed_class(self, kind: str, depth: int) -> bool:
        """Should a ``kind`` message be shed at pending depth ``depth``?"""
        priority = SHED_PRIORITY.get(kind)
        if priority is None:
            return False
        limit = self.config.queue_limit * (priority + 1)
        return depth > limit

    def record_shed(self, now: float) -> None:
        """Account one shed message; may trip the breaker."""
        self.shed_total += 1
        window_start = now - self.config.breaker_window
        times = self._shed_times
        times.append(now)
        while times and times[0] < window_start:
            times.popleft()
        if (
            len(times) >= self.config.breaker_sheds
            and now >= self._open_until
        ):
            self._open_until = now + self.config.breaker_cooldown
            self.breaker_opens += 1
            times.clear()

    def breaker_open(self, now: float) -> bool:
        return now < self._open_until

"""Shared zero-hop cluster membership with DHT ring repair.

Galileo's zero-hop DHT means every node holds the complete partition
map; this module extends that to liveness.  :class:`ClusterMembership`
is the single shared view of which nodes are currently live.  When a
coordinator exhausts its retries against a peer it declares the peer
dead here; the membership then repairs the ring by rebuilding the
partition map without the dead node (``Partitioner.without_node``), so
subsequent lookups route around the failure.  A restarted node is
revived and the original map restored.

``RPC_FAILED`` is the sentinel a fault-aware RPC leg resolves to once
its target is (or has been declared) dead; ``RPC_SHED`` is its sibling
for a leg an overloaded peer rejected outright (fast explicit failure —
the peer is alive, just shedding).  Both must be compared with ``is``;
evaluating either in boolean context raises ``TypeError`` so an
accidental ``if reply:`` fails loudly instead of silently treating a
failure as data.  Use :func:`rpc_ok` when you only care whether a reply
carries a real value.

When no node has ever been declared dead, :meth:`node_for` delegates to
the original partitioner untouched, so fault-free runs route exactly as
before this layer existed.
"""

from __future__ import annotations

from repro.dht.partitioner import Partitioner
from repro.errors import FaultError


class _RpcSentinel:
    """Interned per-name sentinel for a failed RPC leg."""

    _instances: dict[str, "_RpcSentinel"] = {}

    def __new__(cls, name: str):
        instance = cls._instances.get(name)
        if instance is None:
            instance = cls._instances[name] = super().__new__(cls)
            instance._name = name
        return instance

    def __repr__(self) -> str:
        return self._name

    def __bool__(self) -> bool:
        raise TypeError(
            f"{self._name} has no truth value; compare with "
            f"'is {self._name}' (or use rpc_ok())"
        )


#: The peer is (or has been declared) dead and retries are exhausted.
RPC_FAILED = _RpcSentinel("RPC_FAILED")
#: The peer is alive but shed the request under overload (no retries —
#: the rejection is an explicit, immediate signal).
RPC_SHED = _RpcSentinel("RPC_SHED")


def rpc_ok(reply: object) -> bool:
    """True when ``reply`` is a real value, not an RPC failure sentinel."""
    return reply is not RPC_FAILED and reply is not RPC_SHED


class ClusterMembership:
    """The cluster's shared view of node liveness and the repaired ring.

    A real deployment would gossip this; in the zero-hop simulation the
    shared object *is* the gossip — every node observes a declaration
    immediately, which keeps the failure model deterministic.
    """

    def __init__(self, partitioner: Partitioner):
        self._base = partitioner
        #: Current routing view; == ``_base`` while every node is live.
        self._view: Partitioner = partitioner
        self._dead: set[str] = set()
        #: Monotone count of dead-declarations (metrics/gauges).
        self.failovers = 0

    # -- queries ----------------------------------------------------------

    @property
    def partitioner(self) -> Partitioner:
        """The current (possibly repaired) partition map."""
        return self._view

    def is_live(self, node_id: str) -> bool:
        return node_id not in self._dead

    def live_nodes(self) -> list[str]:
        return [n for n in self._base.node_ids if n not in self._dead]

    def dead_nodes(self) -> list[str]:
        return sorted(self._dead)

    def node_for(self, geohash: str) -> str:
        """Owner of a geohash under the current repaired ring."""
        return self._view.node_for(geohash)

    # -- transitions ------------------------------------------------------

    def declare_dead(self, node_id: str) -> bool:
        """Mark a node dead and repair the ring around it.

        Returns True if this call changed the view (first declaration),
        False if the node was already dead.  Refuses to kill the last
        live node — some owner must always exist for every key.
        """
        if node_id not in self._base.node_ids:
            raise FaultError(f"unknown node {node_id!r}")
        if node_id in self._dead:
            return False
        if len(self.live_nodes()) <= 1:
            raise FaultError(
                f"refusing to declare last live node {node_id!r} dead"
            )
        self._dead.add(node_id)
        self.failovers += 1
        self._rebuild_view()
        return True

    def revive(self, node_id: str) -> bool:
        """Bring a node back into the ring (after a restart).

        Returns True if the node was dead, False if it was already live.
        """
        if node_id not in self._base.node_ids:
            raise FaultError(f"unknown node {node_id!r}")
        if node_id not in self._dead:
            return False
        self._dead.discard(node_id)
        self._rebuild_view()
        return True

    def _rebuild_view(self) -> None:
        """Recompute the routing view as base minus dead, in base order.

        Always derived from the *full* remaining dead-set, never patched
        incrementally: reviving one node while another is still dead must
        yield the repaired-map-minus-the-still-dead, not the original map.
        """
        self._view = self._base.without_nodes(self._dead)

"""Epidemic (gossip) membership: per-node liveness views that converge.

PR 2 modeled liveness as one instantaneously shared ``ClusterMembership``
— "the shared object *is* the gossip".  This module replaces that with
the real thing: every participant (each storage node, plus the client)
keeps its **own** versioned view of the cluster, and views converge by
periodic push-gossip rounds carried as simulated network messages.

The failure-detection design follows SWIM / Dynamo-style stores:

* Each participant's record of a peer is ``(incarnation, heartbeat,
  state)``.  A node's own heartbeat counter advances every gossip round;
  its incarnation advances only when it must refute a rumor of its own
  death (or when it rejoins after a crash).
* Merge precedence: a higher incarnation wins outright.  Within one
  incarnation, DEAD is sticky (only an incarnation bump resurrects) and
  otherwise a larger heartbeat is fresh liveness evidence.
* A peer whose heartbeat makes no progress for ``suspect_after`` seconds
  becomes SUSPECT; after ``dead_after`` more seconds of silence it is
  confirmed DEAD, the ring is repaired around it
  (``Partitioner.without_nodes``), and confirmed-death callbacks fire
  (anti-entropy cache repair hangs off these).
* A participant that sees *itself* rumored SUSPECT/DEAD bumps its own
  incarnation — the refutation then spreads epidemically.

With push fanout ``f`` over ``n`` participants a new rumor reaches the
whole cluster in ``O(log_f n)`` rounds with high probability, so the
expected convergence time after an event is roughly
``interval * log_f(n)`` plus one-way network latency per hop.

Everything is deterministic under a fixed seed: round timers are daemon
timeouts created in participant order, peer choice uses a dedicated
``numpy`` generator per agent, and ties resolve by the simulator's
sequence numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.config import CostModel, GossipConfig
from repro.dht.partitioner import Partitioner
from repro.errors import FaultError
from repro.sim.engine import Simulator
from repro.sim.network import Network


class PeerState:
    """Liveness states of the SWIM-style failure detector."""

    ALIVE = 0
    SUSPECT = 1
    DEAD = 2

    NAMES = {ALIVE: "alive", SUSPECT: "suspect", DEAD: "dead"}


@dataclass
class PeerRecord:
    """One participant's knowledge about one peer."""

    #: Epoch of the peer's identity; bumped by the peer itself on
    #: refutation or rejoin.  Higher incarnation always wins a merge.
    incarnation: int = 0
    #: Liveness counter within the incarnation; the peer advances it
    #: every gossip round while alive.
    heartbeat: int = 0
    state: int = PeerState.ALIVE
    #: Local simulated time when liveness evidence last advanced.  Not
    #: gossiped — each view ages peers against its own clock.
    updated_at: float = 0.0


class GossipMembership:
    """One participant's versioned view of cluster liveness.

    Exposes the same routing surface as
    :class:`repro.faults.membership.ClusterMembership` (``partitioner``,
    ``node_for``, ``is_live``, ``live_nodes``, ``dead_nodes``,
    ``declare_dead``, ``revive``, ``failovers``) so nodes and the client
    are agnostic to which membership implementation they hold — plus the
    gossip surface (``digest``/``merge``/``heartbeat``/``age``).
    """

    def __init__(
        self,
        owner_id: str,
        partitioner: Partitioner,
        config: GossipConfig,
        participants: list[str] | None = None,
    ):
        self.owner_id = owner_id
        self._base = partitioner
        self.config = config
        if participants is None:
            participants = list(partitioner.node_ids)
            if owner_id not in participants:
                participants.append(owner_id)
        if owner_id not in participants:
            raise FaultError(f"owner {owner_id!r} not among participants")
        self.participants = list(participants)
        self._records: dict[str, PeerRecord] = {}
        self._view: Partitioner = partitioner
        self._view_dirty = False
        #: Monotone count of not-dead -> dead transitions in *this* view.
        self.failovers = 0
        #: Fired with the peer id when a storage node is confirmed dead
        #: (any evidence source: aging, direct declaration, or merge).
        self.on_dead: list[Callable[[str], None]] = []
        #: Fired with the peer id when a dead storage node is seen alive
        #: again (a rejoin at a higher incarnation).
        self.on_alive: list[Callable[[str], None]] = []
        self.reset(0.0)

    # -- routing surface (ClusterMembership-compatible) --------------------

    @property
    def partitioner(self) -> Partitioner:
        """The current (possibly repaired) partition map under this view."""
        if self._view_dirty:
            self._rebuild_view()
        return self._view

    def is_live(self, node_id: str) -> bool:
        record = self._records.get(node_id)
        return record is None or record.state != PeerState.DEAD

    def live_nodes(self) -> list[str]:
        return [n for n in self._base.node_ids if self.is_live(n)]

    def dead_nodes(self) -> list[str]:
        return sorted(
            n for n in self._base.node_ids if not self.is_live(n)
        )

    def suspect_nodes(self) -> list[str]:
        return sorted(
            n
            for n in self._base.node_ids
            if self._records[n].state == PeerState.SUSPECT
        )

    def node_for(self, geohash: str) -> str:
        """Owner of a geohash under this view's repaired ring."""
        if self._view_dirty:
            self._rebuild_view()
        return self._view.node_for(geohash)

    def declare_dead(self, node_id: str) -> bool:
        """Direct evidence (retries exhausted): mark the peer dead *here*.

        Unlike the shared membership this only changes the local view;
        the declaration spreads to other views via gossip.  Mirrors
        ``ClusterMembership.declare_dead`` semantics: True on the first
        declaration, False if already dead, ``FaultError`` for unknown
        nodes or when it would kill the last live node.
        """
        if node_id not in self._base.node_ids:
            raise FaultError(f"unknown node {node_id!r}")
        record = self._records[node_id]
        if record.state == PeerState.DEAD:
            return False
        if len(self.live_nodes()) <= 1:
            raise FaultError(
                f"refusing to declare last live node {node_id!r} dead"
            )
        self._transition(node_id, record, PeerState.DEAD)
        return True

    def revive(self, node_id: str) -> bool:
        """Direct evidence that a node is back (e.g. it answered an RPC)."""
        if node_id not in self._base.node_ids:
            raise FaultError(f"unknown node {node_id!r}")
        record = self._records[node_id]
        if record.state != PeerState.DEAD:
            return False
        record.incarnation += 1  # model the rejoin epoch this implies
        record.heartbeat = 0
        self._transition(node_id, record, PeerState.ALIVE)
        return True

    # -- gossip surface ----------------------------------------------------

    def digest(self) -> dict[str, tuple[int, int, int]]:
        """Immutable snapshot of this view, suitable for the wire."""
        return {
            peer: (r.incarnation, r.heartbeat, r.state)
            for peer, r in self._records.items()
        }

    def heartbeat(self, now: float) -> None:
        """Advance the owner's own liveness counter (once per round)."""
        record = self._records[self.owner_id]
        record.heartbeat += 1
        record.updated_at = now

    def merge(self, digest: dict[str, tuple[int, int, int]], now: float) -> None:
        """Fold a received digest into this view (push-gossip receive)."""
        for peer, entry in digest.items():
            record = self._records.get(peer)
            if record is None:
                continue  # outside this view's universe
            incarnation, heartbeat, state = entry
            if peer == self.owner_id:
                self._merge_self(record, incarnation, state, now)
                continue
            if incarnation > record.incarnation:
                record.incarnation = incarnation
                record.heartbeat = heartbeat
                record.updated_at = now
                self._transition(peer, record, state)
            elif incarnation == record.incarnation:
                if record.state == PeerState.DEAD:
                    continue  # sticky: stale pre-death rumors can't revive
                if state == PeerState.DEAD:
                    self._transition(peer, record, PeerState.DEAD)
                elif heartbeat > record.heartbeat:
                    record.heartbeat = heartbeat
                    record.updated_at = now
                    self._transition(peer, record, PeerState.ALIVE)

    def age(self, now: float) -> None:
        """Apply the suspect -> dead clock to every peer (one sweep)."""
        cfg = self.config
        for peer, record in self._records.items():
            if peer == self.owner_id or record.state == PeerState.DEAD:
                continue
            silence = now - record.updated_at
            if record.state == PeerState.ALIVE:
                if silence > cfg.suspect_after:
                    self._transition(peer, record, PeerState.SUSPECT)
            elif silence > cfg.suspect_after + cfg.dead_after:
                if (
                    peer in self._base.node_ids
                    and len(self.live_nodes()) <= 1
                ):
                    continue  # never age out the last live node
                self._transition(peer, record, PeerState.DEAD)

    def reset(self, now: float) -> None:
        """Forget everything (crash): a fresh view assuming peers alive."""
        self._records = {
            peer: PeerRecord(updated_at=now) for peer in self.participants
        }
        self._view = self._base
        self._view_dirty = False

    def rejoin(self, incarnation: int, now: float) -> None:
        """Come back after a crash under a strictly newer incarnation."""
        record = self._records[self.owner_id]
        record.incarnation = max(incarnation, record.incarnation + 1)
        record.heartbeat = 1
        record.state = PeerState.ALIVE
        record.updated_at = now

    # -- internals ---------------------------------------------------------

    def _merge_self(
        self, record: PeerRecord, incarnation: int, state: int, now: float
    ) -> None:
        """Handle a rumor about *ourselves*; refute suspicion/death."""
        if incarnation >= record.incarnation and state != PeerState.ALIVE:
            record.incarnation = incarnation + 1
            record.heartbeat += 1
            record.state = PeerState.ALIVE
            record.updated_at = now
        elif incarnation > record.incarnation:
            record.incarnation = incarnation
            record.updated_at = now

    def _transition(self, peer: str, record: PeerRecord, state: int) -> None:
        if record.state == state:
            return
        was_dead = record.state == PeerState.DEAD
        record.state = state
        is_node = peer in self._base.node_ids
        if state == PeerState.DEAD and is_node:
            self.failovers += 1
            self._view_dirty = True
            for callback in self.on_dead:
                callback(peer)
        elif was_dead and is_node:
            self._view_dirty = True
            if state == PeerState.ALIVE:
                for callback in self.on_alive:
                    callback(peer)

    def _rebuild_view(self) -> None:
        dead = {n for n in self._base.node_ids if not self.is_live(n)}
        if len(dead) >= len(self._base.node_ids):
            # Total blackout under this view; keep routing over the base
            # map rather than over nothing (requests fail fast anyway).
            self._view = self._base
        else:
            self._view = self._base.without_nodes(dead)
        self._view_dirty = False


class GossipAgent:
    """The process side of one participant's membership.

    Owns a dedicated ``gossip:<id>`` network endpoint (so gossip traffic
    never competes with a node's request inbox or perturbs its hotspot
    queue-depth signal) and two simulation processes:

    * a receive loop merging incoming digests, and
    * a round loop on a **daemon** timeout: advance our heartbeat, age
      peers against the local clock, and push our digest to ``fanout``
      peers chosen by a dedicated deterministic RNG.

    Daemon timeouts keep gossip running during queries without keeping
    the schedule alive once real work drains.

    The incarnation survives a crash on this object — the stand-in for
    an epoch counter persisted to the node's disk.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        membership: GossipMembership,
        config: GossipConfig,
        cost: CostModel,
        agent_index: int,
        seed: int,
    ):
        self.sim = sim
        self.network = network
        self.membership = membership
        self.config = config
        self.cost = cost
        self.endpoint = f"gossip:{membership.owner_id}"
        self.inbox = network.register(self.endpoint)
        self.rng = np.random.default_rng([seed, 104_729, agent_index])
        self._peers = [
            p for p in membership.participants if p != membership.owner_id
        ]
        self._down = False
        self._epoch = 0
        #: Telemetry: rounds run, digests merged.
        self.rounds = 0
        self.merges = 0

    def start(self) -> None:
        self.sim.process(self._receive_loop())
        self.sim.process(self._round_loop())

    # -- crash / rejoin (driven by the fault injector) ---------------------

    def crash(self) -> None:
        """Node went down: persist the epoch, forget the view."""
        record = self.membership._records.get(self.membership.owner_id)
        if record is not None:
            self._epoch = max(self._epoch, record.incarnation)
        self._down = True
        self.membership.reset(self.sim.now)

    def rejoin(self) -> None:
        """Node restarted: come back under a strictly newer incarnation."""
        self._epoch += 1
        self._down = False
        self.membership.rejoin(self._epoch, self.sim.now)

    # -- processes ---------------------------------------------------------

    def _round_loop(self):
        interval = self.config.interval
        while True:
            yield self.sim.timeout(interval, daemon=True)
            if self._down:
                continue
            now = self.sim.now
            self.membership.heartbeat(now)
            self.membership.age(now)
            self._push()
            self.rounds += 1

    def _push(self) -> None:
        if not self._peers:
            return
        fanout = min(self.config.fanout, len(self._peers))
        picks = self.rng.choice(len(self._peers), size=fanout, replace=False)
        digest = self.membership.digest()
        size = len(digest) * self.config.wire_size_per_entry
        for index in sorted(int(i) for i in picks):
            self.network.send(
                self.endpoint,
                f"gossip:{self._peers[index]}",
                "gossip",
                digest,
                size=size,
            )

    def _receive_loop(self):
        while True:
            message = yield self.inbox.get()
            if self._down:
                continue
            self.membership.merge(message.payload, self.sim.now)
            self.merges += 1


def view_divergence(views: list[GossipMembership]) -> int:
    """Pairwise liveness disagreement across views (a convergence gauge).

    For each storage node, counts the pairs of views that disagree on
    whether it is dead: ``sum(dead_count * alive_count)`` per column.
    0 means every view agrees (converged).
    """
    if not views:
        return 0
    total = 0
    for node_id in views[0]._base.node_ids:
        dead = sum(1 for v in views if not v.is_live(node_id))
        total += dead * (len(views) - dead)
    return total


def suspect_count(views: list[GossipMembership]) -> int:
    """Total SUSPECT entries across views (failure-detector churn gauge)."""
    return sum(len(v.suspect_nodes()) for v in views)

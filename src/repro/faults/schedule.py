"""Declarative fault schedules.

A schedule is a time-ordered list of :class:`FaultEvent` entries applied
to the simulation at exact simulated times, so a given (workload,
schedule) pair produces one canonical execution — fault experiments are
as reproducible as fault-free ones.

Event kinds:

``crash``
    Node goes down at ``at``: its queued and in-flight messages are
    lost, its in-memory caches are wiped, and every message to or from
    it is dropped until a ``restart``.
``restart``
    Node comes back at ``at`` with a cold cache (disk contents survive).
``slow_disk``
    Reads on ``node`` take ``factor`` times longer during [at, until).
``drop_link``
    Messages matching src -> dst are dropped during [at, until).
``delay_link``
    Messages matching src -> dst take ``extra`` additional seconds
    during [at, until).  ``src``/``dst`` of ``None`` match any node.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

from repro.errors import FaultError

#: All recognised event kinds.
FAULT_KINDS = ("crash", "restart", "slow_disk", "drop_link", "delay_link")

#: Kinds that target one node and need no window.
_POINT_KINDS = ("crash", "restart")

#: Kinds active over a [at, until) window.
_WINDOW_KINDS = ("slow_disk", "drop_link", "delay_link")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault."""

    kind: str
    #: Simulated time the fault takes effect.
    at: float
    #: Target node (crash / restart / slow_disk).
    node: str | None = None
    #: End of the effect window (window kinds only).
    until: float | None = None
    #: Disk read-time multiplier (slow_disk).
    factor: float = 1.0
    #: Link matchers (drop_link / delay_link); None matches any node.
    src: str | None = None
    dst: str | None = None
    #: Extra one-way latency in seconds (delay_link).
    extra: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.at < 0:
            raise FaultError(f"fault time must be >= 0, got {self.at}")
        if self.kind in _POINT_KINDS or self.kind == "slow_disk":
            if not self.node:
                raise FaultError(f"{self.kind} event needs a node")
        if self.kind in _WINDOW_KINDS:
            if self.until is None or self.until <= self.at:
                raise FaultError(
                    f"{self.kind} event needs until > at, got "
                    f"at={self.at} until={self.until}"
                )
        if self.kind == "slow_disk" and self.factor <= 0:
            raise FaultError(f"slow_disk factor must be > 0, got {self.factor}")
        if self.kind == "delay_link" and self.extra <= 0:
            raise FaultError(f"delay_link extra must be > 0, got {self.extra}")

    def to_dict(self) -> dict:
        """JSON-ready form with defaulted fields omitted."""
        out = {k: v for k, v in asdict(self).items() if v is not None}
        if self.kind != "slow_disk":
            out.pop("factor", None)
        if self.kind != "delay_link":
            out.pop("extra", None)
        return out


class FaultSchedule:
    """A validated, time-ordered collection of fault events."""

    def __init__(self, events: tuple[FaultEvent, ...] | list[FaultEvent] = ()):
        self.events: tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda e: (e.at, FAULT_KINDS.index(e.kind), str(e)))
        )
        self._validate()

    def _validate(self) -> None:
        """Crash/restart sequencing must be sane per node."""
        down: dict[str, bool] = {}
        for event in self.events:
            if event.kind == "crash":
                if down.get(event.node):
                    raise FaultError(
                        f"node {event.node!r} crashed twice without a restart"
                    )
                down[event.node] = True
            elif event.kind == "restart":
                if not down.get(event.node):
                    raise FaultError(
                        f"restart of {event.node!r} at t={event.at} "
                        "without a preceding crash"
                    )
                down[event.node] = False

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def nodes(self) -> list[str]:
        """Every node named by any event."""
        out: list[str] = []
        for event in self.events:
            for node in (event.node, event.src, event.dst):
                if node is not None and node not in out:
                    out.append(node)
        return out

    # -- (de)serialization -------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {"events": [event.to_dict() for event in self.events]}, indent=2
        )

    @staticmethod
    def from_dict(data: dict) -> "FaultSchedule":
        if not isinstance(data, dict) or "events" not in data:
            raise FaultError("fault schedule JSON must be {'events': [...]}")
        events = []
        for i, raw in enumerate(data["events"]):
            if not isinstance(raw, dict):
                raise FaultError(f"event {i} is not an object: {raw!r}")
            unknown = set(raw) - {
                "kind", "at", "node", "until", "factor", "src", "dst", "extra",
            }
            if unknown:
                raise FaultError(f"event {i} has unknown fields {sorted(unknown)}")
            try:
                events.append(FaultEvent(**raw))
            except TypeError as exc:
                raise FaultError(f"event {i} is malformed: {exc}") from None
        return FaultSchedule(tuple(events))

    @staticmethod
    def from_json(text: str) -> "FaultSchedule":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultError(f"invalid fault schedule JSON: {exc}") from None
        return FaultSchedule.from_dict(data)

    @staticmethod
    def load(path: str) -> "FaultSchedule":
        with open(path, "r", encoding="utf-8") as fh:
            return FaultSchedule.from_json(fh.read())

    # -- convenience builders ---------------------------------------------

    @staticmethod
    def crash_restart(node: str, crash_at: float, restart_at: float) -> "FaultSchedule":
        """The canonical one-node crash/recovery scenario."""
        if restart_at <= crash_at:
            raise FaultError(
                f"restart_at ({restart_at}) must be after crash_at ({crash_at})"
            )
        return FaultSchedule(
            (
                FaultEvent(kind="crash", at=crash_at, node=node),
                FaultEvent(kind="restart", at=restart_at, node=node),
            )
        )

"""Fault injection and failure recovery for the simulated STASH cluster.

The paper assumes a healthy Galileo DHT; production clusters do not get
that luxury.  This package adds a deterministic failure model on top of
the discrete-event simulator:

* :mod:`repro.faults.schedule` — declarative fault schedules (crash,
  restart, link drop/delay, disk slowdown) validated up front;
* :mod:`repro.faults.membership` — the cluster's shared zero-hop view of
  which nodes are live, with DHT ring repair via
  ``Partitioner.without_node`` when a node is declared dead;
* :mod:`repro.faults.gossip` — per-node epidemic membership: versioned
  liveness views, SWIM-style alive/suspect/dead aging, and periodic
  push-gossip rounds (enabled via ``GossipConfig``);
* :mod:`repro.faults.overload` — per-node admission control (load
  shedding) and a circuit breaker for sustained overload;
* :mod:`repro.faults.injector` — the process that drives a schedule
  against a running system.

Coordinator-side timeouts, bounded retry/backoff, and degraded (partial)
answers live on the nodes themselves (:mod:`repro.storage.node`,
:mod:`repro.core.node`); ``RPC_FAILED`` is the sentinel a fault-aware
RPC leg returns once its target has been declared dead.

With an empty schedule and ``FaultConfig.enabled`` false the entire
layer is inert: no extra simulation events are created, so existing
experiments are bit-identical to runs without this package.
"""

from repro.faults.gossip import GossipAgent, GossipMembership, PeerState
from repro.faults.injector import FaultInjector
from repro.faults.membership import (
    RPC_FAILED,
    RPC_SHED,
    ClusterMembership,
    rpc_ok,
)
from repro.faults.overload import OverloadGuard
from repro.faults.schedule import FaultEvent, FaultSchedule

__all__ = [
    "ClusterMembership",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "GossipAgent",
    "GossipMembership",
    "OverloadGuard",
    "PeerState",
    "RPC_FAILED",
    "RPC_SHED",
    "rpc_ok",
]

"""Fault injection and failure recovery for the simulated STASH cluster.

The paper assumes a healthy Galileo DHT; production clusters do not get
that luxury.  This package adds a deterministic failure model on top of
the discrete-event simulator:

* :mod:`repro.faults.schedule` — declarative fault schedules (crash,
  restart, link drop/delay, disk slowdown) validated up front;
* :mod:`repro.faults.membership` — the cluster's shared zero-hop view of
  which nodes are live, with DHT ring repair via
  ``Partitioner.without_node`` when a node is declared dead;
* :mod:`repro.faults.injector` — the process that drives a schedule
  against a running system.

Coordinator-side timeouts, bounded retry/backoff, and degraded (partial)
answers live on the nodes themselves (:mod:`repro.storage.node`,
:mod:`repro.core.node`); ``RPC_FAILED`` is the sentinel a fault-aware
RPC leg returns once its target has been declared dead.

With an empty schedule and ``FaultConfig.enabled`` false the entire
layer is inert: no extra simulation events are created, so existing
experiments are bit-identical to runs without this package.
"""

from repro.faults.injector import FaultInjector
from repro.faults.membership import RPC_FAILED, ClusterMembership
from repro.faults.schedule import FaultEvent, FaultSchedule

__all__ = [
    "ClusterMembership",
    "FaultEvent",
    "FaultInjector",
    "FaultSchedule",
    "RPC_FAILED",
]

"""Drives a :class:`~repro.faults.schedule.FaultSchedule` against a system.

The injector translates schedule entries into simulator state changes:

* ``crash``    — take the node off the network (messages to/from it are
  dropped), wipe its volatile state (queues, in-memory caches), and
  strand its in-flight work.  Peers discover the death through RPC
  timeouts and repair the ring via the shared membership.
* ``restart``  — put the node back on the network with a cold cache,
  spin up fresh worker pools, and revive it in the membership so the
  ring routes to it again.
* ``slow_disk`` — multiply the node's disk read time over a window.
* ``drop_link`` / ``delay_link`` — installed as network link rules up
  front (they are pure time-window predicates, costing no simulation
  events at all).

Crash/restart/slow-disk transitions are scheduled as bare timeout
callbacks — no processes — so an installed schedule adds exactly one
simulation event per transition.  With an empty schedule ``install`` is
a no-op and the simulation is untouched.
"""

from __future__ import annotations

from repro.errors import FaultError
from repro.faults.schedule import FaultEvent, FaultSchedule


class FaultInjector:
    """Applies a fault schedule to a running DistributedSystem."""

    def __init__(self, system, schedule: FaultSchedule):
        self.system = system
        self.schedule = schedule
        self._installed = False
        #: Chronological (sim_time, description) log of applied faults.
        self.applied: list[tuple[float, str]] = []

    def install(self) -> None:
        """Schedule every fault; idempotent, call after nodes started."""
        if self._installed:
            return
        self._installed = True
        network = self.system.network
        for event in self.schedule:
            self._check_target(event)
            if event.kind == "crash":
                self._at(event.at, lambda e=event: self._crash(e.node))
            elif event.kind == "restart":
                self._at(event.at, lambda e=event: self._restart(e.node))
            elif event.kind == "slow_disk":
                self._at(event.at, lambda e=event: self._slow_disk(e, e.factor))
                self._at(event.until, lambda e=event: self._slow_disk(e, 1.0))
            elif event.kind == "drop_link":
                network.add_drop_rule(event.at, event.until, event.src, event.dst)
            elif event.kind == "delay_link":
                network.add_delay_rule(
                    event.at, event.until, event.extra, event.src, event.dst
                )

    # -- plumbing ----------------------------------------------------------

    def _check_target(self, event: FaultEvent) -> None:
        for node in (event.node, event.src, event.dst):
            if node is not None and node not in self.system.nodes:
                raise FaultError(
                    f"fault schedule names unknown node {node!r} "
                    f"(cluster has {sorted(self.system.nodes)})"
                )

    def _at(self, when: float, action) -> None:
        sim = self.system.sim
        delay = when - sim.now
        if delay < 0:
            raise FaultError(
                f"fault time {when} is before the current sim time {sim.now}"
            )
        sim.timeout(delay).add_callback(lambda _event: action())

    def _log(self, description: str) -> None:
        self.applied.append((self.system.sim.now, description))
        self.system.fault_counters.increment("faults_applied")

    # -- transitions -------------------------------------------------------

    def _crash(self, node_id: str) -> None:
        self.system.network.set_down(node_id, True)
        self.system.nodes[node_id].crash()
        agent = self.system.gossip_agents.get(node_id)
        if agent is not None:
            # The node's heartbeats stop and its view is wiped; peers
            # discover the death via gossip aging (or RPC timeouts).
            agent.crash()
        self.system.fault_counters.increment("node_crashes")
        self._log(f"crash {node_id}")

    def _restart(self, node_id: str) -> None:
        node = self.system.nodes[node_id]
        node.restart()
        self.system.network.set_down(node_id, False)
        agent = self.system.gossip_agents.get(node_id)
        if agent is not None:
            # Rejoin under a fresh incarnation; liveness spreads
            # epidemically and survivors hand the node's cells back.
            agent.rejoin()
        else:
            # Zero-hop "announcement": every peer sees the node live again
            # and the original partition map is restored for its keys.
            self.system.membership.revive(node_id)
        self.system.fault_counters.increment("node_restarts")
        self._log(f"restart {node_id}")

    def _slow_disk(self, event: FaultEvent, factor: float) -> None:
        self.system.nodes[event.node].disk.slow_factor = factor
        self._log(f"slow_disk {event.node} x{factor}")

"""Cluster monitoring: a point-in-time operational snapshot.

The kind of dashboard an operator of a STASH deployment would watch:
per-node cache occupancy, guest load, queue depths, disk and cache
counters, plus cluster-wide hit rates.  Pure inspection — touching the
snapshot never perturbs the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class NodeSnapshot:
    """One node's state at snapshot time."""

    node_id: str
    local_cells: int
    guest_cells: int
    pending_requests: int
    disk_reads: int
    disk_bytes_read: int
    counters: dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class ClusterSnapshot:
    """The whole cluster at snapshot time."""

    sim_time: float
    nodes: tuple[NodeSnapshot, ...]
    queries_completed: int
    messages_sent: int
    bytes_sent: int

    @property
    def total_cached_cells(self) -> int:
        return sum(node.local_cells for node in self.nodes)

    @property
    def total_guest_cells(self) -> int:
        return sum(node.guest_cells for node in self.nodes)

    def counter_total(self, name: str) -> int:
        return sum(node.counters.get(name, 0) for node in self.nodes)

    def cache_hit_rate(self) -> float:
        """Fraction of served cells that came from cache or roll-up."""
        hits = self.counter_total("cells_served_from_cache") + self.counter_total(
            "cells_served_from_rollup"
        )
        misses = self.counter_total("cells_populated")
        total = hits + misses
        return hits / total if total else 0.0

    def imbalance(self) -> float:
        """Max/mean ratio of per-node cached cells (1.0 = perfectly even)."""
        sizes = [node.local_cells for node in self.nodes]
        mean = sum(sizes) / len(sizes) if sizes else 0.0
        return max(sizes) / mean if mean else 0.0

    def format_table(self) -> str:
        lines = [
            f"cluster @ t={self.sim_time:.3f}s  "
            f"queries={self.queries_completed}  "
            f"msgs={self.messages_sent}  bytes={self.bytes_sent:,}",
            f"{'node':>10} {'cells':>8} {'guest':>7} {'pending':>8} "
            f"{'disk rd':>8} {'disk MB':>8}",
        ]
        for node in self.nodes:
            lines.append(
                f"{node.node_id:>10} {node.local_cells:>8} {node.guest_cells:>7} "
                f"{node.pending_requests:>8} {node.disk_reads:>8} "
                f"{node.disk_bytes_read / 1e6:>8.2f}"
            )
        lines.append(
            f"hit rate: {self.cache_hit_rate():.1%}   "
            f"imbalance: {self.imbalance():.2f}   "
            f"guest total: {self.total_guest_cells}"
        )
        return "\n".join(lines)


def snapshot(cluster) -> ClusterSnapshot:
    """Take a snapshot of a running (or finished) cluster system.

    Works for any :class:`~repro.system.DistributedSystem`; STASH-specific
    fields (cells, guest) read as zero on systems without a graph.  Pure
    inspection: snapshotting an unstarted cluster reports it empty rather
    than booting its nodes.
    """
    nodes_map = getattr(cluster, "nodes", None) or {}
    nodes = []
    for node_id in sorted(nodes_map):
        node = nodes_map[node_id]
        nodes.append(
            NodeSnapshot(
                node_id=node_id,
                local_cells=len(getattr(node, "graph", ())),
                guest_cells=len(getattr(node, "guest", ())),
                pending_requests=node.pending_requests,
                disk_reads=node.disk.reads,
                disk_bytes_read=node.disk.bytes_read,
                counters=node.counters.as_dict(),
            )
        )
    return ClusterSnapshot(
        sim_time=cluster.sim.now,
        nodes=tuple(nodes),
        queries_completed=len(cluster.timeline),
        messages_sent=cluster.network.messages_sent,
        bytes_sent=cluster.network.bytes_sent,
    )

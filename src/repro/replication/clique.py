"""Clique identification: the unit of hotspot replication (paper VII-B-2).

A Clique is "a subgraph of Cells from the STASH graph of a pre-configured
size (depth)": a root cell plus its hierarchical descendants up to
``depth`` levels down, identified by the spatiotemporal label of the
topmost parent.  The hotspotted node replicates its top-K cliques by
*cumulative freshness*, subject to a total cell budget N.

Enumeration is bottom-up: every cached cell contributes its freshness to
each of its ancestor roots within ``depth`` hierarchy steps (spatial
and/or temporal), so the pass is O(cells x (depth+1)^2) regardless of
graph size — the efficiency the paper credits to the hierarchical
organization.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.freshness import FreshnessTracker
from repro.core.graph import StashGraph
from repro.core.keys import CellKey
from repro.errors import ReplicationError
from repro.geo.temporal import TemporalResolution, TimeKey


@dataclass
class Clique:
    """One candidate replication unit."""

    root: CellKey
    #: Member cell keys (root included when cached).
    members: list[CellKey] = field(default_factory=list)
    #: Sum of decayed freshness over members.
    cumulative_freshness: float = 0.0

    @property
    def size(self) -> int:
        return len(self.members)


def _ancestor_roots(key: CellKey, depth: int) -> list[CellKey]:
    """All keys that would contain ``key`` in a clique of the given depth.

    Walk up 0..depth spatial steps and 0..depth temporal steps (combined
    steps count once per axis, matching the paper's "children Cells and
    their children Cells" along hierarchical edges).
    """
    out = []
    geohash = key.geohash
    for s_up in range(depth + 1):
        if len(geohash) - s_up < 1:
            break
        spatial = geohash[: len(geohash) - s_up]
        time_key: TimeKey | None = key.time_key
        for t_up in range(depth + 1):
            if time_key is None or s_up + t_up > depth:
                break
            out.append(CellKey(spatial, time_key))
            if time_key.resolution == TemporalResolution.YEAR:
                time_key = None
            else:
                time_key = time_key.parent()
    return out


def top_cliques(
    graph: StashGraph,
    tracker: FreshnessTracker,
    now: float,
    depth: int,
    max_cells: int,
    top_k: int,
) -> list[Clique]:
    """The top-K disjoint cliques whose total size fits the cell budget.

    Greedy selection by cumulative freshness; a clique overlapping an
    already selected one (shared members) is skipped so replicas never
    duplicate cells within one handoff.
    """
    if depth < 0:
        raise ReplicationError("clique depth must be >= 0")
    if max_cells < 1 or top_k < 1:
        raise ReplicationError("max_cells and top_k must be >= 1")

    candidates: dict[CellKey, Clique] = {}
    for cell in graph.cells():
        score = tracker.score(cell, now)
        if score <= 0.0:
            continue
        for root in _ancestor_roots(cell.key, depth):
            clique = candidates.get(root)
            if clique is None:
                clique = candidates[root] = Clique(root=root)
            clique.members.append(cell.key)
            clique.cumulative_freshness += score

    ranked = sorted(
        candidates.values(),
        key=lambda c: (-c.cumulative_freshness, str(c.root)),
    )
    chosen: list[Clique] = []
    taken: set[CellKey] = set()
    budget = max_cells
    for clique in ranked:
        if len(chosen) >= top_k:
            break
        if clique.size > budget:
            continue
        if any(member in taken for member in clique.members):
            continue
        chosen.append(clique)
        taken.update(clique.members)
        budget -= clique.size
    return chosen

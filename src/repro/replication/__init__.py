"""Dynamic clique replication for hotspot autoscaling (paper section VII)."""

from repro.replication.clique import Clique, top_cliques
from repro.replication.antipode import antipode_candidates
from repro.replication.routing import RouteEntry, RoutingTable

__all__ = [
    "Clique",
    "top_cliques",
    "antipode_candidates",
    "RouteEntry",
    "RoutingTable",
]

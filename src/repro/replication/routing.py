"""Routing table of replicated cliques (paper sections VII-B-5, VII-C).

The hotspotted node records, per successful handoff, the helper node and
the exact cell set replicated (the paper's "bitmap of the actual Cells
contained in the Clique").  A later query is reroutable to a helper iff
that helper's live replicated cell set fully covers the query footprint;
the reroute itself is probabilistic so the hotspotted node keeps serving
a share of the traffic.  Entries expire after a TTL, "signifying the
retreat of hotspot".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.keys import CellKey
from repro.errors import ReplicationError


@dataclass
class RouteEntry:
    """One replicated clique."""

    root: CellKey
    helper: str
    cell_keys: frozenset[CellKey]
    created_at: float


class RoutingTable:
    """Replica registry kept by a (previously) hotspotted node."""

    def __init__(self, ttl: float, reroute_probability: float):
        if ttl <= 0:
            raise ReplicationError("routing ttl must be positive")
        if not 0.0 <= reroute_probability <= 1.0:
            raise ReplicationError("reroute probability must be in [0, 1]")
        self.ttl = ttl
        self.reroute_probability = reroute_probability
        self._entries: list[RouteEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    def add(
        self,
        root: CellKey,
        helper: str,
        cell_keys: frozenset[CellKey],
        now: float,
    ) -> None:
        self._entries.append(
            RouteEntry(root=root, helper=helper, cell_keys=cell_keys, created_at=now)
        )

    def clear(self) -> None:
        """Drop all entries (a crashed node forgets its replicas)."""
        self._entries.clear()

    def purge(self, now: float) -> int:
        """Drop expired entries; returns how many were removed."""
        before = len(self._entries)
        self._entries = [
            e for e in self._entries if now - e.created_at <= self.ttl
        ]
        return before - len(self._entries)

    def helpers_covering(
        self, footprint: list[CellKey], now: float
    ) -> list[str]:
        """Helpers whose live replicated cells fully cover the footprint."""
        self.purge(now)
        if not footprint:
            return []
        needed = set(footprint)
        by_helper: dict[str, set[CellKey]] = {}
        for entry in self._entries:
            by_helper.setdefault(entry.helper, set()).update(entry.cell_keys)
        return sorted(
            helper
            for helper, cells in by_helper.items()
            if needed.issubset(cells)
        )

    def choose_reroute(
        self,
        footprint: list[CellKey],
        now: float,
        rng: np.random.Generator,
    ) -> str | None:
        """Probabilistically pick a covering helper, or None to serve locally."""
        helpers = self.helpers_covering(footprint, now)
        if not helpers:
            return None
        if rng.random() >= self.reroute_probability:
            return None
        return helpers[int(rng.integers(0, len(helpers)))]

"""Antipode helper-node selection (paper section VII-B-3).

"We look for a spatiotemporal region that is diametrically on the other
side of the total spatial scope of the storage cluster ... Using a
Clique's geohash, we find its geohash antipode and then use the DHT's
partitioner to identify the antipode node."  If the antipode node
declines, the hotspotted node probes "another geohash region in a random
direction around the antipode geohash".
"""

from __future__ import annotations

import numpy as np

from repro.dht.partitioner import Partitioner
from repro.geo import geohash as gh


def antipode_candidates(
    root_geohash: str,
    partitioner: Partitioner,
    exclude: str,
    rng: np.random.Generator,
    max_probes: int,
) -> list[str]:
    """Ordered candidate helper nodes for a clique.

    First the antipode node itself, then nodes owning cells in random
    directions around the antipode, deduplicated, never including
    ``exclude`` (the hotspotted node).
    """
    anti = gh.antipode(root_geohash)
    candidates: list[str] = []
    seen: set[str] = set()

    def consider(code: str) -> None:
        node = partitioner.node_for(code)
        if node != exclude and node not in seen:
            seen.add(node)
            candidates.append(node)

    consider(anti)
    # Random-direction walk around the antipode: widening ring probes.
    for probe in range(max_probes):
        radius = probe // 8 + 1
        dlat = int(rng.integers(-radius, radius + 1))
        dlon = int(rng.integers(-radius, radius + 1))
        if dlat == 0 and dlon == 0:
            continue
        shifted = gh.shift(anti, dlat, dlon)
        if shifted is not None:
            consider(shifted)
    return candidates

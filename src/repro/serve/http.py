"""HTTP query facade: STAC-style search/aggregation over the query seam.

A thin stdlib HTTP layer (``http.server.ThreadingHTTPServer``, no new
dependencies) in front of the same coordinator/transport seam every
other entry point uses.  Three POST endpoints in the style of a STAC
search/aggregation service:

* ``POST /aggregate`` — viewport statistics: the merged summary over
  every cell the query touches, plus completeness and provenance;
* ``POST /search`` — the paginated cell listing (``limit`` / ``offset``
  / opaque ``next_token``), cells sorted by key so pages are stable;
* ``POST /drill`` — region drill-down: re-evaluates the query one
  spatial precision finer (``direction: down``) or coarser (``up``).

The facade is backend-agnostic: :class:`SimBackend` serves straight
from a simulated cluster (serial ``run_query`` + ``drain`` — the
byte-identity preconditions of docs/serving.md), :class:`SocketBackend`
drives a real :class:`~repro.transport.asyncio_net.AsyncioTransport`
cluster through the PR-8 client driver, and
:class:`BatchingSimBackend` admits genuinely concurrent HTTP traffic
into one simulation (the overload/stress regime).  Whatever the
backend, the response **body bytes** for a query must equal the sim
twin's serialization of the same answer — the equivalence suite in
``tests/serve/test_equivalence.py`` holds the facade to that.

Two deliberate caching rules (mirroring docs/fault-model.md): answers
with ``completeness < 1`` are **never** cached, and limits above
``http_max_limit`` are a 400, not a silent clamp.  Volatile data
(latency, cache disposition) travels in ``X-Latency-S`` / ``X-Cache``
headers so bodies stay byte-comparable.
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import json
import queue
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Sequence

from repro.config import StashConfig
from repro.data.observation import OBSERVATION_ATTRIBUTES
from repro.errors import ReproError
from repro.geo.bbox import BoundingBox
from repro.geo.geohash import MAX_PRECISION
from repro.geo.resolution import Resolution
from repro.geo.temporal import TemporalResolution, TimeRange
from repro.query.model import AggregationQuery
from repro.workload.trace import query_to_dict

#: Query classes the facade accepts in a request's optional ``kind``
#: field (the flight recorder's histogram key).
QUERY_KINDS = ("pan", "zoom", "drill", "other")

_DRILL_DELTA = {"down": 1, "up": -1}


class HttpError(ReproError):
    """A structured 4xx/5xx: machine-readable code + human message."""

    def __init__(self, status: int, code: str, message: str):
        super().__init__(message)
        self.status = status
        self.code = code


# ---------------------------------------------------------------------------
# canonical serialization (shared with the equivalence tests' sim twin)


def canonical_json(body: Any) -> bytes:
    """The facade's one true wire form; tests byte-compare against it."""
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode()


def query_fingerprint(query: AggregationQuery) -> str:
    """Stable identity of a query's *content* (query_id excluded)."""
    digest = hashlib.sha256(canonical_json(query_to_dict(query)))
    return digest.hexdigest()[:16]


def cell_entries(cells: dict) -> list[dict[str, Any]]:
    """Cells as sorted JSON entries — the /search listing order."""
    return [
        {
            "cell": str(key),
            "geohash": key.geohash,
            "time_key": str(key.time_key),
            "summary": cells[key].to_json_dict(),
        }
        for key in sorted(cells, key=str)
    ]


def merged_summary(cells: dict) -> dict[str, dict[str, float]]:
    """Overall viewport statistics: cells merged in sorted-key order.

    The merge order is pinned (sorted by key string) because float
    accumulation order changes result bytes; the sim twin merges the
    same way, so /aggregate bodies stay byte-comparable.
    """
    from repro.data.statistics import SummaryVector

    if not cells:
        return {}
    ordered = [cells[key] for key in sorted(cells, key=str)]
    return SummaryVector.merge_all(ordered).to_json_dict()


def aggregate_body(query: AggregationQuery, answer: "BackendAnswer") -> dict:
    """The /aggregate response body (also the twin's comparison form)."""
    return {
        "type": "aggregation",
        "query": query_to_dict(query),
        "cell_count": len(answer.cells),
        "summary": merged_summary(answer.cells),
        "completeness": answer.completeness,
        "degraded": answer.completeness < 1.0,
        "provenance": dict(answer.provenance),
    }


def search_body(
    query: AggregationQuery,
    answer: "BackendAnswer",
    limit: int,
    offset: int,
) -> dict:
    """One /search page (also the twin's comparison form)."""
    entries = cell_entries(answer.cells)
    page = entries[offset : offset + limit]
    next_offset = offset + len(page)
    token = None
    if next_offset < len(entries):
        token = encode_token(query_fingerprint(query), next_offset)
    return {
        "type": "cells",
        "query": query_to_dict(query),
        "matched": len(entries),
        "returned": len(page),
        "limit": limit,
        "offset": offset,
        "cells": page,
        "next_token": token,
        "completeness": answer.completeness,
        "degraded": answer.completeness < 1.0,
    }


def drill_body(
    query: AggregationQuery, answer: "BackendAnswer", direction: str
) -> dict:
    body = aggregate_body(query, answer)
    body["type"] = "drill"
    body["direction"] = direction
    body["resolution"] = query.resolution.spatial
    return body


# ---------------------------------------------------------------------------
# pagination tokens


def encode_token(fingerprint: str, offset: int) -> str:
    raw = canonical_json([fingerprint, offset])
    return base64.urlsafe_b64encode(raw).decode().rstrip("=")


def decode_token(token: str, fingerprint: str) -> int:
    """Offset carried by ``token``; rejects foreign or garbled tokens."""
    if not isinstance(token, str) or not token:
        raise HttpError(400, "invalid_token", "next_token must be a string")
    padded = token + "=" * (-len(token) % 4)
    try:
        payload = json.loads(base64.urlsafe_b64decode(padded.encode()))
    except (binascii.Error, ValueError, UnicodeDecodeError):
        raise HttpError(400, "invalid_token", "next_token is garbled") from None
    if (
        not isinstance(payload, list)
        or len(payload) != 2
        or not isinstance(payload[0], str)
        or not isinstance(payload[1], int)
        or isinstance(payload[1], bool)
        or payload[1] < 0
    ):
        raise HttpError(400, "invalid_token", "next_token is garbled")
    if payload[0] != fingerprint:
        raise HttpError(
            400, "invalid_token", "next_token belongs to a different query"
        )
    return payload[1]


# ---------------------------------------------------------------------------
# request parsing


def _number(value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"{value!r} is not a number")
    return float(value)


def parse_query(
    body: Any, attributes: Sequence[str] = OBSERVATION_ATTRIBUTES
) -> AggregationQuery:
    """Trace-format query body -> AggregationQuery, with structured 4xxs.

    The accepted shape is exactly :func:`repro.workload.trace.query_to_dict`
    (plus an optional ``kind``), so any saved trace record is a valid
    request body.
    """
    if not isinstance(body, dict):
        raise HttpError(400, "invalid_json", "request body must be a JSON object")
    try:
        south, north, west, east = [_number(v) for v in body["bbox"]]
    except KeyError:
        raise HttpError(400, "invalid_bbox", "missing bbox field") from None
    except (TypeError, ValueError):
        raise HttpError(
            400, "invalid_bbox", "bbox must be [south, north, west, east] numbers"
        ) from None
    if not (-90.0 <= south < north <= 90.0):
        raise HttpError(
            400, "invalid_bbox", f"latitude band [{south}, {north}] is invalid"
        )
    if not (-180.0 <= west < east <= 180.0):
        raise HttpError(
            400, "invalid_bbox", f"longitude band [{west}, {east}] is invalid"
        )
    try:
        start, end = [_number(v) for v in body["time"]]
    except KeyError:
        raise HttpError(400, "invalid_time", "missing time field") from None
    except (TypeError, ValueError):
        raise HttpError(
            400, "invalid_time", "time must be [start_epoch, end_epoch] numbers"
        ) from None
    if start >= end:
        raise HttpError(
            400, "invalid_time", f"time range [{start}, {end}] is empty"
        )
    spatial = body.get("spatial")
    if (
        isinstance(spatial, bool)
        or not isinstance(spatial, int)
        or not 1 <= spatial <= MAX_PRECISION
    ):
        raise HttpError(
            400,
            "invalid_resolution",
            f"spatial must be an integer in [1, {MAX_PRECISION}]",
        )
    temporal_name = body.get("temporal", "day")
    try:
        temporal = TemporalResolution[str(temporal_name).upper()]
    except KeyError:
        raise HttpError(
            400, "invalid_resolution", f"unknown temporal unit {temporal_name!r}"
        ) from None
    requested = body.get("attributes")
    if requested is not None and not (
        isinstance(requested, list)
        and all(isinstance(a, str) for a in requested)
    ):
        raise HttpError(
            400, "unknown_attribute", "attributes must be a list of strings"
        )
    if requested:
        known = set(attributes)
        for name in requested:
            if name not in known:
                raise HttpError(
                    400, "unknown_attribute", f"unknown attribute {name!r}"
                )
    kind = body.get("kind", "other")
    if kind not in QUERY_KINDS:
        raise HttpError(
            400, "invalid_kind", f"kind must be one of {', '.join(QUERY_KINDS)}"
        )
    return AggregationQuery(
        bbox=BoundingBox(south, north, west, east),
        time_range=TimeRange(start, end),
        resolution=Resolution(spatial, temporal),
        attributes=tuple(requested) if requested else None,
        kind=kind,
    )


def parse_limit_offset(body: dict, default_limit: int, max_limit: int) -> tuple[int, int]:
    limit = body.get("limit", default_limit)
    if isinstance(limit, bool) or not isinstance(limit, int) or not 1 <= limit <= max_limit:
        raise HttpError(
            400, "invalid_limit", f"limit must be an integer in [1, {max_limit}]"
        )
    offset = body.get("offset", 0)
    if isinstance(offset, bool) or not isinstance(offset, int) or offset < 0:
        raise HttpError(400, "invalid_limit", "offset must be a non-negative integer")
    return limit, offset


# ---------------------------------------------------------------------------
# backends


@dataclass
class BackendAnswer:
    """One evaluated query, backend-independent."""

    cells: dict
    completeness: float
    provenance: dict
    #: Wall (socket) or simulated (sim) seconds — volatile, header-only.
    latency_s: float


class SimBackend:
    """Serial facade over a simulated cluster (the byte-identity regime).

    One query at a time under a lock, each followed by ``drain()`` — the
    HTTP analogue of the serve driver's quiesce barrier, so cache state
    evolves exactly as in a serial sim replay.
    """

    name = "sim"

    def __init__(self, system: Any):
        self.system = system
        self._lock = threading.Lock()

    @property
    def recorder(self):
        return getattr(self.system, "recorder", None)

    def evaluate(self, query: AggregationQuery) -> BackendAnswer:
        with self._lock:
            result = self.system.run_query(query)
            self.system.drain()
        return BackendAnswer(
            cells=result.cells,
            completeness=result.completeness,
            provenance=dict(result.provenance),
            latency_s=result.latency,
        )

    def close(self) -> None:
        pass


class BatchingSimBackend:
    """Concurrent facade over one simulation (the overload regime).

    HTTP handler threads enqueue queries; a single driver thread gathers
    whatever is pending and submits the whole batch into the simulator
    at once (``run_concurrent``), so requests genuinely race inside the
    sim — queueing delay builds up, admission shedding and the circuit
    breaker fire, degraded answers flow back — while the simulator
    itself stays single-threaded.  Byte-identity to a serial twin is
    explicitly *not* promised here; this backend exists for the stress
    and overload paths.
    """

    name = "sim-batch"

    def __init__(self, system: Any, max_batch: int = 64, poll_s: float = 0.002):
        self.system = system
        self.max_batch = max_batch
        self.poll_s = poll_s
        self._queue: "queue.Queue[tuple[AggregationQuery, _Slot] | None]" = queue.Queue()
        self._stopped = False
        self._thread = threading.Thread(target=self._drive, daemon=True)
        self._thread.start()

    @property
    def recorder(self):
        return getattr(self.system, "recorder", None)

    def evaluate(self, query: AggregationQuery) -> BackendAnswer:
        if self._stopped:
            raise HttpError(503, "unavailable", "backend is shut down")
        slot = _Slot()
        self._queue.put((query, slot))
        slot.done.wait()
        if slot.error is not None:
            raise slot.error
        return slot.answer  # type: ignore[return-value]

    def _drive(self) -> None:
        while True:
            try:
                first = self._queue.get(timeout=self.poll_s)
            except queue.Empty:
                if self._stopped:
                    return
                continue
            if first is None:
                return
            batch = [first]
            while len(batch) < self.max_batch:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    break
                if item is None:
                    self._stopped = True
                    break
                batch.append(item)
            queries = [q for q, _ in batch]
            try:
                results = self.system.run_concurrent(queries)
                self.system.drain()
            except Exception as exc:  # pragma: no cover - defensive
                for _, slot in batch:
                    slot.error = HttpError(500, "internal", str(exc))
                    slot.done.set()
                continue
            for (_, slot), result in zip(batch, results):
                slot.answer = BackendAnswer(
                    cells=result.cells,
                    completeness=result.completeness,
                    provenance=dict(result.provenance),
                    latency_s=result.latency,
                )
                slot.done.set()

    def close(self) -> None:
        self._stopped = True
        self._queue.put(None)
        self._thread.join(timeout=30.0)


@dataclass
class _Slot:
    done: threading.Event = field(default_factory=threading.Event)
    answer: BackendAnswer | None = None
    error: Exception | None = None


class SocketBackend:
    """Facade over a live asyncio socket cluster (PR-8 client driver).

    Owns a private event loop on a daemon thread; ``evaluate`` routes
    the query to its coordinator with the same center-geohash rule as
    the sim client, sends ``evaluate`` over TCP, then runs the 2-round
    quiesce barrier — serially, under a lock, preserving the
    byte-identity preconditions end to end.
    """

    name = "socket"

    def __init__(
        self,
        node_ids: Sequence[str],
        addresses: dict[str, tuple[str, int]],
        config: StashConfig,
    ):
        import asyncio

        from repro.dht.partitioner import PrefixPartitioner
        from repro.system import CLIENT_ID
        from repro.transport.asyncio_net import AsyncioTransport

        self.node_ids = list(node_ids)
        self.config = config
        self.partitioner = PrefixPartitioner(
            self.node_ids, config.cluster.partition_precision
        )
        self._lock = threading.Lock()
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(target=self._loop.run_forever, daemon=True)
        self._thread.start()

        async def connect():
            transport = AsyncioTransport(
                CLIENT_ID, time_scale=config.serve.time_scale
            )
            await transport.start(config.serve.host, 0)
            transport.network.register(CLIENT_ID)
            transport.network.set_peers(addresses)
            return transport

        self.transport = self._call(connect())
        from repro.serve.driver import _rpc

        for node_id in self.node_ids:
            self._call(
                _rpc(
                    self.transport, node_id, "ping", {}, 16,
                    config.serve.startup_timeout,
                )
            )

    @property
    def recorder(self):
        return None

    def _call(self, coro):
        import asyncio

        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        return future.result(timeout=self.config.serve.wall_clock_budget)

    def evaluate(self, query: AggregationQuery) -> BackendAnswer:
        from repro.serve.driver import _quiesce, _rpc, coordinator_for

        async def one():
            coordinator = coordinator_for(self.partitioner, query)
            started = time.monotonic()
            reply = await _rpc(
                self.transport,
                coordinator,
                "evaluate",
                {"query": query, "ctx": None},
                512,
                self.config.serve.quiesce_timeout,
            )
            await _quiesce(
                self.transport, self.node_ids, self.config.serve.quiesce_timeout
            )
            return reply, time.monotonic() - started

        with self._lock:
            reply, wall = self._call(one())
        if not isinstance(reply, dict) or "cells" not in reply:
            raise HttpError(502, "bad_gateway", f"malformed evaluate reply: {reply!r}")
        return BackendAnswer(
            cells=reply["cells"],
            completeness=float(reply.get("completeness", 1.0)),
            provenance=dict(reply.get("provenance", {})),
            latency_s=wall,
        )

    def close(self) -> None:
        import asyncio

        async def shutdown():
            await self.transport.aclose()
            # Reap per-link reader/writer tasks before the loop dies, or
            # their coroutines get garbage-collected against a closed loop.
            tasks = [
                task
                for task in asyncio.all_tasks()
                if task is not asyncio.current_task()
            ]
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)

        self._call(shutdown())
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        self._loop.close()


# ---------------------------------------------------------------------------
# response cache


class ResponseCache:
    """LRU over evaluated answers, keyed by query fingerprint.

    Degraded answers (``completeness < 1``) are never inserted — the
    same rule the sim client applies to its cell cache
    (docs/fault-model.md): a shed or partial answer must not satisfy a
    later healthy request.
    """

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._entries: "OrderedDict[str, BackendAnswer]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.degraded_skipped = 0

    def get(self, key: str) -> BackendAnswer | None:
        with self._lock:
            answer = self._entries.get(key)
            if answer is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return answer

    def put(self, key: str, answer: BackendAnswer) -> None:
        if answer.completeness < 1.0:
            with self._lock:
                self.degraded_skipped += 1
            return
        with self._lock:
            self._entries[key] = answer
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "degraded_skipped": self.degraded_skipped,
            }


# ---------------------------------------------------------------------------
# the server


class StashHttpServer:
    """The facade itself: routes, validation, caching, stats."""

    def __init__(
        self,
        backend: Any,
        config: StashConfig | None = None,
        attributes: Sequence[str] = OBSERVATION_ATTRIBUTES,
    ):
        self.backend = backend
        self.config = config or StashConfig()
        serve = self.config.serve
        self.attributes = tuple(attributes)
        self.default_limit = serve.http_default_limit
        self.max_limit = serve.http_max_limit
        self.cache = ResponseCache(serve.http_cache_entries)
        self.requests: dict[str, int] = {}
        self._requests_lock = threading.Lock()
        self._httpd = ThreadingHTTPServer(
            (serve.http_host, serve.http_port), _Handler
        )
        self._httpd.app = self  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "StashHttpServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)

    def __enter__(self) -> "StashHttpServer":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- request handling --------------------------------------------------

    def _count(self, path: str) -> None:
        with self._requests_lock:
            self.requests[path] = self.requests.get(path, 0) + 1

    def handle(self, method: str, path: str, body: bytes) -> tuple[int, dict, dict]:
        """Route one request; returns (status, body_dict, extra_headers)."""
        self._count(path)
        if method == "GET":
            if path == "/":
                return 200, self._describe(), {}
            if path == "/healthz":
                return 200, {"ok": True, "backend": self.backend.name}, {}
            if path == "/stats":
                return 200, self._stats(), {}
            if path in ("/aggregate", "/search", "/drill"):
                raise HttpError(405, "method_not_allowed", f"use POST for {path}")
            raise HttpError(404, "not_found", f"unknown path {path}")
        if method != "POST":
            raise HttpError(405, "method_not_allowed", f"unsupported method {method}")
        if path not in ("/aggregate", "/search", "/drill"):
            if path in ("/", "/healthz", "/stats"):
                raise HttpError(405, "method_not_allowed", f"use GET for {path}")
            raise HttpError(404, "not_found", f"unknown path {path}")
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (ValueError, UnicodeDecodeError):
            raise HttpError(400, "invalid_json", "request body is not valid JSON") from None
        if path == "/aggregate":
            return self._aggregate(payload)
        if path == "/search":
            return self._search(payload)
        return self._drill(payload)

    def _evaluate_cached(
        self, query: AggregationQuery
    ) -> tuple[BackendAnswer, str]:
        fingerprint = query_fingerprint(query)
        cached = self.cache.get(fingerprint)
        if cached is not None:
            return cached, "hit"
        answer = self.backend.evaluate(query)
        self.cache.put(fingerprint, answer)
        return answer, "miss"

    @staticmethod
    def _headers(answer: BackendAnswer, disposition: str) -> dict[str, str]:
        return {
            "X-Cache": disposition,
            "X-Latency-S": f"{answer.latency_s:.6f}",
        }

    def _aggregate(self, payload: Any) -> tuple[int, dict, dict]:
        query = parse_query(payload, self.attributes)
        answer, disposition = self._evaluate_cached(query)
        return 200, aggregate_body(query, answer), self._headers(answer, disposition)

    def _search(self, payload: Any) -> tuple[int, dict, dict]:
        query = parse_query(payload, self.attributes)
        limit, offset = parse_limit_offset(
            payload, self.default_limit, self.max_limit
        )
        if "next_token" in payload and payload["next_token"] is not None:
            offset = decode_token(payload["next_token"], query_fingerprint(query))
        answer, disposition = self._evaluate_cached(query)
        return (
            200,
            search_body(query, answer, limit, offset),
            self._headers(answer, disposition),
        )

    def _drill(self, payload: Any) -> tuple[int, dict, dict]:
        if not isinstance(payload, dict) or "query" not in payload:
            raise HttpError(400, "invalid_json", "drill body needs a query field")
        direction = payload.get("direction", "down")
        if direction not in _DRILL_DELTA:
            raise HttpError(
                400, "invalid_direction", "direction must be 'down' or 'up'"
            )
        base = parse_query(payload["query"], self.attributes)
        spatial = base.resolution.spatial + _DRILL_DELTA[direction]
        if not 1 <= spatial <= MAX_PRECISION:
            raise HttpError(
                400,
                "invalid_resolution",
                f"drill {direction} leaves [1, {MAX_PRECISION}]",
            )
        query = AggregationQuery(
            bbox=base.bbox,
            time_range=base.time_range,
            resolution=Resolution(spatial, base.resolution.temporal),
            attributes=base.attributes,
            kind="drill",
        )
        answer, disposition = self._evaluate_cached(query)
        return (
            200,
            drill_body(query, answer, direction),
            self._headers(answer, disposition),
        )

    # -- introspection -----------------------------------------------------

    def _describe(self) -> dict:
        return {
            "service": "stash-http",
            "version": "1",
            "backend": self.backend.name,
            "attributes": list(self.attributes),
            "limits": {"default": self.default_limit, "max": self.max_limit},
            "endpoints": {
                "GET /": "this description",
                "GET /healthz": "liveness",
                "GET /stats": "request counters, cache, flight recorder",
                "POST /aggregate": "merged viewport statistics",
                "POST /search": "paginated cell listing (limit/offset/next_token)",
                "POST /drill": "re-evaluate one precision finer (down) or coarser (up)",
            },
        }

    def _stats(self) -> dict:
        recorder = getattr(self.backend, "recorder", None)
        with self._requests_lock:
            requests = dict(self.requests)
        return {
            "backend": self.backend.name,
            "requests": requests,
            "cache": self.cache.stats(),
            "recorder": recorder.report() if recorder is not None else None,
        }


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "stash-http/1"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # the facade keeps its own counters; stderr stays quiet

    def _respond(self, status: int, body: dict, extra: dict[str, str]) -> None:
        data = canonical_json(body)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in extra.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def _dispatch(self, method: str) -> None:
        app: StashHttpServer = self.server.app  # type: ignore[attr-defined]
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        try:
            status, payload, extra = app.handle(method, self.path, body)
        except HttpError as exc:
            status = exc.status
            payload = {"code": exc.code, "error": str(exc)}
            extra = {}
        except Exception as exc:  # pragma: no cover - defensive
            status = 500
            payload = {"code": "internal", "error": f"{type(exc).__name__}: {exc}"}
            extra = {}
        self._respond(status, payload, extra)

    def do_GET(self) -> None:  # noqa: N802
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_PUT(self) -> None:  # noqa: N802
        self._dispatch("PUT")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

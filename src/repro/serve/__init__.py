"""Real-socket serving: ``repro serve`` (see docs/serving.md).

``server`` runs one storage node per OS process on the asyncio
transport, ``cluster`` launches and supervises the fleet, and ``driver``
replays a seeded workload from a client peer and cross-checks every
answer against the discrete-event simulator twin.  ``http`` puts a
STAC-style HTTP facade (aggregate / paginated search / drill) in front
of either backend.
"""

from repro.serve.driver import run_serve
from repro.serve.http import (
    BatchingSimBackend,
    SimBackend,
    SocketBackend,
    StashHttpServer,
)

__all__ = [
    "run_serve",
    "BatchingSimBackend",
    "SimBackend",
    "SocketBackend",
    "StashHttpServer",
]

"""One storage-node server process for ``repro serve``.

Each child process regenerates the (seeded, deterministic) dataset,
builds the *same* :class:`~repro.core.node.StashNode` the simulator
runs — same catalog, same partitioner, same handlers — and serves it on
an :class:`~repro.transport.asyncio_net.AsyncioTransport`.  The only
difference from the sim twin is the transport underneath.

Parent/child protocol over a :mod:`multiprocessing` pipe:

1. child binds port 0, sends ``("ready", node_id, host, port)``
2. parent broadcasts ``("peers", {peer_id: (host, port)})``
3. child installs the address map, sends ``("serving", node_id)``
4. parent sends ``("stop",)``; child closes the transport and exits

Any child-side exception is reported as ``("error", node_id, repr)``
before the process dies, so the launcher fails fast instead of hanging
on a half-started cluster.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any

from repro.config import StashConfig
from repro.core.node import StashNode
from repro.data.generator import DatasetSpec, SyntheticNAMGenerator
from repro.dht.partitioner import PrefixPartitioner
from repro.faults.membership import ClusterMembership
from repro.geo.resolution import ResolutionSpace
from repro.storage.backend import StorageCatalog
from repro.transport.asyncio_net import AsyncioTransport


@dataclass(frozen=True)
class NodeSpec:
    """Everything a child process needs to build its node (picklable)."""

    node_index: int
    node_ids: tuple[str, ...]
    dataset: DatasetSpec
    config: StashConfig

    @property
    def node_id(self) -> str:
        return self.node_ids[self.node_index]


def build_node(spec: NodeSpec, transport: AsyncioTransport) -> StashNode:
    """The serve-side mirror of ``StashCluster._start_nodes`` for one node.

    The dataset is regenerated from its seed instead of shipped over a
    pipe: generation is cheap, deterministic, and keeps every child's
    catalog bit-identical to the simulator twin's.
    """
    dataset = SyntheticNAMGenerator(spec.dataset).generate()
    partitioner = PrefixPartitioner(
        list(spec.node_ids), spec.config.cluster.partition_precision
    )
    catalog = StorageCatalog(
        partitioner, block_precision=spec.config.cluster.block_precision
    )
    catalog.ingest(dataset)
    return StashNode(
        transport.engine,
        transport.network,
        catalog,
        spec.node_id,
        spec.config,
        partitioner=partitioner,
        space=ResolutionSpace(1, 8),
        attribute_names=dataset.attribute_names,
        node_index=spec.node_index,
        membership=ClusterMembership(partitioner),
    )


async def _serve(spec: NodeSpec, conn: Any) -> None:
    serve_cfg = spec.config.serve
    transport = AsyncioTransport(
        spec.node_id, time_scale=serve_cfg.time_scale
    )
    host, port = await transport.start(serve_cfg.host, 0)
    node = build_node(spec, transport)
    node.start()
    conn.send(("ready", spec.node_id, host, port))
    loop = asyncio.get_running_loop()
    try:
        while True:
            command = await loop.run_in_executor(None, conn.recv)
            if command[0] == "peers":
                transport.network.set_peers(command[1])
                conn.send(("serving", spec.node_id))
            elif command[0] == "stop":
                return
    finally:
        await transport.aclose()


def serve_node_entry(spec: NodeSpec, conn: Any) -> None:
    """Child-process entry point (must be importable for spawn)."""
    try:
        asyncio.run(_serve(spec, conn))
    except (EOFError, KeyboardInterrupt):  # parent died / ^C: just exit
        pass
    except Exception as exc:
        try:
            conn.send(("error", spec.node_id, repr(exc)))
        except (OSError, BrokenPipeError):
            pass
        raise

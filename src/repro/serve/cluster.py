"""Launcher for an N-process socket cluster (the ``repro serve`` fleet).

Uses the ``spawn`` start method: every child is a fresh interpreter that
re-imports :mod:`repro.serve.server` and regenerates its dataset from
the seed — no forked event-loop state, nothing shipped but the (small,
picklable) :class:`~repro.serve.server.NodeSpec`.

The launcher owns the wall-clock budget: startup, the whole replay, and
shutdown must finish inside ``config.serve.wall_clock_budget`` or the
fleet is terminated — the CI guard against a hung socket cluster.
"""

from __future__ import annotations

import multiprocessing as mp
import time

from repro.config import StashConfig
from repro.data.generator import DatasetSpec
from repro.errors import NetworkError
from repro.serve.server import NodeSpec, serve_node_entry


class ServeCluster:
    """Supervise one node-server process per cluster node."""

    def __init__(self, dataset: DatasetSpec, config: StashConfig):
        self.config = config
        self.dataset = dataset
        self.node_ids = tuple(
            f"node-{i}" for i in range(config.cluster.num_nodes)
        )
        self._ctx = mp.get_context("spawn")
        self._procs: list = []
        self._conns: list = []
        self._started_at = time.monotonic()
        self.addresses: dict[str, tuple[str, int]] = {}

    # -- wall-clock budget -------------------------------------------------

    def remaining_budget(self) -> float:
        """Wall seconds left before the launcher kills the fleet."""
        elapsed = time.monotonic() - self._started_at
        return self.config.serve.wall_clock_budget - elapsed

    def _check_budget(self, what: str) -> None:
        if self.remaining_budget() <= 0:
            self.terminate()
            raise NetworkError(
                f"serve wall-clock budget "
                f"({self.config.serve.wall_clock_budget}s) exhausted "
                f"during {what}"
            )

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> dict[str, tuple[str, int]]:
        """Spawn every node server; returns the bound address map."""
        self._started_at = time.monotonic()
        for index in range(len(self.node_ids)):
            parent_conn, child_conn = self._ctx.Pipe()
            spec = NodeSpec(
                node_index=index,
                node_ids=self.node_ids,
                dataset=self.dataset,
                config=self.config,
            )
            proc = self._ctx.Process(
                target=serve_node_entry,
                args=(spec, child_conn),
                name=f"repro-serve-{self.node_ids[index]}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
        for conn in self._conns:
            message = self._recv(conn, self.config.serve.startup_timeout, "startup")
            if message[0] != "ready":
                self.terminate()
                raise NetworkError(f"node server failed to start: {message!r}")
            _, node_id, host, port = message
            self.addresses[node_id] = (host, port)
        return dict(self.addresses)

    def broadcast_peers(self, addresses: dict[str, tuple[str, int]]) -> None:
        """Install the full address map (nodes + client) on every server."""
        for conn in self._conns:
            conn.send(("peers", addresses))
        for conn in self._conns:
            message = self._recv(conn, self.config.serve.startup_timeout, "peer setup")
            if message[0] != "serving":
                self.terminate()
                raise NetworkError(f"node server failed peer setup: {message!r}")

    def _recv(self, conn, timeout: float, what: str):
        self._check_budget(what)
        if not conn.poll(min(timeout, max(0.0, self.remaining_budget()))):
            self.terminate()
            raise NetworkError(f"node server unresponsive during {what}")
        try:
            return conn.recv()
        except EOFError:
            self.terminate()
            raise NetworkError(f"node server died during {what}") from None

    def stop(self) -> None:
        """Graceful stop; escalates to terminate on stragglers."""
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (OSError, BrokenPipeError):
                pass
        deadline = time.monotonic() + 10.0
        for proc in self._procs:
            proc.join(timeout=max(0.1, deadline - time.monotonic()))
        self.terminate()

    def terminate(self) -> None:
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(timeout=5.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass

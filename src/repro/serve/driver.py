"""Client driver: replay a workload over sockets, cross-check the sim twin.

The driver is the serve-mode analogue of
:meth:`repro.system.DistributedSystem.run_serial`: it routes each query
to its coordinator (same center-geohash rule), sends ``evaluate`` over
the asyncio transport, and waits for the answer.  Between queries it
runs a **quiesce barrier** — polling every node's ``stats`` endpoint
until the whole cluster reports idle twice in a row — so background
population lands before the next query, exactly like the sim twin's
``drain()``.

Equivalence preconditions (also in docs/serving.md): serial replay with
quiesce barriers, no fault schedule, no eviction pressure.  Under those
the cache state evolves identically on both backends and every answer
must compare **byte-identical** (exact float equality on every
:class:`~repro.data.statistics.SummaryVector`).
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Callable, Sequence

from repro.config import StashConfig
from repro.data.generator import DatasetSpec, SyntheticNAMGenerator
from repro.dht.partitioner import PrefixPartitioner
from repro.errors import NetworkError, QueryError
from repro.faults.membership import rpc_ok
from repro.query.model import AggregationQuery
from repro.serve.cluster import ServeCluster
from repro.system import CLIENT_ID
from repro.transport.asyncio_net import AsyncioTransport
from repro.transport.codec import codec_name

#: Seconds between quiesce polls; consecutive clean rounds required.
_QUIESCE_POLL = 0.02
_QUIESCE_ROUNDS = 2


def coordinator_for(
    partitioner: PrefixPartitioner, query: AggregationQuery
) -> str:
    """Client-side routing: same center-geohash rule as the sim client."""
    from repro.geo.geohash import encode

    lat, lon = query.bbox.center
    code = encode(lat, lon, partitioner.partition_precision)
    return partitioner.node_for(code)


async def _rpc(
    transport: AsyncioTransport,
    recipient: str,
    kind: str,
    payload: Any,
    size: int,
    timeout: float,
) -> Any:
    reply = transport.network.request(CLIENT_ID, recipient, kind, payload, size=size)
    try:
        value = await asyncio.wait_for(
            transport.engine.as_future(reply), timeout=timeout
        )
    except asyncio.TimeoutError:
        raise NetworkError(
            f"{kind} RPC to {recipient} took longer than {timeout}s wall"
        ) from None
    if not rpc_ok(value):
        raise NetworkError(f"{kind} RPC to {recipient} failed: {value!r}")
    return value


async def _quiesce(
    transport: AsyncioTransport,
    node_ids: Sequence[str],
    timeout: float,
) -> None:
    """Block until every node reports idle ``_QUIESCE_ROUNDS`` in a row.

    One clean round is not enough: a node can look idle while a one-way
    ``populate`` frame for it is still in TCP flight from a peer.  Two
    consecutive clean rounds separated by a poll delay bound that window.
    """
    deadline = time.monotonic() + timeout
    clean = 0
    while clean < _QUIESCE_ROUNDS:
        if time.monotonic() > deadline:
            raise NetworkError(f"cluster failed to quiesce within {timeout}s")
        idle = True
        for node_id in node_ids:
            stats = await _rpc(
                transport, node_id, "stats", {}, size=16, timeout=timeout
            )
            if stats["pending"] or stats["service_queue"] or stats["inflight"] > 0:
                idle = False
        clean = clean + 1 if idle else 0
        if clean < _QUIESCE_ROUNDS:
            await asyncio.sleep(_QUIESCE_POLL)


async def _replay_socket(
    queries: Sequence[AggregationQuery],
    node_ids: Sequence[str],
    config: StashConfig,
    addresses: dict[str, tuple[str, int]],
    progress: Callable[[str], None] | None,
) -> list[dict[str, Any]]:
    serve_cfg = config.serve
    partitioner = PrefixPartitioner(
        list(node_ids), config.cluster.partition_precision
    )
    transport = AsyncioTransport(CLIENT_ID, time_scale=serve_cfg.time_scale)
    await transport.start(serve_cfg.host, 0)
    transport.network.register(CLIENT_ID)
    transport.network.set_peers(addresses)
    answers: list[dict[str, Any]] = []
    try:
        # Readiness: one ping per node proves every link dials and serves.
        for node_id in node_ids:
            await _rpc(
                transport, node_id, "ping", {}, size=16,
                timeout=serve_cfg.startup_timeout,
            )
        for index, query in enumerate(queries):
            coordinator = coordinator_for(partitioner, query)
            started = time.monotonic()
            reply = await _rpc(
                transport,
                coordinator,
                "evaluate",
                {"query": query, "ctx": None},
                size=512,
                timeout=serve_cfg.quiesce_timeout,
            )
            wall = time.monotonic() - started
            if not isinstance(reply, dict) or "cells" not in reply:
                raise QueryError(f"malformed evaluate reply: {reply!r}")
            await _quiesce(transport, node_ids, serve_cfg.quiesce_timeout)
            answers.append(
                {
                    "index": index,
                    "coordinator": coordinator,
                    "cells": reply["cells"],
                    "completeness": float(reply.get("completeness", 1.0)),
                    "provenance": reply.get("provenance", {}),
                    "wall_latency_s": wall,
                }
            )
            if progress is not None:
                progress(
                    f"query {index + 1}/{len(queries)} via {coordinator}: "
                    f"{len(reply['cells'])} cells in {wall * 1e3:.1f} ms wall"
                )
    finally:
        await transport.aclose()
    return answers


def _sim_twin_answers(
    queries: Sequence[AggregationQuery],
    dataset: DatasetSpec,
    config: StashConfig,
) -> list[Any]:
    """The oracle: same dataset, same queries, discrete-event transport."""
    from repro.core.cluster import StashCluster

    batch = SyntheticNAMGenerator(dataset).generate()
    cluster = StashCluster(batch, config)
    results = []
    for query in queries:
        results.append(cluster.run_query(query))
        cluster.drain()  # the sim analogue of the socket quiesce barrier
    return results


def _diff_answer(socket_answer: dict[str, Any], sim_result: Any) -> list[str]:
    """Byte-identity check for one query; returns divergence descriptions."""
    problems: list[str] = []
    socket_cells = socket_answer["cells"]
    sim_cells = sim_result.cells
    missing = sim_cells.keys() - socket_cells.keys()
    extra = socket_cells.keys() - sim_cells.keys()
    if missing:
        problems.append(f"missing {len(missing)} cells (e.g. {min(missing)})")
    if extra:
        problems.append(f"extra {len(extra)} cells (e.g. {min(extra)})")
    for key in sorted(sim_cells.keys() & socket_cells.keys()):
        if socket_cells[key] != sim_cells[key]:
            problems.append(f"summary mismatch at {key}")
            break  # one example is enough; the report stays readable
    if socket_answer["completeness"] != sim_result.completeness:
        problems.append(
            f"completeness {socket_answer['completeness']} "
            f"!= sim {sim_result.completeness}"
        )
    return problems


def run_serve(
    queries: Sequence[AggregationQuery],
    dataset: DatasetSpec,
    config: StashConfig,
    check_sim: bool = True,
    progress: Callable[[str], None] | None = None,
) -> dict[str, Any]:
    """Launch the socket cluster, replay ``queries``, compare to the twin.

    Returns a JSON-ready report; ``report["ok"]`` is False when any
    answer diverged from the simulator twin (or when ``check_sim`` is
    off, when any query failed outright).
    """
    launcher = ServeCluster(dataset, config)
    try:
        addresses = launcher.start()
        if progress is not None:
            ports = ", ".join(
                f"{nid}:{addr[1]}" for nid, addr in sorted(addresses.items())
            )
            progress(f"cluster up ({ports})")
        launcher.broadcast_peers(addresses)
        answers = asyncio.run(
            _replay_socket(
                queries, launcher.node_ids, config, addresses, progress
            )
        )
    finally:
        launcher.stop()
    report: dict[str, Any] = {
        "transport": "asyncio",
        "codec": codec_name(),
        "nodes": len(launcher.node_ids),
        "queries": len(queries),
        "answers": [
            {
                "index": a["index"],
                "coordinator": a["coordinator"],
                "cells": len(a["cells"]),
                "completeness": a["completeness"],
                "wall_latency_s": a["wall_latency_s"],
            }
            for a in answers
        ],
        "sim_checked": bool(check_sim),
        "divergences": [],
        "ok": True,
    }
    if check_sim:
        sim_results = _sim_twin_answers(queries, dataset, config)
        for answer, sim_result in zip(answers, sim_results):
            for problem in _diff_answer(answer, sim_result):
                report["divergences"].append(
                    {"index": answer["index"], "problem": problem}
                )
        report["ok"] = not report["divergences"]
        if progress is not None:
            progress(
                f"sim twin check: {len(report['divergences'])} divergences "
                f"over {len(queries)} queries"
            )
    return report

"""Simulated ElasticSearch baseline (paper section VIII-F).

The paper contrasts STASH with an ES 6.x deployment (600 shards over 120
data nodes) whose caching consists of the shard *request cache* (full
results of byte-identical requests), the node *query cache* (filter
bitsets) and field-data/page caching.  The decisive semantic difference
is that none of these make results **reusable across overlapping
queries**: a panned query is a different request body, so every pan
re-aggregates all matching documents from scratch — which is exactly why
ES improves only 0.6-2% across a panning sequence while STASH improves
49-70% (Fig. 8a).

Model here:

* documents are **hash-partitioned** into ``num_shards`` shards (ES
  routing ignores geography), shards assigned round-robin to nodes;
* within a shard, documents are chunked by (day, coarse geo tile) —
  the unit of disk fetch.  A node-level LRU page cache of chunk ids
  models the OS page cache / doc-values cache;
* per query, each shard pays: request-cache check; on miss an index
  walk (fixed overhead), disk for uncached matching chunks, and
  re-aggregation CPU over every matching record; then stores the result
  under the exact request key;
* the request cache serves byte-identical repeats only.

Results are exact: chunks partition the data, so merged per-cell
summaries equal the ground truth (verified in tests).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Generator

import numpy as np

from repro.core.keys import CellKey
from repro.data.observation import ObservationBatch
from repro.data.statistics import SummaryVector, grouped_summaries
from repro.faults.membership import rpc_ok
from repro.geo.cover import covering_cells
from repro.geo.geohash import encode_many
from repro.geo.temporal import TemporalResolution, bin_epochs
from repro.obs.tracer import Span
from repro.query.model import AggregationQuery
from repro.sim.engine import Event
from repro.sim.network import Message
from repro.storage.node import StorageNode
from repro.system import DistributedSystem

#: Geo tile precision used for shard chunking (ES BKD leaves, roughly).
CHUNK_TILE_PRECISION = 2


def _request_key(query: AggregationQuery) -> tuple:
    """The exact-match request-cache key: the request body, not its extent
    semantics — two queries differing in any bound are different keys."""
    return (
        round(query.bbox.south, 9),
        round(query.bbox.north, 9),
        round(query.bbox.west, 9),
        round(query.bbox.east, 9),
        round(query.time_range.start, 3),
        round(query.time_range.end, 3),
        query.resolution.spatial,
        int(query.resolution.temporal),
        query.attributes,
    )


class EsShard:
    """One shard: a hash-routed slice of the corpus, chunked for fetch."""

    def __init__(self, shard_id: int):
        self.shard_id = shard_id
        #: (day string, tile geohash) -> ObservationBatch
        self.chunks: dict[tuple[str, str], ObservationBatch] = {}

    def add_chunked(self, batch: ObservationBatch) -> None:
        if len(batch) == 0:
            return
        days = bin_epochs(batch.epochs, TemporalResolution.DAY)
        tiles = encode_many(batch.lats, batch.lons, CHUNK_TILE_PRECISION)
        labels = np.char.add(np.char.add(days, "|"), tiles)
        order = np.argsort(labels, kind="stable")
        sorted_labels = labels[order]
        boundary = np.empty(len(batch), dtype=bool)
        boundary[0] = True
        boundary[1:] = sorted_labels[1:] != sorted_labels[:-1]
        starts = np.flatnonzero(boundary)
        ends = np.append(starts[1:], len(batch))
        for start, end in zip(starts, ends):
            day, tile = str(sorted_labels[start]).split("|", 1)
            chunk = batch.select(order[start:end])
            existing = self.chunks.get((day, tile))
            self.chunks[(day, tile)] = (
                chunk if existing is None else existing.concat(chunk)
            )

    def matching_chunks(
        self, query: AggregationQuery
    ) -> list[tuple[tuple[str, str], ObservationBatch]]:
        days = {
            str(k)
            for k in query.snapped_time_range().covering_keys(TemporalResolution.DAY)
        }
        tiles = set(covering_cells(query.snapped_bbox(), CHUNK_TILE_PRECISION))
        return [
            (chunk_id, chunk)
            for chunk_id, chunk in sorted(self.chunks.items())
            if chunk_id[0] in days and chunk_id[1] in tiles
        ]


class PageCache:
    """Node-level LRU of chunk ids (OS page cache / doc-values cache)."""

    def __init__(self, capacity: int):
        self.capacity = capacity
        self._entries: OrderedDict[tuple[int, str, str], None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, chunk_id: tuple[int, str, str]) -> bool:
        """Touch a chunk; True when already resident (no disk needed)."""
        if chunk_id in self._entries:
            self._entries.move_to_end(chunk_id)
            self.hits += 1
            return True
        self.misses += 1
        if self.capacity > 0:
            self._entries[chunk_id] = None
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return False


class ElasticNode(StorageNode):
    """An ES data node hosting several shards."""

    def __init__(self, *args: Any, shards: list[EsShard], **kwargs: Any):
        super().__init__(*args, **kwargs)
        self.shards = shards
        es = self.config.elastic
        self.page_cache = PageCache(es.page_cache_blocks)
        #: request cache: key -> per-node merged cell dict (LRU).
        self._request_cache: OrderedDict[tuple, dict[CellKey, SummaryVector]] = (
            OrderedDict()
        )
        self.register_handler("evaluate", self._handle_evaluate)
        self.register_handler("es_scan", self._handle_es_scan)

    # -- shard-local scan ----------------------------------------------------

    def _scan_shards(
        self, query: AggregationQuery, parent: Span | None = None
    ) -> Generator[Event, Any, dict[str, Any]]:
        """Scan this node's shards; returns ``{"cells", "stats"}``.

        ``stats`` carries per-node provenance inputs: whether the request
        cache answered (``request_cache_hit``), how many chunks went to
        disk (``chunks_read``) and how many cells came back (``cells``).
        """
        key = _request_key(query)
        cached = self._request_cache.get(key)
        yield self.sim.timeout(self.cost.cell_lookup_cost)
        if cached is not None:
            self._request_cache.move_to_end(key)
            self.counters.increment("request_cache_hits")
            return {
                "cells": dict(cached),
                "stats": {
                    "cells": len(cached),
                    "request_cache_hit": 1,
                    "chunks_read": 0,
                },
            }
        self.counters.increment("request_cache_misses")

        span = self.tracer.begin(
            "es:scan_shards",
            "compute",
            parent=parent,
            node=self.node_id,
            attrs={"shards": len(self.shards)},
        )
        snapped_box = query.snapped_bbox()
        snapped_time = query.snapped_time_range()
        out: dict[CellKey, SummaryVector] = {}
        records = 0
        chunks_read = 0
        for shard in self.shards:
            # Index walk: fixed overhead per shard per query.
            yield self.sim.timeout(self.cost.request_overhead)
            for chunk_id, chunk in shard.matching_chunks(query):
                full_id = (shard.shard_id, *chunk_id)
                if not self.page_cache.access(full_id):
                    chunks_read += 1
                    yield self.disk.read(
                        chunk.nbytes, parent=span if span else parent
                    )
                sub = chunk.filter_bbox(snapped_box).filter_time(snapped_time)
                records += len(sub)
                if len(sub) == 0:
                    continue
                keys = sub.bin_keys(
                    query.resolution.spatial, query.resolution.temporal
                )
                for label, vec in grouped_summaries(keys, sub.attributes).items():
                    cell_key = CellKey.parse(str(label))
                    existing = out.get(cell_key)
                    out[cell_key] = vec if existing is None else existing.merge(vec)
        # Re-aggregation CPU over every matching document — paid on every
        # non-identical request; this is what STASH's cells amortize away.
        cpu = records * self.cost.scan_cost_per_record
        if span is not None and cpu > 0:
            self.tracer.record(
                "es:aggregate",
                "compute",
                self.sim.now,
                self.sim.now + cpu,
                parent=span,
                node=self.node_id,
                attrs={"records": records},
            )
        yield self.sim.timeout(cpu)
        self.counters.increment("records_aggregated", records)
        self.tracer.end(span)

        self._request_cache[key] = dict(out)
        if len(self._request_cache) > self.config.elastic.request_cache_entries:
            self._request_cache.popitem(last=False)
        return {
            "cells": out,
            "stats": {
                "cells": len(out),
                "request_cache_hit": 0,
                "chunks_read": chunks_read,
            },
        }

    def _handle_es_scan(self, message: Message) -> Generator[Event, Any, None]:
        yield self.sim.timeout(self.cost.request_overhead)
        query: AggregationQuery = message.payload["query"]
        response = yield self.sim.process(
            self._scan_shards(query, parent=message.span)
        )
        self.network.respond(
            message,
            response,
            size=len(response["cells"]) * self.cost.cell_wire_size,
        )

    # -- coordination --------------------------------------------------------

    def _handle_evaluate(self, message: Message) -> Generator[Event, Any, None]:
        yield self.sim.timeout(self.cost.request_overhead)
        query: AggregationQuery = message.payload["query"]
        events = []
        for node_id in sorted(self.network.node_ids):
            if node_id == self.node_id:
                events.append(
                    self.sim.process(
                        self._scan_shards(query, parent=message.span)
                    )
                )
            elif node_id.startswith("node-"):
                events.append(
                    self.request_resilient(
                        node_id,
                        "es_scan",
                        {"query": query},
                        size=512,
                        parent=message.span,
                    )
                )
        partials = yield self.sim.all_of(events)
        merged: dict[CellKey, SummaryVector] = {}
        merges = 0
        from_cache = from_disk = blocks_read = 0
        legs_failed = 0
        for partial in partials:
            if not rpc_ok(partial):
                # A data node (and its shards) is unreachable: its slice
                # of the corpus is missing from the answer.
                legs_failed += 1
                self.counters.increment("scan_legs_failed")
                continue
            stats = partial["stats"]
            if stats["request_cache_hit"]:
                from_cache += stats["cells"]
            else:
                from_disk += stats["cells"]
            blocks_read += stats["chunks_read"]
            for cell_key, vec in partial["cells"].items():
                existing = merged.get(cell_key)
                if existing is None:
                    merged[cell_key] = vec
                else:
                    merged[cell_key] = existing.merge(vec)
                    merges += 1
        if merges:
            cpu = merges * self.cost.cell_merge_cost
            if self.tracer.enabled:
                self.tracer.record(
                    "merge:partials",
                    "compute",
                    self.sim.now,
                    self.sim.now + cpu,
                    parent=message.span,
                    node=self.node_id,
                    attrs={"merges": merges},
                )
            yield self.sim.timeout(cpu)
        if query.polygon is not None:
            wanted = set(query.footprint())
            merged = {k: v for k, v in merged.items() if k in wanted}
        if query.attributes is not None:
            # Shard scans (and the request cache) hold every attribute;
            # the selection is applied here at the response boundary.
            selection = list(query.attributes)
            merged = {k: v.project(selection) for k, v in merged.items()}
        response = {
            "cells": merged,
            "provenance": {
                "cells_from_cache": from_cache,
                "cells_from_rollup": 0,
                "cells_from_disk": from_disk,
                "disk_blocks_read": blocks_read,
                "rerouted": 0,
            },
        }
        if legs_failed:
            # Shards are hash-routed, so a lost node leg loses an
            # (approximately) proportional slice of every query.
            response["provenance"]["scan_legs_failed"] = legs_failed
            response["completeness"] = 1.0 - legs_failed / max(1, len(events))
            self.counters.increment("degraded_answers")
        self.network.respond(
            message,
            response,
            size=len(merged) * self.cost.cell_wire_size,
        )


class ElasticSystem(DistributedSystem):
    """A simulated ES cluster with hash sharding and ES cache semantics."""

    def _start_nodes(self) -> None:
        es = self.config.elastic
        shards = [EsShard(i) for i in range(es.num_shards)]
        # Hash-route every document to a shard (ES default routing).
        for node_id in self.node_ids:
            for block in self.catalog.blocks_on(node_id).values():
                batch = block.batch
                if len(batch) == 0:
                    continue
                assignment = (
                    np.floor(batch.epochs).astype(np.int64) * 2_654_435_761
                    + (batch.lats * 1e6).astype(np.int64)
                ) % es.num_shards
                for shard_id in np.unique(assignment):
                    shards[int(shard_id)].add_chunked(
                        batch.select(assignment == shard_id)
                    )
        by_node: dict[str, list[EsShard]] = {n: [] for n in self.node_ids}
        for i, shard in enumerate(shards):
            by_node[self.node_ids[i % len(self.node_ids)]].append(shard)
        self.nodes = {
            node_id: ElasticNode(
                self.sim,
                self.network,
                self.catalog,
                node_id,
                self.config,
                membership=self.membership_for(node_id),
                shards=by_node[node_id],
            )
            for node_id in self.node_ids
        }
        for node in self.nodes.values():
            node.start()

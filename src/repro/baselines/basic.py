"""The "basic system": distributed scan with no STASH layer.

This is the paper's primary baseline (the "simple Galileo storage
system"): every query is answered by scattering scans to the nodes
holding the relevant blocks and merging the partial aggregations at the
coordinator.  No state is reused between queries.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.keys import CellKey
from repro.data.statistics import SummaryVector
from repro.faults.membership import rpc_ok
from repro.query.model import AggregationQuery
from repro.sim.engine import Event
from repro.sim.network import Message
from repro.storage.node import StorageNode
from repro.system import DistributedSystem


class BasicNode(StorageNode):
    """Storage node that can also coordinate whole-query evaluation."""

    def __init__(self, *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        self.register_handler("evaluate", self._handle_evaluate)

    def _handle_evaluate(self, message: Message) -> Generator[Event, Any, None]:
        yield self.sim.timeout(self.cost.request_overhead)
        query: AggregationQuery = message.payload["query"]
        block_ids = self.catalog.blocks_for_query(query)
        plan = self.catalog.blocks_by_node(block_ids)
        events = []
        leg_blocks: list[int] = []
        for node_id, ids in sorted(plan.items()):
            if node_id == self.node_id:
                events.append(
                    self.sim.process(
                        self.scan_locally(query, ids, parent=message.span)
                    )
                )
            else:
                events.append(
                    self.request_resilient(
                        node_id,
                        "scan",
                        {"query": query, "block_ids": ids},
                        size=1_024,
                        parent=message.span,
                    )
                )
            leg_blocks.append(len(ids))
        partials: list[dict[CellKey, SummaryVector]] = (
            yield self.sim.all_of(events)
        ) if events else []
        merged: dict[CellKey, SummaryVector] = {}
        merges = 0
        blocks_unread = 0
        legs_failed = 0
        for nblocks, cells in zip(leg_blocks, partials):
            if not rpc_ok(cells):
                # The peer holding these blocks is gone: degrade rather
                # than hang — its cells are simply missing from the answer.
                legs_failed += 1
                blocks_unread += nblocks
                self.counters.increment("scan_legs_failed")
                continue
            for key, vec in cells.items():
                existing = merged.get(key)
                if existing is None:
                    merged[key] = vec
                else:
                    merged[key] = existing.merge(vec)
                    merges += 1
        if merges:
            cpu = merges * self.cost.cell_merge_cost
            if self.tracer.enabled:
                self.tracer.record(
                    "merge:partials",
                    "compute",
                    self.sim.now,
                    self.sim.now + cpu,
                    parent=message.span,
                    node=self.node_id,
                    attrs={"merges": merges},
                )
            yield self.sim.timeout(cpu)
        if query.polygon is not None:
            # Scans cover the polygon's bounding box; keep only the cells
            # of the polygonal footprint.
            wanted = set(query.footprint())
            merged = {k: v for k, v in merged.items() if k in wanted}
        if query.attributes is not None:
            # Scans aggregate every attribute; the selection is applied
            # here at the response boundary.
            selection = list(query.attributes)
            merged = {k: v.project(selection) for k, v in merged.items()}
        response = {
            "cells": merged,
            "provenance": {
                "cells_from_cache": 0,
                "cells_from_rollup": 0,
                "cells_from_disk": len(merged),
                "disk_blocks_read": len(block_ids) - blocks_unread,
                "rerouted": 0,
            },
        }
        if legs_failed:
            response["provenance"]["scan_legs_failed"] = legs_failed
            response["completeness"] = 1.0 - blocks_unread / max(1, len(block_ids))
            self.counters.increment("degraded_answers")
        self.network.respond(
            message,
            response,
            size=len(merged) * self.cost.cell_wire_size,
        )


class BasicSystem(DistributedSystem):
    """Cluster of :class:`BasicNode` — the no-cache baseline."""

    def _start_nodes(self) -> None:
        self.nodes = {
            node_id: BasicNode(
                self.sim,
                self.network,
                self.catalog,
                node_id,
                self.config,
                membership=self.membership_for(node_id),
            )
            for node_id in self.node_ids
        }
        for node in self.nodes.values():
            node.start()

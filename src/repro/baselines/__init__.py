"""Comparator systems: the basic (scan-only) backend and simulated
ElasticSearch (paper section VIII)."""

from repro.baselines.basic import BasicSystem
from repro.baselines.elastic import ElasticSystem

__all__ = ["BasicSystem", "ElasticSystem"]

"""Shared statistical primitives used across the repository.

Before this module existed every consumer computed percentiles its own
way — ``np.percentile`` in :mod:`repro.sim.metrics`, ``np.quantile`` in
:mod:`repro.bench.faults`, and hand-rolled ``sorted[int(0.95 * n)]``
indexing in the CLI — three subtly different interpolation rules.  Every
percentile the repository reports now goes through :func:`percentile`,
so numbers from different reports are comparable.

The interpolation is the classic "linear" rule (NumPy's default): the
``q``-th percentile of ``n`` sorted values sits at fractional rank
``(n - 1) * q / 100`` and is linearly interpolated between the two
surrounding order statistics.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence


def percentile(values: Iterable[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation.

    Accepts any iterable of numbers; raises ``ValueError`` on an empty
    input or a ``q`` outside ``[0, 100]``.  Matches ``np.percentile``'s
    default (``linear``) interpolation exactly.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    ordered = sorted(float(v) for v in values)
    if not ordered:
        raise ValueError("percentile of an empty sequence")
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * (q / 100.0)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return ordered[int(rank)]
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def percentiles(values: Sequence[float], qs: Iterable[float]) -> list[float]:
    """Several percentiles of one sample, sorting it only once."""
    ordered = sorted(float(v) for v in values)
    if not ordered:
        raise ValueError("percentile of an empty sequence")
    out = []
    for q in qs:
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if len(ordered) == 1:
            out.append(ordered[0])
            continue
        rank = (len(ordered) - 1) * (q / 100.0)
        lo = math.floor(rank)
        hi = math.ceil(rank)
        if lo == hi:
            out.append(ordered[int(rank)])
        else:
            frac = rank - lo
            out.append(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)
    return out

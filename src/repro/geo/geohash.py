"""Geohash encoding/decoding and topology (paper sections IV-A, IV-B).

Geohashes [Niemeyer 1999] are the spatial index of both Galileo and STASH:
a base-32 string where each added character splits the cell 32 ways
(8 x 4 or 4 x 8 alternating), so prefix truncation is spatial parentage.

Hot paths (binning millions of observations) use the vectorized
:func:`encode_many` (strings) or :func:`spatial_codes` (raw interleaved
uint64 bit-codes, the integer form the columnar aggregation pipeline bins
on); the scalar functions serve topology queries (neighbors, children,
antipode) on individual cells.

Coordinate contract: every encoder — scalar and vectorized — rejects
non-finite (NaN / ±inf) and out-of-range coordinates with
:class:`~repro.errors.GeohashError`.  NaN comparisons are all-False, so
without the explicit finiteness check a NaN would sail through a
min/max range test and turn into a garbage geohash via integer casting.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import GeohashError
from repro.geo.bbox import BoundingBox

#: Canonical geohash base-32 alphabet (no a, i, l, o).
GEOHASH_ALPHABET = "0123456789bcdefghjkmnpqrstuvwxyz"
_CHAR_TO_VAL = {c: i for i, c in enumerate(GEOHASH_ALPHABET)}

#: Maximum precision supported (60 bits fits comfortably in uint64).
MAX_PRECISION = 12


def _bit_counts(precision: int) -> tuple[int, int]:
    """(lon_bits, lat_bits) for a geohash of the given length.

    Geohash interleaves bits starting with longitude, so odd total bit
    counts give longitude one extra bit.
    """
    total = 5 * precision
    lon_bits = (total + 1) // 2
    lat_bits = total // 2
    return lon_bits, lat_bits


def _check_precision(precision: int) -> None:
    if not 1 <= precision <= MAX_PRECISION:
        raise GeohashError(
            f"precision must be in [1, {MAX_PRECISION}], got {precision}"
        )


def cell_dimensions(precision: int) -> tuple[float, float]:
    """(height_degrees, width_degrees) of one cell at ``precision``."""
    _check_precision(precision)
    lon_bits, lat_bits = _bit_counts(precision)
    return 180.0 / (1 << lat_bits), 360.0 / (1 << lon_bits)


def encode(lat: float, lon: float, precision: int) -> str:
    """Encode a point to a geohash string of the given length.

    Non-finite (NaN / ±inf) coordinates raise :class:`GeohashError`.
    """
    _check_precision(precision)
    if not (math.isfinite(lat) and math.isfinite(lon)):
        raise GeohashError(f"non-finite coordinate: ({lat}, {lon})")
    if not (-90.0 <= lat <= 90.0 and -180.0 <= lon <= 180.0):
        raise GeohashError(f"coordinate out of range: ({lat}, {lon})")
    lon_bits, lat_bits = _bit_counts(precision)
    # Closed-open binning; clamp the exact top edge into the last cell.
    lat_idx = min(int((lat + 90.0) / 180.0 * (1 << lat_bits)), (1 << lat_bits) - 1)
    lon_idx = min(int((lon + 180.0) / 360.0 * (1 << lon_bits)), (1 << lon_bits) - 1)
    return _from_indices(lat_idx, lon_idx, precision)


def _from_indices(lat_idx: int, lon_idx: int, precision: int) -> str:
    """Build the geohash string from integer lat/lon bin indices."""
    lon_bits, lat_bits = _bit_counts(precision)
    interleaved = 0
    # Even bit positions (from MSB, position 0) come from longitude.
    for i in range(lon_bits):
        bit = (lon_idx >> (lon_bits - 1 - i)) & 1
        interleaved |= bit << (5 * precision - 1 - 2 * i)
    for i in range(lat_bits):
        bit = (lat_idx >> (lat_bits - 1 - i)) & 1
        interleaved |= bit << (5 * precision - 2 - 2 * i)
    chars = []
    for i in range(precision):
        shift = 5 * (precision - 1 - i)
        chars.append(GEOHASH_ALPHABET[(interleaved >> shift) & 0x1F])
    return "".join(chars)


def _to_indices(geohash: str) -> tuple[int, int]:
    """(lat_idx, lon_idx) integer bin indices of a geohash cell."""
    precision = len(geohash)
    _check_precision(precision)
    interleaved = 0
    for ch in geohash:
        try:
            interleaved = (interleaved << 5) | _CHAR_TO_VAL[ch]
        except KeyError:
            raise GeohashError(f"invalid geohash character {ch!r} in {geohash!r}")
    lon_bits, lat_bits = _bit_counts(precision)
    lat_idx = lon_idx = 0
    for i in range(lon_bits):
        bit = (interleaved >> (5 * precision - 1 - 2 * i)) & 1
        lon_idx = (lon_idx << 1) | bit
    for i in range(lat_bits):
        bit = (interleaved >> (5 * precision - 2 - 2 * i)) & 1
        lat_idx = (lat_idx << 1) | bit
    return lat_idx, lon_idx


def decode(geohash: str) -> tuple[float, float]:
    """Center (lat, lon) of the geohash cell."""
    box = bbox(geohash)
    return box.center


def bbox(geohash: str) -> BoundingBox:
    """Bounding box of the geohash cell."""
    precision = len(geohash)
    lat_idx, lon_idx = _to_indices(geohash)
    height, width = cell_dimensions(precision)
    south = -90.0 + lat_idx * height
    west = -180.0 + lon_idx * width
    # Guard the top edge against float rounding past the globe bounds.
    return BoundingBox(
        south=south,
        north=min(90.0, south + height),
        west=west,
        east=min(180.0, west + width),
    )


def parent(geohash: str) -> str:
    """One-character-shorter prefix (the spatial parent)."""
    if len(geohash) <= 1:
        raise GeohashError(f"geohash {geohash!r} has no parent")
    return geohash[:-1]


def children(geohash: str) -> list[str]:
    """All 32 one-character extensions (the spatial children)."""
    if len(geohash) >= MAX_PRECISION:
        raise GeohashError(f"geohash {geohash!r} is at max precision")
    return [geohash + c for c in GEOHASH_ALPHABET]


def neighbors(geohash: str) -> list[str]:
    """Up to 8 adjacent same-precision cells (paper Fig. 1a).

    Longitude wraps around the antimeridian; rows beyond the poles are
    omitted, so polar cells return fewer than 8 neighbors.
    """
    precision = len(geohash)
    lat_idx, lon_idx = _to_indices(geohash)
    lon_bits, lat_bits = _bit_counts(precision)
    n_lat, n_lon = 1 << lat_bits, 1 << lon_bits
    out: list[str] = []
    for dlat in (1, 0, -1):
        row = lat_idx + dlat
        if not 0 <= row < n_lat:
            continue
        for dlon in (-1, 0, 1):
            if dlat == 0 and dlon == 0:
                continue
            col = (lon_idx + dlon) % n_lon
            out.append(_from_indices(row, col, precision))
    return out


def shift(geohash: str, dlat_cells: int, dlon_cells: int) -> str | None:
    """Cell ``dlat_cells`` north and ``dlon_cells`` east, or None off-globe."""
    precision = len(geohash)
    lat_idx, lon_idx = _to_indices(geohash)
    lon_bits, lat_bits = _bit_counts(precision)
    row = lat_idx + dlat_cells
    if not 0 <= row < (1 << lat_bits):
        return None
    col = (lon_idx + dlon_cells) % (1 << lon_bits)
    return _from_indices(row, col, precision)


def antipode(geohash: str) -> str:
    """Geohash (same precision) of the diametrically opposite cell.

    Used by the clique-handoff helper selection (paper section VII-B-3):
    replicas of a hotspotted region are placed on the node owning the
    region "on the diametrically opposite side of the globe".
    """
    lat, lon = decode(geohash)
    anti_lat = -lat
    anti_lon = lon + 180.0 if lon < 0 else lon - 180.0
    return encode(anti_lat, anti_lon, len(geohash))


def common_prefix(a: str, b: str) -> str:
    """Longest shared prefix — the smallest cell containing both."""
    n = 0
    for ca, cb in zip(a, b):
        if ca != cb:
            break
        n += 1
    return a[:n]


def encode_many(
    lats: np.ndarray, lons: np.ndarray, precision: int
) -> np.ndarray:
    """Vectorized geohash encoding.

    Returns an array of fixed-width unicode geohash strings.  Non-finite
    (NaN / ±inf) coordinates raise :class:`GeohashError` — the range
    check alone would not catch NaN (all its comparisons are False) and
    ``astype(np.uint64)`` on NaN produces garbage codes.  Everything is
    integer bit arithmetic on uint64 arrays (no Python-level per-point
    loop — the loops are over *bit positions*, at most 60).
    """
    return codes_to_geohashes(spatial_codes(lats, lons, precision), precision)


def spatial_codes(
    lats: np.ndarray, lons: np.ndarray, precision: int
) -> np.ndarray:
    """Vectorized geohash *bit-codes*: the interleaved uint64 form.

    The code is the geohash string's base-32 value (5 bits per
    character, lon bit first), so codes order exactly like same-precision
    geohash strings and convert losslessly via
    :func:`codes_to_geohashes` / :func:`geohash_to_code`.  This is the
    integer spatial key of the columnar aggregation pipeline: binning
    sorts these uint64 codes instead of strings.

    Non-finite (NaN / ±inf) or out-of-range coordinates raise
    :class:`GeohashError`.
    """
    _check_precision(precision)
    lats = np.asarray(lats, dtype=np.float64)
    lons = np.asarray(lons, dtype=np.float64)
    if lats.shape != lons.shape:
        raise GeohashError("lats and lons must have identical shapes")
    if lats.size:
        if not (bool(np.isfinite(lats).all()) and bool(np.isfinite(lons).all())):
            raise GeohashError("non-finite coordinates in spatial encoding")
        if (
            float(lats.min()) < -90.0
            or float(lats.max()) > 90.0
            or float(lons.min()) < -180.0
            or float(lons.max()) > 180.0
        ):
            raise GeohashError("coordinates out of range in spatial encoding")
    lon_bits, lat_bits = _bit_counts(precision)
    lat_idx = np.minimum(
        ((lats + 90.0) / 180.0 * (1 << lat_bits)).astype(np.uint64),
        (1 << lat_bits) - 1,
    )
    lon_idx = np.minimum(
        ((lons + 180.0) / 360.0 * (1 << lon_bits)).astype(np.uint64),
        (1 << lon_bits) - 1,
    )
    return _interleave_many(lat_idx, lon_idx, precision)


def _interleave_many(
    lat_idx: np.ndarray, lon_idx: np.ndarray, precision: int
) -> np.ndarray:
    """Interleave integer bin indices into uint64 geohash bit-codes."""
    lon_bits, lat_bits = _bit_counts(precision)
    total = 5 * precision
    interleaved = np.zeros(lat_idx.shape, dtype=np.uint64)
    for i in range(lon_bits):
        bit = (lon_idx >> np.uint64(lon_bits - 1 - i)) & np.uint64(1)
        interleaved |= bit << np.uint64(total - 1 - 2 * i)
    for i in range(lat_bits):
        bit = (lat_idx >> np.uint64(lat_bits - 1 - i)) & np.uint64(1)
        interleaved |= bit << np.uint64(total - 2 - 2 * i)
    return interleaved


def codes_to_geohashes(codes: np.ndarray, precision: int) -> np.ndarray:
    """Convert uint64 geohash bit-codes back to base-32 strings."""
    _check_precision(precision)
    codes = np.asarray(codes, dtype=np.uint64)
    # Slice the interleaved value into 5-bit base-32 symbols.
    alphabet = np.frombuffer(GEOHASH_ALPHABET.encode("ascii"), dtype=np.uint8)
    out_bytes = np.empty(codes.shape + (precision,), dtype=np.uint8)
    for i in range(precision):
        shift_amt = np.uint64(5 * (precision - 1 - i))
        out_bytes[..., i] = alphabet[
            ((codes >> shift_amt) & np.uint64(0x1F)).astype(np.intp)
        ]
    return out_bytes.view(f"S{precision}").reshape(codes.shape).astype(f"U{precision}")


def geohash_to_code(geohash: str) -> int:
    """The interleaved bit-code of one geohash string (base-32 value)."""
    code = 0
    for ch in geohash:
        try:
            code = (code << 5) | _CHAR_TO_VAL[ch]
        except KeyError:
            raise GeohashError(
                f"invalid geohash character {ch!r} in {geohash!r}"
            ) from None
    return code


def _from_indices_many(
    lat_idx: np.ndarray, lon_idx: np.ndarray, precision: int
) -> np.ndarray:
    """Vectorized counterpart of :func:`_from_indices`."""
    return codes_to_geohashes(
        _interleave_many(lat_idx, lon_idx, precision), precision
    )

"""Spatiotemporal resolutions and STASH level arithmetic (paper IV-C).

A :class:`Resolution` pairs a geohash precision with a temporal
resolution.  The STASH graph groups cells into *levels*; per the paper,
the level for spatial resolution index ``n_i`` and temporal resolution
index ``n_j`` is ``n_j * n_t + n_i`` where ``n_t`` is the number of
temporal resolutions.  :class:`ResolutionSpace` fixes the supported
spatial precision range and performs that arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ResolutionError
from repro.geo.geohash import MAX_PRECISION
from repro.geo.temporal import NUM_TEMPORAL_RESOLUTIONS, TemporalResolution


@dataclass(frozen=True, slots=True, order=True)
class Resolution:
    """A (spatial geohash precision, temporal resolution) pair."""

    spatial: int
    temporal: TemporalResolution

    def __post_init__(self) -> None:
        if not 1 <= self.spatial <= MAX_PRECISION:
            raise ResolutionError(f"spatial precision {self.spatial} out of range")

    def __str__(self) -> str:
        return f"s{self.spatial}/{self.temporal.name.lower()}"

    # The three parent/child refinement axes (paper IV-B: "Each Cell can
    # have 3 different parent precisions").

    def coarser_spatial(self) -> "Resolution | None":
        if self.spatial <= 1:
            return None
        return Resolution(self.spatial - 1, self.temporal)

    def coarser_temporal(self) -> "Resolution | None":
        coarser = self.temporal.coarser
        if coarser is None:
            return None
        return Resolution(self.spatial, coarser)

    def coarser_both(self) -> "Resolution | None":
        if self.spatial <= 1 or self.temporal.coarser is None:
            return None
        return Resolution(self.spatial - 1, self.temporal.coarser)

    def finer_spatial(self) -> "Resolution | None":
        if self.spatial >= MAX_PRECISION:
            return None
        return Resolution(self.spatial + 1, self.temporal)

    def finer_temporal(self) -> "Resolution | None":
        finer = self.temporal.finer
        if finer is None:
            return None
        return Resolution(self.spatial, finer)

    def finer_both(self) -> "Resolution | None":
        if self.spatial >= MAX_PRECISION or self.temporal.finer is None:
            return None
        return Resolution(self.spatial + 1, self.temporal.finer)

    def parents(self) -> list["Resolution"]:
        """All (up to 3) one-step-coarser resolutions."""
        out = [self.coarser_spatial(), self.coarser_temporal(), self.coarser_both()]
        return [r for r in out if r is not None]

    def children_resolutions(self) -> list["Resolution"]:
        """All (up to 3) one-step-finer resolutions."""
        out = [self.finer_spatial(), self.finer_temporal(), self.finer_both()]
        return [r for r in out if r is not None]


@dataclass(frozen=True, slots=True)
class ResolutionSpace:
    """The set of resolutions a STASH deployment supports.

    Parameters
    ----------
    min_spatial, max_spatial:
        Inclusive geohash precision range (the paper's experiments span
        precisions 2 through 6).
    """

    min_spatial: int = 1
    max_spatial: int = 8

    def __post_init__(self) -> None:
        if not 1 <= self.min_spatial <= self.max_spatial <= MAX_PRECISION:
            raise ResolutionError(
                f"bad spatial range [{self.min_spatial}, {self.max_spatial}]"
            )

    @property
    def num_spatial(self) -> int:
        """The paper's ``n_s``."""
        return self.max_spatial - self.min_spatial + 1

    @property
    def num_temporal(self) -> int:
        """The paper's ``n_t``."""
        return NUM_TEMPORAL_RESOLUTIONS

    @property
    def num_levels(self) -> int:
        return self.num_spatial * self.num_temporal

    def contains(self, resolution: Resolution) -> bool:
        return self.min_spatial <= resolution.spatial <= self.max_spatial

    def _check(self, resolution: Resolution) -> None:
        if not self.contains(resolution):
            raise ResolutionError(f"{resolution} outside space {self}")

    def level_of(self, resolution: Resolution) -> int:
        """STASH graph level: ``spatial_idx * n_t + temporal_idx``.

        Level 0 is the coarsest resolution on both axes; larger levels are
        finer.  Within the space, the mapping is a bijection.
        """
        self._check(resolution)
        spatial_idx = resolution.spatial - self.min_spatial
        return spatial_idx * self.num_temporal + int(resolution.temporal)

    def resolution_at(self, level: int) -> Resolution:
        """Inverse of :meth:`level_of`."""
        if not 0 <= level < self.num_levels:
            raise ResolutionError(f"level {level} out of [0, {self.num_levels})")
        spatial_idx, temporal_idx = divmod(level, self.num_temporal)
        return Resolution(
            self.min_spatial + spatial_idx, TemporalResolution(temporal_idx)
        )

    def all_resolutions(self) -> list[Resolution]:
        """Every supported resolution, in level order."""
        return [self.resolution_at(level) for level in range(self.num_levels)]

    def parents_within(self, resolution: Resolution) -> list[Resolution]:
        """Parent resolutions that stay inside this space."""
        self._check(resolution)
        return [r for r in resolution.parents() if self.contains(r)]

    def children_within(self, resolution: Resolution) -> list[Resolution]:
        """Child resolutions that stay inside this space."""
        self._check(resolution)
        return [r for r in resolution.children_resolutions() if self.contains(r)]

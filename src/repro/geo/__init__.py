"""Geospatial and temporal primitives: bounding boxes, geohashes, time keys.

This subpackage is dependency-free within the project (only numpy) and is
shared by the storage backend, the STASH cache, the baselines, and the
workload generators.
"""

from repro.geo.bbox import BoundingBox
from repro.geo.geohash import (
    GEOHASH_ALPHABET,
    antipode,
    bbox as geohash_bbox,
    cell_dimensions,
    children,
    decode,
    encode,
    encode_many,
    neighbors,
    parent,
)
from repro.geo.temporal import TemporalResolution, TimeKey, TimeRange
from repro.geo.resolution import Resolution, ResolutionSpace
from repro.geo.cover import covering_cells, covering_count

__all__ = [
    "BoundingBox",
    "GEOHASH_ALPHABET",
    "antipode",
    "geohash_bbox",
    "cell_dimensions",
    "children",
    "decode",
    "encode",
    "encode_many",
    "neighbors",
    "parent",
    "TemporalResolution",
    "TimeKey",
    "TimeRange",
    "Resolution",
    "ResolutionSpace",
    "covering_cells",
    "covering_count",
]

"""Integer bin ids for the columnar scan->bin->summary pipeline.

A bin id packs one spatiotemporal cell into a single uint64::

    id = (spatial_code << TEMPORAL_CODE_BITS[resolution]) | temporal_code

where ``spatial_code`` is the interleaved geohash bit-code
(:func:`repro.geo.geohash.spatial_codes`, 5 bits per character) and
``temporal_code`` is the integer epoch bin
(:func:`repro.geo.temporal.bin_epoch_codes`, e.g. days since 1970 at
DAY).  Grouping observations then means sorting uint64s instead of
composite ``"<geohash>@<timekey>"`` strings — an order-of-magnitude
cheaper factorization for the same bins.

Ordering is preserved: the geohash alphabet is ASCII-ascending and ISO
time labels sort chronologically, so sorting bin ids yields exactly the
same group order as sorting the old composite string labels.  Per-group
record order is therefore identical too, which keeps float summation
order — and hence summary values — bitwise identical between the
columnar and scalar paths.

The packing needs ``5 * precision + TEMPORAL_CODE_BITS[resolution]``
bits; :func:`supports_bin_ids` reports whether a (precision, resolution)
pair fits in 64.  Callers fall back to the string labels when it does
not (only spatial precisions beyond 8 — far finer than any resolution
space in this system — are affected).
"""

from __future__ import annotations

import functools

import numpy as np

from repro.errors import TemporalError
from repro.geo.geohash import codes_to_geohashes, spatial_codes
from repro.geo.temporal import (
    TemporalResolution,
    TimeKey,
    bin_epoch_codes,
    time_key_of_code,
)

#: Bits reserved for the temporal code at each resolution.  Sized so the
#: representable range is generous (4096 years; ~65k months / ~1.4M days /
#: ~1.9M hours since 1970) while leaving spatial room for geohash
#: precision 8 even at HOUR.
TEMPORAL_CODE_BITS: dict[TemporalResolution, int] = {
    TemporalResolution.YEAR: 12,
    TemporalResolution.MONTH: 16,
    TemporalResolution.DAY: 20,
    TemporalResolution.HOUR: 24,
}


def supports_bin_ids(precision: int, resolution: TemporalResolution) -> bool:
    """True if (precision, resolution) bins fit the packed uint64 scheme."""
    return 5 * precision + TEMPORAL_CODE_BITS[resolution] <= 64


def bin_ids(
    lats: np.ndarray,
    lons: np.ndarray,
    epochs: np.ndarray,
    precision: int,
    resolution: TemporalResolution,
) -> np.ndarray:
    """Vectorized spatiotemporal binning to packed uint64 bin ids.

    Raises :class:`~repro.errors.TemporalError` if the pair is
    unsupported (see :func:`supports_bin_ids`) or any epoch falls
    outside the representable temporal range (pre-1970 instants have
    negative temporal codes and cannot be packed).  Coordinate
    validation (non-finite / out-of-range) is inherited from
    :func:`~repro.geo.geohash.spatial_codes`.
    """
    bits = TEMPORAL_CODE_BITS[resolution]
    if not supports_bin_ids(precision, resolution):
        raise TemporalError(
            f"bin ids need {5 * precision + bits} bits for precision "
            f"{precision} at {resolution.name}; max is 64"
        )
    spatial = spatial_codes(lats, lons, precision)
    temporal = bin_epoch_codes(epochs, resolution)
    if temporal.size:
        lo = int(temporal.min())
        hi = int(temporal.max())
        if lo < 0 or hi >= (1 << bits):
            raise TemporalError(
                f"temporal code out of packed range [0, 2^{bits}) at "
                f"{resolution.name}: [{lo}, {hi}]"
            )
    return (spatial << np.uint64(bits)) | temporal.astype(np.uint64)


def decode_bin_ids(
    ids: np.ndarray, precision: int, resolution: TemporalResolution
) -> list[tuple[str, TimeKey]]:
    """Unpack bin ids to (geohash string, TimeKey) pairs, in array order.

    The inverse of :func:`bin_ids` for ids it produced.  Callers build
    :class:`~repro.core.keys.CellKey` objects from the pairs — this
    module stays below ``core`` in the import graph.
    """
    ids = np.asarray(ids, dtype=np.uint64)
    bits = np.uint64(TEMPORAL_CODE_BITS[resolution])
    geohashes = codes_to_geohashes(ids >> bits, precision)
    mask = np.uint64((1 << TEMPORAL_CODE_BITS[resolution]) - 1)
    temporal = (ids & mask).astype(np.int64)
    # Scans see few unique temporal bins; memoize the TimeKey objects.
    key_of = functools.lru_cache(maxsize=None)(
        lambda code: time_key_of_code(code, resolution)
    )
    return [
        (str(gh), key_of(int(code)))
        for gh, code in zip(geohashes.tolist(), temporal.tolist())
    ]

"""Query footprint computation: bounding box -> covering geohash cells.

The front-end's Query_Polygon is a lat/lon rectangle; evaluating it at a
spatial resolution means touching every geohash cell of that precision
that overlaps the rectangle (paper section IV-D).  This module computes
that cover with integer grid arithmetic — no per-cell geometry tests.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GeohashError
from repro.geo.bbox import BoundingBox
from repro.geo.geohash import _bit_counts, _check_precision, _from_indices_many


def _index_ranges(
    box: BoundingBox, precision: int
) -> tuple[int, int, int, int]:
    """Inclusive (lat_lo, lat_hi, lon_lo, lon_hi) grid index ranges."""
    lon_bits, lat_bits = _bit_counts(precision)
    n_lat, n_lon = 1 << lat_bits, 1 << lon_bits
    lat_lo = int((box.south + 90.0) / 180.0 * n_lat)
    lon_lo = int((box.west + 180.0) / 360.0 * n_lon)
    # North/east edges are exclusive: a box ending exactly on a cell
    # boundary does not include the next cell.
    lat_hi = int(np.nextafter((box.north + 90.0) / 180.0 * n_lat, -np.inf))
    lon_hi = int(np.nextafter((box.east + 180.0) / 360.0 * n_lon, -np.inf))
    lat_lo = max(0, min(lat_lo, n_lat - 1))
    lon_lo = max(0, min(lon_lo, n_lon - 1))
    lat_hi = max(lat_lo, min(lat_hi, n_lat - 1))
    lon_hi = max(lon_lo, min(lon_hi, n_lon - 1))
    return lat_lo, lat_hi, lon_lo, lon_hi


def covering_count(box: BoundingBox, precision: int) -> int:
    """Number of cells in the cover, without materializing them."""
    _check_precision(precision)
    lat_lo, lat_hi, lon_lo, lon_hi = _index_ranges(box, precision)
    return (lat_hi - lat_lo + 1) * (lon_hi - lon_lo + 1)


def covering_cells(
    box: BoundingBox, precision: int, max_cells: int | None = None
) -> list[str]:
    """All geohash cells at ``precision`` overlapping ``box``.

    Cells are returned in row-major (south-to-north, west-to-east) order.
    ``max_cells`` guards against accidentally materializing a continental
    cover at a street-level precision.
    """
    _check_precision(precision)
    lat_lo, lat_hi, lon_lo, lon_hi = _index_ranges(box, precision)
    count = (lat_hi - lat_lo + 1) * (lon_hi - lon_lo + 1)
    if max_cells is not None and count > max_cells:
        raise GeohashError(
            f"cover of {count} cells exceeds max_cells={max_cells}; "
            "lower the precision or shrink the box"
        )
    lat_idx, lon_idx = np.meshgrid(
        np.arange(lat_lo, lat_hi + 1, dtype=np.uint64),
        np.arange(lon_lo, lon_hi + 1, dtype=np.uint64),
        indexing="ij",
    )
    hashes = _from_indices_many(lat_idx.ravel(), lon_idx.ravel(), precision)
    return hashes.tolist()


def expand_ring(box: BoundingBox, precision: int) -> list[str]:
    """The one-cell-wide ring of cells just outside ``box``'s cover.

    This is the "immediate spatiotemporal neighborhood" that receives
    dispersed freshness when a region is accessed (paper Fig. 3, grey
    cells).

    The grid does not wrap: columns past the antimeridian are skipped,
    exactly as :func:`covering_cells`/:func:`_index_ranges` clamp query
    covers at the seam.  (Wrapping here used to seed freshness on cells
    no query footprint could ever produce.)
    """
    _check_precision(precision)
    lon_bits, lat_bits = _bit_counts(precision)
    n_lat, n_lon = 1 << lat_bits, 1 << lon_bits
    lat_lo, lat_hi, lon_lo, lon_hi = _index_ranges(box, precision)
    ring: list[tuple[int, int]] = []
    for row in range(lat_lo - 1, lat_hi + 2):
        if not 0 <= row < n_lat:
            continue
        if row in (lat_lo - 1, lat_hi + 1):
            cols = range(lon_lo - 1, lon_hi + 2)
        else:
            cols = (lon_lo - 1, lon_hi + 1)
        for col in cols:
            if 0 <= col < n_lon:
                ring.append((row, col))
    if not ring:
        return []
    rows = np.asarray([r for r, _ in ring], dtype=np.uint64)
    cols = np.asarray([c for _, c in ring], dtype=np.uint64)
    return _from_indices_many(rows, cols, precision).tolist()

"""Polygonal query regions.

The paper's queries carry a ``Query_Polygon``; its experiments use
rectangles, but a front-end lasso/shape tool produces real polygons.
A :class:`Polygon` is a simple (non-self-intersecting) lat/lon polygon;
containment uses vectorized ray casting.  Cell selection is by cell
*center* — the natural semantics when the aggregation unit is a fixed
grid cell: a cell belongs to the region that contains most of it, and
center-containment is the standard unbiased approximation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GeohashError
from repro.geo.bbox import BoundingBox
from repro.geo.cover import covering_cells
from repro.geo.geohash import bbox as geohash_bbox


@dataclass(frozen=True)
class Polygon:
    """A simple polygon in (lat, lon) degrees, implicitly closed."""

    #: Vertices as (lat, lon) pairs, in order (either winding).
    vertices: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if len(self.vertices) < 3:
            raise GeohashError("a polygon needs at least 3 vertices")
        lats = [v[0] for v in self.vertices]
        lons = [v[1] for v in self.vertices]
        if not all(-90.0 <= lat <= 90.0 for lat in lats):
            raise GeohashError("polygon latitude out of range")
        if not all(-180.0 <= lon <= 180.0 for lon in lons):
            raise GeohashError("polygon longitude out of range")
        if max(lats) == min(lats) or max(lons) == min(lons):
            raise GeohashError("degenerate polygon (zero spatial extent)")

    @staticmethod
    def of(*vertices: tuple[float, float]) -> "Polygon":
        return Polygon(tuple(vertices))

    @staticmethod
    def from_bbox(box: BoundingBox) -> "Polygon":
        return Polygon(
            (
                (box.south, box.west),
                (box.south, box.east),
                (box.north, box.east),
                (box.north, box.west),
            )
        )

    @property
    def bbox(self) -> BoundingBox:
        lats = [v[0] for v in self.vertices]
        lons = [v[1] for v in self.vertices]
        south, north = min(lats), max(lats)
        west, east = min(lons), max(lons)
        # Guard degenerate extents by widening a hair inside the globe.
        eps = 1e-9
        if north <= south:
            north = min(90.0, south + eps)
        if east <= west:
            east = min(180.0, west + eps)
        return BoundingBox(south, north, west, east)

    # -- transforms ----------------------------------------------------------

    def translated(self, dlat: float, dlon: float) -> "Polygon":
        """Shifted copy, sliding back to stay inside the globe.

        The *translation vector* is clamped, not the individual vertices,
        so an edge pan stops at the boundary with the shape intact —
        matching :meth:`BoundingBox.translated` semantics.  (Per-vertex
        clamping used to flatten shapes pushed against ±90/±180 into
        degenerate polygons mid-session.)
        """
        lats = [v[0] for v in self.vertices]
        lons = [v[1] for v in self.vertices]
        dlat = min(max(dlat, -90.0 - min(lats)), 90.0 - max(lats))
        dlon = min(max(dlon, -180.0 - min(lons)), 180.0 - max(lons))
        return Polygon(
            tuple(
                # Outer clamp only absorbs float round-off at the boundary.
                (
                    min(90.0, max(-90.0, lat + dlat)),
                    min(180.0, max(-180.0, lon + dlon)),
                )
                for lat, lon in self.vertices
            )
        )

    def scaled(self, area_factor: float) -> "Polygon":
        """Copy scaled about the bounding-box center (area semantics)."""
        if area_factor <= 0:
            raise GeohashError("scale factor must be positive")
        lin = float(np.sqrt(area_factor))
        clat, clon = self.bbox.center
        return Polygon(
            tuple(
                (
                    min(90.0, max(-90.0, clat + (lat - clat) * lin)),
                    min(180.0, max(-180.0, clon + (lon - clon) * lin)),
                )
                for lat, lon in self.vertices
            )
        )

    # -- containment ---------------------------------------------------------

    def contains_points(self, lats: np.ndarray, lons: np.ndarray) -> np.ndarray:
        """Vectorized ray casting: True where (lat, lon) is inside.

        Points exactly on an edge may land either way (float arithmetic);
        query semantics never depend on edge points because cell centers
        are strictly interior to their cells.
        """
        lats = np.asarray(lats, dtype=np.float64)
        lons = np.asarray(lons, dtype=np.float64)
        inside = np.zeros(lats.shape, dtype=bool)
        n = len(self.vertices)
        for i in range(n):
            lat1, lon1 = self.vertices[i]
            lat2, lon2 = self.vertices[(i + 1) % n]
            # Does the horizontal ray (in the +lon direction) cross this
            # edge?  Cross iff the edge spans the point's latitude and the
            # crossing longitude lies east of the point.
            spans = (lat1 > lats) != (lat2 > lats)
            with np.errstate(divide="ignore", invalid="ignore"):
                crossing_lon = lon1 + (lats - lat1) / (lat2 - lat1) * (lon2 - lon1)
            inside ^= spans & (lons < crossing_lon)
        return inside

    def contains_point(self, lat: float, lon: float) -> bool:
        return bool(self.contains_points(np.array([lat]), np.array([lon]))[0])


#: How many bbox candidate cells we are willing to *filter* per polygon
#: cell we are willing to *keep*.  A thin diagonal lasso legitimately has
#: a bbox cover far larger than its true footprint; this factor bounds the
#: filtering work without capping the answer itself.
CANDIDATE_BUDGET_FACTOR = 64


def covering_cells_polygon(
    polygon: Polygon, precision: int, max_cells: int | None = None
) -> list[str]:
    """Geohash cells (at ``precision``) whose centers lie in the polygon.

    Row-major order, like :func:`~repro.geo.cover.covering_cells`.

    ``max_cells`` caps the cells *kept after* polygon filtering — a thin
    diagonal lasso whose bbox cover is huge but whose true footprint is
    small passes.  (Capping the bbox candidates instead used to reject
    such lassos with a misleading "shrink the box" error.)  A separate
    candidate budget (``CANDIDATE_BUDGET_FACTOR * max_cells``) bounds the
    filtering work itself.
    """
    if max_cells is None:
        candidates = covering_cells(polygon.bbox, precision, max_cells=None)
    else:
        budget = CANDIDATE_BUDGET_FACTOR * max_cells
        try:
            candidates = covering_cells(
                polygon.bbox, precision, max_cells=budget
            )
        except GeohashError:
            raise GeohashError(
                f"polygon bounding cover exceeds the filtering budget of "
                f"{budget} candidate cells; lower the precision or shrink "
                "the polygon"
            ) from None
    if not candidates:
        return []
    centers = np.array([geohash_bbox(c).center for c in candidates])
    mask = polygon.contains_points(centers[:, 0], centers[:, 1])
    kept = [cell for cell, keep in zip(candidates, mask) if keep]
    if max_cells is not None and len(kept) > max_cells:
        raise GeohashError(
            f"polygon footprint of {len(kept)} cells exceeds "
            f"max_cells={max_cells}; lower the precision or shrink the "
            "polygon"
        )
    return kept

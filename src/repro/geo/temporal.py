"""Temporal hierarchy: year / month / day / hour bins (paper Table I).

A :class:`TimeKey` names one bin of the temporal hierarchy the same way a
geohash names one spatial cell: truncating components yields the temporal
parent, extending yields children, and stepping to the adjacent bin yields
the two temporal lateral neighbors (paper Fig. 1b).

All instants are POSIX epoch seconds (UTC).  Vectorized binning of
timestamp arrays uses numpy datetime64 arithmetic — no per-record Python
loop.
"""

from __future__ import annotations

import calendar
import datetime as _dt
import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import TemporalError


class TemporalResolution(enum.IntEnum):
    """Temporal resolutions ordered coarse to fine.

    The integer value is the resolution *index* used in the STASH level
    formula (paper section IV-C).
    """

    YEAR = 0
    MONTH = 1
    DAY = 2
    HOUR = 3

    @property
    def finer(self) -> "TemporalResolution | None":
        """Next finer resolution, or None at HOUR."""
        return TemporalResolution(self + 1) if self < TemporalResolution.HOUR else None

    @property
    def coarser(self) -> "TemporalResolution | None":
        """Next coarser resolution, or None at YEAR."""
        return TemporalResolution(self - 1) if self > TemporalResolution.YEAR else None


#: Number of temporal resolutions (paper's ``n_t``).
NUM_TEMPORAL_RESOLUTIONS = len(TemporalResolution)


def _utc(*args: int) -> _dt.datetime:
    return _dt.datetime(*args, tzinfo=_dt.timezone.utc)


@dataclass(frozen=True, slots=True, order=True)
class TimeKey:
    """One bin of the temporal hierarchy.

    ``components`` holds (year,), (year, month), (year, month, day) or
    (year, month, day, hour); its length determines the resolution.
    """

    components: tuple[int, ...]

    def __post_init__(self) -> None:
        n = len(self.components)
        if not 1 <= n <= 4:
            raise TemporalError(f"TimeKey needs 1-4 components, got {n}")
        year = self.components[0]
        month = self.components[1] if n > 1 else 1
        day = self.components[2] if n > 2 else 1
        hour = self.components[3] if n > 3 else 0
        try:
            _utc(year, month, day, hour)
        except ValueError as exc:
            raise TemporalError(f"invalid TimeKey {self.components}: {exc}") from exc

    # -- construction ---------------------------------------------------

    @staticmethod
    def of(
        year: int,
        month: int | None = None,
        day: int | None = None,
        hour: int | None = None,
    ) -> "TimeKey":
        """Build a key, stopping at the first ``None`` component."""
        parts: list[int] = [year]
        for value in (month, day, hour):
            if value is None:
                break
            parts.append(value)
        return TimeKey(tuple(parts))

    @staticmethod
    def from_epoch(epoch_seconds: float, resolution: TemporalResolution) -> "TimeKey":
        """The bin containing an instant at the given resolution.

        Sub-second fractions are truncated (not rounded): the finest bin
        is an hour, and truncation keeps the scalar path consistent with
        the vectorized :func:`bin_epochs` (datetime64 truncates too) even
        for instants a float ULP below a bin boundary.
        """
        dt = _dt.datetime.fromtimestamp(int(epoch_seconds), tz=_dt.timezone.utc)
        parts = (dt.year, dt.month, dt.day, dt.hour)
        return TimeKey(parts[: resolution + 1])

    # -- identity ---------------------------------------------------------

    @property
    def resolution(self) -> TemporalResolution:
        """The resolution this key names a bin of."""
        return TemporalResolution(len(self.components) - 1)

    def __str__(self) -> str:
        fmts = ("{:04d}", "{:02d}", "{:02d}", "{:02d}")
        return "-".join(f.format(c) for f, c in zip(fmts, self.components))

    @staticmethod
    def parse(text: str) -> "TimeKey":
        """Inverse of ``str``: '2013-03-15' -> TimeKey((2013, 3, 15))."""
        try:
            parts = tuple(int(p) for p in text.split("-"))
        except ValueError as exc:
            raise TemporalError(f"cannot parse TimeKey from {text!r}") from exc
        return TimeKey(parts)

    # -- extent -----------------------------------------------------------

    def start_datetime(self) -> _dt.datetime:
        year = self.components[0]
        month = self.components[1] if len(self.components) > 1 else 1
        day = self.components[2] if len(self.components) > 2 else 1
        hour = self.components[3] if len(self.components) > 3 else 0
        return _utc(year, month, day, hour)

    def end_datetime(self) -> _dt.datetime:
        """Exclusive end instant of the bin."""
        res = self.resolution
        c = self.components
        if res == TemporalResolution.YEAR:
            return _utc(c[0] + 1, 1, 1)
        if res == TemporalResolution.MONTH:
            year, month = c[0], c[1]
            return _utc(year + 1, 1, 1) if month == 12 else _utc(year, month + 1, 1)
        if res == TemporalResolution.DAY:
            return self.start_datetime() + _dt.timedelta(days=1)
        return self.start_datetime() + _dt.timedelta(hours=1)

    def epoch_range(self) -> "TimeRange":
        """The bin's [start, end) extent in epoch seconds."""
        return TimeRange(
            self.start_datetime().timestamp(), self.end_datetime().timestamp()
        )

    # -- hierarchy ----------------------------------------------------------

    def parent(self) -> "TimeKey":
        """The enclosing coarser bin (paper: temporal parent edge)."""
        if len(self.components) == 1:
            raise TemporalError(f"{self} has no temporal parent")
        return TimeKey(self.components[:-1])

    def children(self) -> list["TimeKey"]:
        """All directly enclosed finer bins (paper: temporal child edges)."""
        res = self.resolution
        c = self.components
        if res == TemporalResolution.YEAR:
            return [TimeKey(c + (m,)) for m in range(1, 13)]
        if res == TemporalResolution.MONTH:
            ndays = calendar.monthrange(c[0], c[1])[1]
            return [TimeKey(c + (d,)) for d in range(1, ndays + 1)]
        if res == TemporalResolution.DAY:
            return [TimeKey(c + (h,)) for h in range(24)]
        raise TemporalError(f"{self} is at the finest resolution")

    def is_ancestor_of(self, other: "TimeKey") -> bool:
        """True if this bin strictly encloses ``other``."""
        return (
            len(self.components) < len(other.components)
            and other.components[: len(self.components)] == self.components
        )

    # -- laterals -------------------------------------------------------------

    def step(self, n: int = 1) -> "TimeKey":
        """The bin ``n`` steps later (negative = earlier) at this resolution."""
        res = self.resolution
        c = self.components
        if res == TemporalResolution.YEAR:
            return TimeKey((c[0] + n,))
        if res == TemporalResolution.MONTH:
            total = c[0] * 12 + (c[1] - 1) + n
            return TimeKey((total // 12, total % 12 + 1))
        delta = _dt.timedelta(days=n) if res == TemporalResolution.DAY else _dt.timedelta(hours=n)
        dt = self.start_datetime() + delta
        parts = (dt.year, dt.month, dt.day, dt.hour)
        return TimeKey(parts[: res + 1])

    def neighbors(self) -> list["TimeKey"]:
        """The two adjacent bins (paper: temporal lateral edges)."""
        return [self.step(-1), self.step(1)]


@dataclass(frozen=True, slots=True)
class TimeRange:
    """A half-open interval [start, end) in epoch seconds."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if not self.start < self.end:
            raise TemporalError(f"empty TimeRange [{self.start}, {self.end})")

    @property
    def duration(self) -> float:
        return self.end - self.start

    def contains(self, epoch_seconds: float) -> bool:
        return self.start <= epoch_seconds < self.end

    def intersects(self, other: "TimeRange") -> bool:
        return self.start < other.end and other.start < self.end

    def intersection(self, other: "TimeRange") -> "TimeRange | None":
        if not self.intersects(other):
            return None
        return TimeRange(max(self.start, other.start), min(self.end, other.end))

    def covering_keys(self, resolution: TemporalResolution) -> list[TimeKey]:
        """All bins at ``resolution`` overlapping this range, in order."""
        key = TimeKey.from_epoch(self.start, resolution)
        out = [key]
        while key.epoch_range().end < self.end:
            key = key.step(1)
            out.append(key)
        return out

    @staticmethod
    def from_keys(keys: list[TimeKey]) -> "TimeRange":
        """Smallest range covering all given bins."""
        if not keys:
            raise TemporalError("from_keys requires at least one key")
        ranges = [k.epoch_range() for k in keys]
        return TimeRange(min(r.start for r in ranges), max(r.end for r in ranges))


#: datetime64 unit letter per temporal resolution.
_DT64_UNITS = {"YEAR": "Y", "MONTH": "M", "DAY": "D", "HOUR": "h"}


def bin_epochs(
    epochs: np.ndarray, resolution: TemporalResolution
) -> np.ndarray:
    """Vectorized temporal binning to string labels.

    Maps an array of epoch seconds to fixed-width strings of the owning
    :class:`TimeKey` (its ``str`` form), e.g. '2013-03-15' at DAY.  The
    columnar aggregation pipeline bins on the integer form instead
    (:func:`bin_epoch_codes`); this string form remains the scalar
    fallback and the human-readable label.
    """
    epochs = np.asarray(epochs, dtype=np.float64)
    dt64 = epochs.astype("datetime64[s]")
    unit = _DT64_UNITS[resolution.name]
    truncated = dt64.astype(f"datetime64[{unit}]")
    iso = np.datetime_as_string(truncated)
    if resolution == TemporalResolution.HOUR:
        # 'YYYY-MM-DDThh' -> 'YYYY-MM-DD-hh'
        iso = np.char.replace(iso, "T", "-")
    return iso


def bin_epoch_codes(
    epochs: np.ndarray, resolution: TemporalResolution
) -> np.ndarray:
    """Vectorized temporal binning to integer codes.

    Maps epoch seconds to int64 bin indices counted from the Unix epoch
    at the given resolution (days since 1970 at DAY, hours at HOUR, …) —
    the same datetime64 truncation :func:`bin_epochs` uses, minus the
    string rendering, so code ``c`` names exactly the bin labelled
    ``str(time_key_of_code(c, resolution))``.
    """
    epochs = np.asarray(epochs, dtype=np.float64)
    dt64 = epochs.astype("datetime64[s]")
    unit = _DT64_UNITS[resolution.name]
    return dt64.astype(f"datetime64[{unit}]").astype(np.int64)


def time_key_of_code(code: int, resolution: TemporalResolution) -> TimeKey:
    """Inverse of :func:`bin_epoch_codes` for one integer bin code."""
    unit = _DT64_UNITS[resolution.name]
    seconds = int(
        np.datetime64(int(code), unit).astype("datetime64[s]").astype(np.int64)
    )
    return TimeKey.from_epoch(float(seconds), resolution)

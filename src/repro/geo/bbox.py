"""Latitude/longitude bounding boxes.

A :class:`BoundingBox` is a closed-open rectangle ``[south, north) x
[west, east)`` in degrees.  Boxes never wrap the antimeridian; workload
generators that would cross it clamp instead (the paper's query rectangles
are random boxes over the data's spatial coverage, which is safely inside
the NAM domain, so this mirrors its setup).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import GeohashError

LAT_MIN, LAT_MAX = -90.0, 90.0
LON_MIN, LON_MAX = -180.0, 180.0


@dataclass(frozen=True, slots=True)
class BoundingBox:
    """A geographic rectangle ``[south, north) x [west, east)``.

    Parameters
    ----------
    south, north:
        Latitude bounds in degrees, ``-90 <= south < north <= 90``.
    west, east:
        Longitude bounds in degrees, ``-180 <= west < east <= 180``.
    """

    south: float
    north: float
    west: float
    east: float

    def __post_init__(self) -> None:
        if not (LAT_MIN <= self.south < self.north <= LAT_MAX):
            raise GeohashError(
                f"invalid latitude bounds: south={self.south}, north={self.north}"
            )
        if not (LON_MIN <= self.west < self.east <= LON_MAX):
            raise GeohashError(
                f"invalid longitude bounds: west={self.west}, east={self.east}"
            )

    # -- geometry -----------------------------------------------------------

    @property
    def height(self) -> float:
        """Latitudinal extent in degrees."""
        return self.north - self.south

    @property
    def width(self) -> float:
        """Longitudinal extent in degrees."""
        return self.east - self.west

    @property
    def area(self) -> float:
        """Degree-squared area (not great-circle area)."""
        return self.height * self.width

    @property
    def center(self) -> tuple[float, float]:
        """(lat, lon) midpoint."""
        return ((self.south + self.north) / 2.0, (self.west + self.east) / 2.0)

    # -- relations ----------------------------------------------------------

    def contains_point(self, lat: float, lon: float) -> bool:
        """True if (lat, lon) lies inside the closed-open rectangle."""
        return self.south <= lat < self.north and self.west <= lon < self.east

    def contains_box(self, other: "BoundingBox") -> bool:
        """True if ``other`` is fully inside (or equal to) this box."""
        return (
            self.south <= other.south
            and other.north <= self.north
            and self.west <= other.west
            and other.east <= self.east
        )

    def intersects(self, other: "BoundingBox") -> bool:
        """True if the two boxes share any interior area."""
        return (
            self.south < other.north
            and other.south < self.north
            and self.west < other.east
            and other.west < self.east
        )

    def intersection(self, other: "BoundingBox") -> "BoundingBox | None":
        """The overlapping rectangle, or None when disjoint."""
        if not self.intersects(other):
            return None
        return BoundingBox(
            south=max(self.south, other.south),
            north=min(self.north, other.north),
            west=max(self.west, other.west),
            east=min(self.east, other.east),
        )

    def union_bounds(self, other: "BoundingBox") -> "BoundingBox":
        """Smallest box covering both."""
        return BoundingBox(
            south=min(self.south, other.south),
            north=max(self.north, other.north),
            west=min(self.west, other.west),
            east=max(self.east, other.east),
        )

    def overlap_fraction(self, other: "BoundingBox") -> float:
        """Fraction of *this* box's area covered by ``other``."""
        inter = self.intersection(other)
        if inter is None or self.area == 0.0:
            return 0.0
        return inter.area / self.area

    # -- transforms ---------------------------------------------------------

    def translated(self, dlat: float, dlon: float) -> "BoundingBox":
        """Shifted copy, clamped to stay inside the globe."""
        south, north = self.south + dlat, self.north + dlat
        west, east = self.west + dlon, self.east + dlon
        if south < LAT_MIN:
            north += LAT_MIN - south
            south = LAT_MIN
        if north > LAT_MAX:
            south -= north - LAT_MAX
            north = LAT_MAX
        if west < LON_MIN:
            east += LON_MIN - west
            west = LON_MIN
        if east > LON_MAX:
            west -= east - LON_MAX
            east = LON_MAX
        return BoundingBox(south, north, west, east)

    def scaled(self, factor: float) -> "BoundingBox":
        """Copy scaled about the center by ``sqrt(factor)`` per axis.

        ``factor`` is an *area* factor: ``scaled(0.8)`` shrinks the area by
        20% (the paper's iterative-dicing step).
        """
        if factor <= 0:
            raise GeohashError(f"scale factor must be positive, got {factor}")
        lin = math.sqrt(factor)
        clat, clon = self.center
        half_h = self.height * lin / 2.0
        half_w = self.width * lin / 2.0
        return BoundingBox(
            south=max(LAT_MIN, clat - half_h),
            north=min(LAT_MAX, clat + half_h),
            west=max(LON_MIN, clon - half_w),
            east=min(LON_MAX, clon + half_w),
        )

    @staticmethod
    def global_box() -> "BoundingBox":
        """The whole-globe box."""
        return BoundingBox(LAT_MIN, LAT_MAX, LON_MIN, LON_MAX)

    @staticmethod
    def from_center(
        lat: float, lon: float, height: float, width: float
    ) -> "BoundingBox":
        """Box of the given extents centered at (lat, lon), clamped."""
        box = BoundingBox(
            south=max(LAT_MIN, -height / 2.0 + min(max(lat, LAT_MIN), LAT_MAX)),
            north=min(LAT_MAX, height / 2.0 + min(max(lat, LAT_MIN), LAT_MAX)),
            west=max(LON_MIN, -width / 2.0 + min(max(lon, LON_MIN), LON_MAX)),
            east=min(LON_MAX, width / 2.0 + min(max(lon, LON_MIN), LON_MAX)),
        )
        return box

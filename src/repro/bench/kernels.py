"""Wall-clock micro-kernel harness: the cache/query hot-path trajectory.

Unlike the figure experiments (which report *simulated* seconds), this
harness measures real wall-clock time of the inner kernels every query
pays for — eviction scoring, batched freshness touches, footprint
planning, owner grouping, and grouped aggregation — at several graph
sizes, and records the results as ``BENCH_kernels.json``.  Re-running it
per PR (the CI ``bench-smoke`` job) keeps a perf trajectory: a hot-path
regression shows up as a kernel's seconds drifting upward between
commits.

Where a kernel has both a vectorized and a scalar implementation
(eviction scoring, touch), both are timed and a ``speedup`` ratio is
reported; the vectorized path must also produce *identical* results,
which :mod:`tests.core.test_vectorized_freshness` and the assertions in
``benchmarks/test_micro_kernels.py`` enforce.

Run via::

    python -m repro bench kernels [--quick] [--output BENCH_kernels.json]
"""

from __future__ import annotations

import json
import platform
import time
from typing import Any, Callable

import numpy as np

from repro.config import FreshnessConfig
from repro.core.cell import Cell
from repro.core.eviction import rank_victims, rank_victims_scalar
from repro.core.freshness import FreshnessTracker
from repro.core.graph import StashGraph
from repro.core.keys import CellKey
from repro.core.planner import plan_query
from repro.data.statistics import SummaryVector
from repro.dht.partitioner import PrefixPartitioner
from repro.geo.geohash import GEOHASH_ALPHABET
from repro.geo.resolution import ResolutionSpace
from repro.geo.temporal import TimeKey

#: Graph sizes (resident cells) the full harness sweeps.  50k is the
#: size the acceptance gate reads the eviction-scoring speedup at.
DEFAULT_SIZES = (2_000, 10_000, 50_000)
#: Reduced sweep for the CI smoke job.
QUICK_SIZES = (2_000, 10_000)

#: Keys per simulated query footprint for touch/plan kernels.
FOOTPRINT_KEYS = 512

_DAY = TimeKey.of(2013, 2, 2)


def _random_geohashes(rng: np.random.Generator, count: int, precision: int) -> list[str]:
    """``count`` distinct random geohash strings of one precision."""
    space = 32**precision
    codes = rng.choice(space, size=count, replace=False)
    out = []
    for code in codes.tolist():
        chars = []
        for _ in range(precision):
            code, value = divmod(code, 32)
            chars.append(GEOHASH_ALPHABET[value])
        out.append("".join(reversed(chars)))
    return out


def build_bench_graph(
    num_cells: int, seed: int = 42
) -> tuple[StashGraph, FreshnessTracker, list[CellKey], float]:
    """A warmed graph of ``num_cells`` cells with a varied touch history.

    Cells span two levels (precision 5 and its precision-4 parents) so
    the per-level column layout is exercised; a few rounds of randomized
    touches at spread-out times give every cell a distinct
    ``(freshness, last_touch)`` pair, which is what the eviction kernel
    has to rank.  Returns ``(graph, tracker, keys, now)``.
    """
    rng = np.random.default_rng(seed)
    fine = max(1, int(num_cells * 0.9))
    coarse = num_cells - fine
    summary = SummaryVector.from_arrays({"temperature": np.array([1.0])})
    graph = StashGraph(ResolutionSpace(1, 8), name="bench")
    keys: list[CellKey] = []
    for code in _random_geohashes(rng, fine, 5):
        keys.append(CellKey(code, _DAY))
    if coarse:
        for code in _random_geohashes(rng, coarse, 4):
            keys.append(CellKey(code, _DAY))
    for key in keys:
        graph.upsert(Cell(key=key, summary=summary))
    tracker = FreshnessTracker(FreshnessConfig())
    now = 0.0
    for round_index in range(4):
        now = float(round_index) * 30.0
        sample = rng.choice(len(keys), size=max(1, len(keys) // 3), replace=False)
        tracker.touch_cells(graph, [keys[i] for i in sample.tolist()], now)
    return graph, tracker, keys, now + 60.0


def _time_best(fn: Callable[[], Any], repeats: int) -> float:
    """Best-of-``repeats`` wall-clock seconds for one call of ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _touch_scalar(graph: StashGraph, keys: list[CellKey], amount: float,
                  now: float, decay_rate: float) -> int:
    """The pre-vectorization per-cell touch loop (baseline)."""
    touched = 0
    for key in keys:
        cell = graph.get(key)
        if cell is not None:
            cell.touched(amount, now, decay_rate)
            cell.access_count += 1
            touched += 1
    return touched


def _group_by_owner_naive(partitioner, keys: list[CellKey]) -> dict:
    """Owner resolution once per *cell* (the pre-PR planner)."""
    grouped: dict[str, list[CellKey]] = {}
    for key in keys:
        grouped.setdefault(partitioner.node_for(key.geohash), []).append(key)
    return grouped


def _group_by_owner_memo(partitioner, keys: list[CellKey]) -> dict:
    """Owner resolution once per *geohash* (the owner-grouped planner)."""
    grouped: dict[str, list[CellKey]] = {}
    memo: dict[str, str] = {}
    for key in keys:
        owner = memo.get(key.geohash)
        if owner is None:
            owner = memo[key.geohash] = partitioner.node_for(key.geohash)
        grouped.setdefault(owner, []).append(key)
    return grouped


def run_kernels(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    repeats: int = 5,
    seed: int = 42,
    quick: bool = False,
) -> dict[str, Any]:
    """Time every kernel at every size; returns the JSON-ready report."""
    from repro.bench.reporting import report_meta

    report: dict[str, Any] = {
        "schema": "stash-bench-kernels/v2",
        "quick": quick,
        "sizes": list(sizes),
        "repeats": repeats,
        "seed": seed,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "meta": report_meta(seed),
        "kernels": {},
    }
    kernels: dict[str, dict[str, Any]] = report["kernels"]

    for size in sizes:
        graph, tracker, keys, now = build_bench_graph(size, seed=seed)
        rng = np.random.default_rng(seed + size)
        excess = max(1, size // 5)

        # -- eviction scoring: rank the `excess` stalest cells ----------
        vec = _time_best(
            lambda: rank_victims(graph, tracker.decay_rate, now, excess), repeats
        )
        scalar = _time_best(
            lambda: rank_victims_scalar(graph, tracker, now, excess), repeats
        )
        victims_vec = rank_victims(graph, tracker.decay_rate, now, excess)
        victims_scalar = rank_victims_scalar(graph, tracker, now, excess)
        if victims_vec != victims_scalar:
            raise AssertionError(
                f"vectorized victim set diverged from scalar at {size} cells"
            )
        kernels.setdefault("eviction_scoring", {})[str(size)] = {
            "excess": excess,
            "vectorized_s": vec,
            "scalar_s": scalar,
            "speedup": scalar / vec if vec > 0 else float("inf"),
        }

        # -- batched freshness touch over one footprint -----------------
        sample = rng.choice(
            len(keys), size=min(FOOTPRINT_KEYS, len(keys)), replace=False
        )
        footprint = [keys[i] for i in sample.tolist()]
        f_inc = tracker.config.f_inc
        rate = tracker.decay_rate
        vec = _time_best(
            lambda: graph.touch_batch(footprint, f_inc, now, rate, count_access=True),
            repeats,
        )
        scalar = _time_best(
            lambda: _touch_scalar(graph, footprint, f_inc, now, rate), repeats
        )
        kernels.setdefault("touch", {})[str(size)] = {
            "footprint_keys": len(footprint),
            "vectorized_s": vec,
            "scalar_s": scalar,
            "speedup": scalar / vec if vec > 0 else float("inf"),
        }

        # -- footprint planning over the graph (cache-hit path) ---------
        plan_s = _time_best(
            lambda: plan_query(graph, footprint, ["temperature"]), repeats
        )
        kernels.setdefault("plan", {})[str(size)] = {
            "footprint_keys": len(footprint),
            "seconds": plan_s,
        }

        # -- owner grouping: per-cell vs per-geohash DHT resolution -----
        partitioner = PrefixPartitioner([f"node-{i}" for i in range(16)], 2)
        day_keys = [
            CellKey(key.geohash, _DAY.step(offset))
            for key in footprint
            for offset in range(6)
        ]
        naive = _time_best(
            lambda: _group_by_owner_naive(partitioner, day_keys), repeats
        )
        memo = _time_best(
            lambda: _group_by_owner_memo(partitioner, day_keys), repeats
        )
        if _group_by_owner_memo(partitioner, day_keys) != _group_by_owner_naive(
            partitioner, day_keys
        ):
            raise AssertionError("owner-grouped planning diverged from naive")
        kernels.setdefault("owner_grouping", {})[str(size)] = {
            "cells": len(day_keys),
            "memoized_s": memo,
            "naive_s": naive,
            "speedup": naive / memo if memo > 0 else float("inf"),
        }

    # -- grouped aggregation (scan kernel, size-independent) ------------
    from repro.data.generator import DatasetSpec, SyntheticNAMGenerator
    from repro.data.statistics import SummaryFrame, grouped_summaries_scalar
    from repro.geo.binning import decode_bin_ids
    from repro.geo.temporal import TemporalResolution

    records = 20_000 if quick else 100_000
    spec = DatasetSpec(num_records=records, start_day=(2013, 2, 1), num_days=2)
    batch = SyntheticNAMGenerator(spec).generate()
    precision, resolution = 4, TemporalResolution.DAY

    # Both lambdas time the FULL bin->summarize pipeline (encoding
    # included): timing only the summarize half under-reports the real
    # scan path, which is the bug that hid the string-binning cost.
    vec = _time_best(
        lambda: SummaryFrame.from_groups(
            batch.bin_ids(precision, resolution), batch.attributes
        ),
        repeats,
    )
    scalar = _time_best(
        lambda: grouped_summaries_scalar(
            batch.bin_keys(precision, resolution), batch.attributes
        ),
        repeats,
    )
    frame = SummaryFrame.from_groups(
        batch.bin_ids(precision, resolution), batch.attributes
    )
    columnar_cells = {
        f"{gh}@{key}": vector
        for (gh, key), vector in zip(
            decode_bin_ids(frame.ids, precision, resolution), frame.vectors()
        )
    }
    scalar_cells = grouped_summaries_scalar(
        batch.bin_keys(precision, resolution), batch.attributes
    )
    if {str(k): v for k, v in scalar_cells.items()} != columnar_cells:
        raise AssertionError(
            f"columnar aggregation diverged from scalar at {records} records"
        )
    kernels["grouped_aggregation"] = {
        str(records): {
            "records": records,
            "vectorized_s": vec,
            "scalar_s": scalar,
            "speedup": scalar / vec if vec > 0 else float("inf"),
        }
    }
    return report


def format_report(report: dict[str, Any]) -> str:
    """Human-readable table of one harness run."""
    lines = [
        f"== bench kernels (quick={report['quick']}, repeats={report['repeats']})"
    ]
    for kernel, by_size in report["kernels"].items():
        for size, entry in by_size.items():
            parts = [f"{kernel:>20} @ {size:>7}"]
            for field in ("vectorized_s", "scalar_s", "memoized_s", "naive_s", "seconds"):
                if field in entry:
                    parts.append(f"{field}={entry[field] * 1e3:9.3f} ms")
            if "speedup" in entry:
                parts.append(f"speedup={entry['speedup']:6.2f}x")
            lines.append("  ".join(parts))
    return "\n".join(lines)


def write_report(report: dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

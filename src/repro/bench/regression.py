"""Bench regression sentinel: compare a fresh kernel run to a baseline.

``repro bench check`` re-runs the micro-kernel harness with the
baseline's own sizes/repeats/seed and flags any kernel whose wall-clock
seconds drifted past a noise-aware threshold.  Two guards keep it from
crying wolf:

* **Environment refusal** — wall-clock numbers from a different
  interpreter or numpy build (or a different seed) are not comparable;
  if the ``meta`` blocks disagree on those keys the check refuses
  (exit 2) instead of reporting a bogus regression.
* **Re-run variance floor** — the harness is run twice; per metric the
  *faster* of the two runs is compared (a real regression persists in
  both, a scheduler hiccup doesn't) and the observed run-to-run ratio
  widens that metric's threshold: a kernel whose own back-to-back runs
  differ by 1.4x cannot be failed at 1.5x.  Timings below
  ``MIN_SECONDS`` are skipped outright (timer noise).
"""

from __future__ import annotations

from typing import Any

from repro.bench.reporting import ENV_META_KEYS

#: Default regression threshold: fresh/baseline ratio above this fails.
DEFAULT_THRESHOLD = 1.5

#: Margin applied on top of the observed re-run variance.
NOISE_MARGIN = 1.25

#: Timings below this are pure timer noise; never compared.
MIN_SECONDS = 5e-5

#: The timing fields a kernel entry may carry.
_TIMING_FIELDS = ("vectorized_s", "scalar_s", "memoized_s", "naive_s", "seconds")


def meta_of(report: dict[str, Any]) -> dict[str, Any]:
    """The environment stamp of a report (v1 fallback: top-level keys)."""
    meta = report.get("meta")
    if isinstance(meta, dict):
        return meta
    return {key: report.get(key) for key in ENV_META_KEYS}


def env_mismatches(
    baseline: dict[str, Any], fresh: dict[str, Any]
) -> list[str]:
    """Human-readable mismatch lines, empty when comparable."""
    base_meta, fresh_meta = meta_of(baseline), meta_of(fresh)
    out = []
    for key in ENV_META_KEYS:
        if base_meta.get(key) != fresh_meta.get(key):
            out.append(
                f"{key}: baseline={base_meta.get(key)!r} "
                f"fresh={fresh_meta.get(key)!r}"
            )
    return out


def flatten_metrics(report: dict[str, Any]) -> dict[str, float]:
    """``kernel@size/field -> seconds`` over every timing in a report."""
    out: dict[str, float] = {}
    for kernel, by_size in report.get("kernels", {}).items():
        for size, entry in by_size.items():
            for field in _TIMING_FIELDS:
                value = entry.get(field)
                if isinstance(value, (int, float)):
                    out[f"{kernel}@{size}/{field}"] = float(value)
    return out


def compare_reports(
    baseline: dict[str, Any],
    fresh: dict[str, Any],
    rerun: dict[str, Any] | None = None,
    threshold: float = DEFAULT_THRESHOLD,
) -> dict[str, Any]:
    """Compare reports; returns a verdict dict (never raises on content).

    ``status`` is ``"env-mismatch"``, ``"regression"``, or ``"ok"``.
    """
    mismatches = env_mismatches(baseline, fresh)
    if mismatches:
        return {"status": "env-mismatch", "mismatches": mismatches, "rows": []}
    base_metrics = flatten_metrics(baseline)
    fresh_metrics = flatten_metrics(fresh)
    rerun_metrics = flatten_metrics(rerun) if rerun else {}
    rows = []
    regressions = 0
    for name in sorted(set(base_metrics) & set(fresh_metrics)):
        base_s, fresh_s = base_metrics[name], fresh_metrics[name]
        if base_s < MIN_SECONDS or fresh_s < MIN_SECONDS:
            rows.append(
                {"metric": name, "baseline_s": base_s, "fresh_s": fresh_s,
                 "skipped": "below timer-noise floor"}
            )
            continue
        effective = threshold
        rerun_s = rerun_metrics.get(name)
        if rerun_s is not None and rerun_s >= MIN_SECONDS:
            noise = max(fresh_s, rerun_s) / min(fresh_s, rerun_s)
            effective = max(threshold, noise * NOISE_MARGIN)
            # A real regression shows up in both runs; a one-off spike
            # doesn't.  Judge the faster of the two.
            fresh_s = min(fresh_s, rerun_s)
        ratio = fresh_s / base_s
        regressed = ratio > effective
        regressions += regressed
        rows.append(
            {"metric": name, "baseline_s": base_s, "fresh_s": fresh_s,
             "ratio": ratio, "threshold": effective, "regressed": regressed}
        )
    return {
        "status": "regression" if regressions else "ok",
        "regressions": regressions,
        "compared": sum(1 for row in rows if "ratio" in row),
        "rows": rows,
    }


def format_check(verdict: dict[str, Any]) -> str:
    """Terminal rendering of a :func:`compare_reports` verdict."""
    if verdict["status"] == "env-mismatch":
        lines = ["bench check: REFUSED — baseline from a different environment"]
        lines += [f"  {line}" for line in verdict["mismatches"]]
        lines.append(
            "  regenerate the baseline in this environment: "
            "python -m repro bench kernels --output BENCH_kernels.json"
        )
        return "\n".join(lines)
    lines = [
        f"== bench check ({verdict['compared']} metrics compared, "
        f"{verdict['regressions']} regressions)"
    ]
    for row in verdict["rows"]:
        name = row["metric"]
        if "skipped" in row:
            lines.append(f"  {name:>44}  skipped ({row['skipped']})")
            continue
        flag = "REGRESSED" if row["regressed"] else "ok"
        lines.append(
            f"  {name:>44}  {row['baseline_s'] * 1e3:9.3f} ms -> "
            f"{row['fresh_s'] * 1e3:9.3f} ms  "
            f"x{row['ratio']:5.2f} (limit x{row['threshold']:.2f})  {flag}"
        )
    return "\n".join(lines)

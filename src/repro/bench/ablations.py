"""Ablation experiments for STASH's individual design choices.

These go beyond the paper's figures: each ablation switches off one
mechanism DESIGN.md calls out and measures what it was buying.

* roll-up recomputation (paper V-B) — serve coarse misses from cached
  finer cells instead of disk;
* freshness dispersion (paper V-C) — keep the *neighborhood* of hot
  regions resident under eviction pressure;
* reroute probability (paper VII-C) — the load split between a
  hotspotted node and its helper;
* client-side prefetching (paper IX-A future work).
"""

from __future__ import annotations

from repro.bench.harness import (
    BenchScale,
    ExperimentResult,
    bench_config,
    bench_dataset,
    make_system,
)
from repro.client.session import ExplorationSession
from repro.config import EvictionConfig, FreshnessConfig, ReplicationConfig
from repro.data.generator import NAM_DOMAIN
from repro.geo.resolution import Resolution
from repro.query.model import AggregationQuery
from repro.workload.hotspot import hotspot_workload
from repro.workload.queries import QuerySize, random_query


def _clone(query: AggregationQuery) -> AggregationQuery:
    return AggregationQuery(
        bbox=query.bbox,
        time_range=query.time_range,
        resolution=query.resolution,
        attributes=query.attributes,
    )


def ablation_rollup(scale: BenchScale) -> ExperimentResult:
    """Roll-up on/off: a coarse query after the fine level is warm."""
    result = ExperimentResult(
        name="ablation_rollup",
        description="coarse query latency after fine-level warm-up",
    )
    dataset = bench_dataset(scale)
    fine = random_query(
        scale.rng(71),
        QuerySize.STATE,
        NAM_DOMAIN,
        day=scale.day,
        resolution=scale.resolution,
    )
    for enabled in (True, False):
        config = bench_config(scale).with_(enable_rollup=enabled)
        stash = make_system("stash", dataset, config)
        coarse = fine.at_resolution(
            Resolution(scale.spatial_resolution - 1, fine.resolution.temporal)
        )
        warm = AggregationQuery(
            bbox=coarse.snapped_bbox(),
            time_range=fine.time_range,
            resolution=fine.resolution,
        )
        stash.warm([warm])
        outcome = stash.run_query(_clone(coarse))
        label = "rollup_on" if enabled else "rollup_off"
        result.add("latency_s", label, outcome.latency)
        result.add(
            "disk_blocks", label, float(outcome.provenance["disk_blocks_read"])
        )
        result.add(
            "rollup_cells", label, float(outcome.provenance["cells_from_rollup"])
        )
    return result


def ablation_dispersion(scale: BenchScale) -> ExperimentResult:
    """Freshness dispersion on/off under eviction pressure.

    A wide region is warmed, then a small center query is hammered while
    churn queries force evictions; finally the user pans outward from
    the center.  With dispersion the center's halo kept receiving
    freshness and survives; without it the halo is evicted and the pan
    goes back to disk.
    """
    result = ExperimentResult(
        name="ablation_dispersion",
        description="outward pan after churn, dispersion on vs off",
    )
    dataset = bench_dataset(scale)
    center = random_query(
        scale.rng(73),
        QuerySize.STATE,
        NAM_DOMAIN,
        day=scale.day,
        resolution=scale.resolution,
    )
    wide = AggregationQuery(
        bbox=center.bbox.scaled(4.0),
        time_range=center.time_range,
        resolution=center.resolution,
    )
    # Churn must insert NEW cells on the SAME nodes as the center (cells
    # colocate by geohash partition, so far-away churn would pressure
    # other nodes and prove nothing): use the wide region on the
    # *previous day* — same spatial partitions, disjoint cell keys.
    churn = [
        AggregationQuery(
            bbox=wide.bbox,
            time_range=scale.day.step(-1).epoch_range(),
            resolution=wide.resolution,
        )
    ]
    # Calibrate per-node capacity: the busiest node should hold a bit
    # less than its share of the wide region, so churn forces evictions.
    probe = make_system("stash", dataset, bench_config(scale))
    probe.warm([_clone(wide)])
    peak = max(len(node.graph) for node in probe.nodes.values())
    capacity = max(64, int(peak * 0.85))

    from repro.geo.geohash import cell_dimensions

    cell_height, cell_width = cell_dimensions(scale.spatial_resolution)
    for fraction in (0.35, 0.0):
        config = bench_config(scale).with_(
            freshness=FreshnessConfig(dispersion_fraction=fraction, half_life=1e6),
            eviction=EvictionConfig(max_cells=capacity, safe_fraction=0.8),
        )
        stash = make_system("stash", dataset, config)
        stash.warm([_clone(wide)])
        for _ in range(3):
            stash.warm([_clone(center)])
            for query in churn:
                stash.warm([_clone(query)])
        # Pan by exactly one cell: the new row is the center's dispersed
        # halo — resident iff dispersion kept it fresh through the churn.
        outward = center.panned(cell_height, cell_width)
        outcome = stash.run_query(outward)
        label = f"dispersion_{fraction:g}"
        result.add("pan_latency_s", label, outcome.latency)
        result.add(
            "cells_from_cache", label, float(outcome.provenance["cells_from_cache"])
        )
        result.add(
            "disk_blocks", label, float(outcome.provenance["disk_blocks_read"])
        )
    return result


def ablation_reroute_probability(scale: BenchScale) -> ExperimentResult:
    """Hotspot throughput across reroute probabilities (0 = no offload)."""
    result = ExperimentResult(
        name="ablation_reroute",
        description="hotspot throughput vs reroute probability",
    )
    dataset = bench_dataset(scale)
    queries = hotspot_workload(
        scale.rng(79), NAM_DOMAIN, scale.throughput_requests
    )
    queries = [
        AggregationQuery(
            bbox=q.bbox,
            time_range=scale.day.epoch_range(),
            resolution=scale.resolution,
        )
        for q in queries
    ]
    for probability in (0.0, 0.25, 0.5, 0.8):
        config = bench_config(scale).with_(
            replication=ReplicationConfig(
                hotspot_queue_threshold=20,
                cooldown=0.5,
                reroute_probability=max(probability, 1e-9),
            ),
            enable_replication=probability > 0.0,
        )
        system = make_system("stash", dataset, config)
        system.warm([_clone(q) for q in queries])
        start = system.sim.now
        system.run_concurrent([_clone(q) for q in queries])
        duration = system.timeline.total_duration() - start
        result.add("throughput_qps", f"p={probability}", len(queries) / duration)
    return result


def ablation_cache_capacity(scale: BenchScale) -> ExperimentResult:
    """Hit rate and latency vs per-node cell budget.

    The paper caps the in-memory cell count ("configurable and limited",
    V-C); this sweep shows the capacity/latency trade-off on a
    locality-heavy revisiting workload — the curve an operator would use
    to size the cache.
    """
    from repro.workload.navigation import pan_cloud

    result = ExperimentResult(
        name="ablation_capacity",
        description="hit rate / latency vs per-node cache capacity",
    )
    dataset = bench_dataset(scale)
    queries = pan_cloud(
        scale.rng(113),
        QuerySize.STATE,
        NAM_DOMAIN,
        num_centers=3,
        pans_per_center=12,
        pan_fraction=0.15,
    )
    queries = [
        AggregationQuery(
            bbox=q.bbox,
            time_range=scale.day.epoch_range(),
            resolution=scale.resolution,
        )
        for q in queries
    ]
    # Two passes over the interleaved centers: the second pass revisits.
    stream = queries + [_clone(q) for q in queries]
    for capacity in (100, 400, 1_600, 50_000):
        config = bench_config(scale).with_(
            eviction=EvictionConfig(max_cells=capacity, safe_fraction=0.8)
        )
        stash = make_system("stash", dataset, config)
        latencies = []
        for query in stream:
            latencies.append(stash.run_query(_clone(query)).latency)
            stash.drain()
        counts = stash.counters_total()
        hits = counts.get("cells_served_from_cache", 0)
        misses = counts.get("cells_populated", 0)
        label = f"{capacity} cells"
        result.add("mean_latency_s", label, sum(latencies) / len(latencies))
        result.add("hit_rate", label, hits / max(1, hits + misses))
        result.add("evictions", label, float(counts.get("cells_evicted", 0)))
    return result


def experiment_realistic_sessions(scale: BenchScale) -> ExperimentResult:
    """Mixed multi-user exploration traffic across all three engines.

    Interleaved gesture walks (pan / dice / zoom / day-slice / jump) from
    several users — the traffic shape the paper's introduction motivates.
    Reports mean and p95 latency per engine plus STASH's cache traffic.
    """
    import numpy as np

    from repro.geo.temporal import TimeKey
    from repro.workload.sessions import interleaved_users

    result = ExperimentResult(
        name="experiment_sessions",
        description="multi-user gesture traffic: latency by engine",
    )
    dataset = bench_dataset(scale)
    config = bench_config(scale)
    days = [TimeKey.of(2013, 2, 1), TimeKey.of(2013, 2, 2)]
    stream = interleaved_users(
        scale.rng(101),
        NAM_DOMAIN,
        num_users=4,
        session_length=12,
        days=days,
        spatial_range=(2, min(4, scale.spatial_resolution)),
    )
    for kind in ("basic", "stash", "elastic"):
        system = make_system(kind, dataset, config)
        latencies = []
        for query in stream:
            latencies.append(system.run_query(_clone(query)).latency)
            if hasattr(system, "drain"):
                system.drain()
        values = np.asarray(latencies)
        result.add("mean_latency_s", kind, float(values.mean()))
        result.add("p95_latency_s", kind, float(np.percentile(values, 95)))
        if kind == "stash":
            counts = system.counters_total()
            result.meta["stash_cells_from_cache"] = counts.get(
                "cells_served_from_cache", 0
            )
            result.meta["stash_cells_from_rollup"] = counts.get(
                "cells_served_from_rollup", 0
            )
    return result


def ablation_cluster_scaling(scale: BenchScale) -> ExperimentResult:
    """Throughput vs cluster size on a fixed pan-cloud workload.

    The paper deployed 120 nodes; this sweep shows the reproduction's
    throughput scaling with node count (same dataset, same queries).
    """
    from repro.workload.navigation import pan_cloud

    result = ExperimentResult(
        name="ablation_scaling",
        description="pan-cloud throughput (queries/s) vs cluster size",
    )
    dataset = bench_dataset(scale)
    queries = pan_cloud(
        scale.rng(97),
        QuerySize.COUNTY,
        NAM_DOMAIN,
        num_centers=max(1, scale.throughput_requests // 25),
        pans_per_center=25,
    )
    queries = [
        AggregationQuery(
            bbox=q.bbox,
            time_range=scale.day.epoch_range(),
            resolution=scale.resolution,
        )
        for q in queries
    ]
    for num_nodes in (4, 8, 16, 32):
        config = bench_config(scale.with_(num_nodes=num_nodes))
        for kind in ("basic", "stash"):
            system = make_system(kind, dataset, config)
            system.run_concurrent([_clone(q) for q in queries])
            qps = len(queries) / system.timeline.total_duration()
            result.add(kind, f"{num_nodes} nodes", qps)
    return result


def ablation_client_graph(scale: BenchScale) -> ExperimentResult:
    """Front-end mini STASH graph on/off over an exploration trail.

    The paper's future-work item IX-A(1): "a smaller-capacity STASH
    graph at the front-end can greatly reduce latency in case users tend
    to browse a narrow spatiotemporal region, thus reducing the number
    of queries needed to be evaluated at the back-end."
    """
    result = ExperimentResult(
        name="ablation_client_graph",
        description="narrow-browsing trail: client mini-graph on vs off",
    )
    dataset = bench_dataset(scale)
    config = bench_config(scale)
    base = random_query(
        scale.rng(89),
        QuerySize.STATE,
        NAM_DOMAIN,
        day=scale.day,
        resolution=scale.resolution,
    )
    # A narrow-browsing trail: pans that revisit previous ground.
    trail = ["e", "e", "w", "w", "n", "s", "e", "w"]
    for capacity in (0, 200_000):
        stash = make_system("stash", dataset, config)
        session = ExplorationSession(
            stash,
            viewport=base.bbox,
            day=scale.day,
            resolution=base.resolution,
            client_cache_cells=capacity,
        )
        latencies = [session.refresh().latency]
        stash.drain()
        for direction in trail:
            latencies.append(session.pan(direction, 0.25).latency)
            stash.drain()
        label = "client_graph_on" if capacity else "client_graph_off"
        result.add("total_latency_s", label, sum(latencies))
        result.add("server_queries", label, float(session.stats.queries_sent))
        result.add(
            "client_hits", label, float(session.stats.client_cache_hits)
        )
    return result


def ablation_prefetch(scale: BenchScale) -> ExperimentResult:
    """Client momentum prefetch on/off along a straight pan path."""
    result = ExperimentResult(
        name="ablation_prefetch",
        description="avg pan latency on a straight path, prefetch on vs off",
    )
    dataset = bench_dataset(scale)
    config = bench_config(scale)
    base = random_query(
        scale.rng(83),
        QuerySize.STATE,
        NAM_DOMAIN,
        day=scale.day,
        resolution=scale.resolution,
    )
    for prefetch in (False, True):
        stash = make_system("stash", dataset, config)
        session = ExplorationSession(
            stash,
            viewport=base.bbox,
            day=scale.day,
            resolution=base.resolution,
            prefetch=prefetch,
        )
        session.refresh()
        stash.drain()
        latencies = []
        for _ in range(6):
            outcome = session.pan("e", 0.25)
            stash.drain()
            latencies.append(outcome.latency)
        label = "prefetch_on" if prefetch else "prefetch_off"
        # The first two pans cannot be predicted; measure the rest.
        result.add("avg_pan_latency_s", label, sum(latencies[2:]) / 4)
    return result

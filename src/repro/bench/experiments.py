"""One experiment function per figure panel of the paper's section VIII.

Each function regenerates the data behind a figure: same workload shape,
same systems under comparison, scaled to the local machine by a
:class:`~repro.bench.harness.BenchScale`.  Returned
:class:`~repro.bench.harness.ExperimentResult` tables print the rows /
series the paper plots; the benchmark suite asserts the *shape* claims
(who wins, by roughly what factor) and EXPERIMENTS.md records the
measured numbers next to the paper's.
"""

from __future__ import annotations

from repro.bench.harness import (
    BenchScale,
    ExperimentResult,
    attribution_fractions_of,
    bench_config,
    bench_dataset,
    make_system,
)
from repro.data.generator import NAM_DOMAIN
from repro.geo.resolution import Resolution
from repro.geo.temporal import TemporalResolution
from repro.query.model import AggregationQuery
from repro.workload.hotspot import hotspot_workload
from repro.workload.navigation import dicing_sequence, pan_cloud, pan_sequence, zoom_sequence
from repro.workload.queries import QuerySize, random_box, random_query

#: Query-size groups in figure order.
SIZES = [QuerySize.COUNTRY, QuerySize.STATE, QuerySize.COUNTY, QuerySize.CITY]


def _query_for(scale: BenchScale, size: QuerySize, salt: int) -> AggregationQuery:
    rng = scale.rng(salt)
    return random_query(
        rng, size, NAM_DOMAIN, day=scale.day, resolution=scale.resolution
    )


def _clone(query: AggregationQuery) -> AggregationQuery:
    """Same extent, fresh query id (a distinct client request)."""
    return AggregationQuery(
        bbox=query.bbox,
        time_range=query.time_range,
        resolution=query.resolution,
        attributes=query.attributes,
    )


# ---------------------------------------------------------------------------
# Fig. 6a — query latency vs query size, three scenarios
# ---------------------------------------------------------------------------

def fig6a_latency_by_query_size(scale: BenchScale) -> ExperimentResult:
    """Basic vs empty-STASH (worst case) vs populated STASH (best case)."""
    result = ExperimentResult(
        name="fig6a",
        description="avg query latency (s) by query size and scenario",
    )
    dataset = bench_dataset(scale)
    config = bench_config(scale)
    basic = make_system("basic", dataset, config)
    per_series: dict[str, list] = {"basic": [], "stash_cold": [], "stash_hot": []}
    for size in SIZES:
        basic_lat = stash_cold_lat = stash_hot_lat = 0.0
        for repeat in range(scale.repeats):
            query = _query_for(scale, size, salt=101 * repeat)
            basic_result = basic.run_query(_clone(query))
            basic_lat += basic_result.latency
            per_series["basic"].append(basic_result)
            # Worst case: a fresh, empty STASH graph.
            stash = make_system("stash", dataset, config)
            cold_result = stash.run_query(_clone(query))
            stash_cold_lat += cold_result.latency
            per_series["stash_cold"].append(cold_result)
            stash.drain()
            # Best case: every relevant cell already in memory.
            hot_result = stash.run_query(_clone(query))
            stash_hot_lat += hot_result.latency
            per_series["stash_hot"].append(hot_result)
        label = size.value
        result.add("basic", label, basic_lat / scale.repeats)
        result.add("stash_cold", label, stash_cold_lat / scale.repeats)
        result.add("stash_hot", label, stash_hot_lat / scale.repeats)
    hot = result.series["stash_hot"]
    base = result.series["basic"]
    result.meta["speedup_country"] = base["country"] / hot["country"]
    result.meta["speedup_state"] = base["state"] / hot["state"]
    for series, series_results in per_series.items():
        fractions = attribution_fractions_of(series_results)
        if fractions:
            result.meta[f"attribution_{series}"] = fractions
    return result


# ---------------------------------------------------------------------------
# Fig. 6b — throughput, STASH vs basic
# ---------------------------------------------------------------------------

def fig6b_throughput(scale: BenchScale) -> ExperimentResult:
    """Pan-cloud workload throughput (requests / simulated second)."""
    result = ExperimentResult(
        name="fig6b",
        description="throughput (queries/s) for pan-cloud workloads",
    )
    dataset = bench_dataset(scale)
    config = bench_config(scale)
    pans_per_center = 25
    centers = max(1, scale.throughput_requests // pans_per_center)
    for size in (QuerySize.STATE, QuerySize.COUNTY, QuerySize.CITY):
        queries = pan_cloud(
            scale.rng(salt=hash(size.value) % 1000),
            size,
            NAM_DOMAIN,
            num_centers=centers,
            pans_per_center=pans_per_center,
            pan_fraction=0.1,
        )
        # Fix day/resolution to the bench scale.
        queries = [
            AggregationQuery(
                bbox=q.bbox,
                time_range=scale.day.epoch_range(),
                resolution=scale.resolution,
            )
            for q in queries
        ]
        for kind in ("basic", "stash"):
            system = make_system(kind, dataset, config)
            system.run_concurrent([_clone(q) for q in queries])
            qps = len(queries) / system.timeline.total_duration()
            result.add(kind, size.value, qps)
        result.meta[f"improvement_{size.value}"] = (
            result.series["stash"][size.value] / result.series["basic"][size.value]
        )
    return result


# ---------------------------------------------------------------------------
# Fig. 6c — STASH maintenance (cold-start population) time
# ---------------------------------------------------------------------------

def fig6c_maintenance(scale: BenchScale) -> ExperimentResult:
    """Cell-population work after a cold query, by query size."""
    result = ExperimentResult(
        name="fig6c",
        description="cold-start population: cells inserted and busy time (s)",
    )
    dataset = bench_dataset(scale)
    config = bench_config(scale)
    for size in SIZES:
        query = _query_for(scale, size, salt=7)
        stash = make_system("stash", dataset, config)
        response = stash.run_query(query)
        response_at = stash.sim.now
        stash.drain()
        counts = stash.counters_total()
        populated = counts.get("cells_populated", 0)
        result.add("cells_populated", size.value, float(populated))
        result.add(
            "population_busy_s",
            size.value,
            populated * config.cost.cell_insert_cost,
        )
        result.add("population_tail_s", size.value, stash.sim.now - response_at)
    return result


# ---------------------------------------------------------------------------
# Fig. 6d — hotspot: dynamic replication vs none
# ---------------------------------------------------------------------------

def fig6d_hotspot(scale: BenchScale) -> ExperimentResult:
    """Completion timeline under a single-region hotspot."""
    result = ExperimentResult(
        name="fig6d",
        description="hotspot workload completion, replication vs none",
    )
    dataset = bench_dataset(scale)
    config = bench_config(
        scale,
        replication=bench_config(scale).replication.__class__(
            hotspot_queue_threshold=20,
            cooldown=0.5,
            # With one dominant clique there is one helper; a 50/50 split
            # balances the hotspotted node and the helper.
            reroute_probability=0.5,
        ),
    )
    queries = hotspot_workload(
        scale.rng(salt=13), NAM_DOMAIN, scale.throughput_requests
    )
    queries = [
        AggregationQuery(
            bbox=q.bbox,
            time_range=scale.day.epoch_range(),
            resolution=scale.resolution,
        )
        for q in queries
    ]
    for kind in ("stash", "stash-norepl"):
        system = make_system(kind, dataset, config)
        # Both variants are *warm* STASH deployments: the experiment
        # isolates the queueing effect of the hotspot, as in the paper
        # (Fig. 6d compares STASH with vs without dynamic replication).
        system.warm([_clone(q) for q in queries])
        hotspot_start = system.sim.now
        system.run_concurrent([_clone(q) for q in queries])
        label = "replication" if kind == "stash" else "no_replication"
        completions = system.timeline.completions
        phase = completions[completions >= hotspot_start] - hotspot_start
        duration = float(phase.max())
        result.add("total_duration_s", label, duration)
        result.add("throughput_qps", label, len(queries) / duration)
        import numpy as np

        bin_width = max(duration / 20.0, 1e-9)
        nbins = int(np.floor(phase.max() / bin_width)) + 1
        idx = np.minimum((phase / bin_width).astype(np.int64), nbins - 1)
        result.meta[f"timeline_{label}"] = (
            np.cumsum(np.bincount(idx, minlength=nbins)).tolist()
        )
        if kind == "stash":
            counts = system.counters_total()
            result.meta["handoffs"] = counts.get("handoffs_completed", 0)
            result.meta["rerouted"] = counts.get("queries_rerouted", 0)
    result.meta["finish_advantage_s"] = (
        result.series["total_duration_s"]["no_replication"]
        - result.series["total_duration_s"]["replication"]
    )
    return result


# ---------------------------------------------------------------------------
# Fig. 7a/7b — iterative dicing (descending / ascending)
# ---------------------------------------------------------------------------

def fig7ab_iterative_dicing(
    scale: BenchScale, ascending: bool
) -> ExperimentResult:
    """Five dicing steps from country size, basic vs STASH."""
    order = "ascending" if ascending else "descending"
    result = ExperimentResult(
        name="fig7b" if ascending else "fig7a",
        description=f"{order} iterative dicing latency (s) per step",
    )
    dataset = bench_dataset(scale)
    config = bench_config(scale)
    base = _query_for(scale, QuerySize.COUNTRY, salt=23)
    steps = dicing_sequence(base, steps=5, shrink_factor=0.8, ascending=ascending)
    basic = make_system("basic", dataset, config)
    stash = make_system("stash", dataset, config)
    for index, query in enumerate(steps, start=1):
        label = f"q{index}"
        result.add("basic", label, basic.run_query(_clone(query)).latency)
        stash_result = stash.run_query(_clone(query))
        stash.drain()  # population between user actions
        result.add("stash", label, stash_result.latency)
    stash_rows = result.series["stash"]
    result.meta["stash_q2_over_q1"] = stash_rows["q2"] / stash_rows["q1"]
    return result


# ---------------------------------------------------------------------------
# Fig. 7c — panning
# ---------------------------------------------------------------------------

def fig7c_panning(scale: BenchScale) -> ExperimentResult:
    """State-level panning by 10/20/25% in 8 directions, basic vs STASH."""
    result = ExperimentResult(
        name="fig7c",
        description="avg pan latency (s) by pan fraction",
    )
    dataset = bench_dataset(scale)
    config = bench_config(scale)
    base = _query_for(scale, QuerySize.STATE, salt=31)
    basic_results: list = []
    stash_results: list = []
    for fraction in (0.10, 0.20, 0.25):
        label = f"pan{int(fraction * 100)}%"
        sequence = pan_sequence(base, fraction)
        basic = make_system("basic", dataset, config)
        stash = make_system("stash", dataset, config)
        basic_total = stash_total = 0.0
        for index, query in enumerate(sequence):
            basic_result = basic.run_query(_clone(query))
            stash_result = stash.run_query(_clone(query))
            stash.drain()
            if index > 0:  # the 8 pans; the first query is the warm-up
                basic_total += basic_result.latency
                stash_total += stash_result.latency
                basic_results.append(basic_result)
                stash_results.append(stash_result)
        result.add("basic", label, basic_total / (len(sequence) - 1))
        result.add("stash", label, stash_total / (len(sequence) - 1))
        result.meta[f"reduction_{label}"] = 1.0 - (
            result.series["stash"][label] / result.series["basic"][label]
        )
    for series, series_results in (("basic", basic_results), ("stash", stash_results)):
        fractions = attribution_fractions_of(series_results)
        if fractions:
            result.meta[f"attribution_{series}"] = fractions
    return result


# ---------------------------------------------------------------------------
# Fig. 7d/7e — drill-down / roll-up with partial cache
# ---------------------------------------------------------------------------

def fig7de_zoom(scale: BenchScale, direction: str) -> ExperimentResult:
    """Zoom across spatial resolutions with 0/50/75/100% preloaded cells."""
    if direction not in ("drill", "roll"):
        raise ValueError("direction must be 'drill' or 'roll'")
    result = ExperimentResult(
        name="fig7d" if direction == "drill" else "fig7e",
        description=f"{direction}-{'down' if direction == 'drill' else 'up'} "
        "latency (s) per resolution step",
    )
    dataset = bench_dataset(scale)
    config = bench_config(scale)
    base = _query_for(scale, QuerySize.STATE, salt=41)
    lo, hi = 2, scale.spatial_resolution
    steps = (
        zoom_sequence(base, lo, hi)
        if direction == "drill"
        else zoom_sequence(base, hi, lo)
    )
    basic = make_system("basic", dataset, config)
    for query in steps:
        label = f"s{query.resolution.spatial}"
        result.add("basic", label, basic.run_query(_clone(query)).latency)
    for fraction in (0.5, 0.75, 1.0):
        series = f"stash{int(fraction * 100)}%"
        stash = make_system("stash", dataset, config)
        for query in steps:
            stash.preload_fraction(_clone(query), fraction, seed=scale.seed)
        for query in steps:
            stash_result = stash.run_query(_clone(query))
            stash.drain()
            result.add(series, f"s{query.resolution.spatial}", stash_result.latency)
    basic_avg = sum(result.series["basic"].values()) / len(result.series["basic"])
    stash50_avg = sum(result.series["stash50%"].values()) / len(
        result.series["stash50%"]
    )
    result.meta["improvement_at_50%"] = 1.0 - stash50_avg / basic_avg
    return result


# ---------------------------------------------------------------------------
# Fig. 8a — panning: STASH vs ElasticSearch
# ---------------------------------------------------------------------------

def fig8a_es_panning(scale: BenchScale) -> ExperimentResult:
    """Step-by-step panning latency, STASH vs simulated ElasticSearch."""
    result = ExperimentResult(
        name="fig8a",
        description="panning latency (s) per step, STASH vs ElasticSearch",
    )
    dataset = bench_dataset(scale)
    config = bench_config(scale)
    base = _query_for(scale, QuerySize.STATE, salt=53)
    sequence = pan_sequence(base, 0.10)
    stash = make_system("stash", dataset, config)
    elastic = make_system("elastic", dataset, config)
    stash_results: list = []
    elastic_results: list = []
    for index, query in enumerate(sequence, start=1):
        label = f"q{index}"
        stash_result = stash.run_query(_clone(query))
        stash.drain()
        stash_results.append(stash_result)
        result.add("stash", label, stash_result.latency)
        elastic_result = elastic.run_query(_clone(query))
        elastic_results.append(elastic_result)
        result.add("elastic", label, elastic_result.latency)
    for series, series_results in (("stash", stash_results), ("elastic", elastic_results)):
        fractions = attribution_fractions_of(series_results)
        if fractions:
            result.meta[f"attribution_{series}"] = fractions
    stash_rows = result.series["stash"]
    es_rows = result.series["elastic"]
    later = [label for label in stash_rows if label != "q1"]
    result.meta["stash_reduction_vs_q1"] = 1.0 - (
        sum(stash_rows[l] for l in later) / len(later) / stash_rows["q1"]
    )
    result.meta["es_reduction_vs_q1"] = 1.0 - (
        sum(es_rows[l] for l in later) / len(later) / es_rows["q1"]
    )
    return result


# ---------------------------------------------------------------------------
# Fig. 8b/8c — iterative dicing: STASH vs ElasticSearch
# ---------------------------------------------------------------------------

def fig8bc_es_dicing(scale: BenchScale, ascending: bool) -> ExperimentResult:
    """Iterative dicing latency per step, STASH vs simulated ES."""
    order = "ascending" if ascending else "descending"
    result = ExperimentResult(
        name="fig8b" if ascending else "fig8c",
        description=f"{order} dicing latency (s), STASH vs ElasticSearch",
    )
    dataset = bench_dataset(scale)
    config = bench_config(scale)
    base = _query_for(scale, QuerySize.COUNTRY, salt=61)
    steps = dicing_sequence(base, steps=5, shrink_factor=0.8, ascending=ascending)
    stash = make_system("stash", dataset, config)
    elastic = make_system("elastic", dataset, config)
    for index, query in enumerate(steps, start=1):
        label = f"q{index}"
        stash_result = stash.run_query(_clone(query))
        stash.drain()
        result.add("stash", label, stash_result.latency)
        result.add("elastic", label, elastic.run_query(_clone(query)).latency)
    stash_rows = result.series["stash"]
    es_rows = result.series["elastic"]
    result.meta["stash_q2_over_q1"] = stash_rows["q2"] / stash_rows["q1"]
    result.meta["es_q2_over_q1"] = es_rows["q2"] / es_rows["q1"]
    return result

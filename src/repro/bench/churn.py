"""Membership-churn benchmark: anti-entropy repair vs cold restart.

The scenario warms a STASH cluster, drives a hotspot burst so dynamic
replication seeds guest replicas of the hot node's cliques, then runs a
timed open-loop phase through a crash + restart of that hot node, under
**gossip membership** — peers detect the death by heartbeat silence,
repair their rings independently, and converge epidemically.  Two
variants differ only in the recovery machinery:

* ``repair`` — anti-entropy on: survivors promote guest replicas of the
  dead node's range (and re-disperse them to the repaired ring's
  owners), and at rejoin the survivors stream the node's cells back
  (handoff), so it restarts *warm*.
* ``cold``   — repair and handoff off: the dead node's cells are simply
  unreachable during the outage, and the node restarts with an empty
  graph it must re-earn from disk.

The report phases hit rate / latency / completeness before, during, and
after the outage, splitting the after-phase into an early recovery
window (where handoff matters most) and the steady tail.  The headline
numbers are ``recovery_hit_rate_advantage`` (repair minus cold over the
post-restart recovery window) and ``warm_recovery_faster`` — the
acceptance check that repair+handoff recovers the warm hit rate
measurably faster than a cold restart.

Overload protection runs enabled in both variants so the churn scenario
also exercises admission shedding and the circuit breaker end to end
(their counters land in the report's meta).
"""

from __future__ import annotations

import numpy as np

from repro.bench.faults import (
    ARRIVAL_RATE,
    RECOVERY,
    _hot_coordinator,
    _hotspot_queries,
    _phase_stats,
)
from repro.bench.harness import (
    BenchScale,
    ExperimentResult,
    bench_config,
    bench_dataset,
    make_system,
)
from repro.config import (
    FaultConfig,
    GossipConfig,
    OverloadConfig,
    ReplicationConfig,
)
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultSchedule
from repro.query.model import AggregationQuery

#: Gossip timings for bench scales: detection (suspect + dead silence)
#: completes well inside the outage window at ARRIVAL_RATE.
GOSSIP = dict(
    interval=0.25,
    fanout=2,
    suspect_after=1.0,
    dead_after=1.0,
)

#: Aggressive replication so the hotspot burst seeds guest replicas —
#: the raw material anti-entropy repair works with.
REPLICATION = ReplicationConfig(
    hotspot_queue_threshold=10,
    cooldown=0.5,
    guest_ttl=3_600.0,
)

OVERLOAD = OverloadConfig(enabled=True, queue_limit=16)


def _clone(query: AggregationQuery) -> AggregationQuery:
    """Same extent, fresh query id (a distinct client request)."""
    return AggregationQuery(
        bbox=query.bbox,
        time_range=query.time_range,
        resolution=query.resolution,
        attributes=query.attributes,
    )


def _variant_config(scale: BenchScale, repair: bool):
    return bench_config(
        scale,
        faults=FaultConfig(enabled=True, **RECOVERY),
        gossip=GossipConfig(enabled=True, repair=repair, handoff=repair, **GOSSIP),
        overload=OVERLOAD,
        replication=REPLICATION,
    )


def _overload_burst(result: ExperimentResult, system, queries) -> None:
    """Flood a cold cluster to exercise shedding and the breaker.

    Flushing the caches first forces every query to the resolution path,
    scattering scan legs across all owners at once — queue depths blow
    past the admission limit, low-priority work is shed, and sustained
    shedding trips circuit breakers into explicitly degraded answers.
    """
    system.flush_caches()
    shed_before = sum(
        n.overload.shed_total
        for n in system.nodes.values()
        if n.overload is not None
    )
    flood = [_clone(q) for q in queries for _ in range(3)]
    results = system.run_concurrent(flood)
    system.drain()
    _phase_stats(result, "overload:burst", results)
    result.meta["overload_flood_queries"] = len(flood)
    result.meta["overload_requests_shed"] = (
        sum(
            n.overload.shed_total
            for n in system.nodes.values()
            if n.overload is not None
        )
        - shed_before
    )
    result.meta["overload_breaker_opens"] = sum(
        n.overload.breaker_opens
        for n in system.nodes.values()
        if n.overload is not None
    )
    result.meta["overload_degraded_answers"] = sum(
        1 for r in results if r.degraded
    )


def churn_recovery(scale: BenchScale) -> ExperimentResult:
    """Hit-rate recovery after churn: anti-entropy repair vs cold restart."""
    result = ExperimentResult(
        name="churn-recovery",
        description="hotspot hit rate across a crash/restart: repair vs cold",
    )
    dataset = bench_dataset(scale)
    queries = _hotspot_queries(scale)
    target = _hot_coordinator(scale, queries)
    n = len(queries)

    # The exact arrival offsets run_open_loop will generate for this
    # seed; the crash/restart are pinned between the same two arrivals
    # in both variants, so phase membership by index is exact.
    rng = np.random.default_rng(scale.seed)
    arrivals = np.cumsum(rng.exponential(1.0 / ARRIVAL_RATE, n))
    crash_index, restart_index = n // 3, (2 * n) // 3
    crash_offset = float(arrivals[crash_index])
    restart_offset = float(arrivals[restart_index])
    # Early recovery window: the first half of the after-phase, where a
    # warm restart separates most clearly from a cold one.
    early_end = restart_index + (n - restart_index) // 2

    after_hit = {}
    for variant, repair in (("repair", True), ("cold", False)):
        system = make_system("stash", dataset, _variant_config(scale, repair))
        # Warm the caches, then drive the whole workload concurrently:
        # the burst queues up on the hot node, trips hotspot detection,
        # and disperses its cliques to helpers' guest graphs.
        system.warm([_clone(q) for q in queries])
        system.run_concurrent([_clone(q) for q in queries])
        system.drain()
        guest_cells = system.total_guest_cells()

        # The timed phase starts *now*; fault times are relative to it.
        t0 = system.sim.now
        injector = FaultInjector(
            system,
            FaultSchedule.crash_restart(
                target, t0 + crash_offset, t0 + restart_offset
            ),
        )
        injector.install()
        results = system.run_open_loop(queries, ARRIVAL_RATE, seed=scale.seed)
        system.drain()
        # Let post-restart handoff/repair traffic finish for the gauges.
        system.sim.run(until=system.sim.timeout(5.0))

        _phase_stats(result, f"{variant}:before", results[:crash_index])
        _phase_stats(result, f"{variant}:during",
                     results[crash_index:restart_index])
        _phase_stats(result, f"{variant}:after-early",
                     results[restart_index:early_end])
        _phase_stats(result, f"{variant}:after-late", results[early_end:])
        after_hit[variant] = result.series["hit_rate"][f"{variant}:after-early"]

        counts = system.counters_total()
        fault_counts = system.fault_counters.as_dict()
        result.meta[f"{variant}_completed"] = len(results)
        result.meta[f"{variant}_hung"] = n - len(results)
        result.meta[f"{variant}_guest_cells_seeded"] = guest_cells
        result.meta[f"{variant}_failovers"] = sum(
            v.failovers for v in system.memberships.values()
        )
        result.meta[f"{variant}_gossip_rounds"] = sum(
            a.rounds for a in system.gossip_agents.values()
        )
        result.meta[f"{variant}_repair_promoted"] = counts.get(
            "repair_cells_promoted", 0
        )
        result.meta[f"{variant}_repair_shipped"] = counts.get(
            "repair_cells_shipped", 0
        )
        result.meta[f"{variant}_handoff_streamed"] = counts.get(
            "handoff_cells_streamed", 0
        )
        result.meta[f"{variant}_requests_shed"] = counts.get("requests_shed", 0)
        result.meta[f"{variant}_breaker_opens"] = sum(
            node.overload.breaker_opens
            for node in system.nodes.values()
            if node.overload is not None
        )
        result.meta[f"{variant}_client_timeouts"] = fault_counts.get(
            "client_timeouts", 0
        )

        if variant == "repair":
            _overload_burst(result, system, queries)

    result.meta.update(
        {
            "crashed_node": target,
            "crash_offset_s": round(crash_offset, 3),
            "restart_offset_s": round(restart_offset, 3),
            "queries": n,
            "recovery_hit_rate_advantage": round(
                after_hit["repair"] - after_hit["cold"], 6
            ),
            # Acceptance check: repair+handoff recovers the warm hit
            # rate measurably faster than a cold restart.
            "warm_recovery_faster": after_hit["repair"] > after_hit["cold"],
        }
    )
    return result

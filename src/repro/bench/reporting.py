"""Result persistence and pretty-printing for the benchmark suite.

Every benchmark writes its regenerated figure data to
``benchmarks/results/<name>.txt`` (human table) and ``<name>.json``
(machine form) so EXPERIMENTS.md can be refreshed from a bench run.
"""

from __future__ import annotations

import datetime
import json
import pathlib
import platform
import subprocess

import numpy as np

from repro.bench.harness import ExperimentResult

#: Default output directory, relative to the repository root.
RESULTS_DIR = pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / "results"

#: Meta keys that must match for two bench reports to be comparable.
#: Wall-clock numbers from different interpreter/numpy builds are noise,
#: not signal — the regression sentinel refuses to compare across them.
ENV_META_KEYS = ("python", "numpy", "seed")


def report_meta(seed: int) -> dict:
    """Environment stamp for a committed bench report.

    Identifies *where* and *from what* the numbers came: interpreter and
    numpy versions (the two things that actually move wall-clock kernel
    timings), the RNG seed, the git revision, and the wall-clock date.
    """
    try:
        git_rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=pathlib.Path(__file__).resolve().parent,
            check=False,
        ).stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        git_rev = "unknown"
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "seed": seed,
        "git_rev": git_rev,
        "date": datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
    }


def save_result(result: ExperimentResult, directory: pathlib.Path | None = None) -> pathlib.Path:
    """Persist a result; returns the table path."""
    directory = RESULTS_DIR if directory is None else directory
    directory.mkdir(parents=True, exist_ok=True)
    table_path = directory / f"{result.name}.txt"
    table_path.write_text(result.format_table() + "\n", encoding="utf-8")
    json_path = directory / f"{result.name}.json"
    json_path.write_text(
        json.dumps(
            {
                "name": result.name,
                "description": result.description,
                "series": result.series,
                "meta": {k: v for k, v in result.meta.items()},
            },
            indent=2,
            sort_keys=True,
            default=str,
        )
        + "\n",
        encoding="utf-8",
    )
    return table_path


#: Glyphs for the grouped bar chart, one per series.
_BAR_GLYPHS = "#=+*o%"


def ascii_chart(result: ExperimentResult, width: int = 48) -> str:
    """Grouped horizontal bars of a result — the figure, in a terminal.

    Bars are scaled to the maximum value across all series; each series
    gets its own glyph, listed in the legend line.
    """
    series_names = list(result.series)
    labels = result.row_labels()
    peak = max(
        (v for rows in result.series.values() for v in rows.values()),
        default=0.0,
    )
    if peak <= 0:
        return "(no positive values to chart)"
    label_width = max((len(l) for l in labels), default=4)
    lines = [
        "legend: "
        + "  ".join(
            f"{_BAR_GLYPHS[i % len(_BAR_GLYPHS)]} {name}"
            for i, name in enumerate(series_names)
        )
    ]
    for label in labels:
        for i, name in enumerate(series_names):
            value = result.series[name].get(label)
            if value is None:
                continue
            bar = _BAR_GLYPHS[i % len(_BAR_GLYPHS)] * max(
                1, int(round(width * value / peak))
            )
            row_label = label if i == 0 else ""
            lines.append(f"{row_label:>{label_width}} |{bar} {value:.4g}")
    return "\n".join(lines)


def attribution_summary(result: ExperimentResult) -> str:
    """Per-series critical-path breakdown lines, if the run traced.

    Reads the ``attribution_<series>`` meta entries experiments attach
    (fractions per queueing/network/disk/compute category).
    """
    lines = []
    for key, value in sorted(result.meta.items()):
        if not key.startswith("attribution_") or not isinstance(value, dict):
            continue
        series = key[len("attribution_"):]
        parts = "  ".join(
            f"{cat}={frac:6.1%}" for cat, frac in sorted(value.items())
        )
        lines.append(f"{series:>12}: {parts}")
    if not lines:
        return ""
    return "critical-path latency attribution:\n" + "\n".join(lines)


def report(result: ExperimentResult) -> None:
    """Print and persist a result (stdout shows with pytest -s)."""
    print()
    print(result.format_table())
    print()
    print(ascii_chart(result))
    summary = attribution_summary(result)
    if summary:
        print()
        print(summary)
    save_result(result)

"""Crash-recovery benchmark: STASH under a mid-run node failure.

The scenario crashes the coordinator of a hotspot workload one third of
the way through an open-loop run and restarts it at two thirds, then
reports hit rate, latency, and answer completeness for the *before /
during / after* phases.  What it demonstrates:

* no query ever hangs — every request completes, worst case as an
  explicit degraded answer (``completeness`` < 1);
* peers discover the death through RPC timeouts, declare it in the
  shared membership, and the DHT ring repairs around it;
* the cache hit rate collapses during the outage (the crashed node's
  graph is volatile) and recovers once the node restarts and the
  original partition map is restored.

Timing is fully deterministic: arrival times reuse the exact seeded
exponential gaps :meth:`~repro.system.DistributedSystem.run_open_loop`
draws, so the crash lands between the same two arrivals on every run.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.bench.harness import (
    BenchScale,
    ExperimentResult,
    bench_config,
    bench_dataset,
    make_system,
)
from repro.config import FaultConfig
from repro.data.generator import NAM_DOMAIN
from repro.dht.partitioner import PrefixPartitioner
from repro.faults.schedule import FaultSchedule
from repro.geo.geohash import encode
from repro.query.model import AggregationQuery
from repro.workload.hotspot import hotspot_workload

#: Arrival rate (requests / simulated second) for the open-loop run.
ARRIVAL_RATE = 2.0

#: Recovery knobs tuned so the whole detect/declare/reroute cycle fits
#: well inside the outage window at bench time scales.
RECOVERY = dict(
    rpc_timeout=0.35,
    evaluate_timeout=1.5,
    max_retries=2,
    backoff_base=0.05,
    backoff_multiplier=2.0,
)


def _hotspot_queries(scale: BenchScale) -> list[AggregationQuery]:
    queries = hotspot_workload(
        scale.rng(salt=23), NAM_DOMAIN, scale.throughput_requests
    )
    return [
        AggregationQuery(
            bbox=q.bbox,
            time_range=scale.day.epoch_range(),
            resolution=scale.resolution,
        )
        for q in queries
    ]


def _hot_coordinator(scale: BenchScale, queries: list[AggregationQuery]) -> str:
    """The node most of the workload lands on (under the healthy ring)."""
    config = bench_config(scale)
    partitioner = PrefixPartitioner(
        [f"node-{i}" for i in range(scale.num_nodes)],
        config.cluster.partition_precision,
    )
    votes: Counter[str] = Counter()
    for query in queries:
        lat, lon = query.bbox.center
        votes[partitioner.node_for(encode(lat, lon, partitioner.partition_precision))] += 1
    return votes.most_common(1)[0][0]


def _phase_stats(result: ExperimentResult, phase: str, results: list) -> None:
    served = missed = unresolved = 0
    degraded = 0
    completeness_floor = 1.0
    for r in results:
        prov = r.provenance
        served += prov.get("cells_from_cache", 0) + prov.get("cells_from_rollup", 0)
        missed += prov.get("cells_from_disk", 0)
        unresolved += prov.get("cells_unresolved", 0)
        if r.degraded:
            degraded += 1
            completeness_floor = min(completeness_floor, r.completeness)
    total = served + missed + unresolved
    from repro.stats import percentile

    result.add("mean_latency_s", phase, float(np.mean([r.latency for r in results])))
    result.add("p95_latency_s", phase, percentile([r.latency for r in results], 95.0))
    result.add("hit_rate", phase, served / total if total else 0.0)
    result.add("degraded_answers", phase, float(degraded))
    result.add("min_completeness", phase, completeness_floor)


def fault_crash_recovery(scale: BenchScale) -> ExperimentResult:
    """Hit rate and latency before / during / after a coordinator crash."""
    result = ExperimentResult(
        name="fault-recovery",
        description="hotspot workload across a coordinator crash + restart",
    )
    dataset = bench_dataset(scale)
    queries = _hotspot_queries(scale)
    target = _hot_coordinator(scale, queries)
    n = len(queries)

    # The exact arrival times run_open_loop will generate for this seed.
    rng = np.random.default_rng(scale.seed)
    arrivals = np.cumsum(rng.exponential(1.0 / ARRIVAL_RATE, n))
    crash_index, restart_index = n // 3, (2 * n) // 3
    crash_at = float(arrivals[crash_index])
    restart_at = float(arrivals[restart_index])

    config = bench_config(
        scale,
        faults=FaultConfig(
            enabled=True,
            schedule=tuple(FaultSchedule.crash_restart(target, crash_at, restart_at)),
            **RECOVERY,
        ),
    )
    system = make_system("stash", dataset, config)
    results = system.run_open_loop(queries, ARRIVAL_RATE, seed=scale.seed)
    system.drain()

    # The injector's timers are created before the arrival process, so a
    # query arriving exactly at crash_at is submitted post-crash: phase
    # membership by arrival index is exact, not approximate.
    _phase_stats(result, "before", results[:crash_index])
    _phase_stats(result, "during", results[crash_index:restart_index])
    _phase_stats(result, "after", results[restart_index:])

    counts = system.counters_total()
    fault_counts = system.fault_counters.as_dict()
    result.meta.update(
        {
            "crashed_node": target,
            "crash_at_s": round(crash_at, 3),
            "restart_at_s": round(restart_at, 3),
            "queries": n,
            "completed": len(results),
            "hung": n - len(results),
            "messages_dropped": system.network.messages_dropped,
            "failovers": system.membership.failovers,
            "rpc_timeouts": counts.get("rpc_timeouts", 0),
            "rpc_retries": counts.get("rpc_retries", 0),
            "rpc_failfast": counts.get("rpc_failfast", 0),
            "degraded_answers": counts.get("degraded_answers", 0),
            "client_timeouts": fault_counts.get("client_timeouts", 0),
            "client_retries": fault_counts.get("client_retries", 0),
            "client_gave_up": fault_counts.get("client_gave_up", 0),
            "hit_rate_recovered": (
                result.series["hit_rate"]["after"]
                > result.series["hit_rate"]["during"]
            ),
        }
    )
    return result

"""Scaling benchmark: nodes x concurrent users, STASH vs elastic.

``repro bench scale`` drives the session-scale workload generator
(:mod:`repro.workload.scale`) against simulated clusters of increasing
size under increasing closed-loop user populations, and reports the
two curves the north star asks for:

* **throughput** — completed queries per simulated second (completion
  count over the last-completion time, the paper's throughput basis);
* **latency SLOs** — exact per-class p50/p95/p99 over every query plus
  the flight recorder's histogram-bounded SLO verdicts against
  :data:`~repro.bench.slo.DEFAULT_SLO_TARGETS`.

Every (engine, nodes, users) combination replays the *same* seeded user
sessions, so the curves compare engines on identical gesture streams.
The report also times raw session synthesis at population scale (a
million users in the committed run) — the generator must never be the
bottleneck of a scale story.

Run via::

    python -m repro bench scale [--quick] [--output BENCH_scale.json]
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Any

from repro.bench.harness import BenchScale, bench_config, bench_dataset, make_system
from repro.bench.reporting import report_meta
from repro.bench.slo import DEFAULT_SLO_TARGETS
from repro.config import ObservabilityConfig
from repro.stats import percentile
from repro.workload.queries import QuerySize
from repro.workload.scale import ScaleWorkloadSpec, SessionTable, run_closed_loop

SCHEMA = "stash-bench-scale/v1"

#: Engines on every curve: STASH vs the elastic (ES-style static-shard)
#: baseline.
ENGINES = ("stash", "elastic")


@dataclass(frozen=True)
class ScaleSweep:
    """One sweep's grid and workload knobs."""

    node_counts: tuple[int, ...]
    user_counts: tuple[int, ...]
    session_length: int
    think_time_s: float
    #: Users for the synthesis-throughput measurement.
    generator_users: int
    scale: BenchScale

    @staticmethod
    def quick() -> "ScaleSweep":
        return ScaleSweep(
            node_counts=(2, 4),
            user_counts=(4, 8),
            session_length=4,
            think_time_s=0.5,
            generator_users=100_000,
            scale=BenchScale.unit(),
        )

    @staticmethod
    def default() -> "ScaleSweep":
        return ScaleSweep(
            node_counts=(4, 8, 16),
            user_counts=(8, 32, 96),
            session_length=6,
            think_time_s=0.5,
            generator_users=1_000_000,
            scale=BenchScale.default().with_(num_records=60_000),
        )


def _measure_generator(sweep: ScaleSweep, seed: int) -> dict[str, Any]:
    """Wall-clock synthesis rate at population scale."""
    spec = ScaleWorkloadSpec(
        num_users=sweep.generator_users,
        session_length=sweep.session_length,
        seed=seed,
    )
    started = time.perf_counter()
    table = SessionTable.synthesize(spec)
    elapsed = time.perf_counter() - started
    return {
        "users": table.num_users,
        "queries": table.num_queries,
        "synthesis_wall_s": elapsed,
        "queries_per_s": table.num_queries / elapsed if elapsed > 0 else None,
        "digest": table.digest(),
    }


def _run_combo(
    engine: str,
    nodes: int,
    users: int,
    table: SessionTable,
    sweep: ScaleSweep,
    slo_targets: tuple,
) -> dict[str, Any]:
    """One closed-loop run; per-class latencies + recorder verdicts."""
    scale = sweep.scale.with_(num_nodes=nodes)
    config = bench_config(
        scale,
        observability=ObservabilityConfig(
            flight_recorder=True, slo_targets=tuple(slo_targets)
        ),
    )
    system = make_system(engine, bench_dataset(scale), config)
    started = time.perf_counter()
    results = run_closed_loop(
        system, table, users=users, think_time=sweep.think_time_s
    )
    wall = time.perf_counter() - started
    makespan = system.timeline.total_duration()
    by_class: dict[str, list[float]] = {}
    for result in results:
        by_class.setdefault(result.query.kind, []).append(result.latency)
    classes = {
        kind: {
            "count": len(latencies),
            "p50_s": percentile(latencies, 50.0),
            "p95_s": percentile(latencies, 95.0),
            "p99_s": percentile(latencies, 99.0),
        }
        for kind, latencies in sorted(by_class.items())
    }
    recorder_report = system.recorder.report()
    return {
        "engine": engine,
        "nodes": nodes,
        "users": users,
        "queries": len(results),
        "degraded": sum(1 for r in results if r.degraded),
        "makespan_s": makespan,
        "throughput_qps": len(results) / makespan,
        "wall_s": wall,
        "classes": classes,
        "outcomes": recorder_report["outcomes"],
        "slo": recorder_report["slo"],
        "slo_violations": recorder_report["slo_violations"],
    }


def run_scale(
    sweep: ScaleSweep | None = None,
    seed: int = 0,
    slo_targets: tuple = DEFAULT_SLO_TARGETS,
    progress: Any = None,
) -> dict[str, Any]:
    """The full sweep; returns the JSON-ready BENCH_scale report."""
    sweep = sweep if sweep is not None else ScaleSweep.quick()
    spec = ScaleWorkloadSpec(
        num_users=max(sweep.user_counts),
        session_length=sweep.session_length,
        seed=seed,
    )
    table = SessionTable.synthesize(spec)
    runs: list[dict[str, Any]] = []
    for nodes in sweep.node_counts:
        for users in sweep.user_counts:
            for engine in ENGINES:
                combo = _run_combo(
                    engine, nodes, users, table, sweep, slo_targets
                )
                runs.append(combo)
                if progress is not None:
                    progress(
                        f"{engine:>8} nodes={nodes:<3} users={users:<4} "
                        f"{combo['throughput_qps']:8.2f} q/s  "
                        f"degraded={combo['degraded']}"
                    )
    generator = _measure_generator(sweep, seed)
    if progress is not None:
        progress(
            f"generator: {generator['users']:,} users -> "
            f"{generator['queries_per_s']:,.0f} queries/s synthesized"
        )
    return {
        "schema": SCHEMA,
        "meta": report_meta(seed),
        "mode": (
            "quick"
            if sweep == ScaleSweep.quick()
            else "default" if sweep == ScaleSweep.default() else "custom"
        ),
        "workload": {
            "session_length": sweep.session_length,
            "think_time_s": sweep.think_time_s,
            "size": QuerySize.COUNTY.value,
            "zipf_s": spec.zipf_s,
            "num_hotspots": spec.num_hotspots,
            "table_digest": table.digest(),
        },
        "slo_targets": [list(row) for row in slo_targets],
        "generator": generator,
        "runs": runs,
    }


def format_scale_report(report: dict[str, Any]) -> str:
    """Terminal table: one row per (engine, nodes, users) combination."""
    lines = [
        f"== bench scale ({report['mode']}): "
        f"closed-loop sessions, think={report['workload']['think_time_s']}s"
    ]
    lines.append(
        f"{'engine':>8} {'nodes':>5} {'users':>5} {'queries':>7} "
        f"{'q/s':>8} {'pan p95':>9} {'drill p95':>9} {'degr':>5} {'slo':>9}"
    )
    for run in report["runs"]:
        pan = run["classes"].get("pan", {}).get("p95_s")
        drill = run["classes"].get("drill", {}).get("p95_s")
        missed = sum(1 for row in run["slo"] if row["status"] == "missed")
        lines.append(
            f"{run['engine']:>8} {run['nodes']:>5} {run['users']:>5} "
            f"{run['queries']:>7} {run['throughput_qps']:>8.2f} "
            f"{'-' if pan is None else f'{pan * 1e3:7.1f}ms':>9} "
            f"{'-' if drill is None else f'{drill * 1e3:7.1f}ms':>9} "
            f"{run['degraded']:>5} {f'{missed} missed':>9}"
        )
    gen = report["generator"]
    lines.append(
        f"generator: {gen['users']:,} users / {gen['queries']:,} queries "
        f"synthesized in {gen['synthesis_wall_s']:.2f}s wall "
        f"({gen['queries_per_s']:,.0f} q/s)"
    )
    return "\n".join(lines)


def write_scale_report(report: dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

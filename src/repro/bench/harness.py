"""Shared experiment scaffolding: datasets, systems, result containers.

Every figure experiment in :mod:`repro.bench.experiments` is parameterized
by a :class:`BenchScale` so the same code runs in three regimes:

* ``BenchScale.unit()`` — seconds, used by the test suite's smoke tests;
* ``BenchScale.default()`` — the regime the benchmark suite runs, a
  laptop-scale stand-in for the paper's 120-node / 1.1 TB testbed
  (scaling documented in DESIGN.md section 5);
* custom — crank the knobs toward the paper's raw numbers if you have
  the hours.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from repro.baselines.basic import BasicSystem
from repro.baselines.elastic import ElasticSystem
from repro.config import (
    ClusterConfig,
    ElasticConfig,
    EvictionConfig,
    ObservabilityConfig,
    ReplicationConfig,
    StashConfig,
)
from repro.core.cluster import StashCluster
from repro.data.generator import NAM_DOMAIN, DatasetSpec, SyntheticNAMGenerator
from repro.data.observation import ObservationBatch
from repro.errors import WorkloadError
from repro.geo.resolution import Resolution
from repro.geo.temporal import TemporalResolution, TimeKey


@dataclass(frozen=True)
class BenchScale:
    """Knobs that trade fidelity for wall-clock."""

    num_records: int = 120_000
    num_days: int = 2
    num_nodes: int = 16
    spatial_resolution: int = 4
    #: Queries per scenario for latency averaging.
    repeats: int = 3
    #: Requests for throughput/hotspot runs.
    throughput_requests: int = 400
    seed: int = 42

    @staticmethod
    def default() -> "BenchScale":
        return BenchScale()

    @staticmethod
    def unit() -> "BenchScale":
        """Tiny regime for fast smoke tests of the experiment code."""
        return BenchScale(
            num_records=12_000,
            num_nodes=6,
            spatial_resolution=3,
            repeats=1,
            throughput_requests=60,
        )

    def with_(self, **kwargs: Any) -> "BenchScale":
        return replace(self, **kwargs)

    @property
    def day(self) -> TimeKey:
        return TimeKey.of(2013, 2, 2)

    @property
    def resolution(self) -> Resolution:
        return Resolution(self.spatial_resolution, TemporalResolution.DAY)

    def rng(self, salt: int = 0) -> np.random.Generator:
        return np.random.default_rng(self.seed + salt)


_dataset_cache: dict[tuple, ObservationBatch] = {}


def bench_dataset(scale: BenchScale) -> ObservationBatch:
    """The benchmark dataset for a scale (cached per process)."""
    key = (scale.num_records, scale.num_days, scale.seed)
    if key not in _dataset_cache:
        spec = DatasetSpec(
            num_records=scale.num_records,
            start_day=(2013, 2, 1),
            num_days=scale.num_days,
            observations_per_day=4,
            seed=scale.seed,
        )
        _dataset_cache[key] = SyntheticNAMGenerator(spec).generate()
    return _dataset_cache[key]


def bench_config(scale: BenchScale, **overrides: Any) -> StashConfig:
    base = StashConfig(
        cluster=ClusterConfig(num_nodes=scale.num_nodes),
        eviction=EvictionConfig(max_cells=500_000),
        replication=ReplicationConfig(),
        elastic=ElasticConfig(num_shards=4 * scale.num_nodes),
        # Benchmarks trace every query so result JSONs carry critical-path
        # latency attribution (queueing/network/disk/compute fractions).
        observability=ObservabilityConfig(trace=True),
    )
    return base.with_(**overrides) if overrides else base


def attribution_fractions_of(results: list) -> dict[str, float]:
    """Per-category latency fractions over a list of QueryResults.

    Empty dict when no result carries an attribution (tracing off).
    """
    from repro.obs.critical_path import attribution_fractions
    from repro.sim.metrics import AttributionCollector

    collector = AttributionCollector()
    for result in results:
        collector.record(result.attribution)
    if not len(collector):
        return {}
    return attribution_fractions(collector.totals())


def make_system(kind: str, dataset: ObservationBatch, config: StashConfig):
    """Instantiate a system under test by name."""
    if kind == "basic":
        return BasicSystem(dataset, config)
    if kind == "stash":
        return StashCluster(dataset, config)
    if kind == "stash-norepl":
        return StashCluster(dataset, config.with_(enable_replication=False))
    if kind == "elastic":
        return ElasticSystem(dataset, config)
    raise WorkloadError(f"unknown system kind {kind!r}")


@dataclass
class ExperimentResult:
    """One figure's regenerated data."""

    name: str
    description: str
    #: series label -> row label -> value (latency seconds, qps, ...)
    series: dict[str, dict[str, float]] = field(default_factory=dict)
    meta: dict[str, Any] = field(default_factory=dict)

    def add(self, series: str, row: str, value: float) -> None:
        self.series.setdefault(series, {})[row] = value

    def row_labels(self) -> list[str]:
        labels: list[str] = []
        for rows in self.series.values():
            for label in rows:
                if label not in labels:
                    labels.append(label)
        return labels

    def format_table(self) -> str:
        """Paper-style table: rows x series."""
        series_names = list(self.series)
        labels = self.row_labels()
        width = max([len(label) for label in labels] + [8])
        swidth = max([len(s) for s in series_names] + [12])
        lines = [f"== {self.name}: {self.description}"]
        header = " " * (width + 2) + "  ".join(s.rjust(swidth) for s in series_names)
        lines.append(header)
        for label in labels:
            cells = []
            for series in series_names:
                value = self.series[series].get(label)
                cells.append(
                    ("-" if value is None else f"{value:.6g}").rjust(swidth)
                )
            lines.append(label.ljust(width + 2) + "  ".join(cells))
        scalars = {k: v for k, v in self.meta.items() if not isinstance(v, dict)}
        if scalars:
            lines.append(
                "meta: " + ", ".join(f"{k}={v}" for k, v in sorted(scalars.items()))
            )
        for key, value in sorted(self.meta.items()):
            if isinstance(value, dict):
                parts = ", ".join(
                    f"{cat}={frac:.1%}" for cat, frac in sorted(value.items())
                )
                lines.append(f"{key}: {parts}")
        return "\n".join(lines)

"""SLO benchmark: interaction-class latency histograms over a session mix.

Drives an :class:`~repro.client.session.ExplorationSession` through a
randomized gesture mix (pan / dice / drill / refresh) with the flight
recorder on, then reports per-class latency distributions and the SLO
verdicts — the operator-facing answer to "are pans still fast enough?".

Two views of the same latencies appear in the report and must agree:

* exact per-class percentiles over the recorded latency list, computed
  with the shared :func:`repro.stats.percentile`;
* the recorder's mergeable log-bucketed histograms, whose percentile
  *bounds* must bracket the exact values (a property the test suite
  checks).

Run via::

    python -m repro slo [--engine stash] [--requests 60] [--output BENCH_slo.json]
"""

from __future__ import annotations

import json
from typing import Any

from repro.bench.harness import BenchScale, bench_config, bench_dataset, make_system
from repro.bench.reporting import report_meta
from repro.client.session import ExplorationSession
from repro.config import ObservabilityConfig
from repro.data.generator import NAM_DOMAIN
from repro.errors import QueryError
from repro.stats import percentile
from repro.workload.queries import QuerySize, random_query

#: Default SLO targets: ``(class, percentile, target_seconds)``.
#: Navigation gestures (pan/zoom/drill) carry the paper's interactivity
#: budget; the ``"*"`` row is a cluster-wide tail-latency backstop.
DEFAULT_SLO_TARGETS = (
    ("pan", 95.0, 1.0),
    ("zoom", 95.0, 1.5),
    ("drill", 95.0, 1.5),
    ("*", 99.0, 3.0),
)

#: Gesture mix: cumulative weights over (pan, dice, drill, refresh).
_PAN_W, _DICE_W, _DRILL_W = 0.45, 0.20, 0.20

_PAN_DIRECTIONS = ("n", "e", "s", "w", "ne", "se", "sw", "nw")


def run_slo(
    engine: str = "stash",
    scale: BenchScale | None = None,
    requests: int = 60,
    slo_targets: tuple = DEFAULT_SLO_TARGETS,
) -> dict[str, Any]:
    """Run the gesture mix and return the JSON-ready SLO report."""
    scale = scale if scale is not None else BenchScale.unit()
    dataset = bench_dataset(scale)
    config = bench_config(
        scale,
        observability=ObservabilityConfig(
            flight_recorder=True, slo_targets=tuple(slo_targets)
        ),
    )
    system = make_system(engine, dataset, config)
    base = random_query(
        scale.rng(23),
        QuerySize.STATE,
        NAM_DOMAIN,
        day=scale.day,
        resolution=scale.resolution,
    )
    session = ExplorationSession(
        system, viewport=base.bbox, day=scale.day, resolution=base.resolution
    )
    rng = scale.rng(31)
    by_class: dict[str, list[float]] = {}
    # The walk is bounded on purpose: dice toggles between a shrunken
    # and the original viewport, drill toggles one level finer and back,
    # so the footprint can never outgrow the base query's budget no
    # matter how the gesture sequence lands.
    diced = False
    drilled = False
    for _ in range(requests):
        roll = float(rng.random())
        try:
            if roll < _PAN_W:
                direction = _PAN_DIRECTIONS[int(rng.integers(len(_PAN_DIRECTIONS)))]
                result = session.pan(direction, 0.25)
            elif roll < _PAN_W + _DICE_W:
                result = session.dice(1.0 / 0.7 if diced else 0.7)
                diced = not diced
            elif roll < _PAN_W + _DICE_W + _DRILL_W:
                result = session.roll_up() if drilled else session.drill_down()
                drilled = not drilled
            else:
                result = session.refresh()
        except QueryError:
            # Hit a resolution limit anyway: re-show the viewport
            # instead (still a valid user gesture).
            result = session.refresh()
        system.drain()
        by_class.setdefault(result.query.kind, []).append(result.latency)

    recorder = system.recorder
    classes: dict[str, Any] = {}
    for kind, latencies in sorted(by_class.items()):
        classes[kind] = {
            "count": len(latencies),
            "mean_s": sum(latencies) / len(latencies),
            "p50_s": percentile(latencies, 50.0),
            "p95_s": percentile(latencies, 95.0),
            "p99_s": percentile(latencies, 99.0),
        }
    return {
        "schema": "stash-bench-slo/v1",
        "meta": report_meta(scale.seed),
        "engine": engine,
        "requests": requests,
        "classes": classes,
        "recorder": recorder.report(),
    }


def format_slo_report(report: dict[str, Any]) -> str:
    """Terminal table of an SLO report."""
    lines = [
        f"== bench slo (engine={report['engine']}, "
        f"requests={report['requests']})"
    ]
    header = (
        f"{'class':>8} {'count':>6} {'mean':>9} {'p50':>9} "
        f"{'p95':>9} {'p99':>9}"
    )
    lines.append(header)
    for kind, entry in report["classes"].items():
        lines.append(
            f"{kind:>8} {entry['count']:>6} "
            f"{entry['mean_s'] * 1e3:8.2f}ms {entry['p50_s'] * 1e3:8.2f}ms "
            f"{entry['p95_s'] * 1e3:8.2f}ms {entry['p99_s'] * 1e3:8.2f}ms"
        )
    recorder = report["recorder"]
    outcomes = recorder["outcomes"]
    lines.append(
        "outcomes: "
        + "  ".join(f"{name}={count}" for name, count in outcomes.items())
        + f"  slo_violations={recorder['slo_violations']}"
    )
    for entry in recorder["slo"]:
        status = entry["status"]
        if status == "no-data":
            detail = "no data"
        else:
            detail = (
                f"p{entry['percentile']:g} in "
                f"[{entry['bound_lo_s'] * 1e3:.2f}, "
                f"{entry['bound_hi_s'] * 1e3:.2f}] ms "
                f"vs target {entry['target_s'] * 1e3:.0f} ms"
            )
        lines.append(f"  slo {entry['class']:>6}: {status:<10} {detail}")
    return "\n".join(lines)


def write_slo_report(report: dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")

"""Benchmark harness: one experiment per paper figure (section VIII)."""

from repro.bench.harness import BenchScale, ExperimentResult, bench_dataset, make_system
from repro.bench import experiments

__all__ = [
    "BenchScale",
    "ExperimentResult",
    "bench_dataset",
    "make_system",
    "experiments",
]

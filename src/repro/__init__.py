"""STASH: fast hierarchical aggregation queries for visual spatiotemporal
exploration — a full reproduction of the CLUSTER 2019 paper.

Quick tour
----------

>>> from repro import (
...     DatasetSpec, SyntheticNAMGenerator, StashCluster, StashConfig,
...     AggregationQuery,
... )
>>> dataset = SyntheticNAMGenerator(DatasetSpec(num_records=20_000)).generate()
>>> cluster = StashCluster(dataset)
>>> # build a query, run it, inspect per-cell summary statistics
>>> # (see examples/quickstart.py for the full walk-through)

Package layout (see DESIGN.md for the paper-section mapping):

- :mod:`repro.geo` — geohash / temporal hierarchy primitives
- :mod:`repro.data` — observations, mergeable statistics, synthetic NAM data
- :mod:`repro.sim` — deterministic discrete-event cluster simulation
- :mod:`repro.dht` — zero-hop DHT partitioning
- :mod:`repro.storage` — Galileo-like distributed block storage
- :mod:`repro.core` — the STASH cache itself (cells, graph, PLM, planner)
- :mod:`repro.replication` — hotspot detection and clique handoff
- :mod:`repro.baselines` — the basic system and simulated ElasticSearch
- :mod:`repro.workload` — the paper's query workload generators
- :mod:`repro.client` — exploration sessions and rendering
- :mod:`repro.bench` — one experiment per paper figure
"""

from repro.config import (
    ClusterConfig,
    CostModel,
    DEFAULT_CONFIG,
    ElasticConfig,
    EvictionConfig,
    FreshnessConfig,
    ReplicationConfig,
    StashConfig,
)
from repro.data.generator import DatasetSpec, NAM_DOMAIN, SyntheticNAMGenerator
from repro.geo.bbox import BoundingBox
from repro.geo.resolution import Resolution, ResolutionSpace
from repro.geo.temporal import TemporalResolution, TimeKey, TimeRange
from repro.query.model import AggregationQuery, QueryResult

__version__ = "1.0.0"

__all__ = [
    "AggregationQuery",
    "BoundingBox",
    "ClusterConfig",
    "CostModel",
    "DEFAULT_CONFIG",
    "DatasetSpec",
    "ElasticConfig",
    "EvictionConfig",
    "FreshnessConfig",
    "NAM_DOMAIN",
    "QueryResult",
    "ReplicationConfig",
    "Resolution",
    "ResolutionSpace",
    "StashConfig",
    "SyntheticNAMGenerator",
    "TemporalResolution",
    "TimeKey",
    "TimeRange",
    "__version__",
    # Systems are imported lazily to keep `import repro` light:
    "StashCluster",
    "BasicSystem",
    "ElasticSystem",
    "ExplorationSession",
]


def __getattr__(name: str):
    if name == "StashCluster":
        from repro.core.cluster import StashCluster

        return StashCluster
    if name == "BasicSystem":
        from repro.baselines.basic import BasicSystem

        return BasicSystem
    if name == "ElasticSystem":
        from repro.baselines.elastic import ElasticSystem

        return ElasticSystem
    if name == "ExplorationSession":
        from repro.client.session import ExplorationSession

        return ExplorationSession
    raise AttributeError(f"module 'repro' has no attribute {name!r}")

"""Visual-navigation query sequences (paper sections VIII-C/D).

Each generator reproduces one of the paper's user-action simulations:

* :func:`pan_sequence` — a starting rectangle moved by a fraction of its
  extent in each of the 8 compass directions (Fig. 7c / 8a);
* :func:`dicing_sequence` — iterative dicing, shrinking (descending) or
  growing (ascending) the query area by 20 % per step (Fig. 7a/b, 8b/c);
* :func:`zoom_sequence` — drill-down / roll-up across spatial
  resolutions over a fixed area (Fig. 7d/e);
* :func:`pan_cloud` — the throughput mix: N random rectangles, each
  panned around repeatedly in random directions (Fig. 6b).
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.geo.bbox import BoundingBox
from repro.geo.resolution import Resolution
from repro.query.model import AggregationQuery
from repro.workload.queries import QuerySize, random_box

#: The 8 compass directions as (dlat sign, dlon sign).
COMPASS = [
    (1, 0), (1, 1), (0, 1), (-1, 1), (-1, 0), (-1, -1), (0, -1), (1, -1),
]


def pan_sequence(
    base: AggregationQuery, fraction: float, directions: int = 8
) -> list[AggregationQuery]:
    """Base query plus one pan of ``fraction`` in each compass direction."""
    if not 0.0 < fraction <= 1.0:
        raise WorkloadError(f"pan fraction must be in (0, 1], got {fraction}")
    if not 1 <= directions <= 8:
        raise WorkloadError("directions must be in [1, 8]")
    out = [base]
    for dlat_sign, dlon_sign in COMPASS[:directions]:
        out.append(
            base.panned(
                dlat_sign * fraction * base.bbox.height,
                dlon_sign * fraction * base.bbox.width,
            )
        )
    return out


def dicing_sequence(
    base: AggregationQuery,
    steps: int = 5,
    shrink_factor: float = 0.8,
    ascending: bool = False,
) -> list[AggregationQuery]:
    """Iterative dicing: ``steps`` queries shrinking the area by
    ``1 - shrink_factor`` per step (descending), or the same sequence in
    reverse (ascending).  The paper starts at country level and shrinks
    by 20 % per step (final area ~(5.2, 10.4) degrees after 5 steps).
    """
    if steps < 1:
        raise WorkloadError("steps must be >= 1")
    if not 0.0 < shrink_factor < 1.0:
        raise WorkloadError("shrink_factor must be in (0, 1)")
    descending = [base]
    query = base
    for _ in range(steps - 1):
        query = query.diced(shrink_factor)
        descending.append(query)
    return descending[::-1] if ascending else descending


def zoom_sequence(
    base: AggregationQuery,
    from_spatial: int,
    to_spatial: int,
) -> list[AggregationQuery]:
    """Drill-down (from < to) or roll-up (from > to) over a fixed area."""
    if from_spatial == to_spatial:
        raise WorkloadError("zoom needs distinct start and end resolutions")
    step = 1 if to_spatial > from_spatial else -1
    out = []
    for precision in range(from_spatial, to_spatial + step, step):
        out.append(
            base.at_resolution(
                Resolution(precision, base.resolution.temporal)
            )
        )
    return out


def pan_cloud(
    rng: np.random.Generator,
    size: QuerySize,
    domain: BoundingBox,
    num_centers: int,
    pans_per_center: int,
    pan_fraction: float = 0.1,
    make_query=None,
) -> list[AggregationQuery]:
    """The Fig. 6b throughput workload.

    ``num_centers`` random rectangles, each panned ``pans_per_center``
    times by ``pan_fraction`` in a random direction — "to replicate
    spatiotemporal locality of requests".  The paper used 100 x 100;
    benchmarks scale this down (see DESIGN.md).
    """
    from repro.workload.queries import random_query

    if make_query is None:
        def make_query(box):
            q = random_query(rng, size, domain)
            return AggregationQuery(
                bbox=box, time_range=q.time_range, resolution=q.resolution
            )

    out: list[AggregationQuery] = []
    for _ in range(num_centers):
        box = random_box(rng, size, domain)
        query = make_query(box)
        out.append(query)
        for _ in range(pans_per_center - 1):
            dlat_sign, dlon_sign = COMPASS[int(rng.integers(0, 8))]
            query = query.panned(
                dlat_sign * pan_fraction * query.bbox.height,
                dlon_sign * pan_fraction * query.bbox.width,
            )
            out.append(query)
    return out

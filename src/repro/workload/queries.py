"""Query-size groups and random query generation (paper section VIII-A).

"Throughout our experiments, we refer to 4 groups of spatiotemporal
queries as country, state, county or city level ... set using a random
rectangle over the data's entire spatial coverage with latitudinal and
longitudinal extent of (16, 32), (4, 8), (0.6, 1.2) and (0.2, 0.5),
respectively", all with a fixed single-day temporal extent.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.errors import WorkloadError
from repro.geo.bbox import BoundingBox
from repro.geo.resolution import Resolution
from repro.geo.temporal import TemporalResolution, TimeKey
from repro.query.model import AggregationQuery


class QuerySize(enum.Enum):
    """The paper's four query-size groups."""

    COUNTRY = "country"
    STATE = "state"
    COUNTY = "county"
    CITY = "city"


#: (latitudinal extent, longitudinal extent) in degrees, per the paper.
QUERY_SIZE_EXTENTS: dict[QuerySize, tuple[float, float]] = {
    QuerySize.COUNTRY: (16.0, 32.0),
    QuerySize.STATE: (4.0, 8.0),
    QuerySize.COUNTY: (0.6, 1.2),
    QuerySize.CITY: (0.2, 0.5),
}


def random_box(
    rng: np.random.Generator,
    size: QuerySize,
    domain: BoundingBox,
) -> BoundingBox:
    """A random rectangle of the group's extent inside ``domain``."""
    height, width = QUERY_SIZE_EXTENTS[size]
    if height > domain.height or width > domain.width:
        raise WorkloadError(
            f"{size.value} extent {height}x{width} exceeds domain "
            f"{domain.height}x{domain.width}"
        )
    south = float(rng.uniform(domain.south, domain.north - height))
    west = float(rng.uniform(domain.west, domain.east - width))
    return BoundingBox(south, south + height, west, west + width)


def random_query(
    rng: np.random.Generator,
    size: QuerySize,
    domain: BoundingBox,
    day: TimeKey | None = None,
    resolution: Resolution | None = None,
) -> AggregationQuery:
    """A random query of the given size group.

    Defaults mirror the paper: single-day temporal extent, requested
    temporal resolution 'day of the month'.  The spatial resolution
    defaults to 4 (the paper used 6 on a 120-node cluster; see DESIGN.md
    section 5 on scaling).
    """
    if day is None:
        day = TimeKey.of(2013, 2, 2)
    if resolution is None:
        resolution = Resolution(4, TemporalResolution.DAY)
    return AggregationQuery(
        bbox=random_box(rng, size, domain),
        time_range=day.epoch_range(),
        resolution=resolution,
    )

"""Realistic multi-user exploration sessions.

The paper motivates STASH with *many users* exploring via sequences of
gestures, not isolated queries.  This module generates whole gesture
walks — pan / dice in / dice out / drill-down / roll-up / day-slice /
jump-to-new-region — per simulated user, and interleaves several users
into one arrival stream, producing traffic with the spatial and temporal
locality the cache exploits (paper section V-A).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.geo.bbox import BoundingBox
from repro.geo.resolution import Resolution
from repro.geo.temporal import TemporalResolution, TimeKey
from repro.query.model import AggregationQuery
from repro.workload.navigation import COMPASS
from repro.workload.queries import QuerySize, random_box


@dataclass(frozen=True)
class GestureWeights:
    """Relative probabilities of each gesture in a session walk."""

    pan: float = 0.40
    dice_in: float = 0.12
    dice_out: float = 0.12
    drill_down: float = 0.10
    roll_up: float = 0.10
    slice_day: float = 0.10
    jump: float = 0.06

    def normalized(self) -> np.ndarray:
        weights = np.array(
            [
                self.pan, self.dice_in, self.dice_out, self.drill_down,
                self.roll_up, self.slice_day, self.jump,
            ],
            dtype=np.float64,
        )
        if (weights < 0).any() or weights.sum() <= 0:
            raise WorkloadError("gesture weights must be non-negative, not all zero")
        return weights / weights.sum()


GESTURES = ("pan", "dice_in", "dice_out", "drill_down", "roll_up", "slice_day", "jump")


def random_session(
    rng: np.random.Generator,
    domain: BoundingBox,
    length: int,
    days: list[TimeKey],
    start_size: QuerySize = QuerySize.STATE,
    spatial_range: tuple[int, int] = (2, 5),
    weights: GestureWeights | None = None,
) -> list[AggregationQuery]:
    """One user's gesture walk as a query sequence.

    The walk keeps explicit viewport state (box, spatial precision, day)
    and mutates it per gesture, exactly like
    :class:`~repro.client.session.ExplorationSession` would.
    """
    if length < 1:
        raise WorkloadError("session length must be >= 1")
    if not days:
        raise WorkloadError("need at least one day")
    lo, hi = spatial_range
    if not 1 <= lo <= hi:
        raise WorkloadError("invalid spatial_range")
    probabilities = (weights or GestureWeights()).normalized()

    box = random_box(rng, start_size, domain)
    precision = int(rng.integers(lo, hi + 1))
    day = days[int(rng.integers(0, len(days)))]

    out: list[AggregationQuery] = []

    def emit() -> None:
        out.append(
            AggregationQuery(
                bbox=box,
                time_range=day.epoch_range(),
                resolution=Resolution(precision, TemporalResolution.DAY),
            )
        )

    emit()
    while len(out) < length:
        gesture = GESTURES[int(rng.choice(len(GESTURES), p=probabilities))]
        if gesture == "pan":
            dlat_sign, dlon_sign = COMPASS[int(rng.integers(0, 8))]
            fraction = float(rng.uniform(0.1, 0.3))
            box = box.translated(
                dlat_sign * fraction * box.height, dlon_sign * fraction * box.width
            )
        elif gesture == "dice_in":
            box = box.scaled(0.8)
        elif gesture == "dice_out":
            box = box.scaled(1.25)
        elif gesture == "drill_down":
            if precision < hi:
                precision += 1
        elif gesture == "roll_up":
            if precision > lo:
                precision -= 1
        elif gesture == "slice_day":
            day = days[int(rng.integers(0, len(days)))]
        else:  # jump
            box = random_box(rng, start_size, domain)
        emit()
    return out


def interleaved_users(
    rng: np.random.Generator,
    domain: BoundingBox,
    num_users: int,
    session_length: int,
    days: list[TimeKey],
    **session_kwargs,
) -> list[AggregationQuery]:
    """Round-robin-ish interleaving of several user sessions.

    Each arrival is drawn from a random user's next gesture, preserving
    each user's own gesture order — the multi-user request stream a
    shared STASH deployment actually sees.
    """
    if num_users < 1:
        raise WorkloadError("need at least one user")
    sessions = [
        random_session(rng, domain, session_length, days, **session_kwargs)
        for _ in range(num_users)
    ]
    cursors = [0] * num_users
    out: list[AggregationQuery] = []
    remaining = num_users * session_length
    while remaining:
        active = [u for u in range(num_users) if cursors[u] < session_length]
        user = active[int(rng.integers(0, len(active)))]
        out.append(sessions[user][cursors[user]])
        cursors[user] += 1
        remaining -= 1
    return out

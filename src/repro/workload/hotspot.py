"""Skewed workloads for the autoscaling experiments (paper section VIII-E).

:func:`hotspot_workload` is the Fig. 6d mix: many county-level requests
panning around a single random starting point — "the hotspot scenario of
sudden interest over a single region from multiple users".
:func:`zipf_region_workload` generalizes to a Zipf-distributed popularity
over several regions (the access-skew model the paper cites via Zipf's
law in section V-A).
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError
from repro.geo.bbox import BoundingBox
from repro.query.model import AggregationQuery
from repro.workload.navigation import COMPASS
from repro.workload.queries import QuerySize, random_box, random_query


def hotspot_workload(
    rng: np.random.Generator,
    domain: BoundingBox,
    num_requests: int,
    size: QuerySize = QuerySize.COUNTY,
    pan_fraction: float = 0.1,
) -> list[AggregationQuery]:
    """County-level requests panning around one random starting point."""
    if num_requests < 1:
        raise WorkloadError("num_requests must be >= 1")
    base = random_query(rng, size, domain)
    out = [base]
    query = base
    for _ in range(num_requests - 1):
        dlat_sign, dlon_sign = COMPASS[int(rng.integers(0, 8))]
        query = query.panned(
            dlat_sign * pan_fraction * query.bbox.height,
            dlon_sign * pan_fraction * query.bbox.width,
        )
        out.append(query)
    return out


def zipf_region_workload(
    rng: np.random.Generator,
    domain: BoundingBox,
    num_requests: int,
    num_regions: int = 10,
    zipf_s: float = 1.2,
    size: QuerySize = QuerySize.COUNTY,
    pan_fraction: float = 0.1,
) -> list[AggregationQuery]:
    """Requests spread over regions with Zipf-distributed popularity.

    Region ranks follow ``P(k) ~ 1/k^s``; within a region each request is
    a small pan off the region's base rectangle (temporal locality).
    """
    if num_regions < 1:
        raise WorkloadError("num_regions must be >= 1")
    if zipf_s <= 0:
        raise WorkloadError("zipf_s must be positive")
    bases = [random_query(rng, size, domain) for _ in range(num_regions)]
    weights = 1.0 / np.power(np.arange(1, num_regions + 1, dtype=float), zipf_s)
    weights /= weights.sum()
    picks = rng.choice(num_regions, size=num_requests, p=weights)
    out: list[AggregationQuery] = []
    for region in picks:
        base = bases[int(region)]
        dlat_sign, dlon_sign = COMPASS[int(rng.integers(0, 8))]
        jitter = float(rng.uniform(0, pan_fraction))
        out.append(
            base.panned(
                dlat_sign * jitter * base.bbox.height,
                dlon_sign * jitter * base.bbox.width,
            )
        )
    return out

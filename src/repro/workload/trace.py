"""Query-trace recording and replay.

Evaluation tooling: serialize any query workload to JSONL, reload it
later, and replay it against any engine.  Traces make experiments
portable (share the exact query stream, not the generator code) and are
the natural format for driving the system from *real* front-end logs if
you have them.
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterable

from repro.errors import WorkloadError
from repro.geo.bbox import BoundingBox
from repro.geo.resolution import Resolution
from repro.geo.temporal import TemporalResolution, TimeRange
from repro.query.model import AggregationQuery, QueryResult


def query_to_dict(query: AggregationQuery) -> dict:
    """JSON-serializable form of one query."""
    return {
        "bbox": [query.bbox.south, query.bbox.north, query.bbox.west, query.bbox.east],
        "time": [query.time_range.start, query.time_range.end],
        "spatial": query.resolution.spatial,
        "temporal": query.resolution.temporal.name.lower(),
        "attributes": list(query.attributes) if query.attributes else None,
    }


def query_from_dict(body: dict) -> AggregationQuery:
    """Inverse of :func:`query_to_dict`."""
    try:
        south, north, west, east = body["bbox"]
        start, end = body["time"]
        spatial = int(body["spatial"])
        temporal = TemporalResolution[body["temporal"].upper()]
    except (KeyError, ValueError, TypeError) as exc:
        raise WorkloadError(f"malformed trace record: {body!r}") from exc
    attributes = body.get("attributes")
    return AggregationQuery(
        bbox=BoundingBox(south, north, west, east),
        time_range=TimeRange(start, end),
        resolution=Resolution(spatial, temporal),
        attributes=tuple(attributes) if attributes else None,
    )


def save_trace(
    queries: Iterable[AggregationQuery], path: str | pathlib.Path
) -> int:
    """Write queries to a JSONL trace file; returns the record count."""
    path = pathlib.Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for query in queries:
            handle.write(json.dumps(query_to_dict(query), sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def load_trace(path: str | pathlib.Path) -> list[AggregationQuery]:
    """Read a JSONL trace file back into query objects."""
    path = pathlib.Path(path)
    out: list[AggregationQuery] = []
    for line_no, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        line = line.strip()
        if not line:
            continue
        try:
            body = json.loads(line)
        except json.JSONDecodeError as exc:
            raise WorkloadError(f"{path}:{line_no}: invalid JSON") from exc
        out.append(query_from_dict(body))
    return out


def replay_trace(
    system, queries: list[AggregationQuery], concurrent: bool = False
) -> list[QueryResult]:
    """Run a trace against any system, serially or all-at-once."""
    if concurrent:
        return system.run_concurrent(list(queries))
    return system.run_serial(list(queries))

"""Workload generators reproducing the paper's experimental query mixes."""

from repro.workload.queries import (
    QUERY_SIZE_EXTENTS,
    QuerySize,
    random_query,
    random_box,
)
from repro.workload.navigation import (
    dicing_sequence,
    pan_cloud,
    pan_sequence,
    zoom_sequence,
)
from repro.workload.hotspot import hotspot_workload, zipf_region_workload
from repro.workload.scale import (
    ScaleWorkloadSpec,
    SessionTable,
    open_loop_arrivals,
    run_closed_loop,
    run_open_loop,
)

__all__ = [
    "ScaleWorkloadSpec",
    "SessionTable",
    "open_loop_arrivals",
    "run_closed_loop",
    "run_open_loop",
    "QUERY_SIZE_EXTENTS",
    "QuerySize",
    "random_query",
    "random_box",
    "dicing_sequence",
    "pan_cloud",
    "pan_sequence",
    "zoom_sequence",
    "hotspot_workload",
    "zipf_region_workload",
]

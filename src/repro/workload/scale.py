"""Session-scale exploration workloads: millions of users, one array walk.

:mod:`repro.workload.sessions` builds gesture walks one query object at
a time — fine for hundreds of users, hopeless for the million-user
traffic the north star asks for.  This module synthesizes whole user
populations *columnar*: every user's pan/zoom/drill session is a row in
a set of numpy arrays, advanced one gesture step at a time with
vectorized state updates, so a million 8-step sessions cost a few dozen
array operations instead of eight million Python calls.

Three ingredients (Bikakis et al.'s hierarchical-exploration session
model + Arnold's Zipf-skew warning, PAPERS.md):

* a **Markov navigation model** — gesture ``t+1`` is drawn from a
  row-stochastic transition matrix conditioned on gesture ``t``, so
  sessions have realistic momentum (pans follow pans, a drill-down is
  usually followed by local exploration, not an immediate roll-up);
* **Zipf hotspot placement over the geohash space** — hotspots are
  geohash cells, users (and every ``jump`` gesture) pick a hotspot with
  probability ``1/rank**s``, reproducing the skewed interest the paper's
  section VII replication machinery exists for;
* **open-loop and closed-loop drivers** — a Poisson merged arrival
  stream (no back-pressure: the overload regime) and a think-time
  driver (each simulated user waits for their answer, thinks, gestures
  again: the interactive regime).

Everything is deterministic per seed: synthesis runs in fixed-size user
chunks, each chunk seeded by ``SeedSequence([seed, chunk_index])``, so
the same spec produces bit-identical streams in any process, regardless
of how many chunks are materialized or in what order.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Any, Iterator

import numpy as np

from repro.errors import WorkloadError
from repro.geo import geohash as gh
from repro.geo.bbox import BoundingBox
from repro.geo.resolution import Resolution
from repro.geo.temporal import TemporalResolution, TimeKey
from repro.query.model import AggregationQuery
from repro.workload.navigation import COMPASS
from repro.workload.queries import QUERY_SIZE_EXTENTS, QuerySize
from repro.workload.sessions import GESTURES

#: Users synthesized per chunk.  Part of the determinism contract: the
#: per-chunk RNG stream depends on this constant, so it is fixed rather
#: than tunable.
CHUNK_USERS = 65_536

#: Bounds of the per-user area-scale random walk (dice_in/dice_out).
_MIN_AREA_SCALE, _MAX_AREA_SCALE = 0.4, 2.5

#: Gesture index lookup (shared vocabulary with repro.workload.sessions).
GESTURE_INDEX = {name: i for i, name in enumerate(GESTURES)}

#: Query-class tag per gesture — the flight recorder's histogram key.
GESTURE_KIND = {
    "pan": "pan",
    "dice_in": "zoom",
    "dice_out": "zoom",
    "drill_down": "drill",
    "roll_up": "drill",
    "slice_day": "other",
    "jump": "other",
}

#: Default Markov transition matrix (rows/cols in GESTURES order:
#: pan, dice_in, dice_out, drill_down, roll_up, slice_day, jump).
#: Diagonal-heavy pan momentum; drill_down is followed by local
#: exploration; jump resets to panning around the new hotspot.
DEFAULT_TRANSITIONS = (
    (0.55, 0.10, 0.07, 0.10, 0.05, 0.08, 0.05),  # after pan
    (0.35, 0.25, 0.05, 0.20, 0.02, 0.08, 0.05),  # after dice_in
    (0.35, 0.05, 0.25, 0.02, 0.20, 0.08, 0.05),  # after dice_out
    (0.50, 0.15, 0.02, 0.15, 0.05, 0.08, 0.05),  # after drill_down
    (0.45, 0.02, 0.15, 0.05, 0.15, 0.08, 0.10),  # after roll_up
    (0.55, 0.08, 0.08, 0.08, 0.08, 0.08, 0.05),  # after slice_day
    (0.60, 0.10, 0.05, 0.10, 0.05, 0.10, 0.00),  # after jump
)

_COMPASS_LAT = np.array([d[0] for d in COMPASS], dtype=np.float64)
_COMPASS_LON = np.array([d[1] for d in COMPASS], dtype=np.float64)


@dataclass(frozen=True)
class ScaleWorkloadSpec:
    """One seeded user population: who explores what, and how."""

    num_users: int
    session_length: int
    #: Hotspot count and geohash precision of their placement cells.
    num_hotspots: int = 16
    hotspot_precision: int = 3
    #: Zipf skew exponent: hotspot rank ``k`` drawn with weight
    #: ``1/k**zipf_s``.
    zipf_s: float = 1.2
    #: Viewport extent group (paper section VIII-A).
    size: QuerySize = QuerySize.COUNTY
    #: Inclusive spatial-precision band of the drill/roll walk.
    spatial_range: tuple[int, int] = (2, 4)
    #: Days the slice_day gesture draws from.
    num_days: int = 2
    start_day: tuple[int, int, int] = (2013, 2, 1)
    #: Row-stochastic gesture transition matrix in GESTURES order.
    transitions: tuple = DEFAULT_TRANSITIONS
    seed: int = 0

    def validated(self) -> "ScaleWorkloadSpec":
        """Raise :class:`WorkloadError` on any inconsistent knob."""
        if self.num_users < 1:
            raise WorkloadError("num_users must be >= 1")
        if self.session_length < 1:
            raise WorkloadError("session_length must be >= 1")
        if self.num_hotspots < 1:
            raise WorkloadError("num_hotspots must be >= 1")
        if not 1 <= self.hotspot_precision <= 6:
            raise WorkloadError("hotspot_precision must be in [1, 6]")
        if self.zipf_s <= 0:
            raise WorkloadError("zipf_s must be positive")
        lo, hi = self.spatial_range
        if not 1 <= lo <= hi <= 8:
            raise WorkloadError("spatial_range must satisfy 1 <= lo <= hi <= 8")
        if self.num_days < 1:
            raise WorkloadError("num_days must be >= 1")
        matrix = np.asarray(self.transitions, dtype=np.float64)
        if matrix.shape != (len(GESTURES), len(GESTURES)):
            raise WorkloadError(
                f"transitions must be {len(GESTURES)}x{len(GESTURES)}, "
                f"got {matrix.shape}"
            )
        if (matrix < 0).any():
            raise WorkloadError("transition probabilities must be non-negative")
        if not np.allclose(matrix.sum(axis=1), 1.0, atol=1e-9):
            raise WorkloadError("transition matrix rows must sum to 1")
        return self

    def with_(self, **kwargs: Any) -> "ScaleWorkloadSpec":
        return replace(self, **kwargs)

    @property
    def days(self) -> list[TimeKey]:
        year, month, day = self.start_day
        return [TimeKey.of(year, month, day + i) for i in range(self.num_days)]

    def zipf_weights(self) -> np.ndarray:
        """Normalized hotspot popularity by rank (rank 1 first)."""
        ranks = np.arange(1, self.num_hotspots + 1, dtype=np.float64)
        weights = 1.0 / np.power(ranks, self.zipf_s)
        return weights / weights.sum()


def _hotspot_centers(
    spec: ScaleWorkloadSpec, domain: BoundingBox
) -> tuple[np.ndarray, np.ndarray, list[str]]:
    """Hotspot placement: random geohash cells inside ``domain``.

    Draws a point, snaps it to its geohash cell at
    ``spec.hotspot_precision``, and uses the cell center — hotspots are
    grid-aligned regions of the geohash space, not arbitrary points.
    """
    rng = np.random.default_rng([spec.seed, 0x5EED])
    lats = rng.uniform(domain.south, domain.north, spec.num_hotspots)
    lons = rng.uniform(domain.west, domain.east, spec.num_hotspots)
    cells = [
        gh.encode(float(lat), float(lon), spec.hotspot_precision)
        for lat, lon in zip(lats, lons)
    ]
    centers = [gh.bbox(cell).center for cell in cells]
    clat = np.array([c[0] for c in centers], dtype=np.float64)
    clon = np.array([c[1] for c in centers], dtype=np.float64)
    return clat, clon, cells


def _clamp_centers(
    clat: np.ndarray,
    clon: np.ndarray,
    half_h: np.ndarray,
    half_w: np.ndarray,
    domain: BoundingBox,
) -> None:
    """In place: keep every viewport box fully inside the domain."""
    np.clip(clat, domain.south + half_h, domain.north - half_h, out=clat)
    np.clip(clon, domain.west + half_w, domain.east - half_w, out=clon)


@dataclass
class SessionTable:
    """A synthesized user population as parallel per-step arrays.

    All arrays have shape ``(num_users, session_length)`` and hold the
    viewport state *after* the step's gesture was applied — row ``u`` of
    each array is user ``u``'s session, and materializing the query for
    ``(u, t)`` needs only the four state columns at that index.
    """

    spec: ScaleWorkloadSpec
    domain: BoundingBox
    #: Gesture index (into GESTURES) applied at each step; step 0 is the
    #: session-opening "jump" to the user's hotspot viewport.
    gestures: np.ndarray
    #: Viewport box centers (degrees).
    center_lat: np.ndarray
    center_lon: np.ndarray
    #: Area-scale factor of the viewport relative to the size group.
    area_scale: np.ndarray
    #: Spatial geohash precision of each request.
    precision: np.ndarray
    #: Index into ``spec.days``.
    day_index: np.ndarray
    #: Hotspot rank (0-based) each user currently orbits.
    hotspot: np.ndarray
    #: Hotspot cell labels (rank order), for skew accounting.
    hotspot_cells: list[str] = field(default_factory=list)

    @property
    def num_users(self) -> int:
        return self.gestures.shape[0]

    @property
    def session_length(self) -> int:
        return self.gestures.shape[1]

    @property
    def num_queries(self) -> int:
        return self.gestures.size

    def digest(self) -> str:
        """Stable content hash of the synthesized streams.

        Two tables from the same spec must digest identically in any
        process — the determinism contract the property tests pin.
        """
        h = hashlib.sha256()
        for array in (
            self.gestures, self.center_lat, self.center_lon,
            self.area_scale, self.precision, self.day_index, self.hotspot,
        ):
            h.update(np.ascontiguousarray(array).tobytes())
        h.update(",".join(self.hotspot_cells).encode())
        return h.hexdigest()

    def query(self, user: int, step: int) -> AggregationQuery:
        """Materialize one (user, step) viewport as an AggregationQuery."""
        height, width = QUERY_SIZE_EXTENTS[self.spec.size]
        lin = float(np.sqrt(self.area_scale[user, step]))
        box = BoundingBox.from_center(
            float(self.center_lat[user, step]),
            float(self.center_lon[user, step]),
            height * lin,
            width * lin,
        )
        day = self.spec.days[int(self.day_index[user, step])]
        gesture = GESTURES[int(self.gestures[user, step])]
        query = AggregationQuery(
            bbox=box,
            time_range=day.epoch_range(),
            resolution=Resolution(
                int(self.precision[user, step]), TemporalResolution.DAY
            ),
            kind=GESTURE_KIND[gesture],
        )
        return query

    def user_queries(self, user: int) -> list[AggregationQuery]:
        return [self.query(user, step) for step in range(self.session_length)]

    def iter_queries(self) -> Iterator[tuple[int, int, AggregationQuery]]:
        """All (user, step, query) triples in user-major order."""
        for user in range(self.num_users):
            for step in range(self.session_length):
                yield user, step, self.query(user, step)

    # -- synthesis ---------------------------------------------------------

    @classmethod
    def synthesize(
        cls, spec: ScaleWorkloadSpec, domain: BoundingBox | None = None
    ) -> "SessionTable":
        """Vectorized session synthesis for the whole population.

        Work is O(session_length) numpy passes over arrays of
        ``CHUNK_USERS`` rows; memory for the result is
        ``O(num_users * session_length)`` in compact dtypes (about 21
        bytes per query), so a million 8-step sessions synthesize in a
        couple of seconds and ~170 MB.
        """
        from repro.data.generator import NAM_DOMAIN

        spec = spec.validated()
        domain = NAM_DOMAIN if domain is None else domain
        height, width = QUERY_SIZE_EXTENTS[spec.size]
        max_lin = float(np.sqrt(_MAX_AREA_SCALE))
        if height * max_lin > domain.height or width * max_lin > domain.width:
            raise WorkloadError(
                f"{spec.size.value} viewport at max dice scale exceeds domain"
            )
        hot_lat, hot_lon, hotspot_cells = _hotspot_centers(spec, domain)

        users, length = spec.num_users, spec.session_length
        gestures = np.empty((users, length), dtype=np.uint8)
        center_lat = np.empty((users, length), dtype=np.float64)
        center_lon = np.empty((users, length), dtype=np.float64)
        area_scale = np.empty((users, length), dtype=np.float32)
        precision = np.empty((users, length), dtype=np.uint8)
        day_index = np.empty((users, length), dtype=np.uint16)
        hotspot = np.empty((users,), dtype=np.int32)

        for chunk_index, start in enumerate(range(0, users, CHUNK_USERS)):
            stop = min(start + CHUNK_USERS, users)
            _synthesize_chunk(
                spec, domain, hot_lat, hot_lon, chunk_index, stop - start,
                gestures[start:stop], center_lat[start:stop],
                center_lon[start:stop], area_scale[start:stop],
                precision[start:stop], day_index[start:stop],
                hotspot[start:stop],
            )
        return cls(
            spec=spec,
            domain=domain,
            gestures=gestures,
            center_lat=center_lat,
            center_lon=center_lon,
            area_scale=area_scale,
            precision=precision,
            day_index=day_index,
            hotspot=hotspot,
            hotspot_cells=hotspot_cells,
        )


def _synthesize_chunk(
    spec: ScaleWorkloadSpec,
    domain: BoundingBox,
    hot_lat: np.ndarray,
    hot_lon: np.ndarray,
    chunk_index: int,
    n: int,
    gestures: np.ndarray,
    center_lat: np.ndarray,
    center_lon: np.ndarray,
    area_scale: np.ndarray,
    precision: np.ndarray,
    day_index: np.ndarray,
    hotspot: np.ndarray,
) -> None:
    """One fixed-size chunk of users, written into the output views.

    The RNG draw order is part of the determinism contract: per step it
    is transition draw, hotspot redraw, jitter (lat, lon), pan
    (direction, fraction), day redraw — each over the full
    ``CHUNK_USERS`` rows whether or not the chunk (or a gesture mask)
    uses them, so a user's session depends only on
    ``(seed, user // CHUNK_USERS)`` and never on the population size or
    on which gestures other users happened to take.
    """
    out_n = n
    n = CHUNK_USERS
    rng = np.random.default_rng([spec.seed, chunk_index])
    height, width = QUERY_SIZE_EXTENTS[spec.size]
    lo, hi = spec.spatial_range
    cum_weights = np.cumsum(spec.zipf_weights())
    cum_weights[-1] = 1.0
    matrix = np.asarray(spec.transitions, dtype=np.float64)
    cum_matrix = np.cumsum(matrix, axis=1)
    cum_matrix[:, -1] = 1.0
    jump_index = GESTURE_INDEX["jump"]
    # Jitter keeps a hotspot's users clustered inside its cell, not
    # stacked on one point: about a quarter-cell standard deviation.
    cell_h, cell_w = gh.cell_dimensions(spec.hotspot_precision)

    def draw_hotspots() -> np.ndarray:
        return np.searchsorted(
            cum_weights, rng.random(n), side="right"
        ).astype(np.int32)

    def jittered(ranks: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        lat = hot_lat[ranks] + rng.normal(0.0, cell_h / 4.0, n)
        lon = hot_lon[ranks] + rng.normal(0.0, cell_w / 4.0, n)
        return lat, lon

    # -- step 0: every session opens on the user's Zipf-drawn hotspot.
    hot_rank = draw_hotspots()
    clat, clon = jittered(hot_rank)
    scale = np.ones(n, dtype=np.float64)
    prec = rng.integers(lo, hi + 1, n).astype(np.int16)
    day = rng.integers(0, spec.num_days, n).astype(np.uint16)
    state = np.full(n, jump_index, dtype=np.int16)

    for step in range(spec.session_length):
        if step > 0:
            # Markov transition: row = previous gesture, inverse-CDF draw.
            draws = rng.random(n)
            rows = cum_matrix[state]
            state = (draws[:, None] >= rows).sum(axis=1).astype(np.int16)

            new_ranks = draw_hotspots()
            jump_lat, jump_lon = jittered(new_ranks)
            direction = rng.integers(0, 8, n)
            fraction = rng.uniform(0.1, 0.3, n)
            new_day = rng.integers(0, spec.num_days, n).astype(np.uint16)

            lin = np.sqrt(scale)
            box_h, box_w = height * lin, width * lin
            is_pan = state == GESTURE_INDEX["pan"]
            clat = np.where(
                is_pan,
                clat + _COMPASS_LAT[direction] * fraction * box_h,
                clat,
            )
            clon = np.where(
                is_pan,
                clon + _COMPASS_LON[direction] * fraction * box_w,
                clon,
            )
            scale = np.where(
                state == GESTURE_INDEX["dice_in"],
                np.maximum(scale * 0.8, _MIN_AREA_SCALE),
                scale,
            )
            scale = np.where(
                state == GESTURE_INDEX["dice_out"],
                np.minimum(scale * 1.25, _MAX_AREA_SCALE),
                scale,
            )
            prec = np.where(
                state == GESTURE_INDEX["drill_down"],
                np.minimum(prec + 1, hi),
                prec,
            ).astype(np.int16)
            prec = np.where(
                state == GESTURE_INDEX["roll_up"],
                np.maximum(prec - 1, lo),
                prec,
            ).astype(np.int16)
            day = np.where(state == GESTURE_INDEX["slice_day"], new_day, day)
            is_jump = state == jump_index
            hot_rank = np.where(is_jump, new_ranks, hot_rank).astype(np.int32)
            clat = np.where(is_jump, jump_lat, clat)
            clon = np.where(is_jump, jump_lon, clon)

        half_h = height * np.sqrt(scale) / 2.0
        half_w = width * np.sqrt(scale) / 2.0
        _clamp_centers(clat, clon, half_h, half_w, domain)

        gestures[:, step] = state[:out_n].astype(np.uint8)
        center_lat[:, step] = clat[:out_n]
        center_lon[:, step] = clon[:out_n]
        area_scale[:, step] = scale[:out_n].astype(np.float32)
        precision[:, step] = prec[:out_n].astype(np.uint8)
        day_index[:, step] = day[:out_n]
    hotspot[:] = hot_rank[:out_n]


@dataclass(frozen=True)
class ArrivalStream:
    """Open-loop arrivals: a merged, time-sorted (user, step) stream."""

    times: np.ndarray  # float64, sorted non-decreasing, seconds
    users: np.ndarray  # int64
    steps: np.ndarray  # int64

    def __len__(self) -> int:
        return len(self.times)

    def digest(self) -> str:
        h = hashlib.sha256()
        for array in (self.times, self.users, self.steps):
            h.update(np.ascontiguousarray(array).tobytes())
        return h.hexdigest()


def open_loop_arrivals(
    table: SessionTable, rate: float, seed: int | None = None
) -> ArrivalStream:
    """Poisson merged arrivals at aggregate ``rate`` requests/second.

    Each user's session start is uniform over the window implied by the
    rate and their inter-gesture gaps are exponential, so the merged
    stream is Poisson-like in aggregate while preserving every user's
    own gesture order (the stream a shared deployment actually sees; no
    back-pressure — the open-loop overload regime).
    """
    if rate <= 0:
        raise WorkloadError("arrival rate must be positive")
    spec = table.spec
    rng = np.random.default_rng(
        [spec.seed if seed is None else seed, 0xA881]
    )
    users, length = table.num_users, table.session_length
    window = table.num_queries / rate
    # Half the window holds session starts, half the in-session gaps, so
    # the expected last arrival lands near ``window`` and the aggregate
    # rate comes out close to the request.
    starts = rng.uniform(0.0, window / 2.0, users)
    gap_mean = (window / 2.0) / max(1, length - 1)
    gaps = rng.exponential(gap_mean, (users, length))
    gaps[:, 0] = 0.0
    times = starts[:, None] + np.cumsum(gaps, axis=1)
    flat = times.ravel()
    order = np.argsort(flat, kind="stable")
    return ArrivalStream(
        times=flat[order],
        users=(order // length).astype(np.int64),
        steps=(order % length).astype(np.int64),
    )


def run_open_loop(
    system,
    table: SessionTable,
    rate: float,
    max_queries: int | None = None,
    seed: int | None = None,
) -> list:
    """Drive a simulated system with the open-loop arrival stream."""
    stream = open_loop_arrivals(table, rate, seed=seed)
    count = len(stream) if max_queries is None else min(max_queries, len(stream))
    system.start()
    submissions: list = []

    def arrivals():
        now = 0.0
        for index in range(count):
            at = float(stream.times[index])
            if at > now:
                yield system.sim.timeout(at - now)
                now = at
            submissions.append(
                system.submit(
                    table.query(int(stream.users[index]), int(stream.steps[index]))
                )
            )

    system.sim.run(until=system.sim.process(arrivals()))
    done = system.sim.all_of(submissions)
    return system.sim.run(until=done)


def run_closed_loop(
    system,
    table: SessionTable,
    users: int | None = None,
    think_time: float = 1.0,
    seed: int | None = None,
) -> list:
    """Closed-loop drive: one think-time process per simulated user.

    Each user submits their next gesture only after the previous answer
    arrives plus an exponential think pause — the interactive regime
    with inherent back-pressure.  Returns every
    :class:`~repro.query.model.QueryResult` in completion order.
    """
    if think_time < 0:
        raise WorkloadError("think_time must be non-negative")
    spec = table.spec
    count = table.num_users if users is None else min(users, table.num_users)
    rng = np.random.default_rng(
        [spec.seed if seed is None else seed, 0xC10D]
    )
    # Per-user staggered entry plus think pauses, drawn up front so the
    # stream is independent of simulation interleaving.
    entry = rng.uniform(0.0, max(think_time, 1e-9), count)
    thinks = rng.exponential(max(think_time, 1e-12), (count, table.session_length))
    if think_time == 0.0:
        entry = np.zeros(count)
        thinks = np.zeros((count, table.session_length))
    system.start()
    results: list = []

    def user_process(user: int):
        yield system.sim.timeout(float(entry[user]))
        for step in range(table.session_length):
            result = yield system.submit(table.query(user, step))
            results.append(result)
            pause = float(thinks[user, step])
            if pause > 0.0:
                yield system.sim.timeout(pause)

    done = system.sim.all_of(
        [system.sim.process(user_process(user)) for user in range(count)]
    )
    system.sim.run(until=done)
    return results


def observed_hotspot_frequencies(table: SessionTable) -> np.ndarray:
    """Empirical hotspot popularity by rank (sums to 1)."""
    counts = np.bincount(table.hotspot, minlength=table.spec.num_hotspots)
    return counts / counts.sum()

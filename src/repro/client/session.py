"""Visual exploration sessions: UI gestures -> backend queries.

An :class:`ExplorationSession` holds the user's current viewport (area,
time, resolution) and translates pan / dice / drill-down / roll-up /
slice gestures into :class:`~repro.query.model.AggregationQuery` objects
executed against any :class:`~repro.system.DistributedSystem`.

Two optional extensions implement the paper's future-work section IX-A:

* ``client_cache_cells`` > 0 enables a **front-end mini STASH graph** —
  a real :class:`~repro.core.graph.StashGraph` with freshness-based
  eviction living in the client.  Footprint cells already resident
  (including ones recomputable by local roll-up) are served without any
  server round trip; only the missing keys are fetched, via the
  cluster's partial-evaluation API when available.
* ``prefetch=True`` enables momentum prefetching: after two pans in the
  same direction, the session fires the predicted next viewport as a
  background query so the server cache is warm when the user gets there.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import EvictionConfig, FreshnessConfig
from repro.core.cell import Cell
from repro.core.eviction import EvictionPolicy
from repro.core.freshness import FreshnessTracker
from repro.core.graph import StashGraph
from repro.core.keys import CellKey
from repro.core.planner import plan_query
from repro.data.statistics import SummaryVector
from repro.errors import QueryError
from repro.geo.bbox import BoundingBox
from repro.geo.resolution import Resolution, ResolutionSpace
from repro.geo.temporal import TemporalResolution, TimeKey
from repro.query.model import AggregationQuery, QueryResult
from repro.system import DistributedSystem

#: Compass names accepted by :meth:`ExplorationSession.pan`.
DIRECTIONS = {
    "n": (1, 0), "ne": (1, 1), "e": (0, 1), "se": (-1, 1),
    "s": (-1, 0), "sw": (-1, -1), "w": (0, -1), "nw": (1, -1),
}


@dataclass
class SessionStats:
    """Per-session counters."""

    queries_sent: int = 0
    #: Queries answered without any server round trip.
    client_cache_hits: int = 0
    #: Cells served from the client graph across all queries.
    cells_served_locally: int = 0
    #: Cells fetched from the server across all queries.
    cells_fetched: int = 0
    #: Fetched keys left uncached because a degraded (completeness < 1)
    #: reply could not say whether they are empty or just unreachable.
    degraded_cells_skipped: int = 0
    prefetches_issued: int = 0
    history: list[AggregationQuery] = field(default_factory=list)


class ExplorationSession:
    """One user's interactive exploration of the dataset."""

    def __init__(
        self,
        system: DistributedSystem,
        viewport: BoundingBox,
        day: TimeKey,
        resolution: Resolution | None = None,
        client_cache_cells: int = 0,
        prefetch: bool = False,
    ):
        self.system = system
        self.viewport = viewport
        self.day = day
        self.resolution = resolution or Resolution(4, TemporalResolution.DAY)
        self.prefetch = prefetch
        self.stats = SessionStats()
        self._cache_capacity = client_cache_cells
        if client_cache_cells > 0:
            # The mini graph mirrors the *cluster's* resolution space so
            # client drill/roll levels can never diverge from the server's
            # level arithmetic; engines without a configured space (the
            # baselines) fall back to the full default space.
            space = getattr(system, "space", None)
            if space is None:
                space = ResolutionSpace(1, 8)
            self._graph: StashGraph | None = StashGraph(space, name="client")
            self._tracker = FreshnessTracker(FreshnessConfig())
            self._eviction = EvictionPolicy(
                EvictionConfig(max_cells=client_cache_cells, safe_fraction=0.8)
            )
        else:
            self._graph = None
        self._last_pan: tuple[int, int] | None = None

    # -- current query -------------------------------------------------------

    def current_query(self, kind: str = "other") -> AggregationQuery:
        return AggregationQuery(
            bbox=self.viewport,
            time_range=self.day.epoch_range(),
            resolution=self.resolution,
            kind=kind,
        )

    # -- gestures ----------------------------------------------------------

    def refresh(self) -> QueryResult:
        """Re-evaluate the current viewport."""
        return self._execute(self.current_query())

    def pan(self, direction: str, fraction: float = 0.25) -> QueryResult:
        """Move the viewport by a fraction of its extent."""
        try:
            dlat_sign, dlon_sign = DIRECTIONS[direction.lower()]
        except KeyError:
            raise QueryError(f"unknown pan direction {direction!r}") from None
        self.viewport = self.viewport.translated(
            dlat_sign * fraction * self.viewport.height,
            dlon_sign * fraction * self.viewport.width,
        )
        result = self._execute(self.current_query(kind="pan"))
        self._maybe_prefetch((dlat_sign, dlon_sign), fraction)
        self._last_pan = (dlat_sign, dlon_sign)
        return result

    def dice(self, area_factor: float) -> QueryResult:
        """Shrink/grow the selection area about its center."""
        self.viewport = self.viewport.scaled(area_factor)
        return self._execute(self.current_query(kind="zoom"))

    def drill_down(self) -> QueryResult:
        """One step finer spatial resolution (zoom in)."""
        finer = self.resolution.finer_spatial()
        if finer is None:
            raise QueryError("already at the finest spatial resolution")
        self.resolution = finer
        return self._execute(self.current_query(kind="drill"))

    def roll_up(self) -> QueryResult:
        """One step coarser spatial resolution (zoom out)."""
        coarser = self.resolution.coarser_spatial()
        if coarser is None:
            raise QueryError("already at the coarsest spatial resolution")
        self.resolution = coarser
        return self._execute(self.current_query(kind="drill"))

    def drill_time(self) -> QueryResult:
        """One step finer temporal resolution (e.g. day bins -> hour bins).

        The viewport's time extent is unchanged; only the bin granularity
        of the answer changes — temporal drill-down in the paper's
        spatiotemporal resolution lattice.
        """
        finer = self.resolution.finer_temporal()
        if finer is None:
            raise QueryError("already at the finest temporal resolution")
        self.resolution = finer
        return self._execute(self.current_query(kind="drill"))

    def roll_time(self) -> QueryResult:
        """One step coarser temporal resolution (e.g. day -> month bins)."""
        coarser = self.resolution.coarser_temporal()
        if coarser is None:
            raise QueryError("already at the coarsest temporal resolution")
        self.resolution = coarser
        return self._execute(self.current_query(kind="drill"))

    def slice_day(self, day: TimeKey) -> QueryResult:
        """Jump to a different temporal slice."""
        self.day = day
        return self._execute(self.current_query())

    def lasso(self, polygon) -> QueryResult:
        """Query an arbitrary polygonal selection (freehand lasso tool).

        The viewport is unchanged; the polygon is evaluated at the
        session's current day and resolution.
        """
        query = AggregationQuery.for_polygon(
            polygon,
            time_range=self.day.epoch_range(),
            resolution=self.resolution,
        )
        return self._execute(query)

    # -- execution ----------------------------------------------------------

    def _execute(self, query: AggregationQuery) -> QueryResult:
        self.stats.history.append(query)
        if self._graph is None:
            self.stats.queries_sent += 1
            return self.system.run_query(query)
        return self._execute_with_client_graph(query)

    def _execute_with_client_graph(self, query: AggregationQuery) -> QueryResult:
        assert self._graph is not None
        footprint = query.footprint()
        plan = plan_query(
            self._graph, footprint, self.system.attribute_names
        )
        # Cache client-side roll-ups: they are complete cells now.
        for key, rollup in plan.rollup.items():
            self._graph.upsert(Cell(key=key, summary=rollup.summary))
        found = plan.found
        self.stats.cells_served_locally += len(found)

        if not plan.missing:
            self.stats.client_cache_hits += 1
            self._touch(footprint)
            return QueryResult(
                query=query,
                cells={k: v for k, v in found.items() if not v.is_empty},
                latency=0.0,
                provenance={"client_cached": len(found)},
            )

        self.stats.queries_sent += 1
        if hasattr(self.system, "run_cells"):
            # Partial fetch: only the keys the client graph is missing.
            result = self.system.run_cells(query, plan.missing)
            fetched_keys = plan.missing
        else:
            # Fallback for engines without the partial API.
            result = self.system.run_query(query)
            fetched_keys = footprint
        self.stats.cells_fetched += len(fetched_keys)

        empty = SummaryVector.empty(self.system.attribute_names)
        merged = dict(found)
        for key in fetched_keys:
            vec = result.cells.get(key)
            if vec is None:
                if result.degraded:
                    # A degraded reply omits cells it could not resolve;
                    # caching them as known-empty would poison every later
                    # client-local answer (the same rule the server's
                    # _resolve_missing applies to its own cache).
                    self.stats.degraded_cells_skipped += 1
                    continue
                vec = empty
            merged[key] = vec
            self._graph.upsert(Cell(key=key, summary=vec))
        self._touch(footprint)
        self._eviction.enforce(
            self._graph, self._tracker, self._now()
        )
        provenance = dict(result.provenance)
        provenance["client_cached"] = len(found)
        return QueryResult(
            query=query,
            cells={k: v for k, v in merged.items() if not v.is_empty},
            latency=result.latency,
            provenance=provenance,
            completeness=result.completeness,
        )

    def _now(self) -> float:
        return self.system.sim.now

    def _touch(self, keys: list[CellKey]) -> None:
        assert self._graph is not None
        self._tracker.touch_cells(self._graph, keys, self._now())

    def _maybe_prefetch(self, direction: tuple[int, int], fraction: float) -> None:
        """Momentum prediction: two same-direction pans -> prefetch a third."""
        if not self.prefetch or self._last_pan != direction:
            return
        predicted = self.current_query().panned(
            direction[0] * fraction * self.viewport.height,
            direction[1] * fraction * self.viewport.width,
        )
        # Fire-and-forget: warms the server cache, result discarded.
        self.system.submit(predicted)
        self.stats.prefetches_issued += 1

"""Response rendering: JSON bodies and ASCII heatmaps.

The JSON form is what a Grafana-style panel would consume (paper VI-A);
the ASCII heatmap gives the examples a human-visible rendering of the
"set of pixel-level aggregations" without any plotting dependency.
"""

from __future__ import annotations

import json

from repro.errors import QueryError
from repro.geo.cover import covering_cells
from repro.geo.geohash import bbox as geohash_bbox
from repro.query.model import QueryResult

#: Shade ramp from sparse/low to dense/high.
SHADES = " .:-=+*#%@"


def render_json(result: QueryResult, indent: int | None = None) -> str:
    """Serialize a query result the way the backend answers the UI."""
    return json.dumps(result.to_json_dict(), indent=indent, sort_keys=True)


def heatmap_grid(
    result: QueryResult, attribute: str, statistic: str = "mean"
):
    """The spatial heatmap as a 2-D float array (NaN = no data).

    Rows run north to south (image convention); columns west to east.
    Shared by the ASCII and PGM renderers.
    """
    import numpy as np

    query = result.query
    spatial_cells = covering_cells(query.snapped_bbox(), query.resolution.spatial)
    if not spatial_cells:
        raise QueryError("query has no spatial cover")
    by_geohash: dict[str, list] = {}
    for key, vec in result.cells.items():
        by_geohash.setdefault(key.geohash, []).append(vec)
    values: dict[str, float] = {}
    for geohash, vecs in by_geohash.items():
        merged = vecs[0]
        for vec in vecs[1:]:
            merged = merged.merge(vec)
        summary = merged[attribute]
        if summary.is_empty:
            continue
        if statistic == "mean":
            values[geohash] = summary.mean
        elif statistic == "max":
            values[geohash] = summary.maximum
        elif statistic == "min":
            values[geohash] = summary.minimum
        elif statistic == "count":
            values[geohash] = float(summary.count)
        else:
            raise QueryError(f"unknown statistic {statistic!r}")
    souths = sorted({round(geohash_bbox(c).south, 9) for c in spatial_cells})
    nrows = len(souths)
    ncols = len(spatial_cells) // nrows
    grid = np.full((nrows, ncols), np.nan)
    for index, cell in enumerate(spatial_cells):
        row, col = divmod(index, ncols)
        value = values.get(cell)
        if value is not None:
            grid[nrows - 1 - row, col] = value  # flip: north on top
    return grid


def render_pgm(
    result: QueryResult,
    attribute: str,
    path,
    statistic: str = "mean",
    pixel_size: int = 8,
) -> None:
    """Write the heatmap as a binary PGM image (no plotting deps).

    PGM is the simplest raster format every image viewer opens: one
    grayscale byte per pixel.  Cells with no data render black; values
    ramp linearly from dark (low) to white (high).  Each cell becomes a
    ``pixel_size`` x ``pixel_size`` square.
    """
    import numpy as np

    if pixel_size < 1:
        raise QueryError("pixel_size must be >= 1")
    grid = heatmap_grid(result, attribute, statistic)
    finite = grid[np.isfinite(grid)]
    lo = float(finite.min()) if finite.size else 0.0
    hi = float(finite.max()) if finite.size else 1.0
    span = (hi - lo) or 1.0
    shades = np.where(
        np.isfinite(grid), 32 + (grid - lo) / span * 223.0, 0.0
    ).astype(np.uint8)
    image = np.kron(shades, np.ones((pixel_size, pixel_size), dtype=np.uint8))
    header = f"P5\n{image.shape[1]} {image.shape[0]}\n255\n".encode("ascii")
    with open(path, "wb") as handle:
        handle.write(header)
        handle.write(image.tobytes())


def render_ascii_heatmap(
    result: QueryResult,
    attribute: str,
    statistic: str = "mean",
    max_width: int = 72,
) -> str:
    """Draw the spatial distribution of one attribute as ASCII art.

    Cells across all temporal bins of the result are merged per spatial
    geohash; the grid is the query's spatial cover, one character per
    cell, shaded by the chosen statistic.
    """
    query = result.query
    spatial_cells = covering_cells(query.snapped_bbox(), query.resolution.spatial)
    if not spatial_cells:
        raise QueryError("query has no spatial cover")

    # Merge temporal bins per geohash.
    by_geohash: dict[str, list] = {}
    for key, vec in result.cells.items():
        by_geohash.setdefault(key.geohash, []).append(vec)

    values: dict[str, float] = {}
    for geohash, vecs in by_geohash.items():
        merged = vecs[0]
        for vec in vecs[1:]:
            merged = merged.merge(vec)
        summary = merged[attribute]
        if summary.is_empty:
            continue
        if statistic == "mean":
            values[geohash] = summary.mean
        elif statistic == "max":
            values[geohash] = summary.maximum
        elif statistic == "min":
            values[geohash] = summary.minimum
        elif statistic == "count":
            values[geohash] = float(summary.count)
        else:
            raise QueryError(f"unknown statistic {statistic!r}")

    # Grid dimensions from the row-major cover.
    souths = sorted({round(geohash_bbox(c).south, 9) for c in spatial_cells})
    nrows = len(souths)
    ncols = len(spatial_cells) // nrows

    lo = min(values.values(), default=0.0)
    hi = max(values.values(), default=1.0)
    span = (hi - lo) or 1.0

    # covering_cells is south-to-north rows; render north at the top.
    lines = []
    for row in range(nrows - 1, -1, -1):
        chars = []
        step = max(1, ncols // max_width)
        for col in range(0, ncols, step):
            geohash = spatial_cells[row * ncols + col]
            value = values.get(geohash)
            if value is None:
                chars.append(" ")
            else:
                shade = int((value - lo) / span * (len(SHADES) - 1))
                chars.append(SHADES[shade])
        lines.append("".join(chars))
    header = (
        f"{attribute} ({statistic})  "
        f"lo={lo:.2f} hi={hi:.2f}  {nrows}x{ncols} cells"
    )
    return "\n".join([header] + lines)

"""Front-end: visual-exploration sessions and response rendering.

The paper's front-end (Grafana) is interchangeable — "we can interoperate
with any visualization framework that is capable of parsing and
displaying summarization responses in JSON".  This package provides the
session logic (UI gestures -> queries) and JSON / ASCII-heatmap
renderers, plus two features from the paper's future-work section:
a client-side mini STASH cache and momentum-based prefetching.
"""

from repro.client.session import ExplorationSession
from repro.client.render import render_ascii_heatmap, render_json

__all__ = ["ExplorationSession", "render_ascii_heatmap", "render_json"]

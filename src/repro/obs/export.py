"""Chrome/Perfetto ``trace_event`` JSON export.

Serializes a :class:`~repro.obs.tracer.Tracer`'s spans into the Trace
Event Format (the JSON flavor both ``chrome://tracing`` and
https://ui.perfetto.dev load directly): one complete (``"ph": "X"``)
event per finished span, grouped so each simulated node renders as a
process and each query as a thread lane within it.

Timestamps are simulated **microseconds** (the format's native unit), so
a 12 ms simulated query reads as 12 ms in the viewer.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

from repro.obs.tracer import Span, Tracer

#: pid used for spans with no node (background/unattributed work).
_UNKNOWN_PID_NAME = "(unattributed)"


def _pid_map(spans: list[Span]) -> dict[str, int]:
    """Deterministic node-name -> pid assignment (sorted, 1-based)."""
    nodes = sorted({span.node for span in spans if span.node is not None})
    return {node: pid for pid, node in enumerate(nodes, start=1)}


def chrome_trace_events(tracer: Tracer) -> list[dict[str, Any]]:
    """The ``traceEvents`` array for a tracer's finished spans."""
    pids = _pid_map(tracer.spans)
    events: list[dict[str, Any]] = []
    for node, pid in pids.items():
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": node},
            }
        )
    if any(span.node is None for span in tracer.spans):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "args": {"name": _UNKNOWN_PID_NAME},
            }
        )
    for span in tracer.spans:
        if span.end is None:
            continue
        args: dict[str, Any] = {"span_id": span.span_id}
        if span.parent is not None:
            args["parent_id"] = span.parent.span_id
        if span.query_id is not None:
            args["query_id"] = span.query_id
        if span.attrs:
            args.update(span.attrs)
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "pid": 0 if span.node is None else pids[span.node],
                # One lane per query within each node; background spans
                # (no query) share lane 0.
                "tid": 0 if span.query_id is None else span.query_id + 1,
                "args": args,
            }
        )
    return events


def to_chrome_trace(tracer: Tracer) -> dict[str, Any]:
    """The full JSON-object form of the trace."""
    return {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.obs",
            "spans": len(tracer.spans),
            "truncated": tracer.truncated,
        },
    }


def write_chrome_trace(tracer: Tracer, path: str | pathlib.Path) -> pathlib.Path:
    """Write the trace to ``path``; open it in Perfetto or chrome://tracing."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(to_chrome_trace(tracer)) + "\n", encoding="utf-8")
    return path
